# Empty dependencies file for lrgp_core.
# This may be replaced when dependencies are built.
