
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lrgp/convergence.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/convergence.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/convergence.cpp.o.d"
  "/root/repo/src/lrgp/enactment.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/enactment.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/enactment.cpp.o.d"
  "/root/repo/src/lrgp/greedy_allocator.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/greedy_allocator.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/greedy_allocator.cpp.o.d"
  "/root/repo/src/lrgp/optimizer.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/optimizer.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/lrgp/price_controllers.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/price_controllers.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/price_controllers.cpp.o.d"
  "/root/repo/src/lrgp/pruning.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/pruning.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/pruning.cpp.o.d"
  "/root/repo/src/lrgp/rate_allocator.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/rate_allocator.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/rate_allocator.cpp.o.d"
  "/root/repo/src/lrgp/trace_export.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/trace_export.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/trace_export.cpp.o.d"
  "/root/repo/src/lrgp/two_stage.cpp" "src/lrgp/CMakeFiles/lrgp_core.dir/two_stage.cpp.o" "gcc" "src/lrgp/CMakeFiles/lrgp_core.dir/two_stage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/lrgp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lrgp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/utility/CMakeFiles/lrgp_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lrgp_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
