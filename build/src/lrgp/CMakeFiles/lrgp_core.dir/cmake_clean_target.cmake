file(REMOVE_RECURSE
  "liblrgp_core.a"
)
