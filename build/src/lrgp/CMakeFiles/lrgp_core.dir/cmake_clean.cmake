file(REMOVE_RECURSE
  "CMakeFiles/lrgp_core.dir/convergence.cpp.o"
  "CMakeFiles/lrgp_core.dir/convergence.cpp.o.d"
  "CMakeFiles/lrgp_core.dir/enactment.cpp.o"
  "CMakeFiles/lrgp_core.dir/enactment.cpp.o.d"
  "CMakeFiles/lrgp_core.dir/greedy_allocator.cpp.o"
  "CMakeFiles/lrgp_core.dir/greedy_allocator.cpp.o.d"
  "CMakeFiles/lrgp_core.dir/optimizer.cpp.o"
  "CMakeFiles/lrgp_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/lrgp_core.dir/price_controllers.cpp.o"
  "CMakeFiles/lrgp_core.dir/price_controllers.cpp.o.d"
  "CMakeFiles/lrgp_core.dir/pruning.cpp.o"
  "CMakeFiles/lrgp_core.dir/pruning.cpp.o.d"
  "CMakeFiles/lrgp_core.dir/rate_allocator.cpp.o"
  "CMakeFiles/lrgp_core.dir/rate_allocator.cpp.o.d"
  "CMakeFiles/lrgp_core.dir/trace_export.cpp.o"
  "CMakeFiles/lrgp_core.dir/trace_export.cpp.o.d"
  "CMakeFiles/lrgp_core.dir/two_stage.cpp.o"
  "CMakeFiles/lrgp_core.dir/two_stage.cpp.o.d"
  "liblrgp_core.a"
  "liblrgp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
