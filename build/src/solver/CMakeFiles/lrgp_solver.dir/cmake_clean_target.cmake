file(REMOVE_RECURSE
  "liblrgp_solver.a"
)
