# Empty dependencies file for lrgp_solver.
# This may be replaced when dependencies are built.
