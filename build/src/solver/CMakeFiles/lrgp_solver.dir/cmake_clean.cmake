file(REMOVE_RECURSE
  "CMakeFiles/lrgp_solver.dir/root_finding.cpp.o"
  "CMakeFiles/lrgp_solver.dir/root_finding.cpp.o.d"
  "liblrgp_solver.a"
  "liblrgp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
