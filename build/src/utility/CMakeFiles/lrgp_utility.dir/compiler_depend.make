# Empty compiler generated dependencies file for lrgp_utility.
# This may be replaced when dependencies are built.
