
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/utility/rate_objective.cpp" "src/utility/CMakeFiles/lrgp_utility.dir/rate_objective.cpp.o" "gcc" "src/utility/CMakeFiles/lrgp_utility.dir/rate_objective.cpp.o.d"
  "/root/repo/src/utility/utility_function.cpp" "src/utility/CMakeFiles/lrgp_utility.dir/utility_function.cpp.o" "gcc" "src/utility/CMakeFiles/lrgp_utility.dir/utility_function.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solver/CMakeFiles/lrgp_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
