file(REMOVE_RECURSE
  "liblrgp_utility.a"
)
