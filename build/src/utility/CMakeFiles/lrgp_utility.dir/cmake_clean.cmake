file(REMOVE_RECURSE
  "CMakeFiles/lrgp_utility.dir/rate_objective.cpp.o"
  "CMakeFiles/lrgp_utility.dir/rate_objective.cpp.o.d"
  "CMakeFiles/lrgp_utility.dir/utility_function.cpp.o"
  "CMakeFiles/lrgp_utility.dir/utility_function.cpp.o.d"
  "liblrgp_utility.a"
  "liblrgp_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
