file(REMOVE_RECURSE
  "liblrgp_exp.a"
)
