# Empty dependencies file for lrgp_exp.
# This may be replaced when dependencies are built.
