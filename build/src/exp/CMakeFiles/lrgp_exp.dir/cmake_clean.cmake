file(REMOVE_RECURSE
  "CMakeFiles/lrgp_exp.dir/experiment.cpp.o"
  "CMakeFiles/lrgp_exp.dir/experiment.cpp.o.d"
  "liblrgp_exp.a"
  "liblrgp_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
