file(REMOVE_RECURSE
  "liblrgp_dist.a"
)
