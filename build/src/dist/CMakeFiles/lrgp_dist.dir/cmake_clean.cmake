file(REMOVE_RECURSE
  "CMakeFiles/lrgp_dist.dir/dist_lrgp.cpp.o"
  "CMakeFiles/lrgp_dist.dir/dist_lrgp.cpp.o.d"
  "liblrgp_dist.a"
  "liblrgp_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
