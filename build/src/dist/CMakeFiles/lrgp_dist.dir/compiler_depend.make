# Empty compiler generated dependencies file for lrgp_dist.
# This may be replaced when dependencies are built.
