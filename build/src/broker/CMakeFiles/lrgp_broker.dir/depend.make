# Empty dependencies file for lrgp_broker.
# This may be replaced when dependencies are built.
