file(REMOVE_RECURSE
  "CMakeFiles/lrgp_broker.dir/estimator.cpp.o"
  "CMakeFiles/lrgp_broker.dir/estimator.cpp.o.d"
  "CMakeFiles/lrgp_broker.dir/filter.cpp.o"
  "CMakeFiles/lrgp_broker.dir/filter.cpp.o.d"
  "CMakeFiles/lrgp_broker.dir/overlay.cpp.o"
  "CMakeFiles/lrgp_broker.dir/overlay.cpp.o.d"
  "CMakeFiles/lrgp_broker.dir/transform.cpp.o"
  "CMakeFiles/lrgp_broker.dir/transform.cpp.o.d"
  "liblrgp_broker.a"
  "liblrgp_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
