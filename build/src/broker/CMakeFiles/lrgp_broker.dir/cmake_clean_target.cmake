file(REMOVE_RECURSE
  "liblrgp_broker.a"
)
