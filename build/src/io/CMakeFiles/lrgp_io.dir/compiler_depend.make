# Empty compiler generated dependencies file for lrgp_io.
# This may be replaced when dependencies are built.
