file(REMOVE_RECURSE
  "CMakeFiles/lrgp_io.dir/json.cpp.o"
  "CMakeFiles/lrgp_io.dir/json.cpp.o.d"
  "CMakeFiles/lrgp_io.dir/problem_json.cpp.o"
  "CMakeFiles/lrgp_io.dir/problem_json.cpp.o.d"
  "liblrgp_io.a"
  "liblrgp_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
