file(REMOVE_RECURSE
  "liblrgp_io.a"
)
