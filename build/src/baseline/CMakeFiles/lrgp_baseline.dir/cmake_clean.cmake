file(REMOVE_RECURSE
  "CMakeFiles/lrgp_baseline.dir/annealing.cpp.o"
  "CMakeFiles/lrgp_baseline.dir/annealing.cpp.o.d"
  "CMakeFiles/lrgp_baseline.dir/exhaustive.cpp.o"
  "CMakeFiles/lrgp_baseline.dir/exhaustive.cpp.o.d"
  "CMakeFiles/lrgp_baseline.dir/rates_only.cpp.o"
  "CMakeFiles/lrgp_baseline.dir/rates_only.cpp.o.d"
  "CMakeFiles/lrgp_baseline.dir/search_state.cpp.o"
  "CMakeFiles/lrgp_baseline.dir/search_state.cpp.o.d"
  "liblrgp_baseline.a"
  "liblrgp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
