# Empty dependencies file for lrgp_baseline.
# This may be replaced when dependencies are built.
