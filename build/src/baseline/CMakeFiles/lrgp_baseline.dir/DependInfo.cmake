
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/annealing.cpp" "src/baseline/CMakeFiles/lrgp_baseline.dir/annealing.cpp.o" "gcc" "src/baseline/CMakeFiles/lrgp_baseline.dir/annealing.cpp.o.d"
  "/root/repo/src/baseline/exhaustive.cpp" "src/baseline/CMakeFiles/lrgp_baseline.dir/exhaustive.cpp.o" "gcc" "src/baseline/CMakeFiles/lrgp_baseline.dir/exhaustive.cpp.o.d"
  "/root/repo/src/baseline/rates_only.cpp" "src/baseline/CMakeFiles/lrgp_baseline.dir/rates_only.cpp.o" "gcc" "src/baseline/CMakeFiles/lrgp_baseline.dir/rates_only.cpp.o.d"
  "/root/repo/src/baseline/search_state.cpp" "src/baseline/CMakeFiles/lrgp_baseline.dir/search_state.cpp.o" "gcc" "src/baseline/CMakeFiles/lrgp_baseline.dir/search_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/lrgp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/lrgp/CMakeFiles/lrgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/utility/CMakeFiles/lrgp_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lrgp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lrgp_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
