file(REMOVE_RECURSE
  "liblrgp_baseline.a"
)
