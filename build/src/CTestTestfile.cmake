# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("metrics")
subdirs("solver")
subdirs("utility")
subdirs("model")
subdirs("workload")
subdirs("lrgp")
subdirs("baseline")
subdirs("sim")
subdirs("dist")
subdirs("broker")
subdirs("io")
subdirs("planner")
subdirs("multirate")
subdirs("exp")
