file(REMOVE_RECURSE
  "liblrgp_metrics.a"
)
