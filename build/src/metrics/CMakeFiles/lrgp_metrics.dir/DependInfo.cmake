
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/table_writer.cpp" "src/metrics/CMakeFiles/lrgp_metrics.dir/table_writer.cpp.o" "gcc" "src/metrics/CMakeFiles/lrgp_metrics.dir/table_writer.cpp.o.d"
  "/root/repo/src/metrics/time_series.cpp" "src/metrics/CMakeFiles/lrgp_metrics.dir/time_series.cpp.o" "gcc" "src/metrics/CMakeFiles/lrgp_metrics.dir/time_series.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
