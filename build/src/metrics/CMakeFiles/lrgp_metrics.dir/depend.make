# Empty dependencies file for lrgp_metrics.
# This may be replaced when dependencies are built.
