file(REMOVE_RECURSE
  "CMakeFiles/lrgp_metrics.dir/table_writer.cpp.o"
  "CMakeFiles/lrgp_metrics.dir/table_writer.cpp.o.d"
  "CMakeFiles/lrgp_metrics.dir/time_series.cpp.o"
  "CMakeFiles/lrgp_metrics.dir/time_series.cpp.o.d"
  "liblrgp_metrics.a"
  "liblrgp_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
