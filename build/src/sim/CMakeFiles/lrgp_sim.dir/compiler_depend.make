# Empty compiler generated dependencies file for lrgp_sim.
# This may be replaced when dependencies are built.
