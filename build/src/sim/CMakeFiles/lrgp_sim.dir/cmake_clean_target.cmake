file(REMOVE_RECURSE
  "liblrgp_sim.a"
)
