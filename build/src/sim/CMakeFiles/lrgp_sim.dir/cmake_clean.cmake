file(REMOVE_RECURSE
  "CMakeFiles/lrgp_sim.dir/simulator.cpp.o"
  "CMakeFiles/lrgp_sim.dir/simulator.cpp.o.d"
  "liblrgp_sim.a"
  "liblrgp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
