file(REMOVE_RECURSE
  "liblrgp_multirate.a"
)
