# Empty compiler generated dependencies file for lrgp_multirate.
# This may be replaced when dependencies are built.
