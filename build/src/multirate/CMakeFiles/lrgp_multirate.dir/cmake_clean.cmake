file(REMOVE_RECURSE
  "CMakeFiles/lrgp_multirate.dir/multirate.cpp.o"
  "CMakeFiles/lrgp_multirate.dir/multirate.cpp.o.d"
  "liblrgp_multirate.a"
  "liblrgp_multirate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_multirate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
