file(REMOVE_RECURSE
  "CMakeFiles/lrgp_planner.dir/capacity_planner.cpp.o"
  "CMakeFiles/lrgp_planner.dir/capacity_planner.cpp.o.d"
  "liblrgp_planner.a"
  "liblrgp_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
