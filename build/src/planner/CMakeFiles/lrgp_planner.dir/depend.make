# Empty dependencies file for lrgp_planner.
# This may be replaced when dependencies are built.
