file(REMOVE_RECURSE
  "liblrgp_planner.a"
)
