# Empty compiler generated dependencies file for lrgp_model.
# This may be replaced when dependencies are built.
