file(REMOVE_RECURSE
  "liblrgp_model.a"
)
