file(REMOVE_RECURSE
  "CMakeFiles/lrgp_model.dir/allocation.cpp.o"
  "CMakeFiles/lrgp_model.dir/allocation.cpp.o.d"
  "CMakeFiles/lrgp_model.dir/analysis.cpp.o"
  "CMakeFiles/lrgp_model.dir/analysis.cpp.o.d"
  "CMakeFiles/lrgp_model.dir/problem.cpp.o"
  "CMakeFiles/lrgp_model.dir/problem.cpp.o.d"
  "liblrgp_model.a"
  "liblrgp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
