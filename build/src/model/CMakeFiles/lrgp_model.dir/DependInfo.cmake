
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/allocation.cpp" "src/model/CMakeFiles/lrgp_model.dir/allocation.cpp.o" "gcc" "src/model/CMakeFiles/lrgp_model.dir/allocation.cpp.o.d"
  "/root/repo/src/model/analysis.cpp" "src/model/CMakeFiles/lrgp_model.dir/analysis.cpp.o" "gcc" "src/model/CMakeFiles/lrgp_model.dir/analysis.cpp.o.d"
  "/root/repo/src/model/problem.cpp" "src/model/CMakeFiles/lrgp_model.dir/problem.cpp.o" "gcc" "src/model/CMakeFiles/lrgp_model.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/utility/CMakeFiles/lrgp_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lrgp_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
