file(REMOVE_RECURSE
  "liblrgp_workload.a"
)
