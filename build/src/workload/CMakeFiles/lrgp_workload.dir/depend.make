# Empty dependencies file for lrgp_workload.
# This may be replaced when dependencies are built.
