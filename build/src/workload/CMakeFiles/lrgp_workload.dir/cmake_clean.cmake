file(REMOVE_RECURSE
  "CMakeFiles/lrgp_workload.dir/random_workload.cpp.o"
  "CMakeFiles/lrgp_workload.dir/random_workload.cpp.o.d"
  "CMakeFiles/lrgp_workload.dir/workloads.cpp.o"
  "CMakeFiles/lrgp_workload.dir/workloads.cpp.o.d"
  "liblrgp_workload.a"
  "liblrgp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
