# Empty dependencies file for ablation_gamma.
# This may be replaced when dependencies are built.
