file(REMOVE_RECURSE
  "CMakeFiles/ablation_gamma.dir/ablation_gamma.cpp.o"
  "CMakeFiles/ablation_gamma.dir/ablation_gamma.cpp.o.d"
  "ablation_gamma"
  "ablation_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
