# Empty compiler generated dependencies file for fig2_adaptive_gamma.
# This may be replaced when dependencies are built.
