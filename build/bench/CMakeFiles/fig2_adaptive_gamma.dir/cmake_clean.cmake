file(REMOVE_RECURSE
  "CMakeFiles/fig2_adaptive_gamma.dir/fig2_adaptive_gamma.cpp.o"
  "CMakeFiles/fig2_adaptive_gamma.dir/fig2_adaptive_gamma.cpp.o.d"
  "fig2_adaptive_gamma"
  "fig2_adaptive_gamma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_adaptive_gamma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
