
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_adaptive_gamma.cpp" "bench/CMakeFiles/fig2_adaptive_gamma.dir/fig2_adaptive_gamma.cpp.o" "gcc" "bench/CMakeFiles/fig2_adaptive_gamma.dir/fig2_adaptive_gamma.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lrgp/CMakeFiles/lrgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lrgp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lrgp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lrgp_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lrgp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/utility/CMakeFiles/lrgp_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lrgp_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
