# Empty dependencies file for ablation_admission.
# This may be replaced when dependencies are built.
