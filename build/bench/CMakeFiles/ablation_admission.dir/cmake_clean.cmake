file(REMOVE_RECURSE
  "CMakeFiles/ablation_admission.dir/ablation_admission.cpp.o"
  "CMakeFiles/ablation_admission.dir/ablation_admission.cpp.o.d"
  "ablation_admission"
  "ablation_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
