file(REMOVE_RECURSE
  "CMakeFiles/ext_multirate.dir/ext_multirate.cpp.o"
  "CMakeFiles/ext_multirate.dir/ext_multirate.cpp.o.d"
  "ext_multirate"
  "ext_multirate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multirate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
