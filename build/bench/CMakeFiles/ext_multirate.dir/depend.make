# Empty dependencies file for ext_multirate.
# This may be replaced when dependencies are built.
