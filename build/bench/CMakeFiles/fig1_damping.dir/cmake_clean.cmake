file(REMOVE_RECURSE
  "CMakeFiles/fig1_damping.dir/fig1_damping.cpp.o"
  "CMakeFiles/fig1_damping.dir/fig1_damping.cpp.o.d"
  "fig1_damping"
  "fig1_damping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_damping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
