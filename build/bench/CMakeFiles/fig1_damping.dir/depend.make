# Empty dependencies file for fig1_damping.
# This may be replaced when dependencies are built.
