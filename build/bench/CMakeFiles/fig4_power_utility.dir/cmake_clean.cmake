file(REMOVE_RECURSE
  "CMakeFiles/fig4_power_utility.dir/fig4_power_utility.cpp.o"
  "CMakeFiles/fig4_power_utility.dir/fig4_power_utility.cpp.o.d"
  "fig4_power_utility"
  "fig4_power_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_power_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
