# Empty dependencies file for fig4_power_utility.
# This may be replaced when dependencies are built.
