file(REMOVE_RECURSE
  "CMakeFiles/async_vs_sync.dir/async_vs_sync.cpp.o"
  "CMakeFiles/async_vs_sync.dir/async_vs_sync.cpp.o.d"
  "async_vs_sync"
  "async_vs_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_vs_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
