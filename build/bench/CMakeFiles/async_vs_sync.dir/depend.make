# Empty dependencies file for async_vs_sync.
# This may be replaced when dependencies are built.
