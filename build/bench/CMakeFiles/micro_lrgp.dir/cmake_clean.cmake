file(REMOVE_RECURSE
  "CMakeFiles/micro_lrgp.dir/micro_lrgp.cpp.o"
  "CMakeFiles/micro_lrgp.dir/micro_lrgp.cpp.o.d"
  "micro_lrgp"
  "micro_lrgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lrgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
