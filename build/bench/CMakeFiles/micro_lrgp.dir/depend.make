# Empty dependencies file for micro_lrgp.
# This may be replaced when dependencies are built.
