# Empty dependencies file for fig3_recovery.
# This may be replaced when dependencies are built.
