file(REMOVE_RECURSE
  "CMakeFiles/fig3_recovery.dir/fig3_recovery.cpp.o"
  "CMakeFiles/fig3_recovery.dir/fig3_recovery.cpp.o.d"
  "fig3_recovery"
  "fig3_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
