file(REMOVE_RECURSE
  "CMakeFiles/table3_utility_shapes.dir/table3_utility_shapes.cpp.o"
  "CMakeFiles/table3_utility_shapes.dir/table3_utility_shapes.cpp.o.d"
  "table3_utility_shapes"
  "table3_utility_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_utility_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
