# Empty compiler generated dependencies file for table3_utility_shapes.
# This may be replaced when dependencies are built.
