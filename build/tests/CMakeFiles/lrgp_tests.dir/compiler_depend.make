# Empty compiler generated dependencies file for lrgp_tests.
# This may be replaced when dependencies are built.
