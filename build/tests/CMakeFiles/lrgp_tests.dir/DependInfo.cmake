
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allocation.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_allocation.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_allocation.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_broker.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_broker.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_broker.cpp.o.d"
  "/root/repo/tests/test_broker_reliability.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_broker_reliability.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_broker_reliability.cpp.o.d"
  "/root/repo/tests/test_convergence.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_convergence.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_convergence.cpp.o.d"
  "/root/repo/tests/test_dist.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_dist.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_dist.cpp.o.d"
  "/root/repo/tests/test_dist_scaled.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_dist_scaled.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_dist_scaled.cpp.o.d"
  "/root/repo/tests/test_dynamics.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_dynamics.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_dynamics.cpp.o.d"
  "/root/repo/tests/test_enactment.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_enactment.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_enactment.cpp.o.d"
  "/root/repo/tests/test_estimator.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_estimator.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_estimator.cpp.o.d"
  "/root/repo/tests/test_exhaustive.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_exhaustive.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_greedy.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_greedy.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_greedy.cpp.o.d"
  "/root/repo/tests/test_greedy_optimality.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_greedy_optimality.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_greedy_optimality.cpp.o.d"
  "/root/repo/tests/test_json.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_json.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_json.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_model.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_model.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_model.cpp.o.d"
  "/root/repo/tests/test_multirate.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_multirate.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_multirate.cpp.o.d"
  "/root/repo/tests/test_optimizer.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_optimizer.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_optimizer.cpp.o.d"
  "/root/repo/tests/test_planner.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_planner.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_planner.cpp.o.d"
  "/root/repo/tests/test_prices.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_prices.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_prices.cpp.o.d"
  "/root/repo/tests/test_problem_json.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_problem_json.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_problem_json.cpp.o.d"
  "/root/repo/tests/test_pruning.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_pruning.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_pruning.cpp.o.d"
  "/root/repo/tests/test_random_workload.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_random_workload.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_random_workload.cpp.o.d"
  "/root/repo/tests/test_rate_allocator.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_rate_allocator.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_rate_allocator.cpp.o.d"
  "/root/repo/tests/test_rate_objective.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_rate_objective.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_rate_objective.cpp.o.d"
  "/root/repo/tests/test_rate_oracle.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_rate_oracle.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_rate_oracle.cpp.o.d"
  "/root/repo/tests/test_rates_only.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_rates_only.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_rates_only.cpp.o.d"
  "/root/repo/tests/test_shifted_log.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_shifted_log.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_shifted_log.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_solver.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_solver.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_solver.cpp.o.d"
  "/root/repo/tests/test_trace_export.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_trace_export.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_trace_export.cpp.o.d"
  "/root/repo/tests/test_two_stage.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_two_stage.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_two_stage.cpp.o.d"
  "/root/repo/tests/test_utility.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_utility.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_utility.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/lrgp_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/lrgp_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lrgp/CMakeFiles/lrgp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lrgp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/lrgp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dist/CMakeFiles/lrgp_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/lrgp_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lrgp_io.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/lrgp_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/multirate/CMakeFiles/lrgp_multirate.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/lrgp_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lrgp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lrgp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/utility/CMakeFiles/lrgp_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lrgp_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lrgp_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
