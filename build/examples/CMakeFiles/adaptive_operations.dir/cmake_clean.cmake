file(REMOVE_RECURSE
  "CMakeFiles/adaptive_operations.dir/adaptive_operations.cpp.o"
  "CMakeFiles/adaptive_operations.dir/adaptive_operations.cpp.o.d"
  "adaptive_operations"
  "adaptive_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
