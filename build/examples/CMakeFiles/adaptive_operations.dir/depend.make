# Empty dependencies file for adaptive_operations.
# This may be replaced when dependencies are built.
