# Empty compiler generated dependencies file for trade_data.
# This may be replaced when dependencies are built.
