file(REMOVE_RECURSE
  "CMakeFiles/trade_data.dir/trade_data.cpp.o"
  "CMakeFiles/trade_data.dir/trade_data.cpp.o.d"
  "trade_data"
  "trade_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trade_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
