file(REMOVE_RECURSE
  "CMakeFiles/run_experiment.dir/run_experiment.cpp.o"
  "CMakeFiles/run_experiment.dir/run_experiment.cpp.o.d"
  "run_experiment"
  "run_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
