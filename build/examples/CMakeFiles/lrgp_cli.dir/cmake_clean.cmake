file(REMOVE_RECURSE
  "CMakeFiles/lrgp_cli.dir/lrgp_cli.cpp.o"
  "CMakeFiles/lrgp_cli.dir/lrgp_cli.cpp.o.d"
  "lrgp_cli"
  "lrgp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrgp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
