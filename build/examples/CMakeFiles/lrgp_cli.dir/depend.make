# Empty dependencies file for lrgp_cli.
# This may be replaced when dependencies are built.
