# Empty dependencies file for latest_price.
# This may be replaced when dependencies are built.
