file(REMOVE_RECURSE
  "CMakeFiles/latest_price.dir/latest_price.cpp.o"
  "CMakeFiles/latest_price.dir/latest_price.cpp.o.d"
  "latest_price"
  "latest_price.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latest_price.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
