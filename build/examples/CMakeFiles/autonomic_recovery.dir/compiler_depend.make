# Empty compiler generated dependencies file for autonomic_recovery.
# This may be replaced when dependencies are built.
