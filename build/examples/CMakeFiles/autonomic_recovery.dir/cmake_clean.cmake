file(REMOVE_RECURSE
  "CMakeFiles/autonomic_recovery.dir/autonomic_recovery.cpp.o"
  "CMakeFiles/autonomic_recovery.dir/autonomic_recovery.cpp.o.d"
  "autonomic_recovery"
  "autonomic_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autonomic_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
