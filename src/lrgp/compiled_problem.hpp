// Compiled (lowered) problem representation for the LRGP hot path.
//
// ProblemSpec is an object graph tuned for validation and readability:
// per-hop prices walk `classesOfFlow` for every node a flow reaches,
// link usage re-scans each flow's hop list per link, and every access
// funnels through bounds-checked id lookups.  CompiledProblem lowers the
// spec once into CSR-style flat arrays so one LRGP iteration touches
// only contiguous memory:
//
//   * per-flow link-hop spans   (link index, L cost)          -> PL_i
//   * per-flow node-hop spans   (node index, F cost) with a nested
//     class sub-span (class index, G cost) holding exactly the classes
//     of the flow attached at that hop                        -> PB_i
//   * per-flow class spans      (classesOfFlow order)         -> Eq. 7 terms
//   * per-node flow spans       (flow index, F cost)          -> base usage
//   * per-node class spans      (classesAtNode order)         -> greedy
//   * per-link flow spans       (flow index, L cost)          -> Eq. 13 usage
//
// Utility dispatch is also lowered: when every class of a flow shares a
// single closed-form family (plain LogUtility / PowerUtility with one
// exponent / ShiftedLogUtility with one scale), the per-flow solve and
// the per-class U_j(r) evaluations use precomputed weights and a single
// transcendental per flow, reproducing the serial arithmetic bit for
// bit.  Anything else (mixed families, ScaledUtility chains, custom
// functions) falls back to the reference solver.
//
// The small mutable surface (flow active flags, node capacities, class
// consumer ceilings) mirrors the ProblemSpec setters so dynamic workload
// changes do not force a recompile.
#pragma once

#include <cstdint>
#include <vector>

#include "model/problem.hpp"

namespace lrgp::core {

/// How a flow's rate subproblem (Eq. 7) can be solved on the fast path.
enum class SolveFamily : std::uint8_t {
    kGeneric,     ///< fall back to utility::solve_rate_objective
    kLog,         ///< all classes are w * log(1+r)
    kPower,       ///< all classes are w * r^k with one common k
    kShiftedLog,  ///< all classes are w * log(1+r/s) with one common s
};

/// Flat, cache-friendly mirror of a ProblemSpec.  Spans are CSR-style:
/// entity i owns entries [begin[i], begin[i+1]) of the value arrays.
class CompiledProblem {
public:
    explicit CompiledProblem(const model::ProblemSpec& spec);

    // -- counts -----------------------------------------------------------
    [[nodiscard]] std::size_t flowCount() const noexcept { return flow_rate_min.size(); }
    [[nodiscard]] std::size_t nodeCount() const noexcept { return node_capacity.size(); }
    [[nodiscard]] std::size_t linkCount() const noexcept { return link_capacity.size(); }
    [[nodiscard]] std::size_t classCount() const noexcept { return class_flow.size(); }

    // -- mutable mirror of the ProblemSpec setters ------------------------
    void setFlowActive(model::FlowId id, bool active) {
        flow_active.at(id.index()) = active ? 1 : 0;
    }
    void setNodeCapacity(model::NodeId id, double capacity) {
        node_capacity.at(id.index()) = capacity;
    }
    void setLinkCapacity(model::LinkId id, double capacity) {
        link_capacity.at(id.index()) = capacity;
    }
    void setClassMaxConsumers(model::ClassId id, int max_consumers) {
        class_max_consumers.at(id.index()) = max_consumers;
    }

    // -- per-flow scalars -------------------------------------------------
    std::vector<std::uint8_t> flow_active;
    std::vector<double> flow_rate_min;
    std::vector<double> flow_rate_max;
    /// Fast-path solve family; kGeneric flows use the reference solver.
    std::vector<SolveFamily> flow_family;
    /// Common exponent (kPower) or scale (kShiftedLog) of the flow's classes.
    std::vector<double> flow_family_param;

    // -- per-flow link hops: PL_i = sum cost * p_l -------------------------
    std::vector<std::size_t> flow_link_begin;  ///< size flowCount()+1
    std::vector<std::uint32_t> link_hop_link;
    std::vector<double> link_hop_cost;

    // -- per-flow node hops: PB_i (Eq. 9) ---------------------------------
    std::vector<std::size_t> flow_node_begin;  ///< size flowCount()+1
    std::vector<std::uint32_t> node_hop_node;
    std::vector<double> node_hop_fcost;
    /// Nested span: classes of the flow attached at this hop's node, in
    /// classesOfFlow order (the order the serial price loop visits them).
    std::vector<std::size_t> hop_class_begin;  ///< size node-hop-count + 1
    std::vector<std::uint32_t> hop_class_class;
    std::vector<double> hop_class_gcost;

    // -- per-flow classes (Eq. 7 terms, classesOfFlow order) --------------
    std::vector<std::size_t> flow_class_begin;  ///< size flowCount()+1
    std::vector<std::uint32_t> flow_class_class;

    // -- per-class scalars ------------------------------------------------
    std::vector<std::uint32_t> class_flow;
    std::vector<std::uint32_t> class_node;
    std::vector<int> class_max_consumers;
    std::vector<double> class_gcost;  ///< G_{b,j}
    /// Base weight w_j when the class's family is closed-form; 0 otherwise.
    std::vector<double> class_weight;
    /// Precomputed w_j * k for the power-derivative fast path.
    std::vector<double> class_dweight;
    /// Borrowed utility pointers for the generic path (spec outlives us).
    std::vector<const utility::UtilityFunction*> class_utility;

    // -- per-node spans ---------------------------------------------------
    std::vector<double> node_capacity;
    std::vector<std::size_t> node_flow_begin;  ///< size nodeCount()+1
    std::vector<std::uint32_t> node_flow_flow;
    std::vector<double> node_flow_fcost;
    std::vector<std::size_t> node_class_begin;  ///< size nodeCount()+1
    std::vector<std::uint32_t> node_class_class;
    /// Widest node-class span; sizes per-worker scratch (greedy ranking,
    /// the incremental engine's old-population snapshots) exactly.
    std::size_t max_classes_at_node = 0;

    // -- per-link spans ---------------------------------------------------
    std::vector<double> link_capacity;
    std::vector<std::size_t> link_flow_begin;  ///< size linkCount()+1
    std::vector<std::uint32_t> link_flow_flow;
    std::vector<double> link_flow_cost;
};

}  // namespace lrgp::core
