// The common engine interface over every LRGP iteration driver.
//
// LrgpOptimizer (serial reference), ParallelLrgpEngine (compiled /
// parallel / incremental) and shard::ShardedLrgpEngine all implement the
// same synchronous contract: step() advances one LRGP iteration, dynamic
// ops apply between iterations, and the observers expose the published
// allocation/price state.  The differential and property harnesses
// iterate over implementations through this interface, and the sharded
// engine composes per-shard member engines through it.
//
// LrgpOptions and IterationRecord live here (not in optimizer.hpp) so
// the interface does not depend on any concrete engine; optimizer.hpp
// re-exports them by inclusion, preserving existing includes.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "lrgp/convergence.hpp"
#include "lrgp/price_controllers.hpp"
#include "lrgp/prices.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "utility/rate_objective.hpp"

namespace lrgp::obs {
class Registry;
class IterationTracer;
}  // namespace lrgp::obs

namespace lrgp::core {

struct LrgpOptions {
    GammaPolicy gamma = AdaptiveGamma{};        ///< node price stepsize policy
    NodePriceRule node_price_rule = NodePriceRule::kBenefitCost;  ///< Eq. 12 vs ablation
    double link_gamma = 1e-5;                   ///< Eq. 13 stepsize
    utility::RateSolveOptions rate_solve;       ///< closed-form / numeric control
    double initial_node_price = 0.0;
    double initial_link_price = 0.0;
    ConvergenceOptions convergence;
};

/// A snapshot of the optimizer state after one iteration.
struct IterationRecord {
    int iteration = 0;              ///< 1-based iteration count
    double utility = 0.0;           ///< Eq. 1 evaluated on the new allocation
    model::Allocation allocation;   ///< rates and populations after the iteration
    PriceVector prices;             ///< prices after the iteration
};

/// Abstract LRGP iteration driver.  Implementations own a copy of the
/// problem, so dynamic changes stay local to one engine instance, and
/// every concrete engine keeps the bitwise-determinism contract of the
/// serial optimizer (the sharded engine keeps it exactly for K=1 and
/// per shard otherwise; see docs/algorithm.md).
class Engine {
public:
    virtual ~Engine() = default;

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Short stable identifier ("serial", "compiled", "incremental",
    /// "sharded") for logs, bench rows and test parametrization.
    [[nodiscard]] virtual const char* name() const noexcept = 0;

    /// Runs one LRGP iteration and returns its record.
    virtual const IterationRecord& step() = 0;

    /// Runs exactly `iterations` iterations; returns the final record.
    virtual const IterationRecord& run(int iterations) = 0;

    /// Runs until the convergence criterion fires or `max_iterations` is
    /// reached.  Returns the 1-based iteration of convergence, or nullopt.
    virtual std::optional<int> runUntilConverged(int max_iterations) = 0;

    // -- dynamic workload changes (applied before the next iteration) ----

    /// Models the flow's source leaving the system: the flow stops
    /// consuming resources and its classes are evicted.
    virtual void removeFlow(model::FlowId flow) = 0;

    /// Brings a removed flow back (resumes at r_min, zero consumers).
    virtual void restoreFlow(model::FlowId flow) = 0;

    virtual void setNodeCapacity(model::NodeId node, double capacity) = 0;
    virtual void setLinkCapacity(model::LinkId link, double capacity) = 0;

    /// Consumers arriving at / leaving a class (changes n^max).  Takes
    /// effect on the next iteration; the convergence detector restarts.
    virtual void setClassMaxConsumers(model::ClassId cls, int max_consumers) = 0;

    /// Warm start: seeds prices (and optionally populations) from a
    /// previous run.  Sizes must match this engine's problem; throws
    /// std::invalid_argument otherwise.
    virtual void warmStart(const PriceVector& prices,
                           const std::vector<int>* populations = nullptr) = 0;

    // -- observability ----------------------------------------------------

    /// Attaches a metrics registry (and optionally a tracer); pass
    /// nullptrs to detach.  A no-op in builds without LRGP_OBS.
    virtual void attachObservability(obs::Registry* registry,
                                     obs::IterationTracer* tracer = nullptr) = 0;

    // -- observers --------------------------------------------------------

    [[nodiscard]] virtual const model::ProblemSpec& problem() const noexcept = 0;
    [[nodiscard]] virtual const model::Allocation& allocation() const noexcept = 0;
    [[nodiscard]] virtual const PriceVector& prices() const noexcept = 0;
    [[nodiscard]] virtual double currentUtility() const = 0;
    [[nodiscard]] virtual int iterationsRun() const noexcept = 0;
    [[nodiscard]] virtual const metrics::TimeSeries& utilityTrace() const noexcept = 0;
    [[nodiscard]] virtual const ConvergenceDetector& convergence() const noexcept = 0;
    /// Current adaptive/fixed gamma at `node` (for the Figure 2 ablation).
    [[nodiscard]] virtual double nodeGamma(model::NodeId node) const = 0;

protected:
    Engine() = default;
};

/// The engines implemented in src/lrgp (src/shard has its own factory:
/// shard::make_sharded_engine, kept separate to avoid a layering cycle).
enum class EngineKind {
    kSerial,       ///< LrgpOptimizer
    kCompiled,     ///< ParallelLrgpEngine, full iterations
    kIncremental,  ///< ParallelLrgpEngine with dirty-set tracking
};

/// Builds an engine of the requested kind.  `threads` is forwarded to
/// EngineConfig::threads for the compiled engines and ignored by kSerial.
[[nodiscard]] std::unique_ptr<Engine> make_engine(EngineKind kind, model::ProblemSpec spec,
                                                  LrgpOptions options = {}, int threads = 1);

}  // namespace lrgp::core
