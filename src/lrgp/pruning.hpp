// Stage two of the paper's two-stage approximation (Section 2.4).
//
// Stage one (everything else in this library) assumes each flow is
// routed to *every* node hosting one of its classes with n^max > 0, even
// if the optimizer then admits zero consumers there — so the flow keeps
// paying F_{b,i}·r_i at nodes that deliver nothing.  Stage two prunes:
// given a stage-one allocation, drop the (flow, node) routes whose
// classes all received zero consumers (conceptually setting those F and
// L coefficients to zero), and re-solve on the pruned problem.  Utility
// can only improve: the freed capacity re-admits consumers elsewhere.
#pragma once

#include "model/allocation.hpp"
#include "model/problem.hpp"

namespace lrgp::core {

/// Statistics about what a pruning pass removed.
struct PruneReport {
    int routes_removed = 0;       ///< (flow, node) hops dropped
    int links_removed = 0;        ///< (flow, link) hops dropped
    int classes_deactivated = 0;  ///< classes whose n^max was zeroed by pruning
};

/// Returns a copy of `spec` in which every flow is un-routed from the
/// nodes where all of its classes have zero admitted consumers in
/// `allocation` (and from the links that only led there, when link usage
/// can be attributed — links whose flows no longer reach any consumer
/// node are dropped).  Classes at pruned (flow, node) pairs get
/// n^max = 0 so the pruned problem stays consistent.
///
/// Throws std::invalid_argument if `allocation` is not sized for `spec`.
[[nodiscard]] model::ProblemSpec prune_problem(const model::ProblemSpec& spec,
                                               const model::Allocation& allocation,
                                               PruneReport* report = nullptr);

}  // namespace lrgp::core
