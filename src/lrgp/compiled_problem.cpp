#include "lrgp/compiled_problem.hpp"

#include <algorithm>

#include "utility/utility_function.hpp"

namespace lrgp::core {

namespace {

struct ClassFamily {
    SolveFamily family = SolveFamily::kGeneric;
    double weight = 0.0;
    double param = 0.0;  ///< exponent (power) or scale (shifted log)
};

/// Classifies one utility into a closed-form family.  ScaledUtility
/// chains and unknown subclasses stay generic: replicating their nested
/// factor arithmetic bit-for-bit is not worth the fragility.
ClassFamily classify(const utility::UtilityFunction& u) {
    if (const auto* lg = dynamic_cast<const utility::LogUtility*>(&u))
        return {SolveFamily::kLog, lg->weight(), 0.0};
    if (const auto* pw = dynamic_cast<const utility::PowerUtility*>(&u))
        return {SolveFamily::kPower, pw->weight(), pw->exponent()};
    if (const auto* sl = dynamic_cast<const utility::ShiftedLogUtility*>(&u))
        return {SolveFamily::kShiftedLog, sl->weight(), sl->scale()};
    return {};
}

}  // namespace

CompiledProblem::CompiledProblem(const model::ProblemSpec& spec) {
    const std::size_t flows = spec.flowCount();
    const std::size_t nodes = spec.nodeCount();
    const std::size_t links = spec.linkCount();
    const std::size_t classes = spec.classCount();

    // ---- per-class scalars and family classification --------------------
    class_flow.reserve(classes);
    class_node.reserve(classes);
    class_max_consumers.reserve(classes);
    class_gcost.reserve(classes);
    class_weight.reserve(classes);
    class_dweight.reserve(classes);
    class_utility.reserve(classes);
    std::vector<ClassFamily> families;
    families.reserve(classes);
    for (const model::ClassSpec& c : spec.classes()) {
        const ClassFamily fam = classify(*c.utility);
        families.push_back(fam);
        class_flow.push_back(c.flow.value);
        class_node.push_back(c.node.value);
        class_max_consumers.push_back(c.max_consumers);
        class_gcost.push_back(c.consumer_cost);
        class_weight.push_back(fam.weight);
        class_dweight.push_back(fam.family == SolveFamily::kPower ? fam.weight * fam.param
                                                                  : fam.weight);
        class_utility.push_back(c.utility.get());
    }

    // ---- per-flow scalars, hop spans, class spans -----------------------
    flow_active.reserve(flows);
    flow_rate_min.reserve(flows);
    flow_rate_max.reserve(flows);
    flow_family.assign(flows, SolveFamily::kGeneric);
    flow_family_param.assign(flows, 0.0);
    flow_link_begin.reserve(flows + 1);
    flow_node_begin.reserve(flows + 1);
    flow_class_begin.reserve(flows + 1);
    link_hop_link.reserve(spec.totalFlowLinkHops());
    link_hop_cost.reserve(spec.totalFlowLinkHops());
    node_hop_node.reserve(spec.totalFlowNodeHops());
    node_hop_fcost.reserve(spec.totalFlowNodeHops());
    hop_class_begin.reserve(spec.totalFlowNodeHops() + 1);
    flow_class_class.reserve(classes);

    flow_link_begin.push_back(0);
    flow_node_begin.push_back(0);
    flow_class_begin.push_back(0);
    hop_class_begin.push_back(0);
    for (const model::FlowSpec& f : spec.flows()) {
        flow_active.push_back(f.active ? 1 : 0);
        flow_rate_min.push_back(f.rate_min);
        flow_rate_max.push_back(f.rate_max);

        for (const model::FlowLinkHop& hop : f.links) {
            link_hop_link.push_back(hop.link.value);
            link_hop_cost.push_back(hop.link_cost);
        }
        flow_link_begin.push_back(link_hop_link.size());

        const std::vector<model::ClassId>& of_flow = spec.classesOfFlow(f.id);
        for (const model::FlowNodeHop& hop : f.nodes) {
            node_hop_node.push_back(hop.node.value);
            node_hop_fcost.push_back(hop.flow_node_cost);
            // Classes of this flow attached at the hop's node, kept in
            // classesOfFlow order — the exact order the serial
            // RateAllocator::totalPrice inner loop accumulates them.
            for (model::ClassId j : of_flow) {
                if (spec.consumerClass(j).node != hop.node) continue;
                hop_class_class.push_back(j.value);
                hop_class_gcost.push_back(spec.consumerClass(j).consumer_cost);
            }
            hop_class_begin.push_back(hop_class_class.size());
        }
        flow_node_begin.push_back(node_hop_node.size());

        for (model::ClassId j : of_flow) flow_class_class.push_back(j.value);
        flow_class_begin.push_back(flow_class_class.size());

        // A flow is fast-path solvable when every one of its classes
        // shares a single closed-form family (equal exponent/scale).
        if (!of_flow.empty()) {
            const ClassFamily& first = families[of_flow.front().index()];
            bool uniform = first.family != SolveFamily::kGeneric;
            for (model::ClassId j : of_flow) {
                const ClassFamily& fam = families[j.index()];
                uniform = uniform && fam.family == first.family && fam.param == first.param;
            }
            if (uniform) {
                flow_family[f.id.index()] = first.family;
                flow_family_param[f.id.index()] = first.param;
            }
        }
    }

    // ---- per-node spans -------------------------------------------------
    node_capacity.reserve(nodes);
    node_flow_begin.reserve(nodes + 1);
    node_class_begin.reserve(nodes + 1);
    node_flow_begin.push_back(0);
    node_class_begin.push_back(0);
    for (const model::NodeSpec& b : spec.nodes()) {
        node_capacity.push_back(b.capacity);
        for (model::FlowId i : spec.flowsAtNode(b.id)) {
            node_flow_flow.push_back(i.value);
            node_flow_fcost.push_back(spec.flowNodeCost(b.id, i));
        }
        node_flow_begin.push_back(node_flow_flow.size());
        for (model::ClassId j : spec.classesAtNode(b.id)) node_class_class.push_back(j.value);
        node_class_begin.push_back(node_class_class.size());
        max_classes_at_node = std::max(
            max_classes_at_node, node_class_begin[node_class_begin.size() - 1] -
                                     node_class_begin[node_class_begin.size() - 2]);
    }

    // ---- per-link spans -------------------------------------------------
    link_capacity.reserve(links);
    link_flow_begin.reserve(links + 1);
    link_flow_begin.push_back(0);
    for (const model::LinkSpec& l : spec.links()) {
        link_capacity.push_back(l.capacity);
        for (model::FlowId i : spec.flowsOnLink(l.id)) {
            link_flow_flow.push_back(i.value);
            link_flow_cost.push_back(spec.linkCost(l.id, i));
        }
        link_flow_begin.push_back(link_flow_flow.size());
    }
}

}  // namespace lrgp::core
