// CSV export of optimizer iteration traces — utility, per-flow rates,
// per-class populations, per-node prices — for external plotting of the
// paper's figures.
#pragma once

#include <iosfwd>
#include <vector>

#include "lrgp/optimizer.hpp"
#include "model/problem.hpp"

namespace lrgp::core {

/// Writes one CSV row per iteration record with the columns
///   iteration, utility, rate:<flow>..., n:<class>..., price:<node>...
/// Column names use the entity names from `spec`.
void export_trace_csv(std::ostream& os, const model::ProblemSpec& spec,
                      const std::vector<core::IterationRecord>& records);

/// Convenience: steps `optimizer` for `iterations`, collecting records,
/// then exports them.  Returns the collected records.
std::vector<core::IterationRecord> run_and_export(std::ostream& os,
                                                  core::LrgpOptimizer& optimizer,
                                                  int iterations);

}  // namespace lrgp::core
