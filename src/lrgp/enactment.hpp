// Enactment policy (Sections 2.1 and 3): LRGP iterates continuously, but
// "making very frequent admission control decisions may be disruptive to
// consumers using the system, so the decisions may not be enacted until
// their values are sufficiently different from the previous enacted
// values, or may be enacted periodically (say once every few minutes)".
//
// EnactmentController implements both triggers with hysteresis: a new
// allocation is pushed when (a) at least `min_interval` has elapsed since
// the last enactment, or (b) the allocation differs enough — any flow's
// rate moved by more than `rate_deadband` (relative) or any class's
// population by more than `population_deadband` consumers.
#pragma once

#include <functional>
#include <optional>

#include "model/allocation.hpp"
#include "model/problem.hpp"

namespace lrgp::core {

struct EnactmentOptions {
    /// Relative rate change that forces enactment.  The comparison is
    /// strict: a change of exactly the deadband is still suppressed.
    double rate_deadband = 0.05;
    /// Absolute per-class admission change; also strictly compared.
    int population_deadband = 10;
    /// Periodic enactment (seconds of system time).  The periodic
    /// trigger fires even when the allocation is unchanged — "enact
    /// once every few minutes" refreshes the live configuration
    /// regardless of drift.
    double min_interval = 60.0;
};

/// Decides when optimizer outputs become live system configuration.
/// Feed it (time, allocation) pairs; it invokes the enact callback (e.g.
/// BrokerOverlay::enact) only when the policy fires.
class EnactmentController {
public:
    using EnactFn = std::function<void(const model::Allocation&)>;

    /// `enact` must not be null; options are validated.
    EnactmentController(EnactmentOptions options, EnactFn enact);

    /// Offers a fresh allocation at time `now` (seconds, monotone).
    /// Returns true if it was enacted.  The first offer always enacts.
    bool offer(double now, const model::Allocation& allocation);

    [[nodiscard]] std::size_t enactments() const noexcept { return enactments_; }
    /// Allocations offered so far (enacted + suppressed).
    [[nodiscard]] std::size_t offers() const noexcept { return offers_; }
    /// Offers the hysteresis swallowed; offers() - enactments().
    [[nodiscard]] std::size_t suppressions() const noexcept { return offers_ - enactments_; }
    [[nodiscard]] const std::optional<model::Allocation>& lastEnacted() const noexcept {
        return last_;
    }

    /// Whether `allocation` differs enough from the last enacted one to
    /// trigger on its own (ignoring the periodic timer).
    [[nodiscard]] bool significantlyDifferent(const model::Allocation& allocation) const;

private:
    EnactmentOptions options_;
    EnactFn enact_;
    std::optional<model::Allocation> last_;
    double last_time_ = 0.0;
    std::size_t enactments_ = 0;
    std::size_t offers_ = 0;
};

}  // namespace lrgp::core
