#include "lrgp/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lrgp::core {

ConvergenceDetector::ConvergenceDetector(ConvergenceOptions options) : options_(options) {
    if (options_.window < 2)
        throw std::invalid_argument("ConvergenceDetector: window must be >= 2");
    if (!(options_.relative_amplitude > 0.0))
        throw std::invalid_argument("ConvergenceDetector: threshold must be positive");
}

bool ConvergenceDetector::addSample(double utility) {
    ++samples_seen_;
    window_.push_back(utility);
    if (window_.size() > options_.window) window_.pop_front();

    if (run_length_ > 0 && utility == last_sample_) ++run_length_;
    else run_length_ = 1;
    last_sample_ = utility;

    if (!converged_ && window_.size() == options_.window) {
        if (run_length_ >= options_.window) {
            // Uniform window: amplitude is exactly 0, mean has the sign of
            // the repeated sample, so 0/|mean| < threshold iff mean != 0.
            if (utility != 0.0) {
                converged_ = true;
                converged_at_ = samples_seen_;
            }
        } else {
            const auto [lo, hi] = std::minmax_element(window_.begin(), window_.end());
            double mean = 0.0;
            for (double s : window_) mean += s;
            mean /= static_cast<double>(window_.size());
            const double amplitude = *hi - *lo;
            if (mean != 0.0 && amplitude / std::abs(mean) < options_.relative_amplitude) {
                converged_ = true;
                converged_at_ = samples_seen_;
            }
        }
    }
    return converged_;
}

void ConvergenceDetector::reset() {
    window_.clear();
    samples_seen_ = 0;
    converged_ = false;
    converged_at_ = 0;
    last_sample_ = 0.0;
    run_length_ = 0;
}

}  // namespace lrgp::core
