// The complete two-stage optimization of Section 2.4: run LRGP on the
// fully-routed problem (stage one), prune the routes that delivered
// nothing, and run LRGP again on the pruned problem (stage two).  The
// pruned problem charges no F cost at consumer-less hops, so the freed
// capacity can raise rates or admit more consumers: stage-two utility is
// never worse than stage one's on workloads where pruning removes
// anything.
#pragma once

#include "lrgp/optimizer.hpp"
#include "lrgp/pruning.hpp"

namespace lrgp::core {

struct TwoStageResult {
    double stage_one_utility = 0.0;
    double stage_two_utility = 0.0;
    int stage_one_iterations = 0;
    int stage_two_iterations = 0;
    PruneReport prune;
    model::Allocation allocation;  ///< the stage-two allocation
};

struct TwoStageOptions {
    LrgpOptions lrgp;           ///< shared by both stages
    int max_iterations = 250;   ///< per stage
};

/// Runs stage one on `spec`, prunes, runs stage two, and returns both
/// utilities plus the final allocation (valid against the *pruned*
/// problem, which has the same entity ids as `spec`).
[[nodiscard]] TwoStageResult two_stage_optimize(const model::ProblemSpec& spec,
                                                const TwoStageOptions& options = {});

}  // namespace lrgp::core
