// Price state shared between LRGP's subproblems: one Lagrange-multiplier
// price per node and per link (Section 3).
#pragma once

#include <cstddef>
#include <vector>

namespace lrgp::core {

/// Node and link prices, indexed by NodeId / LinkId.
struct PriceVector {
    std::vector<double> node;
    std::vector<double> link;

    static PriceVector zeros(std::size_t node_count, std::size_t link_count) {
        PriceVector p;
        p.node.assign(node_count, 0.0);
        p.link.assign(link_count, 0.0);
        return p;
    }
};

}  // namespace lrgp::core
