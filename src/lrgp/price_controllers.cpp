#include "lrgp/price_controllers.hpp"

#include <algorithm>
#include <stdexcept>

namespace lrgp::core {

namespace {

void validateAdaptive(const AdaptiveGamma& g) {
    if (!(g.min > 0.0) || !(g.min <= g.max))
        throw std::invalid_argument("AdaptiveGamma: need 0 < min <= max");
    if (!(g.shrink > 0.0 && g.shrink < 1.0))
        throw std::invalid_argument("AdaptiveGamma: shrink must be in (0, 1)");
    if (g.increment < 0.0) throw std::invalid_argument("AdaptiveGamma: negative increment");
}

}  // namespace

NodePriceController::NodePriceController(GammaPolicy policy, double initial_price,
                                         NodePriceRule rule)
    : policy_(policy), price_(initial_price), rule_(rule), adaptive_gamma_(0.0) {
    if (initial_price < 0.0)
        throw std::invalid_argument("NodePriceController: negative initial price");
    if (const auto* adaptive = std::get_if<AdaptiveGamma>(&policy_)) {
        validateAdaptive(*adaptive);
        adaptive_gamma_ = std::clamp(adaptive->initial, adaptive->min, adaptive->max);
    } else {
        const auto& fixed = std::get<FixedGamma>(policy_);
        if (fixed.gamma1 < 0.0 || fixed.gamma2 < 0.0)
            throw std::invalid_argument("FixedGamma: negative stepsize");
    }
}

double NodePriceController::currentGamma() const noexcept {
    if (std::holds_alternative<AdaptiveGamma>(policy_)) return adaptive_gamma_;
    return std::get<FixedGamma>(policy_).gamma1;
}

double NodePriceController::update(std::optional<double> best_unmet_bc, double used,
                                   double capacity) {
    const double target_bc = best_unmet_bc.value_or(0.0);
    double gamma1, gamma2;
    if (const auto* adaptive = std::get_if<AdaptiveGamma>(&policy_)) {
        gamma1 = gamma2 = adaptive_gamma_;
        (void)adaptive;
    } else {
        const auto& fixed = std::get<FixedGamma>(policy_);
        gamma1 = fixed.gamma1;
        gamma2 = fixed.gamma2;
    }

    // Eq. 12: approach the best unmet benefit-cost ratio while feasible;
    // climb proportionally to the excess when the node is overloaded.
    // The gradient-only ablation ignores the benefit-cost signal and runs
    // a pure Eq. 13-style update instead.
    const double delta = (rule_ == NodePriceRule::kGradientOnly)
                             ? gamma2 * (used - capacity)
                             : ((used <= capacity) ? gamma1 * (target_bc - price_)
                                                   : gamma2 * (used - capacity));
    const double old_price = price_;
    price_ = std::max(0.0, price_ + delta);
    last_moved_ = price_ != old_price;

    // Adaptive heuristic (Section 4.2): a sign flip in the price movement
    // counts as a fluctuation and halves gamma; otherwise gamma creeps up.
    if (auto* adaptive = std::get_if<AdaptiveGamma>(&policy_)) {
        const bool fluctuating = has_last_delta_ && last_delta_ * delta < 0.0;
        if (fluctuating) adaptive_gamma_ *= adaptive->shrink;
        else adaptive_gamma_ += adaptive->increment;
        adaptive_gamma_ = std::clamp(adaptive_gamma_, adaptive->min, adaptive->max);
        last_delta_ = delta;
        has_last_delta_ = true;
    }
    return price_;
}

void NodePriceController::reset(double price) {
    if (price < 0.0) throw std::invalid_argument("NodePriceController: negative price");
    price_ = price;
    has_last_delta_ = false;
    last_delta_ = 0.0;
    last_moved_ = false;
    if (const auto* adaptive = std::get_if<AdaptiveGamma>(&policy_))
        adaptive_gamma_ = std::clamp(adaptive->initial, adaptive->min, adaptive->max);
}

LinkPriceController::LinkPriceController(double gamma, double initial_price)
    : gamma_(gamma), price_(initial_price) {
    if (gamma < 0.0) throw std::invalid_argument("LinkPriceController: negative gamma");
    if (initial_price < 0.0)
        throw std::invalid_argument("LinkPriceController: negative initial price");
}

double LinkPriceController::update(double usage, double capacity) {
    const double old_price = price_;
    price_ = std::max(0.0, price_ + gamma_ * (usage - capacity));
    last_moved_ = price_ != old_price;
    return price_;
}

}  // namespace lrgp::core
