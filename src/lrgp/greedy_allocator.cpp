#include "lrgp/greedy_allocator.hpp"

#include <algorithm>
#include <cmath>

namespace lrgp::core {

std::vector<BenefitCost> GreedyConsumerAllocator::benefitCosts(
    model::NodeId node, const std::vector<double>& rates) const {
    std::vector<BenefitCost> out;
    std::size_t slot = 0;
    for (model::ClassId j : spec_->classesAtNode(node)) {
        const std::size_t this_slot = slot++;
        const model::ClassSpec& c = spec_->consumerClass(j);
        if (!spec_->flowActive(c.flow) || c.max_consumers == 0) continue;
        const double rate = rates.at(c.flow.index());
        const double unit_cost = c.consumer_cost * rate;
        // A non-positive unit cost (zero rate) makes BC_j = U_j(0)/0 an
        // undefined 0/0: such classes are simply not allocatable this
        // iteration and must not poison the ranking or BC(b,t) with NaN.
        if (!(unit_cost > 0.0)) continue;
        out.push_back(BenefitCost{j, this_slot, c.utility->value(rate) / unit_cost, unit_cost});
    }
    std::sort(out.begin(), out.end(), BenefitCostOrder{});
    return out;
}

NodeAllocationResult GreedyConsumerAllocator::allocate(model::NodeId node,
                                                       const std::vector<double>& rates,
                                                       bool batched) const {
    NodeAllocationResult result;

    // Resource consumed by the flows themselves (F_{b,i} * r_i terms);
    // consumers compete for what remains.
    double base_usage = 0.0;
    for (model::FlowId i : spec_->flowsAtNode(node)) {
        if (!spec_->flowActive(i)) continue;
        base_usage += spec_->flowNodeCost(node, i) * rates.at(i.index());
    }
    const double capacity = spec_->node(node).capacity;
    double remaining = capacity - base_usage;

    // Start every class at zero; admitted counts fill in below.
    for (model::ClassId j : spec_->classesAtNode(node)) result.populations.emplace_back(j, 0);

    const std::vector<BenefitCost> ranked = benefitCosts(node, rates);
    int total_admitted = 0;
    for (const BenefitCost& bc : ranked) {
        const model::ClassSpec& c = spec_->consumerClass(bc.cls);
        int admitted = 0;
        if (remaining > 0.0) {
            // Clamp in double before narrowing: the quotient can exceed
            // int range when unit costs are tiny.
            admitted = static_cast<int>(std::min(std::floor(remaining / bc.unit_cost),
                                                 static_cast<double>(c.max_consumers)));
            if (!batched) {
                // The stepwise oracle admits the largest k with
                // remaining - k*unit_cost >= 0.  The floored quotient can
                // land one off that boundary when the division rounds the
                // other way than the multiplication; nudge to match.
                while (admitted > 0 && remaining - admitted * bc.unit_cost < 0.0) --admitted;
                while (admitted < c.max_consumers &&
                       remaining - (admitted + 1) * bc.unit_cost >= 0.0)
                    ++admitted;
            }
        }
        remaining -= admitted * bc.unit_cost;
        result.populations[bc.slot].second = admitted;
        total_admitted += admitted;
        // BC(b,t): first (highest) ratio whose class is not fully admitted.
        if (admitted < c.max_consumers && !result.best_unmet_bc)
            result.best_unmet_bc = bc.ratio;
    }

    result.used = capacity - remaining;
    if constexpr (obs::kEnabled) {
        if (instruments_) {
            instruments_->greedy_allocations->add(1);
            instruments_->greedy_candidates->add(ranked.size());
            instruments_->greedy_admitted->add(static_cast<std::uint64_t>(total_admitted));
        }
    }
    return result;
}

}  // namespace lrgp::core
