// Node and link price adjustment (Sections 3.3, 3.4).
//
// Node price (Eq. 12) moves toward the node's best unmet benefit-cost
// ratio while the node is within capacity, and rises proportionally to
// the excess when over capacity:
//     p(t+1) = p(t) + g1 (BC(b,t) - p(t))      if used <= c_b
//     p(t+1) = p(t) + g2 (used - c_b)          if used >  c_b
// The stepsizes can be fixed or adapted by the paper's heuristic
// (Section 4.2): grow gamma by 0.001 each quiet iteration, halve it when
// the price starts oscillating, clamp to [0.001, 0.1].
//
// Link price (Eq. 13) is the Low-Lapsley gradient projection:
//     p_l(t+1) = [p_l(t) + gamma_l (usage_l - c_l)]+
#pragma once

#include <optional>
#include <variant>
#include <vector>

namespace lrgp::core {

/// Fixed stepsizes for Eq. 12.  The paper uses gamma1 == gamma2 == gamma
/// in the evaluation (Figure 1: gamma in {1, 0.1, 0.01}).
struct FixedGamma {
    double gamma1 = 0.1;
    double gamma2 = 0.1;
};

/// The adaptive-gamma heuristic of Section 4.2.
struct AdaptiveGamma {
    double initial = 0.1;     ///< starting gamma (paper starts at the clamp's top)
    double increment = 0.001; ///< growth per non-fluctuating iteration
    double shrink = 0.5;      ///< multiplier applied when fluctuation is detected
    double min = 0.001;       ///< lower clamp (paper: [0.001, 0.1])
    double max = 0.1;         ///< upper clamp
};

using GammaPolicy = std::variant<FixedGamma, AdaptiveGamma>;

/// Which node-price update rule to run.  kBenefitCost is the paper's
/// Eq. 12 — the price chases the best *unmet* benefit-cost ratio, which
/// is what couples admission control to rate control (key idea #4).
/// kGradientOnly ablates that: the node behaves like a link and runs the
/// Low-Lapsley gradient projection p += gamma*(used - c), projected at 0.
/// Because the greedy allocator never overfills a node, a gradient-only
/// price collapses to zero and stops constraining rates — the ablation
/// benchmark shows the resulting utility loss.
enum class NodePriceRule { kBenefitCost, kGradientOnly };

/// Per-node price state machine implementing Eq. 12 plus adaptive gamma.
/// Prices are kept non-negative (they are Lagrange multiplier estimates).
class NodePriceController {
public:
    explicit NodePriceController(GammaPolicy policy = AdaptiveGamma{}, double initial_price = 0.0,
                                 NodePriceRule rule = NodePriceRule::kBenefitCost);

    /// Applies Eq. 12 given the allocation outcome at this node and
    /// returns the new price.  `best_unmet_bc` is nullopt when every
    /// class was fully admitted: the node has nothing left to sell, so
    /// the price decays toward zero (the update treats it as a zero
    /// target ratio).
    double update(std::optional<double> best_unmet_bc, double used, double capacity);

    [[nodiscard]] double price() const noexcept { return price_; }
    [[nodiscard]] double currentGamma() const noexcept;

    /// Whether the most recent update() changed the price bitwise.  The
    /// incremental engine seeds next iteration's dirty flows from this
    /// bit; a price that is exactly stationary (e.g. pinned at 0, or the
    /// update landed on the same double) dirties nothing.
    [[nodiscard]] bool lastMoved() const noexcept { return last_moved_; }

    /// Resets price (and adaptive state) — used when the workload changes
    /// abruptly and a controller restart is desired.
    void reset(double price = 0.0);

    /// The full mutable state of the controller (the gamma *policy* is
    /// construction-time configuration and is not part of it).  Exported
    /// for engine snapshots: restoreState() on a controller built with
    /// the same policy resumes the exact update trajectory bitwise.
    struct State {
        double price = 0.0;
        double adaptive_gamma = 0.0;
        double last_delta = 0.0;
        bool has_last_delta = false;
        bool last_moved = false;
    };

    [[nodiscard]] State state() const noexcept {
        return {price_, adaptive_gamma_, last_delta_, has_last_delta_, last_moved_};
    }

    void restoreState(const State& s) noexcept {
        price_ = s.price;
        adaptive_gamma_ = s.adaptive_gamma;
        last_delta_ = s.last_delta;
        has_last_delta_ = s.has_last_delta;
        last_moved_ = s.last_moved;
    }

private:
    GammaPolicy policy_;
    double price_;
    NodePriceRule rule_;
    // Adaptive state: gamma evolves with the observed price oscillation.
    double adaptive_gamma_;
    double last_delta_ = 0.0;
    bool has_last_delta_ = false;
    bool last_moved_ = false;
};

/// Per-link gradient-projection price (Eq. 13).
class LinkPriceController {
public:
    explicit LinkPriceController(double gamma, double initial_price = 0.0);

    /// p = [p + gamma (usage - capacity)]+; returns the new price.
    double update(double usage, double capacity);

    [[nodiscard]] double price() const noexcept { return price_; }

    /// Whether the most recent update() changed the price bitwise (see
    /// NodePriceController::lastMoved).
    [[nodiscard]] bool lastMoved() const noexcept { return last_moved_; }

    void reset(double price = 0.0) {
        price_ = price;
        last_moved_ = false;
    }

    /// Mutable state for engine snapshots (gamma is configuration).
    struct State {
        double price = 0.0;
        bool last_moved = false;
    };

    [[nodiscard]] State state() const noexcept { return {price_, last_moved_}; }

    void restoreState(const State& s) noexcept {
        price_ = s.price;
        last_moved_ = s.last_moved;
    }

private:
    double gamma_;
    double price_;
    bool last_moved_ = false;
};

}  // namespace lrgp::core
