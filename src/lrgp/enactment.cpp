#include "lrgp/enactment.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace lrgp::core {

EnactmentController::EnactmentController(EnactmentOptions options, EnactFn enact)
    : options_(options), enact_(std::move(enact)) {
    if (!enact_) throw std::invalid_argument("EnactmentController: null enact callback");
    if (options_.rate_deadband < 0.0 || options_.population_deadband < 0 ||
        options_.min_interval < 0.0)
        throw std::invalid_argument("EnactmentController: negative option");
}

bool EnactmentController::significantlyDifferent(const model::Allocation& allocation) const {
    if (!last_) return true;
    const model::Allocation& prev = *last_;
    if (prev.rates.size() != allocation.rates.size() ||
        prev.populations.size() != allocation.populations.size())
        return true;  // different problem shape: always re-enact
    for (std::size_t i = 0; i < allocation.rates.size(); ++i) {
        const double old_rate = prev.rates[i];
        const double base = std::max(std::abs(old_rate), 1e-12);
        if (std::abs(allocation.rates[i] - old_rate) / base > options_.rate_deadband)
            return true;
    }
    for (std::size_t j = 0; j < allocation.populations.size(); ++j) {
        if (std::abs(allocation.populations[j] - prev.populations[j]) >
            options_.population_deadband)
            return true;
    }
    return false;
}

bool EnactmentController::offer(double now, const model::Allocation& allocation) {
    ++offers_;
    const bool periodic = last_ && (now - last_time_ >= options_.min_interval);
    if (last_ && !periodic && !significantlyDifferent(allocation)) return false;
    enact_(allocation);
    last_ = allocation;
    last_time_ = now;
    ++enactments_;
    return true;
}

}  // namespace lrgp::core
