#include "lrgp/two_stage.hpp"

namespace lrgp::core {

TwoStageResult two_stage_optimize(const model::ProblemSpec& spec,
                                  const TwoStageOptions& options) {
    TwoStageResult result;

    LrgpOptimizer stage_one(spec, options.lrgp);
    const auto one_converged = stage_one.runUntilConverged(options.max_iterations);
    result.stage_one_iterations = one_converged.value_or(options.max_iterations);
    result.stage_one_utility = stage_one.currentUtility();

    const model::ProblemSpec pruned =
        prune_problem(spec, stage_one.allocation(), &result.prune);

    LrgpOptimizer stage_two(pruned, options.lrgp);
    const auto two_converged = stage_two.runUntilConverged(options.max_iterations);
    result.stage_two_iterations = two_converged.value_or(options.max_iterations);
    result.stage_two_utility = stage_two.currentUtility();
    result.allocation = stage_two.allocation();
    return result;
}

}  // namespace lrgp::core
