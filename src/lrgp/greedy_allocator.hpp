// LRGP greedy consumer allocation (Section 3.2) and the node
// benefit-cost ratio BC(b,t) (Eq. 11) it yields for node pricing.
//
// With rates fixed, each consumer-hosting node admits consumers in
// decreasing order of benefit-cost ratio BC_j = U_j(r_i) / (G_{b,j} r_i)
// (Eq. 10): the utility gained per unit of node resource spent when n_j
// grows by one.  Admission stops at the node capacity.  If the flow-node
// costs F alone exceed the capacity, no consumer is admitted.
#pragma once

#include <optional>
#include <vector>

#include "model/problem.hpp"
#include "obs/instruments.hpp"

namespace lrgp::core {

/// A class's benefit-cost ratio at the current rates.
struct BenefitCost {
    model::ClassId cls;
    std::size_t slot = 0;    ///< position of cls in classesAtNode(node)
    double ratio = 0.0;      ///< BC_j (Eq. 10)
    double unit_cost = 0.0;  ///< G_{b,j} * r_i, resource per admitted consumer
};

/// Strict weak ordering shared by every benefit-cost ranking: descending
/// ratio (Eq. 10), ties broken by ascending class id for determinism.
/// The serial allocator, the compiled node phase, and the incremental
/// engine's cached rankings all sort with this one definition, so a
/// ranking cached across iterations is ordered exactly like a fresh one.
struct BenefitCostOrder {
    template <class Cand>
    [[nodiscard]] bool operator()(const Cand& a, const Cand& b) const {
        if (a.ratio != b.ratio) return a.ratio > b.ratio;
        return a.cls < b.cls;
    }
};

/// Result of one node's consumer allocation.
struct NodeAllocationResult {
    /// (class, n_j) for every class attached at the node, admitted or not,
    /// in classesAtNode order.
    std::vector<std::pair<model::ClassId, int>> populations;
    /// used_b(t): node resource consumed after allocation (F terms + admitted consumers).
    double used = 0.0;
    /// BC(b,t): the best benefit-cost ratio among classes still below
    /// n^max (Eq. 11); nullopt when every allocatable class is fully
    /// admitted (a legitimate zero ratio stays distinguishable).
    std::optional<double> best_unmet_bc;
};

/// Stateless greedy allocator; holds a reference to the problem.
class GreedyConsumerAllocator {
public:
    explicit GreedyConsumerAllocator(const model::ProblemSpec& spec) : spec_(&spec) {}

    /// Benefit-cost ratios of the allocatable classes at `node`, sorted
    /// descending (ties broken by class id for determinism).  Classes of
    /// inactive flows, classes with n^max = 0, and classes whose unit
    /// cost G_{b,j} * r_i is not positive (a zero rate) are omitted —
    /// a zero-rate flow delivers nothing, so its classes are not
    /// allocatable and their undefined 0/0 ratio never enters the
    /// ranking or BC(b,t).
    [[nodiscard]] std::vector<BenefitCost> benefitCosts(model::NodeId node,
                                                        const std::vector<double>& rates) const;

    /// Runs the greedy allocation at `node` for the given flow rates.
    /// `batched` admits whole blocks floor(remaining/unit_cost) at once;
    /// the unbatched variant admits one consumer at a time (identical
    /// result; kept for the ablation micro-benchmark and as an oracle in
    /// tests).
    [[nodiscard]] NodeAllocationResult allocate(model::NodeId node,
                                                const std::vector<double>& rates,
                                                bool batched = true) const;

    /// Optional observability counters (owned by the caller's Registry);
    /// nullptr (the default) keeps allocate() uninstrumented.
    void setInstruments(const obs::AllocatorInstruments* instruments) noexcept {
        instruments_ = instruments;
    }

private:
    const model::ProblemSpec* spec_;
    const obs::AllocatorInstruments* instruments_ = nullptr;
};

}  // namespace lrgp::core
