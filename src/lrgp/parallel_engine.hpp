// Compiled + parallel LRGP iteration engine.
//
// A drop-in alternative to LrgpOptimizer that runs the same three-phase
// iteration over the CompiledProblem flat arrays, with each phase fanned
// out across a reusable TaskPool:
//
//   phase 1  rates        one task slice per flow   (Algorithm 1)
//   phase 2  populations  one task slice per node   (Algorithm 2 + Eq. 12)
//   phase 3  link prices  one task slice per link   (Eq. 13)
//
// The phases are embarrassingly parallel within themselves — rates read
// only last iteration's populations and prices, node allocations touch
// disjoint class sets (a class attaches to exactly one node), and link
// prices touch disjoint links — so the only synchronization is the
// fork-join barrier between phases.
//
// Determinism contract: the engine produces *bitwise-identical* utility,
// rate, population and price trajectories to LrgpOptimizer on the same
// problem, for any thread count.  Every floating-point reduction either
// happens privately per entity (in the serial optimizer's accumulation
// order over the CSR spans) or serially in entity-id order (the Eq. 1
// utility sum).  Scratch buffers (benefit-cost ranking, Eq. 7 terms,
// per-class utility terms) are preallocated once and reused, so the
// steady-state iteration performs no heap allocation beyond the
// IterationRecord snapshot that mirrors the serial optimizer's API.
//
// Incremental mode (EngineConfig::incremental) adds dirty-set tracking
// on top, skipping work whose inputs are bitwise-unchanged since the
// last iteration:
//
//   * a flow re-solves Eq. 7 only if one of its own populations, a node
//     price on its route, or a link price on its route moved;
//   * a node re-runs greedy admission only if an incident flow's rate
//     moved (or a dynamic op touched it); a capacity-only change reuses
//     the node's cached benefit-cost ordering and just re-admits;
//   * a link re-sums usage only if an incident flow's rate moved;
//   * the Eq. 1 utility sum is reused when no node re-ran.
//
// Price controllers are stateful (adaptive gamma), so their updates
// always run — fed from cached (BC(b,t), used_b) and usage values when
// the producing phase was skipped — and publish per-entity "moved" bits
// that seed the next iteration's dirty flows.  Skipping is a pure
// evaluation-order optimization: every skipped computation is a
// deterministic function of inputs that are bitwise-unchanged, so the
// trajectory stays bitwise-identical to the serial optimizer (see
// docs/algorithm.md for the invalidation rules and the full argument).
// Dynamic workload changes widen the dirty sets conservatively.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lrgp/compiled_problem.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/snapshot.hpp"
#include "lrgp/task_pool.hpp"

namespace lrgp::core {

/// Engine-only knobs; LrgpOptions keeps its serial-optimizer semantics.
struct EngineConfig {
    /// Worker threads including the caller; 1 = compiled but serial,
    /// 0 = std::thread::hardware_concurrency().
    int threads = 1;
    /// Accumulate per-phase wall time (a few steady_clock reads per
    /// iteration; off by default to keep the hot path undisturbed).
    bool collect_phase_times = false;
    /// Track dirty sets across iterations and skip rate solves, greedy
    /// admissions, link sums and the utility reduction whose inputs are
    /// bitwise-unchanged.  Results stay bitwise-identical to the serial
    /// optimizer; only the evaluation order changes.
    bool incremental = false;
};

/// Cumulative per-phase wall time in nanoseconds (collect_phase_times).
struct PhaseTimes {
    std::uint64_t rate_ns = 0;    ///< phase 1: per-flow rate subproblems
    std::uint64_t node_ns = 0;    ///< phase 2: greedy allocation + node prices
    std::uint64_t link_ns = 0;    ///< phase 3: link usage + prices
    std::uint64_t reduce_ns = 0;  ///< serial epilogue: utility sum + record
    std::uint64_t iterations = 0;
};

/// Cumulative dirty-set bookkeeping of incremental mode, maintained
/// whether or not observability is attached (the lrgp_inc_* counters
/// mirror these when it is).  All counts are totals since construction.
struct IncrementalStats {
    std::uint64_t dirty_flows = 0;         ///< rate solves re-run
    std::uint64_t skipped_solves = 0;      ///< active flows skipped in phase 1
    std::uint64_t dirty_nodes = 0;         ///< nodes that re-ran admission
    std::uint64_t node_cache_hits = 0;     ///< nodes fully skipped
    std::uint64_t rank_cache_hits = 0;     ///< re-admissions reusing the cached ranking
    std::uint64_t dirty_links = 0;         ///< link usage sums recomputed
    std::uint64_t utility_cache_hits = 0;  ///< iterations reusing the cached Eq. 1 sum
};

class ParallelLrgpEngine : public Engine {
public:
    explicit ParallelLrgpEngine(model::ProblemSpec spec, LrgpOptions options = {},
                                EngineConfig config = {});
    ~ParallelLrgpEngine() override;

    [[nodiscard]] const char* name() const noexcept override;

    /// Runs one LRGP iteration and returns its record.
    const IterationRecord& step() override;

    /// Runs exactly `iterations` iterations; returns the final record.
    const IterationRecord& run(int iterations) override;

    /// Runs until the convergence criterion fires or `max_iterations` is
    /// reached.  Returns the 1-based iteration of convergence, or nullopt.
    std::optional<int> runUntilConverged(int max_iterations) override;

    // -- dynamic workload changes (same contracts as LrgpOptimizer) ------
    void removeFlow(model::FlowId flow) override;
    void restoreFlow(model::FlowId flow) override;
    void setNodeCapacity(model::NodeId node, double capacity) override;
    void setLinkCapacity(model::LinkId link, double capacity) override;
    void setClassMaxConsumers(model::ClassId cls, int max_consumers) override;
    void warmStart(const PriceVector& prices,
                   const std::vector<int>* populations = nullptr) override;

    // -- observability ----------------------------------------------------

    /// Same contract as LrgpOptimizer::attachObservability, plus TaskPool
    /// fan-out counters.  Metric mutation from worker threads uses relaxed
    /// atomics, so attaching does not perturb the determinism contract.
    void attachObservability(obs::Registry* registry,
                             obs::IterationTracer* tracer = nullptr) override;

    // -- observers --------------------------------------------------------
    [[nodiscard]] const model::ProblemSpec& problem() const noexcept override { return spec_; }
    [[nodiscard]] const model::Allocation& allocation() const noexcept override {
        return allocation_;
    }
    [[nodiscard]] const PriceVector& prices() const noexcept override { return prices_; }
    [[nodiscard]] double currentUtility() const override;
    [[nodiscard]] int iterationsRun() const noexcept override { return iteration_; }
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept override {
        return trace_;
    }
    [[nodiscard]] const ConvergenceDetector& convergence() const noexcept override {
        return detector_;
    }
    [[nodiscard]] double nodeGamma(model::NodeId node) const override;
    [[nodiscard]] int threadCount() const noexcept;
    [[nodiscard]] const PhaseTimes& phaseTimes() const noexcept { return phase_times_; }

    /// Zeroes the accumulated phase times; benchmarks call this after a
    /// warmup run to time the converged tail in isolation.
    void resetPhaseTimes() noexcept { phase_times_ = {}; }

    [[nodiscard]] const CompiledProblem& compiled() const noexcept { return compiled_; }

    /// Whether dirty-set tracking is on (EngineConfig::incremental).
    [[nodiscard]] bool incremental() const noexcept;

    /// Cumulative dirty-set counts; all-zero when incremental() is false.
    [[nodiscard]] IncrementalStats incrementalStats() const noexcept;

    // -- warm-state snapshots (crash recovery) ---------------------------

    /// Captures the engine's warm state (allocation, prices, controller
    /// and detector state, dynamic spec state).  See lrgp/snapshot.hpp.
    [[nodiscard]] EngineSnapshot snapshot() const;

    /// Restores a snapshot taken from an engine over the same problem
    /// shape (same entity counts; options must match for bitwise resume).
    /// After restore() the engine continues the snapshotted trajectory
    /// bitwise-identically to an uninterrupted run: the first iteration
    /// is a full one (everything is marked dirty), but every recomputed
    /// value equals the one the caches held.  The utility trace is NOT
    /// restored — it restarts from the restore point.  Throws
    /// std::invalid_argument on a shape mismatch.
    void restore(const EngineSnapshot& snapshot);

private:
    struct Cand;
    struct NodeScratch;
    struct IncrementalState;

    /// Outcome of one node's greedy admission, fed to Eq. 12.
    struct AdmitResult {
        double used = 0.0;
        std::optional<double> best_unmet_bc;
    };

    /// F_{b,i} * r_i usage of the active flows at node b.
    [[nodiscard]] double nodeBaseUsage(std::size_t b) const;
    /// Zeroes the node's populations/utility terms and writes the sorted
    /// benefit-cost candidates to `out`; returns the candidate count.
    std::uint32_t buildNodeCands(std::size_t b, Cand* out);
    /// Runs the batched greedy admission over an already-sorted candidate
    /// range, writing populations and Eq. 1 terms.
    void admitNode(const Cand* cands, std::uint32_t count, double capacity, double base_usage,
                   AdmitResult& result);

    void ratePhase(std::size_t begin, std::size_t end);
    void ratePhaseInc(std::size_t begin, std::size_t end);
    void nodePhase(std::size_t begin, std::size_t end, NodeScratch& scratch);
    void nodePhaseInc(std::size_t begin, std::size_t end, NodeScratch& scratch);
    void linkPhase(std::size_t begin, std::size_t end);
    void linkPhaseInc(std::size_t begin, std::size_t end);
    void solveFlow(std::size_t f);
    /// Seeds flow_dirty from last iteration's pop/price moved bits.
    void seedDirtyFlows();
    /// Turns phase-1 rate moves into node/link dirty bits.
    void propagateRateMoves();
    /// Conservative widening for dynamic ops touching `flow`.
    void dirtyFlowCascade(model::FlowId flow);
    /// warmStart widening: every flow, node and link is dirty.
    void markAllDirty();
    void noteConvergenceReset();

    model::ProblemSpec spec_;
    LrgpOptions options_;
    CompiledProblem compiled_;
    std::unique_ptr<TaskPool> pool_;
    bool collect_phase_times_ = false;

    // Observability (all null until attachObservability).
    obs::SolverInstruments instr_;
    obs::AllocatorInstruments alloc_instr_;
    obs::PoolInstruments pool_instr_;
    obs::IncrementalInstruments inc_instr_;
    bool obs_attached_ = false;
    obs::IterationTracer* tracer_ = nullptr;

    std::vector<NodePriceController> node_prices_;
    std::vector<LinkPriceController> link_prices_;

    model::Allocation allocation_;
    PriceVector prices_;
    int iteration_ = 0;
    IterationRecord last_record_;
    metrics::TimeSeries trace_;
    ConvergenceDetector detector_;
    PhaseTimes phase_times_;

    // -- preallocated scratch, reused every iteration ---------------------
    /// Eq. 7 terms per flow; utilities bound at compile time, only the
    /// populations are rewritten (generic-solver path).
    std::vector<std::vector<utility::WeightedUtility>> flow_terms_;
    /// Per-flow transcendental of the fresh rate: log1p(r), r^k or
    /// log1p(r/s) depending on the flow's family; fuels the per-class
    /// U_j(r) evaluations in phase 2 at one libm call per flow.
    std::vector<double> flow_value_trans_;
    /// Per-class n_j * U_j(r_i) term of Eq. 1, written in phase 2 and
    /// summed serially in class order afterwards.
    std::vector<double> class_utility_term_;
    /// Per-worker greedy ranking buffers.
    std::vector<std::unique_ptr<NodeScratch>> node_scratch_;
    /// Dirty bits, cached node rankings/outputs, cached link usage and
    /// the cached utility sum; null unless EngineConfig::incremental.
    std::unique_ptr<IncrementalState> inc_;
};

}  // namespace lrgp::core
