// Compiled + parallel LRGP iteration engine.
//
// A drop-in alternative to LrgpOptimizer that runs the same three-phase
// iteration over the CompiledProblem flat arrays, with each phase fanned
// out across a reusable TaskPool:
//
//   phase 1  rates        one task slice per flow   (Algorithm 1)
//   phase 2  populations  one task slice per node   (Algorithm 2 + Eq. 12)
//   phase 3  link prices  one task slice per link   (Eq. 13)
//
// The phases are embarrassingly parallel within themselves — rates read
// only last iteration's populations and prices, node allocations touch
// disjoint class sets (a class attaches to exactly one node), and link
// prices touch disjoint links — so the only synchronization is the
// fork-join barrier between phases.
//
// Determinism contract: the engine produces *bitwise-identical* utility,
// rate, population and price trajectories to LrgpOptimizer on the same
// problem, for any thread count.  Every floating-point reduction either
// happens privately per entity (in the serial optimizer's accumulation
// order over the CSR spans) or serially in entity-id order (the Eq. 1
// utility sum).  Scratch buffers (benefit-cost ranking, Eq. 7 terms,
// per-class utility terms) are preallocated once and reused, so the
// steady-state iteration performs no heap allocation beyond the
// IterationRecord snapshot that mirrors the serial optimizer's API.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lrgp/compiled_problem.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/task_pool.hpp"

namespace lrgp::core {

/// Engine-only knobs; LrgpOptions keeps its serial-optimizer semantics.
struct EngineConfig {
    /// Worker threads including the caller; 1 = compiled but serial,
    /// 0 = std::thread::hardware_concurrency().
    int threads = 1;
    /// Accumulate per-phase wall time (a few steady_clock reads per
    /// iteration; off by default to keep the hot path undisturbed).
    bool collect_phase_times = false;
};

/// Cumulative per-phase wall time in nanoseconds (collect_phase_times).
struct PhaseTimes {
    std::uint64_t rate_ns = 0;    ///< phase 1: per-flow rate subproblems
    std::uint64_t node_ns = 0;    ///< phase 2: greedy allocation + node prices
    std::uint64_t link_ns = 0;    ///< phase 3: link usage + prices
    std::uint64_t reduce_ns = 0;  ///< serial epilogue: utility sum + record
    std::uint64_t iterations = 0;
};

class ParallelLrgpEngine {
public:
    explicit ParallelLrgpEngine(model::ProblemSpec spec, LrgpOptions options = {},
                                EngineConfig config = {});
    ~ParallelLrgpEngine();

    ParallelLrgpEngine(const ParallelLrgpEngine&) = delete;
    ParallelLrgpEngine& operator=(const ParallelLrgpEngine&) = delete;

    /// Runs one LRGP iteration and returns its record.
    const IterationRecord& step();

    /// Runs exactly `iterations` iterations; returns the final record.
    const IterationRecord& run(int iterations);

    /// Runs until the convergence criterion fires or `max_iterations` is
    /// reached.  Returns the 1-based iteration of convergence, or nullopt.
    std::optional<int> runUntilConverged(int max_iterations);

    // -- dynamic workload changes (same contracts as LrgpOptimizer) ------
    void removeFlow(model::FlowId flow);
    void restoreFlow(model::FlowId flow);
    void setNodeCapacity(model::NodeId node, double capacity);
    void setClassMaxConsumers(model::ClassId cls, int max_consumers);
    void warmStart(const PriceVector& prices, const std::vector<int>* populations = nullptr);

    // -- observability ----------------------------------------------------

    /// Same contract as LrgpOptimizer::attachObservability, plus TaskPool
    /// fan-out counters.  Metric mutation from worker threads uses relaxed
    /// atomics, so attaching does not perturb the determinism contract.
    void attachObservability(obs::Registry* registry, obs::IterationTracer* tracer = nullptr);

    // -- observers --------------------------------------------------------
    [[nodiscard]] const model::ProblemSpec& problem() const noexcept { return spec_; }
    [[nodiscard]] const model::Allocation& allocation() const noexcept { return allocation_; }
    [[nodiscard]] const PriceVector& prices() const noexcept { return prices_; }
    [[nodiscard]] double currentUtility() const;
    [[nodiscard]] int iterationsRun() const noexcept { return iteration_; }
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept { return trace_; }
    [[nodiscard]] const ConvergenceDetector& convergence() const noexcept { return detector_; }
    [[nodiscard]] double nodeGamma(model::NodeId node) const;
    [[nodiscard]] int threadCount() const noexcept;
    [[nodiscard]] const PhaseTimes& phaseTimes() const noexcept { return phase_times_; }
    [[nodiscard]] const CompiledProblem& compiled() const noexcept { return compiled_; }

private:
    struct NodeScratch;

    void ratePhase(std::size_t begin, std::size_t end);
    void nodePhase(std::size_t begin, std::size_t end, NodeScratch& scratch);
    void linkPhase(std::size_t begin, std::size_t end);
    void solveFlow(std::size_t f);
    void noteConvergenceReset();

    model::ProblemSpec spec_;
    LrgpOptions options_;
    CompiledProblem compiled_;
    std::unique_ptr<TaskPool> pool_;
    bool collect_phase_times_ = false;

    // Observability (all null until attachObservability).
    obs::SolverInstruments instr_;
    obs::AllocatorInstruments alloc_instr_;
    obs::PoolInstruments pool_instr_;
    bool obs_attached_ = false;
    obs::IterationTracer* tracer_ = nullptr;

    std::vector<NodePriceController> node_prices_;
    std::vector<LinkPriceController> link_prices_;

    model::Allocation allocation_;
    PriceVector prices_;
    int iteration_ = 0;
    IterationRecord last_record_;
    metrics::TimeSeries trace_;
    ConvergenceDetector detector_;
    PhaseTimes phase_times_;

    // -- preallocated scratch, reused every iteration ---------------------
    /// Eq. 7 terms per flow; utilities bound at compile time, only the
    /// populations are rewritten (generic-solver path).
    std::vector<std::vector<utility::WeightedUtility>> flow_terms_;
    /// Per-flow transcendental of the fresh rate: log1p(r), r^k or
    /// log1p(r/s) depending on the flow's family; fuels the per-class
    /// U_j(r) evaluations in phase 2 at one libm call per flow.
    std::vector<double> flow_value_trans_;
    /// Per-class n_j * U_j(r_i) term of Eq. 1, written in phase 2 and
    /// summed serially in class order afterwards.
    std::vector<double> class_utility_term_;
    /// Per-worker greedy ranking buffers.
    std::vector<std::unique_ptr<NodeScratch>> node_scratch_;
};

}  // namespace lrgp::core
