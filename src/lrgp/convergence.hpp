// Convergence detection per Section 4.3: "convergence has occurred when
// the amplitude of the oscillations in utility becomes less than 0.1% of
// the value of the utility."  We measure the peak-to-peak amplitude of a
// trailing window of utility samples relative to the window mean.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace lrgp::core {

struct ConvergenceOptions {
    std::size_t window = 10;            ///< trailing samples examined
    double relative_amplitude = 1e-3;   ///< 0.1% of the utility value
};

/// Feed one utility sample per iteration; `converged()` becomes true when
/// the trailing window's relative amplitude drops below the threshold.
///
/// A trailing run of bitwise-equal samples (the common shape once the
/// incremental engine reaches a floating-point fixpoint) is detected in
/// O(1): the peak-to-peak amplitude of a uniform window is exactly zero,
/// so the window scan reduces to a nonzero check on the repeated value.
/// The fast path is outcome-identical to the full scan — converged() and
/// convergedAt() fire on the same sample either way.
class ConvergenceDetector {
public:
    explicit ConvergenceDetector(ConvergenceOptions options = {});

    /// Records a sample; returns converged().
    bool addSample(double utility);

    /// Length of the trailing run of samples bitwise-equal to the latest
    /// one (0 before the first sample).  Exposed so engines can report
    /// quiescence without re-scanning their own state.
    [[nodiscard]] std::size_t uniformRunLength() const noexcept { return run_length_; }

    [[nodiscard]] bool converged() const noexcept { return converged_; }

    /// Iteration (1-based sample count) at which convergence was first
    /// observed; 0 if not yet converged.
    [[nodiscard]] std::size_t convergedAt() const noexcept { return converged_at_; }

    void reset();

    /// The full mutable state of the detector (options are construction-
    /// time configuration).  Exported for engine snapshots: restoring it
    /// on a detector built with the same options makes converged() /
    /// convergedAt() fire on the same future sample as an uninterrupted
    /// run.
    struct State {
        std::vector<double> window;  ///< oldest first
        std::size_t samples_seen = 0;
        bool converged = false;
        std::size_t converged_at = 0;
        double last_sample = 0.0;
        std::size_t run_length = 0;
    };

    [[nodiscard]] State state() const {
        return {{window_.begin(), window_.end()}, samples_seen_, converged_,
                converged_at_,                    last_sample_,  run_length_};
    }

    void restoreState(const State& s) {
        window_.assign(s.window.begin(), s.window.end());
        samples_seen_ = s.samples_seen;
        converged_ = s.converged;
        converged_at_ = s.converged_at;
        last_sample_ = s.last_sample;
        run_length_ = s.run_length;
    }

private:
    ConvergenceOptions options_;
    std::deque<double> window_;
    std::size_t samples_seen_ = 0;
    bool converged_ = false;
    std::size_t converged_at_ = 0;
    // Trailing-uniform-run tracking for the O(1) fast path.
    double last_sample_ = 0.0;
    std::size_t run_length_ = 0;
};

}  // namespace lrgp::core
