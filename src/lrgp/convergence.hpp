// Convergence detection per Section 4.3: "convergence has occurred when
// the amplitude of the oscillations in utility becomes less than 0.1% of
// the value of the utility."  We measure the peak-to-peak amplitude of a
// trailing window of utility samples relative to the window mean.
#pragma once

#include <cstddef>
#include <deque>

namespace lrgp::core {

struct ConvergenceOptions {
    std::size_t window = 10;            ///< trailing samples examined
    double relative_amplitude = 1e-3;   ///< 0.1% of the utility value
};

/// Feed one utility sample per iteration; `converged()` becomes true when
/// the trailing window's relative amplitude drops below the threshold.
class ConvergenceDetector {
public:
    explicit ConvergenceDetector(ConvergenceOptions options = {});

    /// Records a sample; returns converged().
    bool addSample(double utility);

    [[nodiscard]] bool converged() const noexcept { return converged_; }

    /// Iteration (1-based sample count) at which convergence was first
    /// observed; 0 if not yet converged.
    [[nodiscard]] std::size_t convergedAt() const noexcept { return converged_at_; }

    void reset();

private:
    ConvergenceOptions options_;
    std::deque<double> window_;
    std::size_t samples_seen_ = 0;
    bool converged_ = false;
    std::size_t converged_at_ = 0;
};

}  // namespace lrgp::core
