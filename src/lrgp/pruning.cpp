#include "lrgp/pruning.hpp"

#include <stdexcept>

namespace lrgp::core {

model::ProblemSpec prune_problem(const model::ProblemSpec& spec,
                                 const model::Allocation& allocation, PruneReport* report) {
    if (allocation.rates.size() != spec.flowCount() ||
        allocation.populations.size() != spec.classCount())
        throw std::invalid_argument("prune_problem: allocation sized for a different problem");

    PruneReport local;
    model::ProblemBuilder builder;

    for (const model::NodeSpec& n : spec.nodes()) {
        const model::NodeId id = builder.addNode(n.name, n.capacity);
        (void)id;  // ids are dense and preserved by construction
    }
    for (const model::LinkSpec& l : spec.links())
        (void)builder.addLink(l.name, l.from, l.to, l.capacity);

    // A (flow, node) route survives when any class of the flow there got
    // at least one consumer.  Surviving-but-empty routes keep the hop
    // with its coefficient zeroed — the paper's formulation ("setting
    // certain coefficients F to 0") — so classes stay on the route and
    // the problem remains well-formed.
    std::vector<bool> flow_has_consumers(spec.flowCount(), false);
    // survived[(flow, node)] — whether the hop keeps its coefficient.
    std::vector<std::vector<bool>> survived(spec.flowCount());

    for (const model::FlowSpec& f : spec.flows()) {
        const model::FlowId id = builder.addFlow(f.name, f.source, f.rate_min, f.rate_max);
        survived[f.id.index()].resize(f.nodes.size());
        for (std::size_t h = 0; h < f.nodes.size(); ++h) {
            const model::FlowNodeHop& hop = f.nodes[h];
            bool consumed = false;
            for (model::ClassId j : spec.classesOfFlow(f.id)) {
                const model::ClassSpec& c = spec.consumerClass(j);
                if (c.node == hop.node && allocation.populations[j.index()] > 0) consumed = true;
            }
            survived[f.id.index()][h] = consumed;
            if (consumed) {
                builder.routeThroughNode(id, hop.node, hop.flow_node_cost);
                flow_has_consumers[f.id.index()] = true;
            } else {
                builder.routeThroughNode(id, hop.node, 0.0);
                ++local.routes_removed;
            }
        }
    }
    // Link hops: without full path topology we can only attribute a
    // flow's links in bulk — a flow that no longer delivers to any node
    // stops consuming its links entirely.
    for (const model::FlowSpec& f : spec.flows()) {
        for (const model::FlowLinkHop& hop : f.links) {
            if (flow_has_consumers[f.id.index()]) {
                builder.routeOverLink(f.id, hop.link, hop.link_cost);
            } else {
                ++local.links_removed;
            }
        }
    }

    // Classes stay admissible iff their (flow, node) hop survived: the
    // stage-two re-solve may re-admit a class that happened to get zero
    // consumers in stage one, as long as the flow still reaches its node.
    for (const model::ClassSpec& c : spec.classes()) {
        const model::FlowSpec& f = spec.flow(c.flow);
        bool hop_survived = false;
        for (std::size_t h = 0; h < f.nodes.size(); ++h)
            if (f.nodes[h].node == c.node && survived[c.flow.index()][h]) hop_survived = true;
        if (!hop_survived && c.max_consumers > 0) ++local.classes_deactivated;
        builder.addClass(c.name, c.flow, c.node, hop_survived ? c.max_consumers : 0,
                         c.consumer_cost, c.utility);
    }

    model::ProblemSpec pruned = builder.build();
    for (const model::FlowSpec& f : spec.flows())
        if (!f.active) pruned.setFlowActive(f.id, false);

    if (report != nullptr) *report = local;
    return pruned;
}

}  // namespace lrgp::core
