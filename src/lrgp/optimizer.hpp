// The synchronous LRGP iteration driver (Section 3).
//
// One iteration performs, in order:
//   1. rate allocation at every active flow source (Algorithm 1), using
//      the populations and prices published by the previous iteration;
//   2. greedy consumer allocation at every consumer-hosting node
//      (Algorithm 2, steps 1-2) with the fresh rates;
//   3. node price update (Algorithm 2, step 3 / Eq. 12);
//   4. link price update (Algorithm 3 / Eq. 13).
// The per-iteration utility trace drives the convergence criterion and
// the paper's figures.  Dynamic workload changes (a flow source leaving,
// Figure 3) are supported between iterations.
#pragma once

#include <optional>
#include <vector>

#include "lrgp/convergence.hpp"
#include "lrgp/engine.hpp"
#include "lrgp/greedy_allocator.hpp"
#include "lrgp/price_controllers.hpp"
#include "lrgp/prices.hpp"
#include "lrgp/rate_allocator.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "obs/instruments.hpp"

namespace lrgp::core {

/// Drives LRGP on a ProblemSpec.  Owns a copy of the problem so dynamic
/// changes (removeFlow, setNodeCapacity) stay local to this optimizer.
/// (LrgpOptions and IterationRecord live in lrgp/engine.hpp.)
class LrgpOptimizer : public Engine {
public:
    explicit LrgpOptimizer(model::ProblemSpec spec, LrgpOptions options = {});

    [[nodiscard]] const char* name() const noexcept override { return "serial"; }

    /// Runs one LRGP iteration and returns its record.
    const IterationRecord& step() override;

    /// Runs exactly `iterations` iterations; returns the final record.
    const IterationRecord& run(int iterations) override;

    /// Runs until the convergence criterion fires or `max_iterations` is
    /// reached.  Returns the 1-based iteration of convergence, or nullopt.
    std::optional<int> runUntilConverged(int max_iterations) override;

    // -- dynamic workload changes (applied before the next iteration) ----

    /// Models the flow's source leaving the system: the flow stops
    /// consuming resources and its classes are evicted.
    void removeFlow(model::FlowId flow) override;

    /// Brings a removed flow back (resumes at r_min, zero consumers).
    void restoreFlow(model::FlowId flow) override;

    void setNodeCapacity(model::NodeId node, double capacity) override;

    /// Shrinks/expands a link budget (Eq. 13's c_l).  The usage side of
    /// the price update is rate-derived, so only the controller target
    /// changes; the convergence detector restarts.
    void setLinkCapacity(model::LinkId link, double capacity) override;

    /// Consumers arriving at / leaving a class (changes n^max).  Takes
    /// effect on the next iteration; the convergence detector restarts.
    void setClassMaxConsumers(model::ClassId cls, int max_consumers) override;

    /// Warm start: seeds prices (and optionally populations) from a
    /// previous run so re-optimization after a small workload change
    /// starts near the old equilibrium instead of from scratch.  Sizes
    /// must match this problem; throws std::invalid_argument otherwise.
    void warmStart(const PriceVector& prices,
                   const std::vector<int>* populations = nullptr) override;

    // -- observability ----------------------------------------------------

    /// Attaches a metrics registry (and optionally a tracer) to this
    /// optimizer: iteration/phase timings, rate-solve and admission
    /// counters, price-move counts and the utility gauge are recorded on
    /// every subsequent step().  Pass nullptrs to detach.  A no-op in
    /// builds without LRGP_OBS (metric names in docs/observability.md).
    void attachObservability(obs::Registry* registry,
                             obs::IterationTracer* tracer = nullptr) override;

    // -- observers --------------------------------------------------------

    [[nodiscard]] const model::ProblemSpec& problem() const noexcept override { return spec_; }
    [[nodiscard]] const model::Allocation& allocation() const noexcept override {
        return allocation_;
    }
    [[nodiscard]] const PriceVector& prices() const noexcept override { return prices_; }
    [[nodiscard]] double currentUtility() const override;
    [[nodiscard]] int iterationsRun() const noexcept override { return iteration_; }
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept override {
        return trace_;
    }
    [[nodiscard]] const ConvergenceDetector& convergence() const noexcept override {
        return detector_;
    }
    /// Current adaptive/fixed gamma at `node` (for the Figure 2 ablation).
    [[nodiscard]] double nodeGamma(model::NodeId node) const override;

private:
    void noteConvergenceReset();

    model::ProblemSpec spec_;
    LrgpOptions options_;
    RateAllocator rate_allocator_;
    GreedyConsumerAllocator greedy_allocator_;

    // Observability (all null until attachObservability): resolved once,
    // touched behind `if constexpr (obs::kEnabled)` + null checks.
    obs::SolverInstruments instr_;
    obs::AllocatorInstruments alloc_instr_;
    bool obs_attached_ = false;
    obs::IterationTracer* tracer_ = nullptr;
    std::vector<NodePriceController> node_prices_;
    std::vector<LinkPriceController> link_prices_;

    model::Allocation allocation_;
    PriceVector prices_;
    int iteration_ = 0;
    IterationRecord last_record_;
    metrics::TimeSeries trace_;
    ConvergenceDetector detector_;
};

}  // namespace lrgp::core
