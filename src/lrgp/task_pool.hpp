// A small reusable fork-join pool for the parallel LRGP phases.
//
// The pool keeps `threads - 1` workers parked on a condition variable;
// parallelFor() statically partitions [0, n) into one contiguous chunk
// per thread (the calling thread runs chunk 0), wakes the workers, and
// returns once every chunk finished.  Static partitioning is what makes
// the engine deterministic: each index is processed by exactly one
// thread and results land in per-index slots, so the outcome is
// independent of scheduling.  The pool itself adds no allocation per
// parallelFor beyond the shared-state handshake.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/instruments.hpp"

namespace lrgp::core {

class TaskPool {
public:
    /// `threads` counts the calling thread: 1 means no workers are
    /// spawned and parallelFor degrades to a plain loop.  0 resolves to
    /// std::thread::hardware_concurrency().
    explicit TaskPool(int threads);
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    [[nodiscard]] int threadCount() const noexcept { return thread_count_; }

    /// fn(begin, end, worker) over a static partition of [0, n); worker
    /// is in [0, threadCount()) and owns its chunk exclusively, so it can
    /// index per-worker scratch without synchronization.  Blocks until
    /// all chunks are done.  The first exception thrown by any chunk is
    /// rethrown on the calling thread.
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t, std::size_t, int)>& fn);

    /// Deterministic ordered fan-out/merge: runs task(i, worker) for
    /// every i in [0, n) across the pool (same static partition as
    /// parallelFor), then invokes merge(i) serially on the calling
    /// thread in ascending index order 0, 1, ..., n-1.  Tasks must write
    /// only per-index state (slots the merge step reads); merge runs
    /// strictly after every task finished, so the combined result is
    /// byte-identical regardless of worker count or scheduling.  Used by
    /// the sharded engine's reconciler to merge per-shard results in
    /// shard-id order.
    template <class Task, class Merge>
    void forEachMergeOrdered(std::size_t n, Task&& task, Merge&& merge) {
        parallelFor(n, [&task](std::size_t begin, std::size_t end, int worker) {
            for (std::size_t i = begin; i < end; ++i) task(i, worker);
        });
        for (std::size_t i = 0; i < n; ++i) merge(i);
    }

    /// Optional fan-out counters (dispatches, chunks, depth histogram);
    /// nullptr (the default) keeps parallelFor() uninstrumented.
    void setInstruments(const obs::PoolInstruments* instruments) noexcept {
        instruments_ = instruments;
    }

private:
    void workerLoop(int worker);

    int thread_count_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t, std::size_t, int)>* job_ = nullptr;
    std::size_t job_n_ = 0;
    std::size_t job_chunk_ = 0;
    std::uint64_t generation_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    std::exception_ptr first_error_;
    const obs::PoolInstruments* instruments_ = nullptr;
};

}  // namespace lrgp::core
