#include "lrgp/task_pool.hpp"

#include <algorithm>
#include <utility>

namespace lrgp::core {

TaskPool::TaskPool(int threads) {
    if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
    thread_count_ = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
    for (int w = 1; w < thread_count_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

TaskPool::~TaskPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
}

void TaskPool::parallelFor(std::size_t n,
                           const std::function<void(std::size_t, std::size_t, int)>& fn) {
    if (n == 0) return;
    if (thread_count_ == 1 || n == 1) {
        if constexpr (obs::kEnabled) {
            if (instruments_) {
                instruments_->jobs->add(1);
                instruments_->chunks->add(1);
                instruments_->fanout->observe(1.0);
            }
        }
        fn(0, n, 0);
        return;
    }

    const std::size_t chunk =
        (n + static_cast<std::size_t>(thread_count_) - 1) / static_cast<std::size_t>(thread_count_);
    if constexpr (obs::kEnabled) {
        if (instruments_) {
            const std::size_t chunks = (n + chunk - 1) / chunk;
            instruments_->jobs->add(1);
            instruments_->chunks->add(chunks);
            instruments_->fanout->observe(static_cast<double>(chunks));
        }
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        job_n_ = n;
        job_chunk_ = chunk;
        pending_ = thread_count_ - 1;
        first_error_ = nullptr;
        ++generation_;
    }
    work_cv_.notify_all();

    // Chunk 0 runs on the calling thread while the workers take 1..T-1.
    try {
        fn(0, std::min(chunk, n), 0);
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
    }

    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
    if (first_error_) std::rethrow_exception(std::exchange(first_error_, nullptr));
}

void TaskPool::workerLoop(int worker) {
    std::uint64_t seen_generation = 0;
    for (;;) {
        const std::function<void(std::size_t, std::size_t, int)>* job;
        std::size_t n, chunk;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [&] { return stop_ || generation_ != seen_generation; });
            if (stop_) return;
            seen_generation = generation_;
            job = job_;
            n = job_n_;
            chunk = job_chunk_;
        }

        const std::size_t begin = std::min(n, static_cast<std::size_t>(worker) * chunk);
        const std::size_t end = std::min(n, begin + chunk);
        if (begin < end) {
            try {
                (*job)(begin, end, worker);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!first_error_) first_error_ = std::current_exception();
            }
        }

        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0) done_cv_.notify_all();
        }
    }
}

}  // namespace lrgp::core
