#include "lrgp/trace_export.hpp"

#include <ostream>

namespace lrgp::core {

void export_trace_csv(std::ostream& os, const model::ProblemSpec& spec,
                      const std::vector<core::IterationRecord>& records) {
    os << "iteration,utility";
    for (const model::FlowSpec& f : spec.flows()) os << ",rate:" << f.name;
    for (const model::ClassSpec& c : spec.classes()) os << ",n:" << c.name;
    for (const model::NodeSpec& b : spec.nodes()) os << ",price:" << b.name;
    os << '\n';
    for (const core::IterationRecord& rec : records) {
        os << rec.iteration << ',' << rec.utility;
        for (double r : rec.allocation.rates) os << ',' << r;
        for (int n : rec.allocation.populations) os << ',' << n;
        for (double p : rec.prices.node) os << ',' << p;
        os << '\n';
    }
}

std::vector<core::IterationRecord> run_and_export(std::ostream& os,
                                                  core::LrgpOptimizer& optimizer,
                                                  int iterations) {
    std::vector<core::IterationRecord> records;
    records.reserve(static_cast<std::size_t>(iterations));
    for (int i = 0; i < iterations; ++i) records.push_back(optimizer.step());
    export_trace_csv(os, optimizer.problem(), records);
    return records;
}

}  // namespace lrgp::core
