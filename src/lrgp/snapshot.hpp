// Warm-state snapshots of the incremental LRGP engine (crash recovery).
//
// An EngineSnapshot captures everything a ParallelLrgpEngine needs to
// resume an interrupted run *bitwise-identically* to an uninterrupted
// one: the allocation, the prices, the private state of every stateful
// price controller (adaptive gamma, oscillation memory, moved bits),
// the convergence detector's trailing window, and the spec's dynamic
// state (flow active flags, capacities, class ceilings).  The dirty
// sets and cached phase outputs of incremental mode are deliberately
// NOT serialized: restore() marks everything dirty, and because every
// skipped computation is a deterministic function of bitwise-unchanged
// inputs, the full first post-restore iteration recomputes exactly the
// values the caches held (the same argument that makes incremental mode
// bitwise-identical to the serial optimizer, docs/algorithm.md).
//
// serialize()/deserialize() use a little-endian binary layout with raw
// 8-byte doubles, so a round trip through bytes is bit-exact — no
// decimal formatting is involved.  The utility trace is not part of a
// snapshot (it is an observer, not engine state); a restored engine's
// trace restarts empty.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lrgp/convergence.hpp"
#include "lrgp/price_controllers.hpp"

namespace lrgp::core {

struct EngineSnapshot {
    /// Shape guard: restore() rejects a snapshot whose counts disagree
    /// with the engine's problem.
    std::uint64_t flow_count = 0;
    std::uint64_t class_count = 0;
    std::uint64_t node_count = 0;
    std::uint64_t link_count = 0;

    std::int64_t iteration = 0;
    double last_utility = 0.0;

    // Dynamic spec state (the parts mutable after construction).
    std::vector<std::uint8_t> flow_active;
    std::vector<double> node_capacity;
    std::vector<double> link_capacity;
    std::vector<std::int32_t> class_max_consumers;

    // Allocation and prices after the snapshot iteration.
    std::vector<double> rates;
    std::vector<std::int32_t> populations;
    std::vector<double> node_price;
    std::vector<double> link_price;

    // Stateful controllers and the convergence detector.
    std::vector<NodePriceController::State> node_controllers;
    std::vector<LinkPriceController::State> link_controllers;
    ConvergenceDetector::State detector;

    /// Binary little-endian encoding (bit-exact round trip).
    [[nodiscard]] std::string serialize() const;

    /// Inverse of serialize().  Throws std::invalid_argument on a
    /// truncated, oversized or wrong-magic payload.
    [[nodiscard]] static EngineSnapshot deserialize(std::string_view bytes);
};

}  // namespace lrgp::core
