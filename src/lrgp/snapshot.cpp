#include "lrgp/snapshot.hpp"

#include <cstring>
#include <stdexcept>
#include <type_traits>

namespace lrgp::core {

namespace {

constexpr std::uint64_t kMagic = 0x4C524750534E4150ull;  // "LRGPSNAP"
constexpr std::uint32_t kVersion = 1;

// The encoder/decoder pair below writes fixed-width little-endian
// fields via memcpy, so doubles survive the round trip bit-for-bit.
// (Every supported target is little-endian; the magic check would fail
// loudly on a byte-swapped payload rather than mis-restore.)

class Writer {
public:
    explicit Writer(std::string& out) : out_(out) {}

    template <typename T>
    void put(T value) {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto offset = out_.size();
        out_.resize(offset + sizeof(T));
        std::memcpy(out_.data() + offset, &value, sizeof(T));
    }

    template <typename T>
    void putVector(const std::vector<T>& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        put(static_cast<std::uint64_t>(v.size()));
        const auto offset = out_.size();
        out_.resize(offset + v.size() * sizeof(T));
        if (!v.empty()) std::memcpy(out_.data() + offset, v.data(), v.size() * sizeof(T));
    }

private:
    std::string& out_;
};

class Reader {
public:
    explicit Reader(std::string_view bytes) : bytes_(bytes) {}

    template <typename T>
    T get() {
        static_assert(std::is_trivially_copyable_v<T>);
        if (bytes_.size() - pos_ < sizeof(T))
            throw std::invalid_argument("EngineSnapshot: truncated payload");
        T value;
        std::memcpy(&value, bytes_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return value;
    }

    template <typename T>
    std::vector<T> getVector() {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto count = get<std::uint64_t>();
        if (count > (bytes_.size() - pos_) / sizeof(T))
            throw std::invalid_argument("EngineSnapshot: truncated payload");
        std::vector<T> v(static_cast<std::size_t>(count));
        if (count > 0) std::memcpy(v.data(), bytes_.data() + pos_, v.size() * sizeof(T));
        pos_ += v.size() * sizeof(T);
        return v;
    }

    [[nodiscard]] bool exhausted() const noexcept { return pos_ == bytes_.size(); }

private:
    std::string_view bytes_;
    std::size_t pos_ = 0;
};

}  // namespace

std::string EngineSnapshot::serialize() const {
    std::string out;
    Writer w(out);
    w.put(kMagic);
    w.put(kVersion);
    w.put(flow_count);
    w.put(class_count);
    w.put(node_count);
    w.put(link_count);
    w.put(iteration);
    w.put(last_utility);
    w.putVector(flow_active);
    w.putVector(node_capacity);
    w.putVector(link_capacity);
    w.putVector(class_max_consumers);
    w.putVector(rates);
    w.putVector(populations);
    w.putVector(node_price);
    w.putVector(link_price);

    w.put(static_cast<std::uint64_t>(node_controllers.size()));
    for (const auto& c : node_controllers) {
        w.put(c.price);
        w.put(c.adaptive_gamma);
        w.put(c.last_delta);
        w.put(static_cast<std::uint8_t>(c.has_last_delta));
        w.put(static_cast<std::uint8_t>(c.last_moved));
    }
    w.put(static_cast<std::uint64_t>(link_controllers.size()));
    for (const auto& c : link_controllers) {
        w.put(c.price);
        w.put(static_cast<std::uint8_t>(c.last_moved));
    }

    w.putVector(detector.window);
    w.put(static_cast<std::uint64_t>(detector.samples_seen));
    w.put(static_cast<std::uint8_t>(detector.converged));
    w.put(static_cast<std::uint64_t>(detector.converged_at));
    w.put(detector.last_sample);
    w.put(static_cast<std::uint64_t>(detector.run_length));
    return out;
}

EngineSnapshot EngineSnapshot::deserialize(std::string_view bytes) {
    Reader r(bytes);
    if (r.get<std::uint64_t>() != kMagic)
        throw std::invalid_argument("EngineSnapshot: bad magic (not a snapshot payload)");
    if (r.get<std::uint32_t>() != kVersion)
        throw std::invalid_argument("EngineSnapshot: unsupported snapshot version");

    EngineSnapshot s;
    s.flow_count = r.get<std::uint64_t>();
    s.class_count = r.get<std::uint64_t>();
    s.node_count = r.get<std::uint64_t>();
    s.link_count = r.get<std::uint64_t>();
    s.iteration = r.get<std::int64_t>();
    s.last_utility = r.get<double>();
    s.flow_active = r.getVector<std::uint8_t>();
    s.node_capacity = r.getVector<double>();
    s.link_capacity = r.getVector<double>();
    s.class_max_consumers = r.getVector<std::int32_t>();
    s.rates = r.getVector<double>();
    s.populations = r.getVector<std::int32_t>();
    s.node_price = r.getVector<double>();
    s.link_price = r.getVector<double>();

    const auto node_ctl = r.get<std::uint64_t>();
    if (node_ctl > bytes.size())
        throw std::invalid_argument("EngineSnapshot: truncated payload");
    s.node_controllers.reserve(static_cast<std::size_t>(node_ctl));
    for (std::uint64_t i = 0; i < node_ctl; ++i) {
        NodePriceController::State c;
        c.price = r.get<double>();
        c.adaptive_gamma = r.get<double>();
        c.last_delta = r.get<double>();
        c.has_last_delta = r.get<std::uint8_t>() != 0;
        c.last_moved = r.get<std::uint8_t>() != 0;
        s.node_controllers.push_back(c);
    }
    const auto link_ctl = r.get<std::uint64_t>();
    if (link_ctl > bytes.size())
        throw std::invalid_argument("EngineSnapshot: truncated payload");
    s.link_controllers.reserve(static_cast<std::size_t>(link_ctl));
    for (std::uint64_t i = 0; i < link_ctl; ++i) {
        LinkPriceController::State c;
        c.price = r.get<double>();
        c.last_moved = r.get<std::uint8_t>() != 0;
        s.link_controllers.push_back(c);
    }

    s.detector.window = r.getVector<double>();
    s.detector.samples_seen = static_cast<std::size_t>(r.get<std::uint64_t>());
    s.detector.converged = r.get<std::uint8_t>() != 0;
    s.detector.converged_at = static_cast<std::size_t>(r.get<std::uint64_t>());
    s.detector.last_sample = r.get<double>();
    s.detector.run_length = static_cast<std::size_t>(r.get<std::uint64_t>());
    if (!r.exhausted())
        throw std::invalid_argument("EngineSnapshot: trailing bytes after payload");
    return s;
}

}  // namespace lrgp::core
