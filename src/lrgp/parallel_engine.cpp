#include "lrgp/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "model/allocation.hpp"
#include "obs/scoped_timer.hpp"
#include "utility/rate_objective.hpp"

namespace lrgp::core {

namespace {

inline std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

/// Per-worker greedy ranking buffer (phase 2).
struct ParallelLrgpEngine::NodeScratch {
    struct Cand {
        double ratio;      ///< BC_j (Eq. 10)
        double unit_cost;  ///< G_{b,j} * r_i
        double value;      ///< U_j(r_i), reused for the Eq. 1 term
        int max_consumers;
        std::uint32_t cls;
    };
    std::vector<Cand> cands;
};

ParallelLrgpEngine::ParallelLrgpEngine(model::ProblemSpec spec, LrgpOptions options,
                                       EngineConfig config)
    : spec_(std::move(spec)),
      options_(options),
      compiled_(spec_),
      pool_(std::make_unique<TaskPool>(config.threads)),
      collect_phase_times_(config.collect_phase_times),
      allocation_(model::Allocation::minimal(spec_)),
      prices_(PriceVector::zeros(spec_.nodeCount(), spec_.linkCount())),
      detector_(options.convergence) {
    node_prices_.reserve(spec_.nodeCount());
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        node_prices_.emplace_back(options_.gamma, options_.initial_node_price,
                                  options_.node_price_rule);
    link_prices_.reserve(spec_.linkCount());
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        link_prices_.emplace_back(options_.link_gamma, options_.initial_link_price);
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        prices_.node[b] = options_.initial_node_price;
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        prices_.link[l] = options_.initial_link_price;

    // Eq. 7 terms: utilities bound once, populations rewritten per solve.
    flow_terms_.resize(spec_.flowCount());
    for (const model::FlowSpec& f : spec_.flows()) {
        auto& terms = flow_terms_[f.id.index()];
        const auto& classes = spec_.classesOfFlow(f.id);
        terms.reserve(classes.size());
        for (model::ClassId j : classes)
            terms.push_back({0.0, spec_.consumerClass(j).utility});
    }
    flow_value_trans_.assign(spec_.flowCount(), 0.0);
    class_utility_term_.assign(spec_.classCount(), 0.0);

    node_scratch_.reserve(static_cast<std::size_t>(pool_->threadCount()));
    for (int w = 0; w < pool_->threadCount(); ++w) {
        node_scratch_.push_back(std::make_unique<NodeScratch>());
        node_scratch_.back()->cands.reserve(spec_.maxClassesAtAnyNode());
    }
}

ParallelLrgpEngine::~ParallelLrgpEngine() = default;

int ParallelLrgpEngine::threadCount() const noexcept { return pool_->threadCount(); }

void ParallelLrgpEngine::solveFlow(std::size_t f) {
    const CompiledProblem& cp = compiled_;
    const std::vector<int>& pops = allocation_.populations;

    // PL_i (Eq. 8): link hops in route order.
    double pl = 0.0;
    for (std::size_t h = cp.flow_link_begin[f]; h < cp.flow_link_begin[f + 1]; ++h)
        pl += cp.link_hop_cost[h] * prices_.link[cp.link_hop_link[h]];

    // PB_i (Eq. 9): node hops in route order, each with its class sub-span
    // in classesOfFlow order — the serial accumulation order exactly.
    double pb = 0.0;
    for (std::size_t h = cp.flow_node_begin[f]; h < cp.flow_node_begin[f + 1]; ++h) {
        double per_rate_cost = cp.node_hop_fcost[h];
        for (std::size_t e = cp.hop_class_begin[h]; e < cp.hop_class_begin[h + 1]; ++e)
            per_rate_cost += cp.hop_class_gcost[e] * pops[cp.hop_class_class[e]];
        pb += per_rate_cost * prices_.node[cp.node_hop_node[h]];
    }
    const double price = pl + pb;

    const double lo = cp.flow_rate_min[f];
    const double hi = cp.flow_rate_max[f];
    const SolveFamily family = cp.flow_family[f];

    double rate;
    if (family != SolveFamily::kGeneric && options_.rate_solve.allow_closed_form) {
        // Fast path: replicates utility::solve_rate_objective step by step
        // with the virtual dispatch and dynamic_cast family probing
        // replaced by the precompiled per-class weights.
        const std::size_t begin = cp.flow_class_begin[f];
        const std::size_t end = cp.flow_class_begin[f + 1];
        const double param = cp.flow_family_param[f];

        bool any_population = false;
        for (std::size_t e = begin; e < end; ++e)
            if (pops[cp.flow_class_class[e]] > 0) any_population = true;

        if (!any_population) {
            rate = price > 0.0 ? lo : hi;
            if constexpr (obs::kEnabled)
                if (obs_attached_) alloc_instr_.rate_bound->add(1);
        } else {
            // sum_j n_j U_j'(r) - price at a bound, in term order; the
            // inlined derivative expressions mirror utility_function.cpp.
            const auto derivative_at = [&](double r) {
                const double pow_term =
                    family == SolveFamily::kPower ? std::pow(r, param - 1.0) : 0.0;
                double d = -price;
                for (std::size_t e = begin; e < end; ++e) {
                    const std::uint32_t cls = cp.flow_class_class[e];
                    const int n = pops[cls];
                    if (n <= 0) continue;
                    double du;
                    switch (family) {
                        case SolveFamily::kLog: du = cp.class_weight[cls] / (1.0 + r); break;
                        case SolveFamily::kPower: du = cp.class_dweight[cls] * pow_term; break;
                        default: du = cp.class_weight[cls] / (param + r); break;
                    }
                    d += n * du;
                }
                return d;
            };

            if (derivative_at(hi) >= 0.0) {
                rate = hi;
                if constexpr (obs::kEnabled)
                    if (obs_attached_) alloc_instr_.rate_bound->add(1);
            } else if (derivative_at(lo) <= 0.0) {
                rate = lo;
                if constexpr (obs::kEnabled)
                    if (obs_attached_) alloc_instr_.rate_bound->add(1);
            } else {
                // Combined closed form: W = sum_j n_j w_j in term order.
                double weight = 0.0;
                for (std::size_t e = begin; e < end; ++e) {
                    const std::uint32_t cls = cp.flow_class_class[e];
                    const int n = pops[cls];
                    if (n <= 0) continue;
                    weight += static_cast<double>(n) * cp.class_weight[cls];
                }
                double r;
                switch (family) {
                    case SolveFamily::kLog: r = weight / price - 1.0; break;
                    case SolveFamily::kPower:
                        r = std::pow(price / (weight * param), 1.0 / (param - 1.0));
                        break;
                    default: r = weight / price - param; break;
                }
                rate = std::clamp(r, lo, hi);
                if constexpr (obs::kEnabled)
                    if (obs_attached_) alloc_instr_.rate_closed_form->add(1);
            }
        }
    } else {
        // Reference path: same solver as the serial optimizer, fed from
        // the persistent terms buffer (no per-iteration allocation).
        auto& terms = flow_terms_[f];
        const std::size_t begin = cp.flow_class_begin[f];
        for (std::size_t e = begin; e < cp.flow_class_begin[f + 1]; ++e)
            terms[e - begin].population =
                static_cast<double>(pops[cp.flow_class_class[e]]);
        const utility::RateSolveResult result =
            utility::solve_rate_objective(terms, price, lo, hi, options_.rate_solve);
        rate = result.rate;
        if constexpr (obs::kEnabled) {
            if (obs_attached_) {
                switch (result.method) {
                    case utility::RateSolveMethod::kClosedForm:
                        alloc_instr_.rate_closed_form->add(1);
                        break;
                    case utility::RateSolveMethod::kNumeric:
                        alloc_instr_.rate_numeric->add(1);
                        break;
                    default: alloc_instr_.rate_bound->add(1); break;
                }
            }
        }
    }
    allocation_.rates[f] = rate;

    // One transcendental per flow; phase 2 turns it into per-class
    // U_j(r) = w_j * trans values (bitwise equal to the virtual calls).
    switch (family) {
        case SolveFamily::kLog: flow_value_trans_[f] = std::log1p(rate); break;
        case SolveFamily::kPower:
            flow_value_trans_[f] = std::pow(rate, cp.flow_family_param[f]);
            break;
        case SolveFamily::kShiftedLog:
            flow_value_trans_[f] = std::log1p(rate / cp.flow_family_param[f]);
            break;
        case SolveFamily::kGeneric: break;
    }
}

void ParallelLrgpEngine::ratePhase(std::size_t begin, std::size_t end) {
    [[maybe_unused]] std::uint64_t solves = 0;
    for (std::size_t f = begin; f < end; ++f) {
        if (!compiled_.flow_active[f]) continue;
        solveFlow(f);
        if constexpr (obs::kEnabled) ++solves;
    }
    if constexpr (obs::kEnabled)
        if (obs_attached_ && solves > 0) instr_.rate_solves->add(solves);
}

void ParallelLrgpEngine::nodePhase(std::size_t begin, std::size_t end, NodeScratch& scratch) {
    const CompiledProblem& cp = compiled_;
    const std::vector<double>& rates = allocation_.rates;
    // Chunk-local tallies, flushed to the shared atomics once at the end.
    [[maybe_unused]] std::uint64_t candidates = 0, price_moves = 0;

    for (std::size_t b = begin; b < end; ++b) {
        // Resource consumed by the flows themselves (F_{b,i} * r_i).
        double base_usage = 0.0;
        for (std::size_t e = cp.node_flow_begin[b]; e < cp.node_flow_begin[b + 1]; ++e) {
            const std::uint32_t f = cp.node_flow_flow[e];
            if (!cp.flow_active[f]) continue;
            base_usage += cp.node_flow_fcost[e] * rates[f];
        }
        const double capacity = cp.node_capacity[b];
        double remaining = capacity - base_usage;

        // Benefit-cost candidates; all classes at the node start at zero.
        auto& cands = scratch.cands;
        cands.clear();
        for (std::size_t e = cp.node_class_begin[b]; e < cp.node_class_begin[b + 1]; ++e) {
            const std::uint32_t cls = cp.node_class_class[e];
            allocation_.populations[cls] = 0;
            class_utility_term_[cls] = 0.0;
            const std::uint32_t f = cp.class_flow[cls];
            if (!cp.flow_active[f] || cp.class_max_consumers[cls] == 0) continue;
            const double rate = rates[f];
            const double unit_cost = cp.class_gcost[cls] * rate;
            // Mirrors GreedyConsumerAllocator::benefitCosts: a zero rate
            // makes BC_j = U_j(0)/0 an undefined 0/0 that must not reach
            // the ranking (bitwise parity with the serial allocator).
            if (!(unit_cost > 0.0)) continue;
            const double value = cp.flow_family[f] == SolveFamily::kGeneric
                                     ? cp.class_utility[cls]->value(rate)
                                     : cp.class_weight[cls] * flow_value_trans_[f];
            cands.push_back({value / unit_cost, unit_cost, value,
                             cp.class_max_consumers[cls], cls});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const NodeScratch::Cand& a, const NodeScratch::Cand& c) {
                      if (a.ratio != c.ratio) return a.ratio > c.ratio;
                      return a.cls < c.cls;
                  });

        std::optional<double> best_unmet_bc;
        for (const NodeScratch::Cand& cand : cands) {
            int admitted = 0;
            if (remaining > 0.0) {
                admitted = static_cast<int>(
                    std::min(std::floor(remaining / cand.unit_cost),
                             static_cast<double>(cand.max_consumers)));
            }
            remaining -= admitted * cand.unit_cost;
            allocation_.populations[cand.cls] = admitted;
            if (admitted > 0) class_utility_term_[cand.cls] = admitted * cand.value;
            if (admitted < cand.max_consumers && !best_unmet_bc) best_unmet_bc = cand.ratio;
        }

        const double used = capacity - remaining;
        const double old_price = prices_.node[b];
        prices_.node[b] = node_prices_[b].update(best_unmet_bc, used, capacity);
        if constexpr (obs::kEnabled) {
            candidates += cands.size();
            if (prices_.node[b] != old_price) ++price_moves;
        }
    }

    if constexpr (obs::kEnabled) {
        if (obs_attached_ && end > begin) {
            alloc_instr_.greedy_allocations->add(end - begin);
            alloc_instr_.greedy_candidates->add(candidates);
            instr_.node_price_moves->add(price_moves);
        }
    }
}

void ParallelLrgpEngine::linkPhase(std::size_t begin, std::size_t end) {
    const CompiledProblem& cp = compiled_;
    const std::vector<double>& rates = allocation_.rates;
    [[maybe_unused]] std::uint64_t price_moves = 0;
    for (std::size_t l = begin; l < end; ++l) {
        double usage = 0.0;
        for (std::size_t e = cp.link_flow_begin[l]; e < cp.link_flow_begin[l + 1]; ++e) {
            const std::uint32_t f = cp.link_flow_flow[e];
            if (!cp.flow_active[f]) continue;
            usage += cp.link_flow_cost[e] * rates[f];
        }
        const double old_price = prices_.link[l];
        prices_.link[l] = link_prices_[l].update(usage, cp.link_capacity[l]);
        if constexpr (obs::kEnabled)
            if (prices_.link[l] != old_price) ++price_moves;
    }
    if constexpr (obs::kEnabled)
        if (obs_attached_ && price_moves > 0) instr_.link_price_moves->add(price_moves);
}

const IterationRecord& ParallelLrgpEngine::step() {
    [[maybe_unused]] bool obs_on = false;
    bool timed = collect_phase_times_;
    if constexpr (obs::kEnabled) {
        obs_on = obs_attached_;
        if (tracer_) tracer_->beginIteration(static_cast<std::uint64_t>(iteration_) + 1);
        timed = timed || obs_on || (tracer_ && tracer_->sampling());
    }
    std::uint64_t t0 = timed ? now_ns() : 0;

    pool_->parallelFor(compiled_.flowCount(),
                       [this](std::size_t b, std::size_t e, int) { ratePhase(b, e); });
    std::uint64_t t1 = timed ? now_ns() : 0;

    pool_->parallelFor(compiled_.nodeCount(), [this](std::size_t b, std::size_t e, int w) {
        nodePhase(b, e, *node_scratch_[static_cast<std::size_t>(w)]);
    });
    std::uint64_t t2 = timed ? now_ns() : 0;

    pool_->parallelFor(compiled_.linkCount(),
                       [this](std::size_t b, std::size_t e, int) { linkPhase(b, e); });
    std::uint64_t t3 = timed ? now_ns() : 0;

    // Serial epilogue: the Eq. 1 reduction in class-id order (skipped
    // classes hold an exact 0.0, so the sum is bitwise the serial scan).
    double utility = 0.0;
    for (double term : class_utility_term_) utility += term;

    ++iteration_;
    last_record_.iteration = iteration_;
    last_record_.utility = utility;
    last_record_.allocation = allocation_;
    last_record_.prices = prices_;
    trace_.append(utility);
    detector_.addSample(utility);

    std::uint64_t t4 = 0;
    if (timed) {
        t4 = now_ns();
        if (collect_phase_times_) {
            phase_times_.rate_ns += t1 - t0;
            phase_times_.node_ns += t2 - t1;
            phase_times_.link_ns += t3 - t2;
            phase_times_.reduce_ns += t4 - t3;
            ++phase_times_.iterations;
        }
    }

    if constexpr (obs::kEnabled) {
        [[maybe_unused]] long long admitted_total = 0;
        if (obs_on || (tracer_ && tracer_->sampling()))
            for (int n : allocation_.populations) admitted_total += n;
        if (obs_on) {
            instr_.iterations->add(1);
            instr_.admissions->add(static_cast<std::uint64_t>(admitted_total));
            alloc_instr_.greedy_admitted->add(static_cast<std::uint64_t>(admitted_total));
            instr_.utility->set(utility);
            instr_.admitted_consumers->set(static_cast<double>(admitted_total));
            instr_.phase_rate->observe(static_cast<double>(t1 - t0) * 1e-9);
            instr_.phase_node->observe(static_cast<double>(t2 - t1) * 1e-9);
            instr_.phase_link->observe(static_cast<double>(t3 - t2) * 1e-9);
            instr_.phase_reduce->observe(static_cast<double>(t4 - t3) * 1e-9);
            instr_.iter_seconds->observe(static_cast<double>(t4 - t0) * 1e-9);
        }
        if (tracer_ && tracer_->sampling()) {
            const double origin = tracer_->nowMicros();
            const auto us = [](std::uint64_t a, std::uint64_t b) {
                return static_cast<double>(b - a) * 1e-3;
            };
            const double ts0 = timed ? origin - us(t0, t4) : origin;
            tracer_->complete("rate_phase", "lrgp", 0, ts0, us(t0, t1));
            tracer_->complete("node_phase", "lrgp", 0, ts0 + us(t0, t1), us(t1, t2));
            tracer_->complete("link_phase", "lrgp", 0, ts0 + us(t0, t2), us(t2, t3));
            tracer_->complete("iteration", "lrgp", 0, ts0, us(t0, t4),
                              {{"iteration", static_cast<double>(iteration_)},
                               {"utility", utility},
                               {"admitted", static_cast<double>(admitted_total)}});
            tracer_->counterSample("utility", 0, origin, utility);
        }
    }
    return last_record_;
}

void ParallelLrgpEngine::attachObservability(obs::Registry* registry,
                                             obs::IterationTracer* tracer) {
    if constexpr (obs::kEnabled) {
        if (registry != nullptr) {
            instr_ = obs::SolverInstruments::resolve(*registry);
            alloc_instr_ = obs::AllocatorInstruments::resolve(*registry);
            pool_instr_ = obs::PoolInstruments::resolve(*registry);
            pool_->setInstruments(&pool_instr_);
            obs_attached_ = true;
        } else {
            pool_->setInstruments(nullptr);
            obs_attached_ = false;
        }
        tracer_ = tracer;
    } else {
        (void)registry;
        (void)tracer;
    }
}

void ParallelLrgpEngine::noteConvergenceReset() {
    if constexpr (obs::kEnabled) {
        if (obs_attached_) instr_.convergence_resets->add(1);
        if (tracer_ && tracer_->sampling())
            tracer_->instant("convergence_reset", "lrgp", 0, tracer_->nowMicros());
    }
}

const IterationRecord& ParallelLrgpEngine::run(int iterations) {
    if (iterations <= 0)
        throw std::invalid_argument("ParallelLrgpEngine::run: iterations must be > 0");
    for (int i = 0; i < iterations; ++i) step();
    return last_record_;
}

std::optional<int> ParallelLrgpEngine::runUntilConverged(int max_iterations) {
    if (max_iterations <= 0)
        throw std::invalid_argument("ParallelLrgpEngine::runUntilConverged: bad max_iterations");
    for (int i = 0; i < max_iterations; ++i) {
        step();
        if (detector_.converged()) return static_cast<int>(detector_.convergedAt());
    }
    return std::nullopt;
}

void ParallelLrgpEngine::removeFlow(model::FlowId flow) {
    if (!spec_.flowActive(flow)) throw std::logic_error("removeFlow: flow already inactive");
    spec_.setFlowActive(flow, false);
    compiled_.setFlowActive(flow, false);
    allocation_.rates[flow.index()] = 0.0;
    for (model::ClassId j : spec_.classesOfFlow(flow)) allocation_.populations[j.index()] = 0;
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::restoreFlow(model::FlowId flow) {
    if (spec_.flowActive(flow)) throw std::logic_error("restoreFlow: flow already active");
    spec_.setFlowActive(flow, true);
    compiled_.setFlowActive(flow, true);
    allocation_.rates[flow.index()] = spec_.flow(flow).rate_min;
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::setNodeCapacity(model::NodeId node, double capacity) {
    spec_.setNodeCapacity(node, capacity);
    compiled_.setNodeCapacity(node, capacity);
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::setClassMaxConsumers(model::ClassId cls, int max_consumers) {
    spec_.setClassMaxConsumers(cls, max_consumers);
    compiled_.setClassMaxConsumers(cls, max_consumers);
    auto& n = allocation_.populations.at(cls.index());
    n = std::min(n, max_consumers);
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::warmStart(const PriceVector& prices,
                                   const std::vector<int>* populations) {
    if (prices.node.size() != spec_.nodeCount() || prices.link.size() != spec_.linkCount())
        throw std::invalid_argument("warmStart: price vector sized for another problem");
    prices_ = prices;
    for (std::size_t b = 0; b < node_prices_.size(); ++b)
        node_prices_[b].reset(prices.node[b]);
    for (std::size_t l = 0; l < link_prices_.size(); ++l)
        link_prices_[l].reset(prices.link[l]);
    if (populations != nullptr) {
        if (populations->size() != spec_.classCount())
            throw std::invalid_argument("warmStart: populations sized for another problem");
        for (const model::ClassSpec& c : spec_.classes())
            allocation_.populations[c.id.index()] =
                std::min((*populations)[c.id.index()], c.max_consumers);
    }
    detector_.reset();
    noteConvergenceReset();
}

double ParallelLrgpEngine::currentUtility() const {
    return model::total_utility(spec_, allocation_);
}

double ParallelLrgpEngine::nodeGamma(model::NodeId node) const {
    return node_prices_.at(node.index()).currentGamma();
}

}  // namespace lrgp::core
