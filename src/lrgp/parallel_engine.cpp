#include "lrgp/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "lrgp/greedy_allocator.hpp"
#include "model/allocation.hpp"
#include "obs/scoped_timer.hpp"
#include "utility/rate_objective.hpp"

namespace lrgp::core {

namespace {

inline std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

/// One benefit-cost candidate of a node's greedy ranking.
struct ParallelLrgpEngine::Cand {
    double ratio;      ///< BC_j (Eq. 10)
    double unit_cost;  ///< G_{b,j} * r_i
    double value;      ///< U_j(r_i), reused for the Eq. 1 term
    int max_consumers;
    std::uint32_t cls;
};

/// Per-worker greedy ranking buffer (phase 2).
struct ParallelLrgpEngine::NodeScratch {
    std::vector<Cand> cands;
    /// Incremental mode: node-class-span population snapshot taken before
    /// a re-admission, diffed afterwards to set pop_moved bits.
    std::vector<int> old_pops;
};

/// Dirty bits and cached per-entity outputs of incremental mode.
///
/// Write discipline (this is what keeps the phases race-free and the
/// trajectory bitwise-deterministic for any thread count): every array
/// is either written serially between the phase barriers (the seed /
/// propagate / clear steps in step() and the dynamic ops), or written
/// inside a phase strictly per-entity by the one chunk that owns the
/// entity.  Phases read only bits that were last written before their
/// barrier, so no atomics are needed and TSan stays quiet.
struct ParallelLrgpEngine::IncrementalState {
    // -- dirty bits, consumed (and cleared) by the named phase ------------
    std::vector<std::uint8_t> flow_dirty;        ///< phase 1 re-solves these
    std::vector<std::uint8_t> node_rank_dirty;   ///< phase 2 rebuilds ranking
    std::vector<std::uint8_t> node_result_dirty; ///< phase 2 re-admits (cached ranking ok)
    std::vector<std::uint8_t> link_dirty;        ///< phase 3 re-sums usage

    // -- moved bits, produced by one iteration, seed the next -------------
    std::vector<std::uint8_t> rate_moved;        ///< phase 1 -> node/link dirt
    std::vector<std::uint8_t> pop_moved;         ///< phase 2 -> flow dirt (own flow)
    std::vector<std::uint8_t> node_price_moved;  ///< phase 2 -> flow dirt (flows at node)
    std::vector<std::uint8_t> link_price_moved;  ///< phase 3 -> flow dirt (flows on link)

    // -- cached per-node outputs, CSR cands by node_class_begin -----------
    std::vector<Cand> cands;  ///< cached benefit-cost ordering
    std::vector<std::uint32_t> cand_count;
    std::vector<double> base_usage;        ///< F-term usage (rank-clean nodes)
    std::vector<double> used;              ///< used_b fed to Eq. 12 when skipped
    std::vector<std::optional<double>> unmet_bc;  ///< BC(b,t) fed to Eq. 12 when skipped

    // -- cached per-link usage and the cached Eq. 1 sum -------------------
    std::vector<double> link_usage;
    double cached_utility = 0.0;

    // -- per-iteration pre-counts (serial) --------------------------------
    std::size_t dirty_flows_now = 0;    ///< active dirty flows entering phase 1
    std::size_t skipped_solves_now = 0; ///< active clean flows entering phase 1
    std::size_t dirty_nodes_now = 0;    ///< nodes re-admitting this iteration
    std::size_t rank_hits_now = 0;      ///< re-admissions reusing the cached ranking
    std::size_t node_hits_now = 0;      ///< nodes fully skipped
    std::size_t dirty_links_now = 0;    ///< links re-summing usage
    IncrementalStats totals;
};

ParallelLrgpEngine::ParallelLrgpEngine(model::ProblemSpec spec, LrgpOptions options,
                                       EngineConfig config)
    : spec_(std::move(spec)),
      options_(options),
      compiled_(spec_),
      pool_(std::make_unique<TaskPool>(config.threads)),
      collect_phase_times_(config.collect_phase_times),
      allocation_(model::Allocation::minimal(spec_)),
      prices_(PriceVector::zeros(spec_.nodeCount(), spec_.linkCount())),
      detector_(options.convergence) {
    node_prices_.reserve(spec_.nodeCount());
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        node_prices_.emplace_back(options_.gamma, options_.initial_node_price,
                                  options_.node_price_rule);
    link_prices_.reserve(spec_.linkCount());
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        link_prices_.emplace_back(options_.link_gamma, options_.initial_link_price);
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        prices_.node[b] = options_.initial_node_price;
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        prices_.link[l] = options_.initial_link_price;

    // Eq. 7 terms: utilities bound once, populations rewritten per solve.
    flow_terms_.resize(spec_.flowCount());
    for (const model::FlowSpec& f : spec_.flows()) {
        auto& terms = flow_terms_[f.id.index()];
        const auto& classes = spec_.classesOfFlow(f.id);
        terms.reserve(classes.size());
        for (model::ClassId j : classes)
            terms.push_back({0.0, spec_.consumerClass(j).utility});
    }
    flow_value_trans_.assign(spec_.flowCount(), 0.0);
    class_utility_term_.assign(spec_.classCount(), 0.0);

    node_scratch_.reserve(static_cast<std::size_t>(pool_->threadCount()));
    for (int w = 0; w < pool_->threadCount(); ++w) {
        node_scratch_.push_back(std::make_unique<NodeScratch>());
        node_scratch_.back()->cands.resize(compiled_.max_classes_at_node);
        node_scratch_.back()->old_pops.resize(compiled_.max_classes_at_node);
    }

    if (config.incremental) {
        inc_ = std::make_unique<IncrementalState>();
        // Everything starts dirty so the first iteration is a full one.
        inc_->flow_dirty.assign(compiled_.flowCount(), 1);
        inc_->node_rank_dirty.assign(compiled_.nodeCount(), 1);
        inc_->node_result_dirty.assign(compiled_.nodeCount(), 1);
        inc_->link_dirty.assign(compiled_.linkCount(), 1);
        inc_->rate_moved.assign(compiled_.flowCount(), 0);
        inc_->pop_moved.assign(compiled_.classCount(), 0);
        inc_->node_price_moved.assign(compiled_.nodeCount(), 0);
        inc_->link_price_moved.assign(compiled_.linkCount(), 0);
        inc_->cands.resize(compiled_.classCount());
        inc_->cand_count.assign(compiled_.nodeCount(), 0);
        inc_->base_usage.assign(compiled_.nodeCount(), 0.0);
        inc_->used.assign(compiled_.nodeCount(), 0.0);
        inc_->unmet_bc.assign(compiled_.nodeCount(), std::nullopt);
        inc_->link_usage.assign(compiled_.linkCount(), 0.0);
    }
}

ParallelLrgpEngine::~ParallelLrgpEngine() = default;

int ParallelLrgpEngine::threadCount() const noexcept { return pool_->threadCount(); }

const char* ParallelLrgpEngine::name() const noexcept {
    return inc_ ? "incremental" : "compiled";
}

bool ParallelLrgpEngine::incremental() const noexcept { return inc_ != nullptr; }

IncrementalStats ParallelLrgpEngine::incrementalStats() const noexcept {
    return inc_ ? inc_->totals : IncrementalStats{};
}

void ParallelLrgpEngine::solveFlow(std::size_t f) {
    const CompiledProblem& cp = compiled_;
    const std::vector<int>& pops = allocation_.populations;

    // PL_i (Eq. 8): link hops in route order.
    double pl = 0.0;
    for (std::size_t h = cp.flow_link_begin[f]; h < cp.flow_link_begin[f + 1]; ++h)
        pl += cp.link_hop_cost[h] * prices_.link[cp.link_hop_link[h]];

    // PB_i (Eq. 9): node hops in route order, each with its class sub-span
    // in classesOfFlow order — the serial accumulation order exactly.
    double pb = 0.0;
    for (std::size_t h = cp.flow_node_begin[f]; h < cp.flow_node_begin[f + 1]; ++h) {
        double per_rate_cost = cp.node_hop_fcost[h];
        for (std::size_t e = cp.hop_class_begin[h]; e < cp.hop_class_begin[h + 1]; ++e)
            per_rate_cost += cp.hop_class_gcost[e] * pops[cp.hop_class_class[e]];
        pb += per_rate_cost * prices_.node[cp.node_hop_node[h]];
    }
    const double price = pl + pb;

    const double lo = cp.flow_rate_min[f];
    const double hi = cp.flow_rate_max[f];
    const SolveFamily family = cp.flow_family[f];

    double rate;
    if (family != SolveFamily::kGeneric && options_.rate_solve.allow_closed_form) {
        // Fast path: replicates utility::solve_rate_objective step by step
        // with the virtual dispatch and dynamic_cast family probing
        // replaced by the precompiled per-class weights.
        const std::size_t begin = cp.flow_class_begin[f];
        const std::size_t end = cp.flow_class_begin[f + 1];
        const double param = cp.flow_family_param[f];

        bool any_population = false;
        for (std::size_t e = begin; e < end; ++e)
            if (pops[cp.flow_class_class[e]] > 0) any_population = true;

        if (!any_population) {
            rate = price > 0.0 ? lo : hi;
            if constexpr (obs::kEnabled)
                if (obs_attached_) alloc_instr_.rate_bound->add(1);
        } else {
            // sum_j n_j U_j'(r) - price at a bound, in term order; the
            // inlined derivative expressions mirror utility_function.cpp.
            const auto derivative_at = [&](double r) {
                const double pow_term =
                    family == SolveFamily::kPower ? std::pow(r, param - 1.0) : 0.0;
                double d = -price;
                for (std::size_t e = begin; e < end; ++e) {
                    const std::uint32_t cls = cp.flow_class_class[e];
                    const int n = pops[cls];
                    if (n <= 0) continue;
                    double du;
                    switch (family) {
                        case SolveFamily::kLog: du = cp.class_weight[cls] / (1.0 + r); break;
                        case SolveFamily::kPower: du = cp.class_dweight[cls] * pow_term; break;
                        default: du = cp.class_weight[cls] / (param + r); break;
                    }
                    d += n * du;
                }
                return d;
            };

            if (derivative_at(hi) >= 0.0) {
                rate = hi;
                if constexpr (obs::kEnabled)
                    if (obs_attached_) alloc_instr_.rate_bound->add(1);
            } else if (derivative_at(lo) <= 0.0) {
                rate = lo;
                if constexpr (obs::kEnabled)
                    if (obs_attached_) alloc_instr_.rate_bound->add(1);
            } else {
                // Combined closed form: W = sum_j n_j w_j in term order.
                double weight = 0.0;
                for (std::size_t e = begin; e < end; ++e) {
                    const std::uint32_t cls = cp.flow_class_class[e];
                    const int n = pops[cls];
                    if (n <= 0) continue;
                    weight += static_cast<double>(n) * cp.class_weight[cls];
                }
                double r;
                switch (family) {
                    case SolveFamily::kLog: r = weight / price - 1.0; break;
                    case SolveFamily::kPower:
                        r = std::pow(price / (weight * param), 1.0 / (param - 1.0));
                        break;
                    default: r = weight / price - param; break;
                }
                rate = std::clamp(r, lo, hi);
                if constexpr (obs::kEnabled)
                    if (obs_attached_) alloc_instr_.rate_closed_form->add(1);
            }
        }
    } else {
        // Reference path: same solver as the serial optimizer, fed from
        // the persistent terms buffer (no per-iteration allocation).
        auto& terms = flow_terms_[f];
        const std::size_t begin = cp.flow_class_begin[f];
        for (std::size_t e = begin; e < cp.flow_class_begin[f + 1]; ++e)
            terms[e - begin].population =
                static_cast<double>(pops[cp.flow_class_class[e]]);
        const utility::RateSolveResult result =
            utility::solve_rate_objective(terms, price, lo, hi, options_.rate_solve);
        rate = result.rate;
        if constexpr (obs::kEnabled) {
            if (obs_attached_) {
                switch (result.method) {
                    case utility::RateSolveMethod::kClosedForm:
                        alloc_instr_.rate_closed_form->add(1);
                        break;
                    case utility::RateSolveMethod::kNumeric:
                        alloc_instr_.rate_numeric->add(1);
                        break;
                    default: alloc_instr_.rate_bound->add(1); break;
                }
            }
        }
    }
    allocation_.rates[f] = rate;

    // One transcendental per flow; phase 2 turns it into per-class
    // U_j(r) = w_j * trans values (bitwise equal to the virtual calls).
    switch (family) {
        case SolveFamily::kLog: flow_value_trans_[f] = std::log1p(rate); break;
        case SolveFamily::kPower:
            flow_value_trans_[f] = std::pow(rate, cp.flow_family_param[f]);
            break;
        case SolveFamily::kShiftedLog:
            flow_value_trans_[f] = std::log1p(rate / cp.flow_family_param[f]);
            break;
        case SolveFamily::kGeneric: break;
    }
}

void ParallelLrgpEngine::ratePhase(std::size_t begin, std::size_t end) {
    [[maybe_unused]] std::uint64_t solves = 0;
    for (std::size_t f = begin; f < end; ++f) {
        if (!compiled_.flow_active[f]) continue;
        solveFlow(f);
        if constexpr (obs::kEnabled) ++solves;
    }
    if constexpr (obs::kEnabled)
        if (obs_attached_ && solves > 0) instr_.rate_solves->add(solves);
}

void ParallelLrgpEngine::ratePhaseInc(std::size_t begin, std::size_t end) {
    IncrementalState& inc = *inc_;
    for (std::size_t f = begin; f < end; ++f) {
        if (!compiled_.flow_active[f]) continue;
        if (!inc.flow_dirty[f]) continue;
        // Dirty inputs: re-solve and record whether the rate actually
        // moved.  A clean flow's rate (and its cached transcendental) is a
        // deterministic function of bitwise-unchanged populations and
        // prices, so skipping the solve reproduces it exactly.
        const double old_rate = allocation_.rates[f];
        solveFlow(f);
        inc.rate_moved[f] = allocation_.rates[f] != old_rate ? 1 : 0;
    }
}

double ParallelLrgpEngine::nodeBaseUsage(std::size_t b) const {
    const CompiledProblem& cp = compiled_;
    const std::vector<double>& rates = allocation_.rates;
    // Resource consumed by the flows themselves (F_{b,i} * r_i).
    double base_usage = 0.0;
    for (std::size_t e = cp.node_flow_begin[b]; e < cp.node_flow_begin[b + 1]; ++e) {
        const std::uint32_t f = cp.node_flow_flow[e];
        if (!cp.flow_active[f]) continue;
        base_usage += cp.node_flow_fcost[e] * rates[f];
    }
    return base_usage;
}

std::uint32_t ParallelLrgpEngine::buildNodeCands(std::size_t b, Cand* out) {
    const CompiledProblem& cp = compiled_;
    const std::vector<double>& rates = allocation_.rates;
    // Benefit-cost candidates; all classes at the node start at zero.
    std::uint32_t count = 0;
    for (std::size_t e = cp.node_class_begin[b]; e < cp.node_class_begin[b + 1]; ++e) {
        const std::uint32_t cls = cp.node_class_class[e];
        allocation_.populations[cls] = 0;
        class_utility_term_[cls] = 0.0;
        const std::uint32_t f = cp.class_flow[cls];
        if (!cp.flow_active[f] || cp.class_max_consumers[cls] == 0) continue;
        const double rate = rates[f];
        const double unit_cost = cp.class_gcost[cls] * rate;
        // Mirrors GreedyConsumerAllocator::benefitCosts: a zero rate
        // makes BC_j = U_j(0)/0 an undefined 0/0 that must not reach
        // the ranking (bitwise parity with the serial allocator).
        if (!(unit_cost > 0.0)) continue;
        const double value = cp.flow_family[f] == SolveFamily::kGeneric
                                 ? cp.class_utility[cls]->value(rate)
                                 : cp.class_weight[cls] * flow_value_trans_[f];
        out[count++] = {value / unit_cost, unit_cost, value, cp.class_max_consumers[cls], cls};
    }
    std::sort(out, out + count, BenefitCostOrder{});
    return count;
}

void ParallelLrgpEngine::admitNode(const Cand* cands, std::uint32_t count, double capacity,
                                   double base_usage, AdmitResult& result) {
    double remaining = capacity - base_usage;
    result.best_unmet_bc.reset();
    for (std::uint32_t i = 0; i < count; ++i) {
        const Cand& cand = cands[i];
        int admitted = 0;
        if (remaining > 0.0) {
            admitted = static_cast<int>(std::min(std::floor(remaining / cand.unit_cost),
                                                 static_cast<double>(cand.max_consumers)));
        }
        remaining -= admitted * cand.unit_cost;
        allocation_.populations[cand.cls] = admitted;
        // An unconditional store: 0.0 for unadmitted candidates is exactly
        // what the zeroing pass wrote, and the incremental re-admission
        // path (which skips that pass) relies on it.
        class_utility_term_[cand.cls] = admitted > 0 ? admitted * cand.value : 0.0;
        if (admitted < cand.max_consumers && !result.best_unmet_bc)
            result.best_unmet_bc = cand.ratio;
    }
    result.used = capacity - remaining;
}

void ParallelLrgpEngine::nodePhase(std::size_t begin, std::size_t end, NodeScratch& scratch) {
    const CompiledProblem& cp = compiled_;
    // Chunk-local tallies, flushed to the shared atomics once at the end.
    [[maybe_unused]] std::uint64_t candidates = 0, price_moves = 0;

    AdmitResult result;
    for (std::size_t b = begin; b < end; ++b) {
        const double base_usage = nodeBaseUsage(b);
        const double capacity = cp.node_capacity[b];
        const std::uint32_t count = buildNodeCands(b, scratch.cands.data());
        admitNode(scratch.cands.data(), count, capacity, base_usage, result);
        prices_.node[b] = node_prices_[b].update(result.best_unmet_bc, result.used, capacity);
        if constexpr (obs::kEnabled) {
            candidates += count;
            if (node_prices_[b].lastMoved()) ++price_moves;
        }
    }

    if constexpr (obs::kEnabled) {
        if (obs_attached_ && end > begin) {
            alloc_instr_.greedy_allocations->add(end - begin);
            alloc_instr_.greedy_candidates->add(candidates);
            instr_.node_price_moves->add(price_moves);
        }
    }
}

void ParallelLrgpEngine::nodePhaseInc(std::size_t begin, std::size_t end, NodeScratch& scratch) {
    const CompiledProblem& cp = compiled_;
    IncrementalState& inc = *inc_;
    [[maybe_unused]] std::uint64_t candidates = 0, price_moves = 0, rerun = 0;

    AdmitResult result;
    for (std::size_t b = begin; b < end; ++b) {
        const double capacity = cp.node_capacity[b];
        if (inc.node_rank_dirty[b] || inc.node_result_dirty[b]) {
            const std::size_t span_begin = cp.node_class_begin[b];
            const std::size_t span_end = cp.node_class_begin[b + 1];
            // Snapshot the span's populations to diff into pop_moved bits.
            for (std::size_t e = span_begin; e < span_end; ++e)
                scratch.old_pops[e - span_begin] = allocation_.populations[cp.node_class_class[e]];

            Cand* cache = inc.cands.data() + span_begin;
            if (inc.node_rank_dirty[b]) {
                inc.base_usage[b] = nodeBaseUsage(b);
                inc.cand_count[b] = buildNodeCands(b, cache);
            }
            // else: rates, active flags and ceilings at this node are
            // bitwise-unchanged, so the cached ordering, base usage and
            // candidate values are exactly what a rebuild would produce;
            // only the admission depends on the (changed) capacity.
            // Unranked classes already hold exact zeros from the last
            // rebuild, and admitNode overwrites every ranked class.
            admitNode(cache, inc.cand_count[b], capacity, inc.base_usage[b], result);
            inc.used[b] = result.used;
            inc.unmet_bc[b] = result.best_unmet_bc;

            for (std::size_t e = span_begin; e < span_end; ++e) {
                const std::uint32_t cls = cp.node_class_class[e];
                if (allocation_.populations[cls] != scratch.old_pops[e - span_begin])
                    inc.pop_moved[cls] = 1;
            }
            if constexpr (obs::kEnabled) {
                candidates += inc.cand_count[b];
                ++rerun;
            }
        }
        // Eq. 12 always runs: the controller is stateful (adaptive gamma),
        // and a stationary node's cached (BC(b,t), used_b) are bitwise the
        // values a re-admission would recompute.
        prices_.node[b] = node_prices_[b].update(inc.unmet_bc[b], inc.used[b], capacity);
        inc.node_price_moved[b] = node_prices_[b].lastMoved() ? 1 : 0;
        if constexpr (obs::kEnabled)
            if (node_prices_[b].lastMoved()) ++price_moves;
    }

    if constexpr (obs::kEnabled) {
        if (obs_attached_ && end > begin) {
            if (rerun > 0) {
                alloc_instr_.greedy_allocations->add(rerun);
                alloc_instr_.greedy_candidates->add(candidates);
            }
            instr_.node_price_moves->add(price_moves);
        }
    }
}

void ParallelLrgpEngine::linkPhase(std::size_t begin, std::size_t end) {
    const CompiledProblem& cp = compiled_;
    const std::vector<double>& rates = allocation_.rates;
    [[maybe_unused]] std::uint64_t price_moves = 0;
    for (std::size_t l = begin; l < end; ++l) {
        double usage = 0.0;
        for (std::size_t e = cp.link_flow_begin[l]; e < cp.link_flow_begin[l + 1]; ++e) {
            const std::uint32_t f = cp.link_flow_flow[e];
            if (!cp.flow_active[f]) continue;
            usage += cp.link_flow_cost[e] * rates[f];
        }
        const double old_price = prices_.link[l];
        prices_.link[l] = link_prices_[l].update(usage, cp.link_capacity[l]);
        if constexpr (obs::kEnabled)
            if (prices_.link[l] != old_price) ++price_moves;
    }
    if constexpr (obs::kEnabled)
        if (obs_attached_ && price_moves > 0) instr_.link_price_moves->add(price_moves);
}

void ParallelLrgpEngine::linkPhaseInc(std::size_t begin, std::size_t end) {
    const CompiledProblem& cp = compiled_;
    const std::vector<double>& rates = allocation_.rates;
    IncrementalState& inc = *inc_;
    [[maybe_unused]] std::uint64_t price_moves = 0;
    for (std::size_t l = begin; l < end; ++l) {
        if (inc.link_dirty[l]) {
            double usage = 0.0;
            for (std::size_t e = cp.link_flow_begin[l]; e < cp.link_flow_begin[l + 1]; ++e) {
                const std::uint32_t f = cp.link_flow_flow[e];
                if (!cp.flow_active[f]) continue;
                usage += cp.link_flow_cost[e] * rates[f];
            }
            inc.link_usage[l] = usage;
        }
        // Eq. 13 always runs on the (possibly cached) usage sum.
        prices_.link[l] = link_prices_[l].update(inc.link_usage[l], cp.link_capacity[l]);
        inc.link_price_moved[l] = link_prices_[l].lastMoved() ? 1 : 0;
        if constexpr (obs::kEnabled)
            if (link_prices_[l].lastMoved()) ++price_moves;
    }
    if constexpr (obs::kEnabled)
        if (obs_attached_ && price_moves > 0) instr_.link_price_moves->add(price_moves);
}

void ParallelLrgpEngine::seedDirtyFlows() {
    const CompiledProblem& cp = compiled_;
    IncrementalState& inc = *inc_;

    // A population move dirties its own flow only: the hop-class spans of
    // PB_i (Eq. 9) and the Eq. 7 terms both range over flow i's own
    // classes, so no other flow reads n_j.
    for (std::size_t c = 0; c < inc.pop_moved.size(); ++c) {
        if (!inc.pop_moved[c]) continue;
        inc.pop_moved[c] = 0;
        inc.flow_dirty[cp.class_flow[c]] = 1;
    }
    // A node price move dirties every flow with a hop at the node (PB_i).
    for (std::size_t b = 0; b < inc.node_price_moved.size(); ++b) {
        if (!inc.node_price_moved[b]) continue;
        inc.node_price_moved[b] = 0;
        for (std::size_t e = cp.node_flow_begin[b]; e < cp.node_flow_begin[b + 1]; ++e)
            inc.flow_dirty[cp.node_flow_flow[e]] = 1;
    }
    // A link price move dirties every flow routed over the link (PL_i).
    for (std::size_t l = 0; l < inc.link_price_moved.size(); ++l) {
        if (!inc.link_price_moved[l]) continue;
        inc.link_price_moved[l] = 0;
        for (std::size_t e = cp.link_flow_begin[l]; e < cp.link_flow_begin[l + 1]; ++e)
            inc.flow_dirty[cp.link_flow_flow[e]] = 1;
    }

    inc.dirty_flows_now = 0;
    inc.skipped_solves_now = 0;
    for (std::size_t f = 0; f < inc.flow_dirty.size(); ++f) {
        if (!cp.flow_active[f]) continue;
        if (inc.flow_dirty[f]) ++inc.dirty_flows_now;
        else ++inc.skipped_solves_now;
    }
    inc.totals.dirty_flows += inc.dirty_flows_now;
    inc.totals.skipped_solves += inc.skipped_solves_now;
}

void ParallelLrgpEngine::propagateRateMoves() {
    const CompiledProblem& cp = compiled_;
    IncrementalState& inc = *inc_;

    // A rate move invalidates the ranking (candidate values and unit
    // costs), the base usage and the admission outcome at every node the
    // flow visits, plus the usage sum of every link it is routed over.
    for (std::size_t f = 0; f < inc.rate_moved.size(); ++f) {
        if (!inc.rate_moved[f]) continue;
        inc.rate_moved[f] = 0;
        for (std::size_t h = cp.flow_node_begin[f]; h < cp.flow_node_begin[f + 1]; ++h) {
            inc.node_rank_dirty[cp.node_hop_node[h]] = 1;
            inc.node_result_dirty[cp.node_hop_node[h]] = 1;
        }
        for (std::size_t h = cp.flow_link_begin[f]; h < cp.flow_link_begin[f + 1]; ++h)
            inc.link_dirty[cp.link_hop_link[h]] = 1;
    }

    inc.dirty_nodes_now = 0;
    inc.rank_hits_now = 0;
    inc.node_hits_now = 0;
    for (std::size_t b = 0; b < inc.node_rank_dirty.size(); ++b) {
        if (inc.node_rank_dirty[b]) ++inc.dirty_nodes_now;
        else if (inc.node_result_dirty[b]) { ++inc.dirty_nodes_now; ++inc.rank_hits_now; }
        else ++inc.node_hits_now;
    }
    inc.totals.dirty_nodes += inc.dirty_nodes_now;
    inc.totals.rank_cache_hits += inc.rank_hits_now;
    inc.totals.node_cache_hits += inc.node_hits_now;

    inc.dirty_links_now = 0;
    for (std::uint8_t d : inc.link_dirty) inc.dirty_links_now += d;
    inc.totals.dirty_links += inc.dirty_links_now;
}

void ParallelLrgpEngine::dirtyFlowCascade(model::FlowId flow) {
    if (!inc_) return;
    const CompiledProblem& cp = compiled_;
    IncrementalState& inc = *inc_;
    const std::size_t f = flow.index();
    // The flow's rate and/or populations were edited in place: re-solve
    // it, re-run every node it visits (rank caches hold stale candidate
    // values) and re-sum every link it is routed over.
    inc.flow_dirty[f] = 1;
    for (std::size_t h = cp.flow_node_begin[f]; h < cp.flow_node_begin[f + 1]; ++h) {
        inc.node_rank_dirty[cp.node_hop_node[h]] = 1;
        inc.node_result_dirty[cp.node_hop_node[h]] = 1;
    }
    for (std::size_t h = cp.flow_link_begin[f]; h < cp.flow_link_begin[f + 1]; ++h)
        inc.link_dirty[cp.link_hop_link[h]] = 1;
}

void ParallelLrgpEngine::markAllDirty() {
    if (!inc_) return;
    IncrementalState& inc = *inc_;
    std::fill(inc.flow_dirty.begin(), inc.flow_dirty.end(), std::uint8_t{1});
    std::fill(inc.node_rank_dirty.begin(), inc.node_rank_dirty.end(), std::uint8_t{1});
    std::fill(inc.node_result_dirty.begin(), inc.node_result_dirty.end(), std::uint8_t{1});
    std::fill(inc.link_dirty.begin(), inc.link_dirty.end(), std::uint8_t{1});
}

const IterationRecord& ParallelLrgpEngine::step() {
    [[maybe_unused]] bool obs_on = false;
    bool timed = collect_phase_times_;
    if constexpr (obs::kEnabled) {
        obs_on = obs_attached_;
        if (tracer_) tracer_->beginIteration(static_cast<std::uint64_t>(iteration_) + 1);
        timed = timed || obs_on || (tracer_ && tracer_->sampling());
    }
    std::uint64_t t0 = timed ? now_ns() : 0;

    if (inc_) {
        // Serial pre-step: turn last iteration's moved bits into this
        // iteration's dirty flows (and count the sets for the stats).
        seedDirtyFlows();
        pool_->parallelFor(compiled_.flowCount(),
                           [this](std::size_t b, std::size_t e, int) { ratePhaseInc(b, e); });
        std::fill(inc_->flow_dirty.begin(), inc_->flow_dirty.end(), std::uint8_t{0});
        // Serial inter-phase step: rate moves dirty the dependent nodes
        // and links before their phases consume the bits.
        propagateRateMoves();
    } else {
        pool_->parallelFor(compiled_.flowCount(),
                           [this](std::size_t b, std::size_t e, int) { ratePhase(b, e); });
    }
    std::uint64_t t1 = timed ? now_ns() : 0;

    if (inc_) {
        pool_->parallelFor(compiled_.nodeCount(), [this](std::size_t b, std::size_t e, int w) {
            nodePhaseInc(b, e, *node_scratch_[static_cast<std::size_t>(w)]);
        });
        std::fill(inc_->node_rank_dirty.begin(), inc_->node_rank_dirty.end(), std::uint8_t{0});
        std::fill(inc_->node_result_dirty.begin(), inc_->node_result_dirty.end(),
                  std::uint8_t{0});
    } else {
        pool_->parallelFor(compiled_.nodeCount(), [this](std::size_t b, std::size_t e, int w) {
            nodePhase(b, e, *node_scratch_[static_cast<std::size_t>(w)]);
        });
    }
    std::uint64_t t2 = timed ? now_ns() : 0;

    if (inc_) {
        pool_->parallelFor(compiled_.linkCount(),
                           [this](std::size_t b, std::size_t e, int) { linkPhaseInc(b, e); });
        std::fill(inc_->link_dirty.begin(), inc_->link_dirty.end(), std::uint8_t{0});
    } else {
        pool_->parallelFor(compiled_.linkCount(),
                           [this](std::size_t b, std::size_t e, int) { linkPhase(b, e); });
    }
    std::uint64_t t3 = timed ? now_ns() : 0;

    // Serial epilogue: the Eq. 1 reduction in class-id order (skipped
    // classes hold an exact 0.0, so the sum is bitwise the serial scan).
    // When no node re-ran admission the terms are bitwise-unchanged, so
    // the incremental engine reuses the cached sum outright.
    double utility;
    if (inc_ && inc_->dirty_nodes_now == 0) {
        utility = inc_->cached_utility;
        ++inc_->totals.utility_cache_hits;
    } else {
        utility = 0.0;
        for (double term : class_utility_term_) utility += term;
        if (inc_) inc_->cached_utility = utility;
    }

    ++iteration_;
    last_record_.iteration = iteration_;
    last_record_.utility = utility;
    last_record_.allocation = allocation_;
    last_record_.prices = prices_;
    trace_.append(utility);
    detector_.addSample(utility);

    std::uint64_t t4 = 0;
    if (timed) {
        t4 = now_ns();
        if (collect_phase_times_) {
            phase_times_.rate_ns += t1 - t0;
            phase_times_.node_ns += t2 - t1;
            phase_times_.link_ns += t3 - t2;
            phase_times_.reduce_ns += t4 - t3;
            ++phase_times_.iterations;
        }
    }

    if constexpr (obs::kEnabled) {
        [[maybe_unused]] long long admitted_total = 0;
        if (obs_on || (tracer_ && tracer_->sampling()))
            for (int n : allocation_.populations) admitted_total += n;
        if (obs_on) {
            instr_.iterations->add(1);
            if (inc_) {
                // The incremental rate phase skips clean flows, so the
                // solve count comes from the serial pre-count rather than
                // the per-chunk tallies of the full phase.
                instr_.rate_solves->add(inc_->dirty_flows_now);
                inc_instr_.dirty_flows->add(inc_->dirty_flows_now);
                inc_instr_.skipped_solves->add(inc_->skipped_solves_now);
                inc_instr_.dirty_nodes->add(inc_->dirty_nodes_now);
                inc_instr_.node_cache_hits->add(inc_->node_hits_now);
                inc_instr_.rank_cache_hits->add(inc_->rank_hits_now);
                inc_instr_.dirty_links->add(inc_->dirty_links_now);
                if (inc_->dirty_nodes_now == 0) inc_instr_.utility_cache_hits->add(1);
            }
            instr_.admissions->add(static_cast<std::uint64_t>(admitted_total));
            alloc_instr_.greedy_admitted->add(static_cast<std::uint64_t>(admitted_total));
            instr_.utility->set(utility);
            instr_.admitted_consumers->set(static_cast<double>(admitted_total));
            instr_.phase_rate->observe(static_cast<double>(t1 - t0) * 1e-9);
            instr_.phase_node->observe(static_cast<double>(t2 - t1) * 1e-9);
            instr_.phase_link->observe(static_cast<double>(t3 - t2) * 1e-9);
            instr_.phase_reduce->observe(static_cast<double>(t4 - t3) * 1e-9);
            instr_.iter_seconds->observe(static_cast<double>(t4 - t0) * 1e-9);
        }
        if (tracer_ && tracer_->sampling()) {
            const double origin = tracer_->nowMicros();
            const auto us = [](std::uint64_t a, std::uint64_t b) {
                return static_cast<double>(b - a) * 1e-3;
            };
            const double ts0 = timed ? origin - us(t0, t4) : origin;
            tracer_->complete("rate_phase", "lrgp", 0, ts0, us(t0, t1));
            tracer_->complete("node_phase", "lrgp", 0, ts0 + us(t0, t1), us(t1, t2));
            tracer_->complete("link_phase", "lrgp", 0, ts0 + us(t0, t2), us(t2, t3));
            tracer_->complete("iteration", "lrgp", 0, ts0, us(t0, t4),
                              {{"iteration", static_cast<double>(iteration_)},
                               {"utility", utility},
                               {"admitted", static_cast<double>(admitted_total)}});
            tracer_->counterSample("utility", 0, origin, utility);
        }
    }
    return last_record_;
}

void ParallelLrgpEngine::attachObservability(obs::Registry* registry,
                                             obs::IterationTracer* tracer) {
    if constexpr (obs::kEnabled) {
        if (registry != nullptr) {
            instr_ = obs::SolverInstruments::resolve(*registry);
            alloc_instr_ = obs::AllocatorInstruments::resolve(*registry);
            pool_instr_ = obs::PoolInstruments::resolve(*registry);
            if (inc_) inc_instr_ = obs::IncrementalInstruments::resolve(*registry);
            pool_->setInstruments(&pool_instr_);
            obs_attached_ = true;
        } else {
            pool_->setInstruments(nullptr);
            obs_attached_ = false;
        }
        tracer_ = tracer;
    } else {
        (void)registry;
        (void)tracer;
    }
}

void ParallelLrgpEngine::noteConvergenceReset() {
    if constexpr (obs::kEnabled) {
        if (obs_attached_) instr_.convergence_resets->add(1);
        if (tracer_ && tracer_->sampling())
            tracer_->instant("convergence_reset", "lrgp", 0, tracer_->nowMicros());
    }
}

const IterationRecord& ParallelLrgpEngine::run(int iterations) {
    if (iterations <= 0)
        throw std::invalid_argument("ParallelLrgpEngine::run: iterations must be > 0");
    for (int i = 0; i < iterations; ++i) step();
    return last_record_;
}

std::optional<int> ParallelLrgpEngine::runUntilConverged(int max_iterations) {
    if (max_iterations <= 0)
        throw std::invalid_argument("ParallelLrgpEngine::runUntilConverged: bad max_iterations");
    for (int i = 0; i < max_iterations; ++i) {
        step();
        if (detector_.converged()) return static_cast<int>(detector_.convergedAt());
    }
    return std::nullopt;
}

void ParallelLrgpEngine::removeFlow(model::FlowId flow) {
    if (!spec_.flowActive(flow)) throw std::logic_error("removeFlow: flow already inactive");
    spec_.setFlowActive(flow, false);
    compiled_.setFlowActive(flow, false);
    allocation_.rates[flow.index()] = 0.0;
    for (model::ClassId j : spec_.classesOfFlow(flow)) allocation_.populations[j.index()] = 0;
    // The rate and populations changed in place: every node the flow
    // visits must re-rank (its candidates vanish, the base usage drops)
    // and every link must re-sum.
    dirtyFlowCascade(flow);
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::restoreFlow(model::FlowId flow) {
    if (spec_.flowActive(flow)) throw std::logic_error("restoreFlow: flow already active");
    spec_.setFlowActive(flow, true);
    compiled_.setFlowActive(flow, true);
    allocation_.rates[flow.index()] = spec_.flow(flow).rate_min;
    dirtyFlowCascade(flow);
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::setNodeCapacity(model::NodeId node, double capacity) {
    spec_.setNodeCapacity(node, capacity);
    compiled_.setNodeCapacity(node, capacity);
    // Rates, prices and candidate values are untouched, so the cached
    // ranking stays valid: only the admission outcome depends on the
    // capacity.  This is the rank-reuse path (result-dirty only).
    if (inc_) inc_->node_result_dirty[node.index()] = 1;
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::setLinkCapacity(model::LinkId link, double capacity) {
    spec_.setLinkCapacity(link, capacity);
    compiled_.setLinkCapacity(link, capacity);
    // Link usage is a pure function of the rates and the price controller
    // update always runs, so no dirty bits are needed: the controller
    // reads the new capacity on the next iteration and publishes a moved
    // bit if the price reacts.
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::setClassMaxConsumers(model::ClassId cls, int max_consumers) {
    spec_.setClassMaxConsumers(cls, max_consumers);
    compiled_.setClassMaxConsumers(cls, max_consumers);
    auto& n = allocation_.populations.at(cls.index());
    n = std::min(n, max_consumers);
    if (inc_) {
        // The ceiling is baked into the cached candidates, so the class's
        // node must re-rank; the (possibly clamped) population feeds the
        // owning flow's PB_i, so that flow must re-solve.
        inc_->node_rank_dirty[compiled_.class_node[cls.index()]] = 1;
        inc_->node_result_dirty[compiled_.class_node[cls.index()]] = 1;
        inc_->flow_dirty[compiled_.class_flow[cls.index()]] = 1;
    }
    detector_.reset();
    noteConvergenceReset();
}

void ParallelLrgpEngine::warmStart(const PriceVector& prices,
                                   const std::vector<int>* populations) {
    if (prices.node.size() != spec_.nodeCount() || prices.link.size() != spec_.linkCount())
        throw std::invalid_argument("warmStart: price vector sized for another problem");
    prices_ = prices;
    for (std::size_t b = 0; b < node_prices_.size(); ++b)
        node_prices_[b].reset(prices.node[b]);
    for (std::size_t l = 0; l < link_prices_.size(); ++l)
        link_prices_[l].reset(prices.link[l]);
    if (populations != nullptr) {
        if (populations->size() != spec_.classCount())
            throw std::invalid_argument("warmStart: populations sized for another problem");
        for (const model::ClassSpec& c : spec_.classes())
            allocation_.populations[c.id.index()] =
                std::min((*populations)[c.id.index()], c.max_consumers);
    }
    // Prices were replaced wholesale and populations possibly overwritten:
    // every cached output is suspect, so the next iteration is a full one.
    markAllDirty();
    detector_.reset();
    noteConvergenceReset();
}

EngineSnapshot ParallelLrgpEngine::snapshot() const {
    EngineSnapshot s;
    s.flow_count = spec_.flowCount();
    s.class_count = spec_.classCount();
    s.node_count = spec_.nodeCount();
    s.link_count = spec_.linkCount();
    s.iteration = iteration_;
    s.last_utility = last_record_.utility;

    s.flow_active.reserve(spec_.flowCount());
    for (const model::FlowSpec& f : spec_.flows())
        s.flow_active.push_back(f.active ? 1 : 0);
    s.node_capacity.reserve(spec_.nodeCount());
    for (const model::NodeSpec& b : spec_.nodes()) s.node_capacity.push_back(b.capacity);
    s.link_capacity.reserve(spec_.linkCount());
    for (const model::LinkSpec& l : spec_.links()) s.link_capacity.push_back(l.capacity);
    s.class_max_consumers.reserve(spec_.classCount());
    for (const model::ClassSpec& c : spec_.classes())
        s.class_max_consumers.push_back(c.max_consumers);

    s.rates = allocation_.rates;
    s.populations.assign(allocation_.populations.begin(), allocation_.populations.end());
    s.node_price = prices_.node;
    s.link_price = prices_.link;

    s.node_controllers.reserve(node_prices_.size());
    for (const NodePriceController& c : node_prices_) s.node_controllers.push_back(c.state());
    s.link_controllers.reserve(link_prices_.size());
    for (const LinkPriceController& c : link_prices_) s.link_controllers.push_back(c.state());
    s.detector = detector_.state();
    return s;
}

void ParallelLrgpEngine::restore(const EngineSnapshot& s) {
    if (s.flow_count != spec_.flowCount() || s.class_count != spec_.classCount() ||
        s.node_count != spec_.nodeCount() || s.link_count != spec_.linkCount())
        throw std::invalid_argument(
            "ParallelLrgpEngine::restore: snapshot shape does not match the problem");
    if (s.node_controllers.size() != node_prices_.size() ||
        s.link_controllers.size() != link_prices_.size() ||
        s.rates.size() != spec_.flowCount() || s.populations.size() != spec_.classCount() ||
        s.node_price.size() != spec_.nodeCount() || s.link_price.size() != spec_.linkCount() ||
        s.flow_active.size() != spec_.flowCount() ||
        s.node_capacity.size() != spec_.nodeCount() ||
        s.link_capacity.size() != spec_.linkCount() ||
        s.class_max_consumers.size() != spec_.classCount())
        throw std::invalid_argument("ParallelLrgpEngine::restore: malformed snapshot");

    // Dynamic spec state: bring the local problem mirror in line with
    // the one the snapshot was taken from.
    for (std::size_t f = 0; f < s.flow_active.size(); ++f) {
        const model::FlowId id{static_cast<std::uint32_t>(f)};
        const bool active = s.flow_active[f] != 0;
        if (spec_.flowActive(id) != active) {
            spec_.setFlowActive(id, active);
            compiled_.setFlowActive(id, active);
        }
    }
    for (std::size_t b = 0; b < s.node_capacity.size(); ++b) {
        const model::NodeId id{static_cast<std::uint32_t>(b)};
        spec_.setNodeCapacity(id, s.node_capacity[b]);
        compiled_.setNodeCapacity(id, s.node_capacity[b]);
    }
    for (std::size_t l = 0; l < s.link_capacity.size(); ++l) {
        const model::LinkId id{static_cast<std::uint32_t>(l)};
        spec_.setLinkCapacity(id, s.link_capacity[l]);
        compiled_.setLinkCapacity(id, s.link_capacity[l]);
    }
    for (std::size_t c = 0; c < s.class_max_consumers.size(); ++c) {
        const model::ClassId id{static_cast<std::uint32_t>(c)};
        spec_.setClassMaxConsumers(id, s.class_max_consumers[c]);
        compiled_.setClassMaxConsumers(id, s.class_max_consumers[c]);
    }

    allocation_.rates = s.rates;
    allocation_.populations.assign(s.populations.begin(), s.populations.end());
    prices_.node = s.node_price;
    prices_.link = s.link_price;
    for (std::size_t b = 0; b < node_prices_.size(); ++b)
        node_prices_[b].restoreState(s.node_controllers[b]);
    for (std::size_t l = 0; l < link_prices_.size(); ++l)
        link_prices_[l].restoreState(s.link_controllers[l]);
    detector_.restoreState(s.detector);

    iteration_ = static_cast<int>(s.iteration);
    last_record_.iteration = iteration_;
    last_record_.utility = s.last_utility;
    last_record_.allocation = allocation_;
    last_record_.prices = prices_;

    // Every cached phase output is gone (or stale): the next iteration
    // is a full one.  Recomputation reproduces the cached values bitwise
    // because their inputs were restored bitwise.
    markAllDirty();
}

double ParallelLrgpEngine::currentUtility() const {
    return model::total_utility(spec_, allocation_);
}

double ParallelLrgpEngine::nodeGamma(model::NodeId node) const {
    return node_prices_.at(node.index()).currentGamma();
}

}  // namespace lrgp::core
