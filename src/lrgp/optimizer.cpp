#include "lrgp/optimizer.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/scoped_timer.hpp"

namespace lrgp::core {

LrgpOptimizer::LrgpOptimizer(model::ProblemSpec spec, LrgpOptions options)
    : spec_(std::move(spec)),
      options_(options),
      rate_allocator_(spec_, options.rate_solve),
      greedy_allocator_(spec_),
      allocation_(model::Allocation::minimal(spec_)),
      prices_(PriceVector::zeros(spec_.nodeCount(), spec_.linkCount())),
      detector_(options.convergence) {
    node_prices_.reserve(spec_.nodeCount());
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        node_prices_.emplace_back(options_.gamma, options_.initial_node_price,
                                  options_.node_price_rule);
    link_prices_.reserve(spec_.linkCount());
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        link_prices_.emplace_back(options_.link_gamma, options_.initial_link_price);
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        prices_.node[b] = options_.initial_node_price;
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        prices_.link[l] = options_.initial_link_price;
}

const IterationRecord& LrgpOptimizer::step() {
    // Observability bookkeeping (compiled out without LRGP_OBS; one
    // branch per iteration when nothing is attached).
    [[maybe_unused]] bool obs_on = false;
    [[maybe_unused]] std::uint64_t t0 = 0, t1 = 0, t2 = 0, t3 = 0;
    [[maybe_unused]] std::uint64_t rate_solves = 0;
    [[maybe_unused]] std::uint64_t node_moves = 0, link_moves = 0;
    [[maybe_unused]] long long admitted_total = 0;
    if constexpr (obs::kEnabled) {
        obs_on = obs_attached_;
        if (tracer_) tracer_->beginIteration(static_cast<std::uint64_t>(iteration_) + 1);
        if (obs_on) t0 = obs::monotonic_ns();
    }

    // 1. Rate allocation at each active flow source (Algorithm 1): uses
    //    the previous iteration's populations and prices.
    for (const model::FlowSpec& f : spec_.flows()) {
        if (!f.active) continue;
        allocation_.rates[f.id.index()] =
            rate_allocator_.computeRate(f.id, allocation_.populations, prices_).rate;
        if constexpr (obs::kEnabled) ++rate_solves;
    }
    if constexpr (obs::kEnabled)
        if (obs_on) t1 = obs::monotonic_ns();

    // 2. Greedy consumer allocation at each node (Algorithm 2), and
    // 3. node price update (Eq. 12).
    for (const model::NodeSpec& b : spec_.nodes()) {
        const NodeAllocationResult result = greedy_allocator_.allocate(b.id, allocation_.rates);
        for (const auto& [cls, n] : result.populations) allocation_.populations[cls.index()] = n;
        prices_.node[b.id.index()] =
            node_prices_[b.id.index()].update(result.best_unmet_bc, result.used, b.capacity);
        if constexpr (obs::kEnabled)
            if (obs_on && node_prices_[b.id.index()].lastMoved()) ++node_moves;
    }
    if constexpr (obs::kEnabled)
        if (obs_on) t2 = obs::monotonic_ns();

    // 4. Link price update (Eq. 13) with the fresh rates.
    for (const model::LinkSpec& l : spec_.links()) {
        const double usage = model::link_usage(spec_, allocation_, l.id);
        prices_.link[l.id.index()] = link_prices_[l.id.index()].update(usage, l.capacity);
        if constexpr (obs::kEnabled)
            if (obs_on && link_prices_[l.id.index()].lastMoved()) ++link_moves;
    }
    if constexpr (obs::kEnabled)
        if (obs_on) t3 = obs::monotonic_ns();

    ++iteration_;
    last_record_.iteration = iteration_;
    last_record_.utility = model::total_utility(spec_, allocation_);
    last_record_.allocation = allocation_;
    last_record_.prices = prices_;
    trace_.append(last_record_.utility);
    detector_.addSample(last_record_.utility);

    if constexpr (obs::kEnabled) {
        if (obs_on) {
            const std::uint64_t t4 = obs::monotonic_ns();
            instr_.iterations->add(1);
            instr_.rate_solves->add(rate_solves);
            instr_.node_price_moves->add(node_moves);
            instr_.link_price_moves->add(link_moves);
            for (int n : allocation_.populations) admitted_total += n;
            instr_.admissions->add(static_cast<std::uint64_t>(admitted_total));
            instr_.utility->set(last_record_.utility);
            instr_.admitted_consumers->set(static_cast<double>(admitted_total));
            instr_.phase_rate->observe(static_cast<double>(t1 - t0) * 1e-9);
            instr_.phase_node->observe(static_cast<double>(t2 - t1) * 1e-9);
            instr_.phase_link->observe(static_cast<double>(t3 - t2) * 1e-9);
            instr_.phase_reduce->observe(static_cast<double>(t4 - t3) * 1e-9);
            instr_.iter_seconds->observe(static_cast<double>(t4 - t0) * 1e-9);
        }
        if (tracer_ && tracer_->sampling()) {
            const double origin = tracer_->nowMicros();
            const auto us = [&](std::uint64_t a, std::uint64_t b) {
                return static_cast<double>(b - a) * 1e-3;
            };
            const std::uint64_t t4 = obs_on ? obs::monotonic_ns() : 0;
            const double ts0 = origin - us(t0, t4);
            tracer_->complete("rate_phase", "lrgp", 0, ts0, us(t0, t1));
            tracer_->complete("node_phase", "lrgp", 0, ts0 + us(t0, t1), us(t1, t2));
            tracer_->complete("link_phase", "lrgp", 0, ts0 + us(t0, t2), us(t2, t3));
            tracer_->complete("iteration", "lrgp", 0, ts0, us(t0, t4),
                              {{"iteration", static_cast<double>(iteration_)},
                               {"utility", last_record_.utility},
                               {"admitted", static_cast<double>(admitted_total)}});
            tracer_->counterSample("utility", 0, origin, last_record_.utility);
        }
    }
    return last_record_;
}

void LrgpOptimizer::attachObservability(obs::Registry* registry, obs::IterationTracer* tracer) {
    if constexpr (obs::kEnabled) {
        if (registry != nullptr) {
            instr_ = obs::SolverInstruments::resolve(*registry);
            alloc_instr_ = obs::AllocatorInstruments::resolve(*registry);
            rate_allocator_.setInstruments(&alloc_instr_);
            greedy_allocator_.setInstruments(&alloc_instr_);
            obs_attached_ = true;
        } else {
            rate_allocator_.setInstruments(nullptr);
            greedy_allocator_.setInstruments(nullptr);
            obs_attached_ = false;
        }
        tracer_ = tracer;
    } else {
        (void)registry;
        (void)tracer;
    }
}

void LrgpOptimizer::noteConvergenceReset() {
    if constexpr (obs::kEnabled) {
        if (obs_attached_) instr_.convergence_resets->add(1);
        if (tracer_ && tracer_->sampling())
            tracer_->instant("convergence_reset", "lrgp", 0, tracer_->nowMicros());
    }
}

const IterationRecord& LrgpOptimizer::run(int iterations) {
    if (iterations <= 0) throw std::invalid_argument("LrgpOptimizer::run: iterations must be > 0");
    for (int i = 0; i < iterations; ++i) step();
    return last_record_;
}

std::optional<int> LrgpOptimizer::runUntilConverged(int max_iterations) {
    if (max_iterations <= 0)
        throw std::invalid_argument("LrgpOptimizer::runUntilConverged: bad max_iterations");
    for (int i = 0; i < max_iterations; ++i) {
        step();
        if (detector_.converged()) return static_cast<int>(detector_.convergedAt());
    }
    return std::nullopt;
}

void LrgpOptimizer::removeFlow(model::FlowId flow) {
    if (!spec_.flowActive(flow)) throw std::logic_error("removeFlow: flow already inactive");
    spec_.setFlowActive(flow, false);
    allocation_.rates[flow.index()] = 0.0;
    for (model::ClassId j : spec_.classesOfFlow(flow)) allocation_.populations[j.index()] = 0;
    // Convergence restarts: the utility level shifts discontinuously.
    detector_.reset();
    noteConvergenceReset();
}

void LrgpOptimizer::restoreFlow(model::FlowId flow) {
    if (spec_.flowActive(flow)) throw std::logic_error("restoreFlow: flow already active");
    spec_.setFlowActive(flow, true);
    allocation_.rates[flow.index()] = spec_.flow(flow).rate_min;
    detector_.reset();
    noteConvergenceReset();
}

void LrgpOptimizer::setNodeCapacity(model::NodeId node, double capacity) {
    spec_.setNodeCapacity(node, capacity);
    detector_.reset();
    noteConvergenceReset();
}

void LrgpOptimizer::setLinkCapacity(model::LinkId link, double capacity) {
    spec_.setLinkCapacity(link, capacity);
    detector_.reset();
    noteConvergenceReset();
}

void LrgpOptimizer::setClassMaxConsumers(model::ClassId cls, int max_consumers) {
    spec_.setClassMaxConsumers(cls, max_consumers);
    // A shrunk ceiling must evict immediately so the allocation stays
    // within bounds even before the next greedy pass.
    auto& n = allocation_.populations.at(cls.index());
    n = std::min(n, max_consumers);
    detector_.reset();
    noteConvergenceReset();
}

void LrgpOptimizer::warmStart(const PriceVector& prices,
                              const std::vector<int>* populations) {
    if (prices.node.size() != spec_.nodeCount() || prices.link.size() != spec_.linkCount())
        throw std::invalid_argument("warmStart: price vector sized for another problem");
    prices_ = prices;
    for (std::size_t b = 0; b < node_prices_.size(); ++b)
        node_prices_[b].reset(prices.node[b]);
    for (std::size_t l = 0; l < link_prices_.size(); ++l)
        link_prices_[l].reset(prices.link[l]);
    if (populations != nullptr) {
        if (populations->size() != spec_.classCount())
            throw std::invalid_argument("warmStart: populations sized for another problem");
        for (const model::ClassSpec& c : spec_.classes())
            allocation_.populations[c.id.index()] =
                std::min((*populations)[c.id.index()], c.max_consumers);
    }
    detector_.reset();
    noteConvergenceReset();
}

double LrgpOptimizer::currentUtility() const { return model::total_utility(spec_, allocation_); }

double LrgpOptimizer::nodeGamma(model::NodeId node) const {
    return node_prices_.at(node.index()).currentGamma();
}

}  // namespace lrgp::core
