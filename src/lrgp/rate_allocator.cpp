#include "lrgp/rate_allocator.hpp"

#include <stdexcept>

namespace lrgp::core {

double RateAllocator::totalPrice(model::FlowId flow, const std::vector<int>& populations,
                                 const PriceVector& prices) const {
    const model::FlowSpec& f = spec_->flow(flow);

    // PL_i = sum over traversed links of L_{l,i} * p_l.
    double pl = 0.0;
    for (const model::FlowLinkHop& hop : f.links)
        pl += hop.link_cost * prices.link.at(hop.link.index());

    // PB_i = sum over reached nodes of (F_{b,i} + sum_j G_{b,j} n_j) * p_b,
    // the per-unit-rate resource the flow consumes at each node, priced.
    double pb = 0.0;
    for (const model::FlowNodeHop& hop : f.nodes) {
        double per_rate_cost = hop.flow_node_cost;
        for (model::ClassId j : spec_->classesOfFlow(flow)) {
            const model::ClassSpec& c = spec_->consumerClass(j);
            if (c.node == hop.node)
                per_rate_cost += c.consumer_cost * populations.at(j.index());
        }
        pb += per_rate_cost * prices.node.at(hop.node.index());
    }
    return pl + pb;
}

utility::RateSolveResult RateAllocator::computeRate(model::FlowId flow,
                                                    const std::vector<int>& populations,
                                                    const PriceVector& prices) const {
    const model::FlowSpec& f = spec_->flow(flow);
    if (!f.active) throw std::logic_error("RateAllocator: flow is inactive");

    std::vector<utility::WeightedUtility> terms;
    const std::vector<model::ClassId>& classes = spec_->classesOfFlow(flow);
    terms.reserve(classes.size());
    for (model::ClassId j : classes) {
        const model::ClassSpec& c = spec_->consumerClass(j);
        terms.push_back({static_cast<double>(populations.at(j.index())), c.utility});
    }

    const double price = totalPrice(flow, populations, prices);
    const utility::RateSolveResult result =
        utility::solve_rate_objective(terms, price, f.rate_min, f.rate_max, solve_options_);
    if constexpr (obs::kEnabled) {
        if (instruments_) {
            switch (result.method) {
                case utility::RateSolveMethod::kClosedForm:
                    instruments_->rate_closed_form->add(1);
                    break;
                case utility::RateSolveMethod::kNumeric:
                    instruments_->rate_numeric->add(1);
                    break;
                default:
                    instruments_->rate_bound->add(1);
                    break;
            }
        }
    }
    return result;
}

}  // namespace lrgp::core
