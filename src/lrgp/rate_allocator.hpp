// LRGP rate allocation (Algorithm 1, Section 3.1).
//
// For each flow i, given the current consumer populations n_j and the
// node/link prices, the source node maximizes the Lagrangian subproblem
// (Eq. 7):   sum_{j in C_i} n_j U_j(r) - r (PL_i + PB_i),
// where PL_i = sum_l L_{l,i} p_l  (Eq. 8) and
//       PB_i = sum_b (F_{b,i} + sum_j G_{b,j} n_j) p_b  (Eq. 9).
//
// Purity contract: the solve is a deterministic, state-free function of
// (populations of the flow's OWN classes, the node prices on its route,
// the link prices on its route, the flow's static spec).  Both sums
// range over the flow's own classes only — no other flow's populations
// enter.  The incremental engine's skip rule leans on exactly this: if
// those inputs are bitwise-unchanged since the last iteration, the
// previous rate (and its cached transcendental) IS the result of
// re-solving, so the solve can be skipped without perturbing the
// trajectory.  Any future state added here (caches, iteration counters)
// must preserve this property or widen the engine's dirty rules.
#pragma once

#include <vector>

#include "lrgp/prices.hpp"
#include "model/problem.hpp"
#include "obs/instruments.hpp"
#include "utility/rate_objective.hpp"

namespace lrgp::core {

/// Stateless per-flow rate computation.  Holds only a reference to the
/// problem; safe to share across flows.
class RateAllocator {
public:
    explicit RateAllocator(const model::ProblemSpec& spec,
                           utility::RateSolveOptions solve_options = {})
        : spec_(&spec), solve_options_(solve_options) {}

    /// PL_i + PB_i: the total per-unit-rate price flow i pays (Eqs. 8, 9).
    [[nodiscard]] double totalPrice(model::FlowId flow, const std::vector<int>& populations,
                                    const PriceVector& prices) const;

    /// The new rate r_i in [r_min, r_max] maximizing Eq. 7, plus which
    /// solve path produced it.
    [[nodiscard]] utility::RateSolveResult computeRate(model::FlowId flow,
                                                       const std::vector<int>& populations,
                                                       const PriceVector& prices) const;

    /// Optional observability counters (solve-path breakdown); nullptr
    /// (the default) keeps computeRate() uninstrumented.
    void setInstruments(const obs::AllocatorInstruments* instruments) noexcept {
        instruments_ = instruments;
    }

private:
    const model::ProblemSpec* spec_;
    utility::RateSolveOptions solve_options_;
    const obs::AllocatorInstruments* instruments_ = nullptr;
};

}  // namespace lrgp::core
