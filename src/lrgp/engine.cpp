#include "lrgp/engine.hpp"

#include <stdexcept>
#include <utility>

#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"

namespace lrgp::core {

std::unique_ptr<Engine> make_engine(EngineKind kind, model::ProblemSpec spec,
                                    LrgpOptions options, int threads) {
    switch (kind) {
        case EngineKind::kSerial:
            return std::make_unique<LrgpOptimizer>(std::move(spec), options);
        case EngineKind::kCompiled: {
            EngineConfig config;
            config.threads = threads;
            return std::make_unique<ParallelLrgpEngine>(std::move(spec), options, config);
        }
        case EngineKind::kIncremental: {
            EngineConfig config;
            config.threads = threads;
            config.incremental = true;
            return std::make_unique<ParallelLrgpEngine>(std::move(spec), options, config);
        }
    }
    throw std::invalid_argument("make_engine: unknown engine kind");
}

}  // namespace lrgp::core
