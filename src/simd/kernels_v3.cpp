// x86-64-v3 vector variant: the same kernels.inl lowered with
// -march=x86-64-v3 (AVX2 class).  Only added to the build when the
// compiler accepts the flag; selected at runtime when the CPU supports
// it.  Still -ffp-contract=off: identical lane arithmetic, wider lanes.
#define LRGP_SIMD_NS v3_impl
#define LRGP_SIMD_NAME "x86-64-v3"
#define LRGP_SIMD_KERNELS v3_kernels
#include "simd/kernels.inl"
