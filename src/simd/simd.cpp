#include "simd/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.hpp"

namespace lrgp::simd {
namespace {

std::atomic<bool> g_force_scalar{false};

enum class EnvPin : std::uint8_t { kAuto, kBase, kScalar };

EnvPin env_pin() {
    const char* e = std::getenv("LRGP_SIMD");
    if (e == nullptr || *e == '\0' || std::strcmp(e, "auto") == 0) return EnvPin::kAuto;
    if (std::strcmp(e, "base") == 0) return EnvPin::kBase;
    if (std::strcmp(e, "off") == 0 || std::strcmp(e, "scalar") == 0) return EnvPin::kScalar;
    return EnvPin::kAuto;
}

bool cpu_has_v3() {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

}  // namespace

const char* detected_isa() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx512f")) return "avx512";
    if (__builtin_cpu_supports("avx2")) return "avx2";
    if (__builtin_cpu_supports("sse2")) return "sse2";
    return "scalar";
#else
    return "unknown";
#endif
}

const char* compiled_isa() noexcept {
#if defined(__AVX512F__)
    return "avx512";
#elif defined(__AVX2__)
    return "avx2";
#elif defined(__SSE2__) || defined(__x86_64__)
    return "sse2";
#else
    return "portable";
#endif
}

Variant active_variant() noexcept {
    if (g_force_scalar.load(std::memory_order_relaxed)) return Variant::kScalar;
    switch (env_pin()) {
        case EnvPin::kScalar:
            return Variant::kScalar;
        case EnvPin::kBase:
            return Variant::kBase;
        case EnvPin::kAuto:
            break;
    }
#if defined(LRGP_SIMD_HAVE_V3)
    if (cpu_has_v3()) return Variant::kV3;
#endif
    return Variant::kBase;
}

const char* active_variant_name() noexcept {
    switch (active_variant()) {
        case Variant::kScalar:
            return "scalar";
        case Variant::kV3:
            return "x86-64-v3";
        case Variant::kBase:
            break;
    }
    return "base";
}

void force_scalar(bool on) noexcept { g_force_scalar.store(on, std::memory_order_relaxed); }

bool scalar_forced() noexcept {
    return g_force_scalar.load(std::memory_order_relaxed) || env_pin() == EnvPin::kScalar;
}

const Kernels& active_kernels() noexcept {
    switch (active_variant()) {
        case Variant::kScalar:
            return scalar_kernels();
#if defined(LRGP_SIMD_HAVE_V3)
        case Variant::kV3:
            return v3_kernels();
#endif
        default:
            return base_kernels();
    }
}

}  // namespace lrgp::simd
