// Kernel table of the vectorized solver core.
//
// The three LRGP phase kernels (rate stationarity, node benefit-cost
// scoring, link usage) plus the reduction helpers are free functions
// over raw structure-of-arrays views, collected into a table of
// function pointers.  kernels.inl defines them once; kernels_base.cpp
// and kernels_v3.cpp compile that definition with different -march
// flags, and simd.cpp dispatches to the widest variant the CPU
// supports (or the scalar reference set when vectorization is forced
// off).  All views use sentinel-padded arrays: CSR spans are padded to
// a whole number of vector lanes with entries that contribute an exact
// +0.0 (zero weight / zero cost) and index a sentinel slot holding a
// zero rate/population, so the vector loops never read past a span and
// never change a sum (docs/algorithm.md documents the argument).
#pragma once

#include <cstddef>
#include <cstdint>

#include "simd/simd.hpp"

namespace lrgp::simd {

/// How cross-entity floating-point sums are ordered.
enum class Reduction : std::uint8_t {
    kSerial,  ///< serial left-to-right in entity order (bitwise mode)
    kTree,    ///< 8-accumulator tree sums (tolerance mode)
};

/// Solve family mirror of core::SolveFamily (kept as raw uint8 so the
/// kernel TUs do not pull engine headers).  Values must match.
enum : std::uint8_t {
    kFamGeneric = 0,
    kFamLog = 1,
    kFamPower = 2,
    kFamShiftedLog = 3,
};

/// Per-iteration tallies the kernels accumulate (vector occupancy and
/// obs counters); the engine folds them into VectorStats / lrgp_vec_*.
struct KernelTallies {
    std::uint64_t lanes_occupied = 0;  ///< real elements processed in vector lanes
    std::uint64_t lanes_masked = 0;    ///< padded lanes carried along (waste)
    std::uint64_t bound_solves = 0;    ///< flows resolved at a rate bound
    std::uint64_t closed_solves = 0;   ///< flows resolved by the closed form
};

/// Structure-of-arrays view of the rate phase (one LRGP flow solve per
/// active closed-form flow; kGeneric flows are skipped — the engine
/// routes them through the reference solver / the vectorized scan).
struct RateView {
    std::size_t flow_count = 0;
    const std::uint8_t* flow_active = nullptr;
    const std::uint8_t* flow_family = nullptr;  ///< kFam* values
    /// Combined shift of the log family: 1.0 for kFamLog, the scale for
    /// kFamShiftedLog, the exponent for kFamPower.
    const double* flow_param = nullptr;
    const double* rate_min = nullptr;
    const double* rate_max = nullptr;

    // Padded per-flow link hops (PL_i).
    const std::size_t* fl_begin = nullptr;
    const std::uint32_t* fl_link = nullptr;  ///< sentinel link for pads
    const double* fl_cost = nullptr;         ///< 0.0 for pads

    // Per-flow node hops with padded nested class sub-spans (PB_i).
    const std::size_t* fn_begin = nullptr;
    const std::uint32_t* fn_node = nullptr;
    const double* fn_fcost = nullptr;
    const std::size_t* hc_begin = nullptr;
    const double* hc_gcost = nullptr;  ///< 0.0 for pads

    // Padded per-flow class spans (Eq. 7 terms).
    const std::size_t* fc_begin = nullptr;
    const double* fc_weight = nullptr;   ///< w_j, 0.0 for pads
    const double* fc_dweight = nullptr;  ///< w_j * k, 0.0 for pads

    // Span-ordered population mirrors (int32 counts, pads hold 0),
    // maintained at admission-write time so the exact-mode derivative
    // walks stream populations with contiguous loads instead of
    // gathering them per class index.
    const std::int32_t* hc_pop = nullptr;  ///< hop-class span order
    const std::int32_t* fc_pop = nullptr;  ///< flow-class span order

    // Per-flow Eq. 7 aggregates the engine's admission pass maintains
    // for tolerance mode (the node phase owns every population write
    // and every node price move, so it folds the PB price term and the
    // stationarity sums into per-flow accumulators as it goes; the
    // rate solve then reads O(1) scalars per flow instead of walking
    // the class spans).  Unused in exact mode.
    const double* flow_pb = nullptr;      ///< sum_b price_b (fcost + sum gcost n)
    const double* flow_w = nullptr;       ///< sum n_j w_j over admitted classes
    const double* flow_d = nullptr;       ///< sum n_j w_j k (power derivative)
    const std::int64_t* flow_n = nullptr; ///< sum n_j (integer, exact)

    // Price state (gathered per hop; hop spans are short).
    const double* node_price = nullptr;
    const double* link_price = nullptr;

    double* rates = nullptr;  ///< out: flow_count + 1 (sentinel stays 0)
    double* trans = nullptr;  ///< out: per-flow transcendental of the new rate

    // Engine-owned scratch, each >= the widest padded span.
    double* scratch_a = nullptr;
    double* scratch_b = nullptr;

    Reduction reduction = Reduction::kSerial;
    bool allow_closed_form = true;
};

/// Structure-of-arrays view of the node phase's elementwise candidate
/// scoring (unit cost, value, benefit-cost ratio per node-class entry).
/// Ranking, admission and Eq. 12 stay scalar in the engine.
struct NodeView {
    const std::size_t* nc_begin = nullptr;   ///< padded CSR by node
    const std::uint32_t* nc_cls = nullptr;   ///< sentinel class for pads
    const double* nc_gcost = nullptr;        ///< G_{b,j}, 0.0 for pads
    const double* nc_weight = nullptr;       ///< w_j, 0.0 for pads
    const std::uint32_t* nc_flow = nullptr;  ///< sentinel flow for pads
    const double* rates = nullptr;           ///< flow_count + 1, sentinel 0.0
    const double* trans = nullptr;           ///< flow_count + 1, sentinel 0.0
    /// Outputs, indexed by (position - nc_begin[b]); sized to the widest
    /// padded node span.
    double* out_unit = nullptr;
    double* out_value = nullptr;
    double* out_ratio = nullptr;
};

/// Structure-of-arrays view of the link phase usage sums (Eq. 13 input).
struct LinkView {
    const std::size_t* lf_begin = nullptr;   ///< padded CSR by link
    const std::uint32_t* lf_flow = nullptr;  ///< sentinel flow for pads
    const double* lf_cost = nullptr;         ///< L_{l,i}, 0.0 for pads
    const double* rates = nullptr;           ///< flow_count + 1, sentinel 0.0
    double* scratch = nullptr;               ///< >= widest padded link span
    double* usage = nullptr;                 ///< out, by link
    Reduction reduction = Reduction::kSerial;
};

// ---------------------------------------------------------------------------
// Batched multi-instance views: kWidth independent problem instances
// sharing one topology, one instance per SIMD lane.  All per-entity
// state is lane-major (entry e of instance k lives at [e * kWidth + k]),
// and every reduction runs per lane in serial entity order — each
// lane's accumulation order is exactly the serial optimizer's, so a
// batched lane reproduces its solo serial run bitwise.
// ---------------------------------------------------------------------------

struct BatchRateView {
    std::size_t flow_count = 0;
    const std::uint8_t* flow_family = nullptr;
    const double* flow_param8 = nullptr;  ///< lane-major family param/shift
    const double* rate_min8 = nullptr;
    const double* rate_max8 = nullptr;

    // Shared (unpadded) CSR topology.
    const std::size_t* fl_begin = nullptr;
    const std::uint32_t* fl_link = nullptr;
    const double* fl_cost = nullptr;
    const std::size_t* fn_begin = nullptr;
    const std::uint32_t* fn_node = nullptr;
    const double* fn_fcost = nullptr;
    const std::size_t* hc_begin = nullptr;
    const std::uint32_t* hc_cls = nullptr;
    const double* hc_gcost = nullptr;
    const std::size_t* fc_begin = nullptr;
    const std::uint32_t* fc_cls = nullptr;
    const double* fc_weight8 = nullptr;   ///< lane-major w_j
    const double* fc_dweight8 = nullptr;  ///< lane-major w_j * k

    const double* node_price8 = nullptr;
    const double* link_price8 = nullptr;
    const double* pop8 = nullptr;  ///< lane-major populations as doubles

    double* rates8 = nullptr;  ///< out, lane-major
};

struct BatchNodeView {
    const std::size_t* nc_begin = nullptr;  ///< unpadded CSR by node
    const std::uint32_t* nc_cls = nullptr;
    const double* nc_gcost = nullptr;
    const double* nc_weight8 = nullptr;  ///< lane-major w_j
    const std::uint32_t* nc_flow = nullptr;
    const double* rates8 = nullptr;
    const double* trans8 = nullptr;
    /// Lane-major outputs indexed by (position - nc_begin[b]) * kWidth.
    double* out_unit8 = nullptr;
    double* out_value8 = nullptr;
    double* out_ratio8 = nullptr;
};

struct BatchLinkView {
    const std::size_t* lf_begin = nullptr;
    const std::uint32_t* lf_flow = nullptr;
    const double* lf_cost = nullptr;
    const double* rates8 = nullptr;
    double* usage8 = nullptr;  ///< out, lane-major by link
};

/// The dispatchable kernel set.  One instance per compiled variant
/// (scalar reference, baseline vector, x86-64-v3 vector).
struct Kernels {
    const char* name;  ///< "scalar", "base", "x86-64-v3"

    /// Phase 1 over [begin, end): solves every active non-generic flow
    /// (closed-form families) and writes rates + transcendentals.
    void (*rate_phase)(const RateView&, std::size_t begin, std::size_t end, KernelTallies&);
    /// Elementwise candidate scoring for one node's class span.
    void (*node_cands)(const NodeView&, std::size_t nc_pad_begin, std::size_t nc_pad_end,
                       KernelTallies&);
    /// Phase 3 usage sums over links [begin, end).
    void (*link_usage)(const LinkView&, std::size_t begin, std::size_t end, KernelTallies&);
    /// Serial left-to-right sum (bitwise the scalar engines' epilogue).
    double (*sum_serial)(const double*, std::size_t);
    /// 8-accumulator tree sum (tolerance mode).
    double (*sum_tree)(const double*, std::size_t);
    /// int -> double population mirror (values exact, n < 2^53).
    void (*pops_to_f64)(const int*, double*, std::size_t);

    /// Batched lockstep solve of the closed-form flows of all lanes.
    void (*batch_rate_phase)(const BatchRateView&, std::size_t begin, std::size_t end,
                             KernelTallies&);
    void (*batch_node_cands)(const BatchNodeView&, std::size_t span_begin, std::size_t span_end);
    void (*batch_link_usage)(const BatchLinkView&, std::size_t begin, std::size_t end);
    /// Per-lane serial class-order sum of lane-major terms into out[8].
    void (*batch_sum_serial)(const double* terms8, std::size_t count, double* out8);
};

/// The table selected by LRGP_SIMD / CPU detection (simd.cpp).
[[nodiscard]] const Kernels& active_kernels() noexcept;

/// Variant tables (for tests that pin a specific implementation).
[[nodiscard]] const Kernels& scalar_kernels() noexcept;
[[nodiscard]] const Kernels& base_kernels() noexcept;
#if defined(LRGP_SIMD_HAVE_V3)
[[nodiscard]] const Kernels& v3_kernels() noexcept;
#endif

}  // namespace lrgp::simd
