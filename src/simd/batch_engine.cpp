#include "simd/batch_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lrgp/greedy_allocator.hpp"

namespace lrgp::simd {

namespace {

// Structure arrays (and the shared cost matrices) must be identical
// across lanes; per-lane freedom lives in weights/bounds/capacities.
template <typename T>
void require_same(const std::vector<T>& a, const std::vector<T>& b, const char* what) {
    if (a != b)
        throw std::invalid_argument(std::string("BatchedVectorEngine: instances differ in ") +
                                    what);
}

}  // namespace

BatchedVectorEngine::BatchedVectorEngine(std::vector<model::ProblemSpec> specs,
                                         core::LrgpOptions options)
    : kernels_(&active_kernels()), options_(options), specs_(std::move(specs)) {
    if (specs_.empty() || specs_.size() > kWidth)
        throw std::invalid_argument("BatchedVectorEngine: need 1..kWidth instances");
    if (!options_.rate_solve.allow_closed_form)
        throw std::invalid_argument(
            "BatchedVectorEngine: closed forms must stay enabled in batched mode");
    instances_ = specs_.size();

    compiled_.reserve(instances_);
    for (const model::ProblemSpec& s : specs_) compiled_.emplace_back(s);
    const core::CompiledProblem& c0 = compiled_[0];
    for (std::size_t f = 0; f < c0.flowCount(); ++f)
        if (c0.flow_family[f] == core::SolveFamily::kGeneric)
            throw std::invalid_argument(
                "BatchedVectorEngine: generic utility families are not batchable");
    for (std::size_t k = 0; k < instances_; ++k) {
        const core::CompiledProblem& c = compiled_[k];
        for (std::uint8_t a : c.flow_active)
            if (!a)
                throw std::invalid_argument(
                    "BatchedVectorEngine: all flows must be active (no dynamic ops)");
        if (k == 0) continue;
        require_same(c.flow_link_begin, c0.flow_link_begin, "route topology");
        require_same(c.link_hop_link, c0.link_hop_link, "route topology");
        require_same(c.link_hop_cost, c0.link_hop_cost, "link cost matrix L");
        require_same(c.flow_node_begin, c0.flow_node_begin, "route topology");
        require_same(c.node_hop_node, c0.node_hop_node, "route topology");
        require_same(c.node_hop_fcost, c0.node_hop_fcost, "node flow-cost matrix F");
        require_same(c.hop_class_begin, c0.hop_class_begin, "class placement");
        require_same(c.hop_class_class, c0.hop_class_class, "class placement");
        require_same(c.hop_class_gcost, c0.hop_class_gcost, "consumer cost matrix G");
        require_same(c.flow_class_begin, c0.flow_class_begin, "class placement");
        require_same(c.flow_class_class, c0.flow_class_class, "class placement");
        require_same(c.class_flow, c0.class_flow, "class placement");
        require_same(c.class_node, c0.class_node, "class placement");
        require_same(c.class_gcost, c0.class_gcost, "consumer cost matrix G");
        require_same(c.node_class_begin, c0.node_class_begin, "class placement");
        require_same(c.node_class_class, c0.node_class_class, "class placement");
        require_same(c.link_flow_begin, c0.link_flow_begin, "route topology");
        require_same(c.link_flow_flow, c0.link_flow_flow, "route topology");
        require_same(c.link_flow_cost, c0.link_flow_cost, "link cost matrix L");
        require_same(c.flow_family, c0.flow_family, "utility families");
    }

    const std::size_t F = c0.flowCount();
    const std::size_t C = c0.classCount();
    const std::size_t N = c0.nodeCount();
    const std::size_t L = c0.linkCount();
    const auto lane = [&](std::size_t k) -> const core::CompiledProblem& {
        return compiled_[k < instances_ ? k : 0];
    };

    flow_param8_.resize(F * kWidth);
    rate_min8_.resize(F * kWidth);
    rate_max8_.resize(F * kWidth);
    for (std::size_t f = 0; f < F; ++f) {
        for (std::size_t k = 0; k < kWidth; ++k) {
            const core::CompiledProblem& c = lane(k);
            flow_param8_[f * kWidth + k] = c.flow_family[f] == core::SolveFamily::kLog
                                               ? 1.0
                                               : c.flow_family_param[f];
            rate_min8_[f * kWidth + k] = c.flow_rate_min[f];
            rate_max8_[f * kWidth + k] = c.flow_rate_max[f];
        }
    }
    const std::size_t fc_entries = c0.flow_class_class.size();
    fc_weight8_.resize(fc_entries * kWidth);
    fc_dweight8_.resize(fc_entries * kWidth);
    for (std::size_t e = 0; e < fc_entries; ++e) {
        const std::uint32_t cls = c0.flow_class_class[e];
        for (std::size_t k = 0; k < kWidth; ++k) {
            fc_weight8_[e * kWidth + k] = lane(k).class_weight[cls];
            fc_dweight8_[e * kWidth + k] = lane(k).class_dweight[cls];
        }
    }
    const std::size_t nc_entries = c0.node_class_class.size();
    nc_weight8_.resize(nc_entries * kWidth);
    nc_gcost_entry_.resize(nc_entries);
    nc_flow_entry_.resize(nc_entries);
    for (std::size_t e = 0; e < nc_entries; ++e) {
        const std::uint32_t cls = c0.node_class_class[e];
        for (std::size_t k = 0; k < kWidth; ++k)
            nc_weight8_[e * kWidth + k] = lane(k).class_weight[cls];
        nc_gcost_entry_[e] = c0.class_gcost[cls];
        nc_flow_entry_[e] = c0.class_flow[cls];
    }
    capacity8_node_.resize(N * kWidth);
    for (std::size_t b = 0; b < N; ++b)
        for (std::size_t k = 0; k < kWidth; ++k)
            capacity8_node_[b * kWidth + k] = lane(k).node_capacity[b];
    capacity8_link_.resize(L * kWidth);
    for (std::size_t l = 0; l < L; ++l)
        for (std::size_t k = 0; k < kWidth; ++k)
            capacity8_link_[l * kWidth + k] = lane(k).link_capacity[l];
    max_consumers8_.resize(C * kWidth);
    for (std::size_t j = 0; j < C; ++j)
        for (std::size_t k = 0; k < kWidth; ++k)
            max_consumers8_[j * kWidth + k] = lane(k).class_max_consumers[j];

    node_price8_.assign(N * kWidth, options_.initial_node_price);
    link_price8_.assign(L * kWidth, options_.initial_link_price);
    pop8_.assign(C * kWidth, 0.0);
    rates8_ = rate_min8_;
    trans8_.assign(F * kWidth, 0.0);
    usage8_.assign(L * kWidth, 0.0);
    term8_.assign(C * kWidth, 0.0);
    out_unit8_.assign(static_cast<std::size_t>(c0.max_classes_at_node) * kWidth, 0.0);
    out_value8_.assign(out_unit8_.size(), 0.0);
    out_ratio8_.assign(out_unit8_.size(), 0.0);
    cands_.resize(c0.max_classes_at_node);

    node_prices_.resize(kWidth);
    link_prices_.resize(kWidth);
    for (std::size_t k = 0; k < kWidth; ++k) {
        node_prices_[k].reserve(N);
        for (std::size_t b = 0; b < N; ++b)
            node_prices_[k].emplace_back(options_.gamma, options_.initial_node_price,
                                         options_.node_price_rule);
        link_prices_[k].reserve(L);
        for (std::size_t l = 0; l < L; ++l)
            link_prices_[k].emplace_back(options_.link_gamma, options_.initial_link_price);
    }
    detectors_.assign(kWidth, core::ConvergenceDetector(options_.convergence));
    traces_.resize(kWidth);
    utilities_.assign(kWidth, 0.0);
    allocations_.reserve(instances_);
    prices_.reserve(instances_);
    for (std::size_t k = 0; k < instances_; ++k) {
        allocations_.push_back(model::Allocation::minimal(specs_[k]));
        core::PriceVector p = core::PriceVector::zeros(N, L);
        std::fill(p.node.begin(), p.node.end(), options_.initial_node_price);
        std::fill(p.link.begin(), p.link.end(), options_.initial_link_price);
        prices_.push_back(std::move(p));
    }
}

const char* BatchedVectorEngine::variant() const noexcept { return kernels_->name; }

void BatchedVectorEngine::checkLane(std::size_t k) const {
    if (k >= instances_) throw std::out_of_range("BatchedVectorEngine: lane out of range");
}

void BatchedVectorEngine::step() {
    const core::CompiledProblem& c0 = compiled_[0];
    const std::size_t F = c0.flowCount();
    const std::size_t C = c0.classCount();
    const std::size_t N = c0.nodeCount();
    const std::size_t L = c0.linkCount();

    // Phase 1: all lanes' closed-form solves in lockstep.
    BatchRateView rv;
    rv.flow_count = F;
    rv.flow_family = reinterpret_cast<const std::uint8_t*>(c0.flow_family.data());
    rv.flow_param8 = flow_param8_.data();
    rv.rate_min8 = rate_min8_.data();
    rv.rate_max8 = rate_max8_.data();
    rv.fl_begin = c0.flow_link_begin.data();
    rv.fl_link = c0.link_hop_link.data();
    rv.fl_cost = c0.link_hop_cost.data();
    rv.fn_begin = c0.flow_node_begin.data();
    rv.fn_node = c0.node_hop_node.data();
    rv.fn_fcost = c0.node_hop_fcost.data();
    rv.hc_begin = c0.hop_class_begin.data();
    rv.hc_cls = c0.hop_class_class.data();
    rv.hc_gcost = c0.hop_class_gcost.data();
    rv.fc_begin = c0.flow_class_begin.data();
    rv.fc_cls = c0.flow_class_class.data();
    rv.fc_weight8 = fc_weight8_.data();
    rv.fc_dweight8 = fc_dweight8_.data();
    rv.node_price8 = node_price8_.data();
    rv.link_price8 = link_price8_.data();
    rv.pop8 = pop8_.data();
    rv.rates8 = rates8_.data();
    KernelTallies tallies;
    kernels_->batch_rate_phase(rv, 0, F, tallies);

    // Per-lane scalar transcendentals (identical libm calls to the
    // serial engine; the batch kernel only writes the rates).
    for (std::size_t f = 0; f < F; ++f) {
        const bool pw = c0.flow_family[f] == core::SolveFamily::kPower;
        for (std::size_t k = 0; k < kWidth; ++k) {
            const double r = rates8_[f * kWidth + k];
            const double param = flow_param8_[f * kWidth + k];
            trans8_[f * kWidth + k] = pw ? std::pow(r, param) : std::log1p(r / param);
        }
    }

    // Phase 2: lockstep candidate scoring, scalar rank/admit per lane.
    BatchNodeView nv;
    nv.nc_begin = c0.node_class_begin.data();
    nv.nc_cls = c0.node_class_class.data();
    nv.nc_gcost = nc_gcost_entry_.data();
    nv.nc_weight8 = nc_weight8_.data();
    nv.nc_flow = nc_flow_entry_.data();
    nv.rates8 = rates8_.data();
    nv.trans8 = trans8_.data();
    nv.out_unit8 = out_unit8_.data();
    nv.out_value8 = out_value8_.data();
    nv.out_ratio8 = out_ratio8_.data();

    for (std::size_t b = 0; b < N; ++b) {
        const std::size_t rb = c0.node_class_begin[b];
        const std::size_t re = c0.node_class_begin[b + 1];
        kernels_->batch_node_cands(nv, rb, re);
        for (std::size_t k = 0; k < kWidth; ++k) {
            double base_usage = 0.0;
            for (std::size_t e = c0.node_flow_begin[b]; e < c0.node_flow_begin[b + 1]; ++e)
                base_usage +=
                    c0.node_flow_fcost[e] * rates8_[c0.node_flow_flow[e] * kWidth + k];

            std::uint32_t count = 0;
            for (std::size_t j = 0; j < re - rb; ++j) {
                const std::uint32_t cls = c0.node_class_class[rb + j];
                pop8_[cls * kWidth + k] = 0.0;
                term8_[cls * kWidth + k] = 0.0;
                const int mc = max_consumers8_[cls * kWidth + k];
                if (mc == 0) continue;
                const double unit_cost = out_unit8_[j * kWidth + k];
                if (!(unit_cost > 0.0)) continue;
                cands_[count++] = {out_ratio8_[j * kWidth + k], unit_cost,
                                   out_value8_[j * kWidth + k], mc, cls};
            }
            std::sort(cands_.begin(), cands_.begin() + count, core::BenefitCostOrder{});

            const double capacity = capacity8_node_[b * kWidth + k];
            double remaining = capacity - base_usage;
            std::optional<double> best_unmet_bc;
            for (std::uint32_t i = 0; i < count; ++i) {
                const Cand& cand = cands_[i];
                int admitted = 0;
                if (remaining > 0.0) {
                    admitted =
                        static_cast<int>(std::min(std::floor(remaining / cand.unit_cost),
                                                  static_cast<double>(cand.max_consumers)));
                }
                remaining -= admitted * cand.unit_cost;
                pop8_[cand.cls * kWidth + k] = static_cast<double>(admitted);
                term8_[cand.cls * kWidth + k] = admitted > 0 ? admitted * cand.value : 0.0;
                if (admitted < cand.max_consumers && !best_unmet_bc)
                    best_unmet_bc = cand.ratio;
            }
            node_price8_[b * kWidth + k] =
                node_prices_[k][b].update(best_unmet_bc, capacity - remaining, capacity);
        }
    }

    // Phase 3: lockstep usage sums, scalar controllers per lane.
    BatchLinkView lv;
    lv.lf_begin = c0.link_flow_begin.data();
    lv.lf_flow = c0.link_flow_flow.data();
    lv.lf_cost = c0.link_flow_cost.data();
    lv.rates8 = rates8_.data();
    lv.usage8 = usage8_.data();
    kernels_->batch_link_usage(lv, 0, L);
    for (std::size_t l = 0; l < L; ++l)
        for (std::size_t k = 0; k < kWidth; ++k)
            link_price8_[l * kWidth + k] =
                link_prices_[k][l].update(usage8_[l * kWidth + k],
                                          capacity8_link_[l * kWidth + k]);

    // Eq. 1 per lane, serial class order.
    double out8[kWidth];
    kernels_->batch_sum_serial(term8_.data(), C, out8);
    ++iteration_;
    for (std::size_t k = 0; k < kWidth; ++k) {
        utilities_[k] = out8[k];
        traces_[k].append(out8[k]);
        detectors_[k].addSample(out8[k]);
    }

    // Publish the real lanes' state in AoS form for the observers.
    for (std::size_t k = 0; k < instances_; ++k) {
        model::Allocation& alloc = allocations_[k];
        for (std::size_t f = 0; f < F; ++f) alloc.rates[f] = rates8_[f * kWidth + k];
        for (std::size_t j = 0; j < C; ++j)
            alloc.populations[j] = static_cast<int>(pop8_[j * kWidth + k]);
        for (std::size_t b = 0; b < N; ++b) prices_[k].node[b] = node_price8_[b * kWidth + k];
        for (std::size_t l = 0; l < L; ++l) prices_[k].link[l] = link_price8_[l * kWidth + k];
    }
}

void BatchedVectorEngine::run(int iterations) {
    if (iterations <= 0)
        throw std::invalid_argument("BatchedVectorEngine::run: iterations must be > 0");
    for (int i = 0; i < iterations; ++i) step();
}

std::optional<int> BatchedVectorEngine::runUntilAllConverged(int max_iterations) {
    if (max_iterations <= 0)
        throw std::invalid_argument("BatchedVectorEngine::runUntilAllConverged: bad max");
    for (int i = 0; i < max_iterations; ++i) {
        step();
        bool all = true;
        for (std::size_t k = 0; k < instances_; ++k) all = all && detectors_[k].converged();
        if (all) {
            std::size_t last = 0;
            for (std::size_t k = 0; k < instances_; ++k)
                last = std::max(last, detectors_[k].convergedAt());
            return static_cast<int>(last);
        }
    }
    return std::nullopt;
}

double BatchedVectorEngine::utility(std::size_t k) const {
    checkLane(k);
    return utilities_[k];
}

bool BatchedVectorEngine::converged(std::size_t k) const {
    checkLane(k);
    return detectors_[k].converged();
}

const model::Allocation& BatchedVectorEngine::allocation(std::size_t k) const {
    checkLane(k);
    return allocations_[k];
}

const core::PriceVector& BatchedVectorEngine::prices(std::size_t k) const {
    checkLane(k);
    return prices_[k];
}

const metrics::TimeSeries& BatchedVectorEngine::utilityTrace(std::size_t k) const {
    checkLane(k);
    return traces_[k];
}

const model::ProblemSpec& BatchedVectorEngine::problem(std::size_t k) const {
    checkLane(k);
    return specs_[k];
}

}  // namespace lrgp::simd
