// Batched multi-instance LRGP: up to kWidth independent problem
// instances advanced in lockstep, one instance per SIMD lane.
//
// All instances must share one topology (the same CSR structure and the
// same shared cost matrices G/F/L); per-instance degrees of freedom are
// the class weights, the rate bounds, the family parameters, the
// node/link capacities and the per-class consumer ceilings.  Every
// per-entity quantity is stored lane-major (entry e of instance k at
// [e * kWidth + k]) and every floating-point reduction runs per lane in
// serial entity order, so each lane's trajectory is bitwise-identical
// to running that instance alone through the serial optimizer.
//
// Restrictions (std::invalid_argument otherwise):
//   * 1..kWidth instances, identical topology and shared costs;
//   * closed-form utility families only (no kGeneric flows) and
//     RateSolveOptions::allow_closed_form left enabled;
//   * no dynamic workload ops (remove/restore/capacity edits) — batched
//     runs are for parameter sweeps, not live reconfiguration.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lrgp/compiled_problem.hpp"
#include "lrgp/engine.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "simd/kernels.hpp"

namespace lrgp::simd {

class BatchedVectorEngine {
public:
    /// Takes 1..kWidth problem instances; when fewer than kWidth are
    /// given the spare lanes carry masked copies of instance 0.
    explicit BatchedVectorEngine(std::vector<model::ProblemSpec> specs,
                                 core::LrgpOptions options = {});

    /// Number of real (unmasked) instances.
    [[nodiscard]] std::size_t instanceCount() const noexcept { return instances_; }
    [[nodiscard]] int iterationsRun() const noexcept { return iteration_; }
    [[nodiscard]] const char* variant() const noexcept;

    /// Advances every instance by one LRGP iteration.
    void step();
    void run(int iterations);
    /// Steps until every instance's convergence detector fires (or
    /// max_iterations); returns the 1-based iteration at which the last
    /// instance converged, or nullopt.
    std::optional<int> runUntilAllConverged(int max_iterations);

    // -- per-instance observers (k < instanceCount()) -------------------
    [[nodiscard]] double utility(std::size_t k) const;
    [[nodiscard]] bool converged(std::size_t k) const;
    [[nodiscard]] const model::Allocation& allocation(std::size_t k) const;
    [[nodiscard]] const core::PriceVector& prices(std::size_t k) const;
    [[nodiscard]] const metrics::TimeSeries& utilityTrace(std::size_t k) const;
    [[nodiscard]] const model::ProblemSpec& problem(std::size_t k) const;

private:
    struct Cand {
        double ratio;
        double unit_cost;
        double value;
        int max_consumers;
        std::uint32_t cls;
    };

    void checkLane(std::size_t k) const;

    const Kernels* kernels_;
    core::LrgpOptions options_;
    std::size_t instances_ = 0;
    int iteration_ = 0;

    std::vector<model::ProblemSpec> specs_;          ///< real instances
    std::vector<core::CompiledProblem> compiled_;    ///< one per real instance
    // Per-lane scalar state (kWidth entries; lanes >= instances_ mirror
    // lane 0 and are never published).
    std::vector<std::vector<core::NodePriceController>> node_prices_;
    std::vector<std::vector<core::LinkPriceController>> link_prices_;
    std::vector<core::ConvergenceDetector> detectors_;
    std::vector<metrics::TimeSeries> traces_;
    std::vector<double> utilities_;
    std::vector<model::Allocation> allocations_;  ///< real instances only
    std::vector<core::PriceVector> prices_;       ///< real instances only

    // Lane-major numeric state ([entity * kWidth + lane]).
    std::vector<double> flow_param8_;
    std::vector<double> rate_min8_;
    std::vector<double> rate_max8_;
    std::vector<double> fc_weight8_;
    std::vector<double> fc_dweight8_;
    std::vector<double> nc_weight8_;
    std::vector<double> node_price8_;
    std::vector<double> link_price8_;
    std::vector<double> pop8_;
    std::vector<double> rates8_;
    std::vector<double> trans8_;
    std::vector<double> usage8_;
    std::vector<double> term8_;
    std::vector<double> out_unit8_;
    std::vector<double> out_value8_;
    std::vector<double> out_ratio8_;
    std::vector<double> nc_gcost_entry_;         ///< G_{b,j} by node-class entry
    std::vector<std::uint32_t> nc_flow_entry_;   ///< owning flow by node-class entry
    std::vector<double> capacity8_node_;  ///< lane-major node capacities
    std::vector<double> capacity8_link_;
    std::vector<int> max_consumers8_;
    std::vector<Cand> cands_;  ///< scalar scratch, one node span
};

}  // namespace lrgp::simd
