// Baseline-ISA vector variant: kernels.inl lowered with the build's
// default architecture flags (SSE2 on stock x86-64).
#define LRGP_SIMD_NS base_impl
#define LRGP_SIMD_NAME "base"
#define LRGP_SIMD_KERNELS base_kernels
#include "simd/kernels.inl"
