// Portable explicit-SIMD layer for the vectorized solver core.
//
// The vector kernels are written once (kernels.inl) against a fixed
// 8-lane double vector type built on the GCC/Clang vector extensions,
// and compiled twice: a baseline translation unit with the build's
// default architecture flags, and — when the compiler supports it — a
// second translation unit with -march=x86-64-v3 (AVX2+FMA class
// hardware).  `active_kernels()` picks the widest variant the running
// CPU supports at first use; the LRGP_SIMD environment variable (or
// `force_scalar()` from tests) can pin the choice:
//
//     LRGP_SIMD=auto    best available variant (default)
//     LRGP_SIMD=base    baseline-ISA vector variant
//     LRGP_SIMD=off     scalar reference loops (vectorization disabled)
//     LRGP_SIMD=scalar  same as off
//
// Both variants are compiled with -ffp-contract=off, so no mul+add is
// fused into an FMA: every elementwise lane operation is the exact
// IEEE-754 operation the scalar engines perform, which is what makes
// the vector_exact mode bitwise-identical to the serial optimizer (see
// docs/algorithm.md, "Vectorized solver core").
#pragma once

#include <cstddef>
#include <cstdint>

namespace lrgp::simd {

/// Fixed logical vector width (doubles per vector, and instances per
/// batch lane group).  On AVX2 hardware an 8-wide vector lowers to two
/// 256-bit operations; on SSE2 to four 128-bit ones — lane semantics
/// (and results) are identical, only throughput changes.
inline constexpr std::size_t kWidth = 8;

/// Rounds a span length up to a whole number of vector lanes.
[[nodiscard]] constexpr std::size_t padded(std::size_t n) noexcept {
    return (n + kWidth - 1) / kWidth * kWidth;
}

/// Which kernel implementation the dispatcher selected.
enum class Variant : std::uint8_t {
    kScalar,  ///< reference scalar loops (forced, or vector code disabled)
    kBase,    ///< vector kernels, build-default architecture
    kV3,      ///< vector kernels, -march=x86-64-v3 translation unit
};

/// Runtime-detected SIMD capability of the host CPU (independent of
/// which variant is active); stamped into bench machine blocks.
[[nodiscard]] const char* detected_isa() noexcept;

/// Compile-time ISA of the *baseline* translation units ("sse2",
/// "avx2", "avx512" depending on the build's -march flags).
[[nodiscard]] const char* compiled_isa() noexcept;

/// The variant active_kernels() resolved (after env overrides).
[[nodiscard]] Variant active_variant() noexcept;

/// Short name of the active variant for logs and bench rows:
/// "scalar", "base" or "x86-64-v3".
[[nodiscard]] const char* active_variant_name() noexcept;

/// Test hook: force (or release) the scalar reference kernels for the
/// rest of the process.  Overrides LRGP_SIMD.  Thread-compatible with
/// engine construction only — call before building engines.
void force_scalar(bool on) noexcept;

/// Whether the scalar reference path is active (env or force_scalar).
[[nodiscard]] bool scalar_forced() noexcept;

}  // namespace lrgp::simd
