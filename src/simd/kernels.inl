// Vector kernel implementations — included by kernels_scalar.cpp,
// kernels_base.cpp and kernels_v3.cpp with LRGP_SIMD_NS set to the
// variant namespace (and LRGP_SIMD_SCALAR defined for the reference
// loops).  Every translation unit including this file must be compiled
// with -ffp-contract=off: the bitwise contract of the exact mode (and
// the batched engine) relies on each elementwise multiply and add
// rounding separately, exactly like the scalar engines.
//
// Bitwise argument used throughout (docs/algorithm.md has the full
// version): elementwise IEEE-754 lane operations are identical to their
// scalar counterparts on every ISA; padded span entries are constructed
// to contribute an exact +0.0 product, and adding +0.0 to a
// non-negative running sum is the identity, so full-padded-span serial
// sums equal the scalar engines' skip-on-inactive sums bit for bit.
// Sums whose running value can be -0.0 (the rate derivative, seeded
// with -price) are only ever *compared* against zero, where -0.0 and
// +0.0 agree.  Cross-entity tree reductions (Reduction::kTree) are the
// one place results may differ from the serial order — that is the
// documented tolerance mode.

#include <cmath>
#include <cstring>

#include "simd/kernels.hpp"

namespace lrgp::simd {
namespace LRGP_SIMD_NS {

#if defined(LRGP_SIMD_SCALAR)

/// Reference lane group: plain arrays, scalar loops.  Compiled with
/// vectorization disabled so the "scalar fallback" dispatch target is
/// honestly scalar.
struct vd {
    double l[kWidth];
};
struct vmask {
    bool l[kWidth];
};

static inline vd vbroadcast(double x) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = x;
    return r;
}
static inline vd vzero() { return vbroadcast(0.0); }
static inline vd vload(const double* p) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = p[i];
    return r;
}
static inline void vstore(double* p, vd v) {
    for (std::size_t i = 0; i < kWidth; ++i) p[i] = v.l[i];
}
static inline vd vadd(vd a, vd b) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = a.l[i] + b.l[i];
    return r;
}
static inline vd vsub(vd a, vd b) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = a.l[i] - b.l[i];
    return r;
}
static inline vd vmul(vd a, vd b) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = a.l[i] * b.l[i];
    return r;
}
static inline vd vdiv(vd a, vd b) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = a.l[i] / b.l[i];
    return r;
}
static inline vd vgather(const double* base, const std::uint32_t* idx) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = base[idx[i]];
    return r;
}
static inline vmask vgt0(vd a) {
    vmask m;
    for (std::size_t i = 0; i < kWidth; ++i) m.l[i] = a.l[i] > 0.0;
    return m;
}
static inline vmask vlt(vd a, vd b) {
    vmask m;
    for (std::size_t i = 0; i < kWidth; ++i) m.l[i] = a.l[i] < b.l[i];
    return m;
}
static inline vmask vge(vd a, vd b) {
    vmask m;
    for (std::size_t i = 0; i < kWidth; ++i) m.l[i] = a.l[i] >= b.l[i];
    return m;
}
static inline vmask vle(vd a, vd b) {
    vmask m;
    for (std::size_t i = 0; i < kWidth; ++i) m.l[i] = a.l[i] <= b.l[i];
    return m;
}
static inline vd vselect(vmask m, vd a, vd b) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = m.l[i] ? a.l[i] : b.l[i];
    return r;
}
static inline bool vany(vmask m) {
    bool any = false;
    for (std::size_t i = 0; i < kWidth; ++i) any = any || m.l[i];
    return any;
}
static inline bool vall(vmask m) {
    bool all = true;
    for (std::size_t i = 0; i < kWidth; ++i) all = all && m.l[i];
    return all;
}
static inline double vlane(vd a, std::size_t i) { return a.l[i]; }
static inline void vsetlane(vd& a, std::size_t i, double x) { a.l[i] = x; }
static inline bool mlane(vmask m, std::size_t i) { return m.l[i]; }
static inline vd vload_pop(const std::int32_t* p) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r.l[i] = static_cast<double>(p[i]);
    return r;
}

#else  // !LRGP_SIMD_SCALAR

/// 8 x double via the GCC/Clang vector extensions; the compiler lowers
/// to the widest instructions the TU's -march allows.
typedef double vd __attribute__((vector_size(kWidth * sizeof(double))));
typedef long long vmask __attribute__((vector_size(kWidth * sizeof(long long))));

static inline vd vbroadcast(double x) { return vd{x, x, x, x, x, x, x, x}; }
static inline vd vzero() { return vbroadcast(0.0); }
static inline vd vload(const double* p) {
    vd r;
    __builtin_memcpy(&r, p, sizeof(vd));
    return r;
}
static inline void vstore(double* p, vd v) { __builtin_memcpy(p, &v, sizeof(vd)); }
static inline vd vadd(vd a, vd b) { return a + b; }
static inline vd vsub(vd a, vd b) { return a - b; }
static inline vd vmul(vd a, vd b) { return a * b; }
static inline vd vdiv(vd a, vd b) { return a / b; }
static inline vd vgather(const double* base, const std::uint32_t* idx) {
    vd r;
    for (std::size_t i = 0; i < kWidth; ++i) r[i] = base[idx[i]];
    return r;
}
static inline vmask vgt0(vd a) { return a > vzero(); }
static inline vmask vlt(vd a, vd b) { return a < b; }
static inline vmask vge(vd a, vd b) { return a >= b; }
static inline vmask vle(vd a, vd b) { return a <= b; }
static inline vd vselect(vmask m, vd a, vd b) { return m ? a : b; }
static inline bool vany(vmask m) {
    bool any = false;
    for (std::size_t i = 0; i < kWidth; ++i) any = any || (m[i] != 0);
    return any;
}
static inline bool vall(vmask m) {
    bool all = true;
    for (std::size_t i = 0; i < kWidth; ++i) all = all && (m[i] != 0);
    return all;
}
static inline double vlane(vd a, std::size_t i) { return a[i]; }
static inline void vsetlane(vd& a, std::size_t i, double x) { a[i] = x; }
static inline bool mlane(vmask m, std::size_t i) { return m[i] != 0; }

/// int32 population chunk widened to doubles (exact: counts < 2^31).
typedef std::int32_t vi32 __attribute__((vector_size(kWidth * sizeof(std::int32_t))));
static inline vd vload_pop(const std::int32_t* p) {
    vi32 t;
    __builtin_memcpy(&t, p, sizeof(t));
    return __builtin_convertvector(t, vd);
}

#endif  // LRGP_SIMD_SCALAR

/// Serial left-to-right sum — bitwise the scalar engines' accumulation
/// order (the count here is a padded span length; pads hold +0.0).
static double sum_serial(const double* p, std::size_t n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += p[i];
    return acc;
}

/// Fixed-order horizontal combine of one vector accumulator: pairwise
/// (l0+l1)+(l2+l3) then ((..)+(..)).  Deterministic for any ISA.
static inline double hsum_tree(vd a) {
    const double s01 = vlane(a, 0) + vlane(a, 1);
    const double s23 = vlane(a, 2) + vlane(a, 3);
    const double s45 = vlane(a, 4) + vlane(a, 5);
    const double s67 = vlane(a, 6) + vlane(a, 7);
    return (s01 + s23) + (s45 + s67);
}

/// Tree sum over an arbitrary array: one vector accumulator over the
/// whole chunks (element i lands in lane i % 8), fixed-order horizontal
/// combine, then the scalar tail appended serially.  Deterministic.
static double sum_tree(const double* p, std::size_t n) {
    vd acc = vzero();
    std::size_t i = 0;
    for (; i + kWidth <= n; i += kWidth) acc = vadd(acc, vload(p + i));
    double r = hsum_tree(acc);
    for (; i < n; ++i) r += p[i];
    return r;
}

static void pops_to_f64(const int* in, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(in[i]);
}

// ---------------------------------------------------------------------------
// Phase 1: rate stationarity (Eq. 7) over the closed-form families.
// ---------------------------------------------------------------------------

/// PL_i link-price accumulation for one flow (link spans are short).
static inline double flow_price_links(const RateView& v, std::size_t f) {
    const std::size_t b = v.fl_begin[f], e = v.fl_begin[f + 1];
    if (v.reduction == Reduction::kTree) {
        vd acc = vzero();
        for (std::size_t p = b; p < e; p += kWidth)
            acc = vadd(acc, vmul(vload(v.fl_cost + p), vgather(v.link_price, v.fl_link + p)));
        return hsum_tree(acc);
    }
    for (std::size_t p = b; p < e; p += kWidth)
        vstore(v.scratch_a + (p - b),
               vmul(vload(v.fl_cost + p), vgather(v.link_price, v.fl_link + p)));
    return sum_serial(v.scratch_a, e - b);
}

/// PB_i node-price accumulation for one flow (exact mode: populations
/// stream from the hop-class-ordered mirror, hop products are stored
/// and summed serially in span order — bitwise the serial engine).
/// Tolerance mode never calls this: its PB is the admission-maintained
/// v.flow_pb aggregate.
static inline double flow_price_hops(const RateView& v, std::size_t f) {
    double pb = 0.0;
    for (std::size_t h = v.fn_begin[f]; h < v.fn_begin[f + 1]; ++h) {
        const std::size_t cb = v.hc_begin[h], ce = v.hc_begin[h + 1];
        double per_rate_cost = v.fn_fcost[h];
        for (std::size_t p = cb; p < ce; p += kWidth)
            vstore(v.scratch_a + (p - cb),
                   vmul(vload(v.hc_gcost + p), vload_pop(v.hc_pop + p)));
        for (std::size_t i = 0; i < ce - cb; ++i) per_rate_cost += v.scratch_a[i];
        pb += per_rate_cost * v.node_price[v.fn_node[h]];
    }
    return pb;
}

static void rate_phase(const RateView& v, std::size_t begin, std::size_t end, KernelTallies& t) {
    for (std::size_t f = begin; f < end; ++f) {
        if (!v.flow_active[f]) continue;
        const std::uint8_t fam = v.flow_family[f];
        if (fam == kFamGeneric || !v.allow_closed_form) continue;

        const double lo = v.rate_min[f];
        const double hi = v.rate_max[f];
        const double param = v.flow_param[f];
        const std::size_t cb = v.fc_begin[f], ce = v.fc_begin[f + 1];

        double rate;
        if (v.reduction == Reduction::kTree) {
            // Tolerance mode: the admission pass already folded the PB
            // price term and the stationarity sums N = sum n_j,
            // W = sum n_j w_j (and D = sum n_j w_j k for the power
            // family) into per-flow accumulators, so the solve is O(1)
            // scalars per flow — only the link-price hops are walked.
            const double price = flow_price_links(v, f) + v.flow_pb[f];
            const bool pw = fam == kFamPower;
            const double W = v.flow_w[f];
            if (!(v.flow_n[f] > 0)) {
                rate = price > 0.0 ? lo : hi;
                ++t.bound_solves;
            } else if (pw) {
                const double D = v.flow_d[f];
                if (-price + D * std::pow(hi, param - 1.0) >= 0.0) {
                    rate = hi;
                    ++t.bound_solves;
                } else if (-price + D * std::pow(lo, param - 1.0) <= 0.0) {
                    rate = lo;
                    ++t.bound_solves;
                } else {
                    rate = std::pow(price / (W * param), 1.0 / (param - 1.0));
                    rate = rate < lo ? lo : (hi < rate ? hi : rate);
                    ++t.closed_solves;
                }
            } else {
                // kFamLog is kFamShiftedLog with shift 1.0 (U' = W/(s+r)).
                if (-price + W / (param + hi) >= 0.0) {
                    rate = hi;
                    ++t.bound_solves;
                } else if (-price + W / (param + lo) <= 0.0) {
                    rate = lo;
                    ++t.bound_solves;
                } else {
                    rate = W / price - param;
                    rate = rate < lo ? lo : (hi < rate ? hi : rate);
                    ++t.closed_solves;
                }
            }
        } else {
            // Exact mode: the serial derivative walks with the per-class
            // division batched 8 wide over the contiguous population
            // mirror.  Contributions are stored in span order and summed
            // serially; n <= 0 classes are masked to an exact +0.0 (the
            // serial engine skips them — identical sums, and NaN-safe
            // when the power derivative is infinite at 0).
            const double price = flow_price_links(v, f) + flow_price_hops(v, f);
            bool any_pop = false;
            for (std::size_t p = cb; p < ce && !any_pop; p += kWidth)
                any_pop = vany(vgt0(vload_pop(v.fc_pop + p)));
            if (!any_pop) {
                rate = price > 0.0 ? lo : hi;
                ++t.bound_solves;
                v.rates[f] = rate;
                v.trans[f] =
                    fam == kFamPower ? std::pow(rate, param) : std::log1p(rate / param);
                continue;
            }

            const auto derivative_at = [&](double r) {
                if (fam == kFamPower) {
                    const vd pt = vbroadcast(std::pow(r, param - 1.0));
                    for (std::size_t p = cb; p < ce; p += kWidth) {
                        const vd n = vload_pop(v.fc_pop + p);
                        const vd du = vmul(vload(v.fc_dweight + p), pt);
                        vstore(v.scratch_a + (p - cb), vselect(vgt0(n), vmul(n, du), vzero()));
                    }
                } else {
                    const vd den = vbroadcast(param + r);
                    for (std::size_t p = cb; p < ce; p += kWidth) {
                        const vd n = vload_pop(v.fc_pop + p);
                        const vd du = vdiv(vload(v.fc_weight + p), den);
                        vstore(v.scratch_a + (p - cb), vselect(vgt0(n), vmul(n, du), vzero()));
                    }
                }
                double d = -price;
                const std::size_t count = ce - cb;
                for (std::size_t i = 0; i < count; ++i) d += v.scratch_a[i];
                return d;
            };

            if (derivative_at(hi) >= 0.0) {
                rate = hi;
                ++t.bound_solves;
            } else if (derivative_at(lo) <= 0.0) {
                rate = lo;
                ++t.bound_solves;
            } else {
                for (std::size_t p = cb; p < ce; p += kWidth) {
                    const vd n = vload_pop(v.fc_pop + p);
                    vstore(v.scratch_a + (p - cb),
                           vselect(vgt0(n), vmul(n, vload(v.fc_weight + p)), vzero()));
                }
                double W = 0.0;
                for (std::size_t i = 0; i < ce - cb; ++i) W += v.scratch_a[i];
                double r;
                if (fam == kFamPower)
                    r = std::pow(price / (W * param), 1.0 / (param - 1.0));
                else
                    r = W / price - param;
                rate = r < lo ? lo : (hi < r ? hi : r);
                ++t.closed_solves;
            }
        }

        v.rates[f] = rate;
        // One transcendental per flow (phase 2's U_j(r) = w_j * trans).
        // kFamLog uses param == 1.0: rate / 1.0 is bitwise rate, so
        // log1p matches the serial engine's log1p(rate) exactly.
        v.trans[f] = fam == kFamPower ? std::pow(rate, param) : std::log1p(rate / param);
    }
}

// ---------------------------------------------------------------------------
// Phase 2: elementwise benefit-cost scoring for one node span.
// ---------------------------------------------------------------------------

static void node_cands(const NodeView& v, std::size_t pad_begin, std::size_t pad_end,
                       KernelTallies& t) {
    (void)t;
    for (std::size_t p = pad_begin; p < pad_end; p += kWidth) {
        const vd rate = vgather(v.rates, v.nc_flow + p);
        const vd unit = vmul(vload(v.nc_gcost + p), rate);
        const vd value = vmul(vload(v.nc_weight + p), vgather(v.trans, v.nc_flow + p));
        const std::size_t o = p - pad_begin;
        vstore(v.out_unit + o, unit);
        vstore(v.out_value + o, value);
        vstore(v.out_ratio + o, vdiv(value, unit));
    }
}

// ---------------------------------------------------------------------------
// Phase 3: link usage sums (Eq. 13 input).
// ---------------------------------------------------------------------------

static void link_usage(const LinkView& v, std::size_t begin, std::size_t end, KernelTallies& t) {
    (void)t;
    for (std::size_t l = begin; l < end; ++l) {
        const std::size_t b = v.lf_begin[l], e = v.lf_begin[l + 1];
        if (v.reduction == Reduction::kTree) {
            vd acc = vzero();
            for (std::size_t p = b; p < e; p += kWidth)
                acc = vadd(acc, vmul(vload(v.lf_cost + p), vgather(v.rates, v.lf_flow + p)));
            v.usage[l] = hsum_tree(acc);
        } else {
            // Inactive flows hold an exact 0.0 rate (removeFlow zeroes
            // it), so their cost * 0.0 products — like the pads — add
            // +0.0 to a non-negative sum: bitwise the serial skip-scan.
            for (std::size_t p = b; p < e; p += kWidth)
                vstore(v.scratch + (p - b),
                       vmul(vload(v.lf_cost + p), vgather(v.rates, v.lf_flow + p)));
            v.usage[l] = sum_serial(v.scratch, e - b);
        }
    }
}

// ---------------------------------------------------------------------------
// Batched lockstep kernels: one problem instance per lane, lane-major
// state, every reduction serial in entity order per lane (bitwise the
// solo serial run of each instance).
// ---------------------------------------------------------------------------

static void batch_rate_phase(const BatchRateView& v, std::size_t begin, std::size_t end,
                             KernelTallies& t) {
    (void)t;
    for (std::size_t f = begin; f < end; ++f) {
        const std::uint8_t fam = v.flow_family[f];
        if (fam == kFamGeneric) continue;

        // PL_i: hop order, per-lane serial accumulation.
        vd pl = vzero();
        for (std::size_t h = v.fl_begin[f]; h < v.fl_begin[f + 1]; ++h)
            pl = vadd(pl, vmul(vbroadcast(v.fl_cost[h]),
                               vload(v.link_price8 + v.fl_link[h] * kWidth)));
        // PB_i: route order, nested class sub-span order per lane.
        vd pb = vzero();
        for (std::size_t h = v.fn_begin[f]; h < v.fn_begin[f + 1]; ++h) {
            vd per_rate_cost = vbroadcast(v.fn_fcost[h]);
            for (std::size_t e = v.hc_begin[h]; e < v.hc_begin[h + 1]; ++e)
                per_rate_cost = vadd(per_rate_cost, vmul(vbroadcast(v.hc_gcost[e]),
                                                         vload(v.pop8 + v.hc_cls[e] * kWidth)));
            pb = vadd(pb, vmul(per_rate_cost, vload(v.node_price8 + v.fn_node[h] * kWidth)));
        }
        const vd price = vadd(pl, pb);

        const vd lo = vload(v.rate_min8 + f * kWidth);
        const vd hi = vload(v.rate_max8 + f * kWidth);
        const vd param = vload(v.flow_param8 + f * kWidth);
        const std::size_t cb = v.fc_begin[f], ce = v.fc_begin[f + 1];
        const bool pw = fam == kFamPower;

        // any_population per lane, plus the derivative walks at both
        // bounds and the combined weight — all in serial class order per
        // lane; n <= 0 lanes contribute a masked exact +0.0 (the serial
        // engine skips them; sums agree bitwise, comparisons always do).
        vd npop = vzero();
        vd d_hi = vsub(vzero(), price);
        vd d_lo = d_hi;
        vd W = vzero();
        vd pt_hi = vzero(), pt_lo = vzero();
        if (pw) {
            for (std::size_t i = 0; i < kWidth; ++i) {
                vsetlane(pt_hi, i, std::pow(vlane(hi, i), vlane(param, i) - 1.0));
                vsetlane(pt_lo, i, std::pow(vlane(lo, i), vlane(param, i) - 1.0));
            }
        }
        for (std::size_t e = cb; e < ce; ++e) {
            const vd n = vload(v.pop8 + v.fc_cls[e] * kWidth);
            const vmask has = vgt0(n);
            npop = vadd(npop, n);
            const vd w = vload(v.fc_weight8 + e * kWidth);
            vd du_hi, du_lo;
            if (pw) {
                const vd dw = vload(v.fc_dweight8 + e * kWidth);
                du_hi = vmul(dw, pt_hi);
                du_lo = vmul(dw, pt_lo);
            } else {
                du_hi = vdiv(w, vadd(param, hi));
                du_lo = vdiv(w, vadd(param, lo));
            }
            d_hi = vadd(d_hi, vselect(has, vmul(n, du_hi), vzero()));
            d_lo = vadd(d_lo, vselect(has, vmul(n, du_lo), vzero()));
            W = vadd(W, vselect(has, vmul(n, w), vzero()));
        }

        // Closed form per lane (value irrelevant on bound lanes).
        vd r_closed;
        if (pw) {
            for (std::size_t i = 0; i < kWidth; ++i) {
                const double k = vlane(param, i);
                vsetlane(r_closed, i,
                         std::pow(vlane(price, i) / (vlane(W, i) * k), 1.0 / (k - 1.0)));
            }
        } else {
            r_closed = vsub(vdiv(W, price), param);
        }
        // std::clamp mirror: (v < lo) -> lo, then (hi < v) -> hi.
        r_closed = vselect(vlt(r_closed, lo), lo, r_closed);
        r_closed = vselect(vlt(hi, r_closed), hi, r_closed);

        // Lane blend in the serial engine's branch order.
        vd rate = vselect(vge(d_hi, vzero()), hi, vselect(vle(d_lo, vzero()), lo, r_closed));
        const vd no_pop_rate = vselect(vgt0(price), lo, hi);
        rate = vselect(vgt0(npop), rate, no_pop_rate);
        vstore(v.rates8 + f * kWidth, rate);
    }
}

static void batch_node_cands(const BatchNodeView& v, std::size_t span_begin,
                             std::size_t span_end) {
    for (std::size_t e = span_begin; e < span_end; ++e) {
        const std::uint32_t f = v.nc_flow[e];
        const vd rate = vload(v.rates8 + f * kWidth);
        const vd unit = vmul(vbroadcast(v.nc_gcost[e]), rate);
        const vd value = vmul(vload(v.nc_weight8 + e * kWidth), vload(v.trans8 + f * kWidth));
        const std::size_t o = (e - span_begin) * kWidth;
        vstore(v.out_unit8 + o, unit);
        vstore(v.out_value8 + o, value);
        vstore(v.out_ratio8 + o, vdiv(value, unit));
    }
}

static void batch_link_usage(const BatchLinkView& v, std::size_t begin, std::size_t end) {
    for (std::size_t l = begin; l < end; ++l) {
        vd acc = vzero();
        for (std::size_t e = v.lf_begin[l]; e < v.lf_begin[l + 1]; ++e)
            acc = vadd(acc, vmul(vbroadcast(v.lf_cost[e]), vload(v.rates8 + v.lf_flow[e] * kWidth)));
        vstore(v.usage8 + l * kWidth, acc);
    }
}

static void batch_sum_serial(const double* terms8, std::size_t count, double* out8) {
    vd acc = vzero();
    for (std::size_t e = 0; e < count; ++e) acc = vadd(acc, vload(terms8 + e * kWidth));
    vstore(out8, acc);
}

}  // namespace LRGP_SIMD_NS

const Kernels& LRGP_SIMD_KERNELS() noexcept {
    static const Kernels k{
        LRGP_SIMD_NAME,
        &LRGP_SIMD_NS::rate_phase,
        &LRGP_SIMD_NS::node_cands,
        &LRGP_SIMD_NS::link_usage,
        &LRGP_SIMD_NS::sum_serial,
        &LRGP_SIMD_NS::sum_tree,
        &LRGP_SIMD_NS::pops_to_f64,
        &LRGP_SIMD_NS::batch_rate_phase,
        &LRGP_SIMD_NS::batch_node_cands,
        &LRGP_SIMD_NS::batch_link_usage,
        &LRGP_SIMD_NS::batch_sum_serial,
    };
    return k;
}

}  // namespace lrgp::simd
