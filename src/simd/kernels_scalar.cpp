// Scalar reference variant of the kernel table.  Compiled with
// -fno-tree-vectorize (see CMakeLists.txt) so the fallback dispatch
// target is honestly scalar, not auto-vectorized.
#define LRGP_SIMD_SCALAR 1
#define LRGP_SIMD_NS scalar_impl
#define LRGP_SIMD_NAME "scalar"
#define LRGP_SIMD_KERNELS scalar_kernels
#include "simd/kernels.inl"
