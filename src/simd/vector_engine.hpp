// Vectorized structure-of-arrays LRGP engine.
//
// VectorLrgpEngine runs the same three-phase iteration as the compiled
// engine, but over a padded structure-of-arrays mirror of the
// CompiledProblem, with the hot inner loops (flow price accumulation,
// closed-form rate stationarity, node benefit-cost scoring, link usage
// sums) executed by the explicit-SIMD kernels of simd/kernels.hpp.
// Ranking/admission, the price controllers and the generic-utility
// flows stay scalar (they are control-flow- or libm-bound).
//
// Two reduction modes:
//
//   * VectorMode::kExact ("vector_exact"): every floating-point sum
//     runs serially in the scalar engines' accumulation order; only the
//     elementwise products are vectorized.  The trajectory is
//     bitwise-identical to LrgpOptimizer / ParallelLrgpEngine.
//   * VectorMode::kTolerance ("vector"): cross-entity sums use
//     fixed-order 8-accumulator tree reductions and the closed-form
//     solve is algebraically fused (one pass, O(1) divisions per flow).
//     Results track the serial engine within the documented relative
//     tolerance (docs/algorithm.md, "Vectorized solver core").
//
// The engine is single-threaded by design: the vector lanes are the
// parallelism.  Shard it (simd::vector_member_factory) for more cores.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "lrgp/compiled_problem.hpp"
#include "lrgp/engine.hpp"
#include "obs/instruments.hpp"
#include "simd/kernels.hpp"
#include "utility/rate_objective.hpp"

namespace lrgp::simd {

/// Reduction contract of the engine (see file comment).
enum class VectorMode : std::uint8_t {
    kExact,      ///< bitwise-identical to the serial optimizer
    kTolerance,  ///< tree reductions + fused closed form, within tolerance
};

struct VectorEngineConfig {
    VectorMode mode = VectorMode::kTolerance;
    /// Accumulate per-phase wall time into stats() (off by default).
    bool collect_phase_times = false;
};

/// Cumulative kernel statistics (also exported as lrgp_vec_* metrics
/// when observability is attached).  Lane occupancy counts are layout
/// quantities: real CSR elements carried in vector lanes vs the padded
/// lanes wasted per iteration.
struct VectorEngineStats {
    std::uint64_t iterations = 0;
    std::uint64_t rate_ns = 0;    ///< phase 1 wall (kernel + generic flows)
    std::uint64_t node_ns = 0;    ///< phase 2 wall (kernel + rank/admit)
    std::uint64_t link_ns = 0;    ///< phase 3 wall (kernel + controllers)
    std::uint64_t reduce_ns = 0;  ///< Eq. 1 reduction + record
    std::uint64_t lanes_occupied = 0;
    std::uint64_t lanes_masked = 0;
    std::uint64_t bound_solves = 0;   ///< closed-form-family flows at a bound
    std::uint64_t closed_solves = 0;  ///< closed-form-family interior solves
};

class VectorLrgpEngine : public core::Engine {
public:
    explicit VectorLrgpEngine(model::ProblemSpec spec, core::LrgpOptions options = {},
                              VectorEngineConfig config = {});
    ~VectorLrgpEngine() override;

    [[nodiscard]] const char* name() const noexcept override;

    const core::IterationRecord& step() override;
    const core::IterationRecord& run(int iterations) override;
    std::optional<int> runUntilConverged(int max_iterations) override;

    // -- dynamic workload changes (same contracts as the other engines) --
    void removeFlow(model::FlowId flow) override;
    void restoreFlow(model::FlowId flow) override;
    void setNodeCapacity(model::NodeId node, double capacity) override;
    void setLinkCapacity(model::LinkId link, double capacity) override;
    void setClassMaxConsumers(model::ClassId cls, int max_consumers) override;
    void warmStart(const core::PriceVector& prices,
                   const std::vector<int>* populations = nullptr) override;

    void attachObservability(obs::Registry* registry,
                             obs::IterationTracer* tracer = nullptr) override;

    // -- observers --------------------------------------------------------
    [[nodiscard]] const model::ProblemSpec& problem() const noexcept override { return spec_; }
    [[nodiscard]] const model::Allocation& allocation() const noexcept override {
        return allocation_;
    }
    [[nodiscard]] const core::PriceVector& prices() const noexcept override { return prices_; }
    [[nodiscard]] double currentUtility() const override;
    [[nodiscard]] int iterationsRun() const noexcept override { return iteration_; }
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept override {
        return trace_;
    }
    [[nodiscard]] const core::ConvergenceDetector& convergence() const noexcept override {
        return detector_;
    }
    [[nodiscard]] double nodeGamma(model::NodeId node) const override;

    [[nodiscard]] VectorMode mode() const noexcept { return mode_; }
    /// Kernel variant the dispatcher bound at construction.
    [[nodiscard]] const char* variant() const noexcept;
    [[nodiscard]] const VectorEngineStats& stats() const noexcept { return stats_; }
    void resetStats() noexcept { stats_ = {}; }

private:
    struct Cand {
        double ratio;
        double unit_cost;
        double value;
        int max_consumers;
        std::uint32_t cls;
    };

    void buildSoA();
    void rebuildPopMirrors();
    void rebuildFlowAccumulators();
    void scalarSolveFlow(std::size_t f);
    void nodePhase();
    void noteConvergenceReset();

    VectorMode mode_;
    bool collect_phase_times_;
    const Kernels* kernels_;

    model::ProblemSpec spec_;
    core::LrgpOptions options_;
    core::CompiledProblem compiled_;
    model::Allocation allocation_;
    core::PriceVector prices_;
    std::vector<core::NodePriceController> node_prices_;
    std::vector<core::LinkPriceController> link_prices_;
    int iteration_ = 0;
    core::IterationRecord last_record_;
    metrics::TimeSeries trace_;
    core::ConvergenceDetector detector_;
    VectorEngineStats stats_;

    // -- padded structure-of-arrays mirror (built once; pads carry zero
    // weights/costs and index sentinel slots, see kernels.hpp) ----------
    std::vector<std::uint8_t> flow_family_;
    std::vector<double> flow_param_;  ///< 1.0 for kLog, else family param
    std::vector<std::size_t> fl_begin_;
    std::vector<std::uint32_t> fl_link_;
    std::vector<double> fl_cost_;
    std::vector<std::size_t> hc_begin_;
    std::vector<std::uint32_t> hc_cls_;
    std::vector<double> hc_gcost_;
    std::vector<std::size_t> fc_begin_;
    std::vector<std::uint32_t> fc_cls_;
    std::vector<double> fc_weight_;
    std::vector<double> fc_dweight_;
    std::vector<std::size_t> nc_begin_;
    std::vector<std::uint32_t> nc_cls_;
    std::vector<std::uint32_t> nc_flow_;
    std::vector<double> nc_gcost_;
    std::vector<double> nc_weight_;
    std::vector<std::size_t> lf_begin_;
    std::vector<std::uint32_t> lf_flow_;
    std::vector<double> lf_cost_;

    // -- state mirrors with sentinel slots for padded gathers -----------
    std::vector<double> rates_vec_;  ///< flowCount()+1, sentinel 0.0
    std::vector<double> trans_vec_;  ///< flowCount()+1, sentinel 0.0

    // -- per-flow Eq. 7 aggregates (tolerance mode) ---------------------
    // The admission pass owns every population write and every node
    // price move, so it folds the PB price term and the stationarity
    // sums into these L1-resident accumulators as it walks the nodes
    // (node-ascending, span order — a fixed, ISA-independent scalar
    // order).  The rate solve then reads O(1) scalars per flow.
    // Dynamic ops mark them dirty for a full rebuild (same order) at
    // the next step.
    std::vector<double> flow_pb_;       ///< sum_b price_b (fcost + sum gcost n)
    std::vector<double> flow_w_;        ///< sum n_j w_j over admitted classes
    std::vector<double> flow_d_;        ///< sum n_j w_j k (power derivative)
    std::vector<std::int64_t> flow_n_;  ///< sum n_j (integer, exact)
    bool flow_acc_dirty_ = true;

    // -- span-ordered population mirrors (int32, pads 0) ----------------
    // Exact mode streams populations contiguously from these instead of
    // gathering per class.  nodePhase refreshes the slots it admits via
    // the node-class-order position maps; dynamic ops mark them dirty
    // for a full rebuild at the next step.  The one extra slot is a
    // spare sink for classes absent from a span permutation.
    std::vector<std::int32_t> hc_pop_;        ///< hop-class span order
    std::vector<std::int32_t> fc_pop_;        ///< flow-class span order
    std::vector<std::uint32_t> ncu_hcpos_;    ///< node-class order -> hc slot
    std::vector<std::uint32_t> ncu_fcpos_;    ///< node-class order -> fc slot
    bool mirrors_unique_ = true;  ///< every class owns exactly one slot per span
    bool pop_mirror_dirty_ = true;

    // -- preallocated scratch -------------------------------------------
    std::vector<double> scratch_a_;
    std::vector<double> scratch_b_;
    std::vector<double> out_unit_;
    std::vector<double> out_value_;
    std::vector<double> out_ratio_;
    std::vector<double> link_scratch_;
    std::vector<double> usage_;
    std::vector<Cand> cands_;
    std::vector<double> class_utility_term_;
    std::vector<std::vector<utility::WeightedUtility>> flow_terms_;

    /// Layout occupancy totals per iteration (all padded spans).
    std::uint64_t lanes_real_per_iter_ = 0;
    std::uint64_t lanes_pad_per_iter_ = 0;

    // -- observability ---------------------------------------------------
    obs::SolverInstruments instr_;
    obs::AllocatorInstruments alloc_instr_;
    obs::VectorInstruments vec_instr_;
    bool obs_attached_ = false;
    obs::IterationTracer* tracer_ = nullptr;
};

/// Builds a vector engine (VectorMode picked by `config`).
[[nodiscard]] std::unique_ptr<core::Engine> make_vector_engine(model::ProblemSpec spec,
                                                               core::LrgpOptions options = {},
                                                               VectorEngineConfig config = {});

/// Member factory for shard::ShardedConfig::member_factory: every shard
/// subproblem gets its own VectorLrgpEngine in the given mode.
[[nodiscard]] std::function<std::unique_ptr<core::Engine>(model::ProblemSpec, core::LrgpOptions)>
vector_member_factory(VectorMode mode = VectorMode::kTolerance);

}  // namespace lrgp::simd
