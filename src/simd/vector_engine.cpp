#include "simd/vector_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "lrgp/greedy_allocator.hpp"
#include "model/allocation.hpp"

namespace lrgp::simd {

// The kernel TUs mirror core::SolveFamily as raw bytes; keep them locked.
static_assert(static_cast<std::uint8_t>(core::SolveFamily::kGeneric) == kFamGeneric);
static_assert(static_cast<std::uint8_t>(core::SolveFamily::kLog) == kFamLog);
static_assert(static_cast<std::uint8_t>(core::SolveFamily::kPower) == kFamPower);
static_assert(static_cast<std::uint8_t>(core::SolveFamily::kShiftedLog) == kFamShiftedLog);

namespace {

inline std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

VectorLrgpEngine::VectorLrgpEngine(model::ProblemSpec spec, core::LrgpOptions options,
                                   VectorEngineConfig config)
    : mode_(config.mode),
      collect_phase_times_(config.collect_phase_times),
      kernels_(&active_kernels()),
      spec_(std::move(spec)),
      options_(options),
      compiled_(spec_),
      allocation_(model::Allocation::minimal(spec_)),
      prices_(core::PriceVector::zeros(spec_.nodeCount(), spec_.linkCount())),
      detector_(options.convergence) {
    node_prices_.reserve(spec_.nodeCount());
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        node_prices_.emplace_back(options_.gamma, options_.initial_node_price,
                                  options_.node_price_rule);
    link_prices_.reserve(spec_.linkCount());
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        link_prices_.emplace_back(options_.link_gamma, options_.initial_link_price);
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        prices_.node[b] = options_.initial_node_price;
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        prices_.link[l] = options_.initial_link_price;

    // Eq. 7 terms for the reference-solver path (generic flows, or all
    // flows when closed forms are disabled).
    flow_terms_.resize(spec_.flowCount());
    for (const model::FlowSpec& f : spec_.flows()) {
        auto& terms = flow_terms_[f.id.index()];
        const auto& classes = spec_.classesOfFlow(f.id);
        terms.reserve(classes.size());
        for (model::ClassId j : classes)
            terms.push_back({0.0, spec_.consumerClass(j).utility});
    }
    class_utility_term_.assign(spec_.classCount(), 0.0);
    cands_.resize(compiled_.max_classes_at_node);

    buildSoA();
}

VectorLrgpEngine::~VectorLrgpEngine() = default;

void VectorLrgpEngine::buildSoA() {
    const core::CompiledProblem& cp = compiled_;
    const std::size_t F = cp.flowCount();
    const std::size_t C = cp.classCount();
    const std::size_t N = cp.nodeCount();
    const std::size_t L = cp.linkCount();
    const std::uint32_t cls_sentinel = static_cast<std::uint32_t>(C);
    const std::uint32_t flow_sentinel = static_cast<std::uint32_t>(F);

    flow_family_.resize(F);
    flow_param_.resize(F);
    for (std::size_t f = 0; f < F; ++f) {
        flow_family_[f] = static_cast<std::uint8_t>(cp.flow_family[f]);
        // kLog is the shifted-log family with shift exactly 1.0: the
        // kernels then reproduce the serial kLog arithmetic bitwise
        // (1.0 + r; W/price - 1.0; log1p(rate / 1.0) == log1p(rate)).
        flow_param_[f] = cp.flow_family[f] == core::SolveFamily::kLog
                             ? 1.0
                             : cp.flow_family_param[f];
    }

    std::size_t max_span = 0;
    std::uint64_t real = 0, pad_total = 0;
    // Pads carry a zero cost/weight so their lane products are an exact
    // +0.0; gathers through pads hit either slot 0 of a live price array
    // (harmless: the product is zero) or the dedicated sentinel slot of
    // the engine-owned state mirrors (rates/trans/populations).
    const auto pad_csr = [&](const std::vector<std::size_t>& begin, auto&& emit_real,
                             auto&& emit_pad, std::vector<std::size_t>& out_begin) {
        const std::size_t n = begin.size() - 1;
        out_begin.assign(n + 1, 0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t len = begin[i + 1] - begin[i];
            const std::size_t plen = padded(len);
            out_begin[i + 1] = out_begin[i] + plen;
            max_span = std::max(max_span, plen);
            real += len;
            pad_total += plen - len;
        }
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t e = begin[i]; e < begin[i + 1]; ++e) emit_real(e);
            const std::size_t len = begin[i + 1] - begin[i];
            for (std::size_t p = len; p < padded(len); ++p) emit_pad();
        }
    };

    pad_csr(
        cp.flow_link_begin,
        [&](std::size_t e) {
            fl_link_.push_back(cp.link_hop_link[e]);
            fl_cost_.push_back(cp.link_hop_cost[e]);
        },
        [&] {
            fl_link_.push_back(0);
            fl_cost_.push_back(0.0);
        },
        fl_begin_);
    pad_csr(
        cp.hop_class_begin,
        [&](std::size_t e) {
            hc_cls_.push_back(cp.hop_class_class[e]);
            hc_gcost_.push_back(cp.hop_class_gcost[e]);
        },
        [&] {
            hc_cls_.push_back(cls_sentinel);
            hc_gcost_.push_back(0.0);
        },
        hc_begin_);
    pad_csr(
        cp.flow_class_begin,
        [&](std::size_t e) {
            const std::uint32_t cls = cp.flow_class_class[e];
            fc_cls_.push_back(cls);
            fc_weight_.push_back(cp.class_weight[cls]);
            fc_dweight_.push_back(cp.class_dweight[cls]);
        },
        [&] {
            fc_cls_.push_back(cls_sentinel);
            fc_weight_.push_back(0.0);
            fc_dweight_.push_back(0.0);
        },
        fc_begin_);

    std::size_t max_node_span = 0;
    {
        std::size_t save = max_span;
        max_span = 0;
        pad_csr(
            cp.node_class_begin,
            [&](std::size_t e) {
                const std::uint32_t cls = cp.node_class_class[e];
                nc_cls_.push_back(cls);
                nc_flow_.push_back(cp.class_flow[cls]);
                nc_gcost_.push_back(cp.class_gcost[cls]);
                nc_weight_.push_back(cp.class_weight[cls]);
            },
            [&] {
                nc_cls_.push_back(cls_sentinel);
                nc_flow_.push_back(flow_sentinel);
                nc_gcost_.push_back(0.0);
                nc_weight_.push_back(0.0);
            },
            nc_begin_);
        max_node_span = max_span;
        max_span = save;
    }
    std::size_t max_link_span = 0;
    {
        std::size_t save = max_span;
        max_span = 0;
        pad_csr(
            cp.link_flow_begin,
            [&](std::size_t e) {
                lf_flow_.push_back(cp.link_flow_flow[e]);
                lf_cost_.push_back(cp.link_flow_cost[e]);
            },
            [&] {
                lf_flow_.push_back(flow_sentinel);
                lf_cost_.push_back(0.0);
            },
            lf_begin_);
        max_link_span = max_span;
        max_span = save;
    }

    lanes_real_per_iter_ = real;
    lanes_pad_per_iter_ = pad_total;

    // Population mirror slots: each class owns (at most) one slot per
    // span permutation — a class lives at one node and subscribes to one
    // flow, so the hop-class and flow-class spans both partition the
    // classes.  The position maps let nodePhase refresh exactly the
    // slots whose populations it rewrites; classes absent from a span
    // (or duplicated by a route revisiting a node) fall back to the
    // spare sink slot / full per-step rebuilds.
    constexpr std::uint32_t kNoSlot = 0xffffffffu;
    hc_pop_.assign(hc_cls_.size() + 1, 0);
    fc_pop_.assign(fc_cls_.size() + 1, 0);
    mirrors_unique_ =
        hc_cls_.size() < kNoSlot && fc_cls_.size() < kNoSlot;
    std::vector<std::uint32_t> hc_slot(C, kNoSlot), fc_slot(C, kNoSlot);
    if (mirrors_unique_) {
        for (std::size_t p = 0; p < hc_cls_.size(); ++p) {
            const std::uint32_t cls = hc_cls_[p];
            if (cls >= C) continue;
            if (hc_slot[cls] != kNoSlot) mirrors_unique_ = false;
            hc_slot[cls] = static_cast<std::uint32_t>(p);
        }
        for (std::size_t p = 0; p < fc_cls_.size(); ++p) {
            const std::uint32_t cls = fc_cls_[p];
            if (cls >= C) continue;
            if (fc_slot[cls] != kNoSlot) mirrors_unique_ = false;
            fc_slot[cls] = static_cast<std::uint32_t>(p);
        }
    }
    const std::size_t nc_entries = cp.node_class_begin[N];
    ncu_hcpos_.resize(nc_entries);
    ncu_fcpos_.resize(nc_entries);
    const std::uint32_t hc_spare = static_cast<std::uint32_t>(hc_pop_.size() - 1);
    const std::uint32_t fc_spare = static_cast<std::uint32_t>(fc_pop_.size() - 1);
    for (std::size_t e = 0; e < nc_entries; ++e) {
        const std::uint32_t cls = cp.node_class_class[e];
        ncu_hcpos_[e] = hc_slot[cls] != kNoSlot ? hc_slot[cls] : hc_spare;
        ncu_fcpos_[e] = fc_slot[cls] != kNoSlot ? fc_slot[cls] : fc_spare;
    }
    rebuildPopMirrors();

    flow_pb_.assign(F, 0.0);
    flow_w_.assign(F, 0.0);
    flow_d_.assign(F, 0.0);
    flow_n_.assign(F, 0);
    rebuildFlowAccumulators();

    rates_vec_.assign(F + 1, 0.0);
    trans_vec_.assign(F + 1, 0.0);
    scratch_a_.assign(std::max<std::size_t>(max_span, kWidth), 0.0);
    scratch_b_.assign(scratch_a_.size(), 0.0);
    out_unit_.assign(std::max<std::size_t>(max_node_span, kWidth), 0.0);
    out_value_.assign(out_unit_.size(), 0.0);
    out_ratio_.assign(out_unit_.size(), 0.0);
    link_scratch_.assign(std::max<std::size_t>(max_link_span, kWidth), 0.0);
    usage_.assign(L, 0.0);
}

void VectorLrgpEngine::rebuildPopMirrors() {
    const std::size_t C = compiled_.classCount();
    const std::vector<int>& pops = allocation_.populations;
    for (std::size_t p = 0; p < hc_cls_.size(); ++p) {
        const std::uint32_t cls = hc_cls_[p];
        hc_pop_[p] = cls < C ? pops[cls] : 0;
    }
    for (std::size_t p = 0; p < fc_cls_.size(); ++p) {
        const std::uint32_t cls = fc_cls_[p];
        fc_pop_[p] = cls < C ? pops[cls] : 0;
    }
    // Duplicate-slot layouts cannot be kept fresh by nodePhase's
    // one-slot-per-class refresh; stay dirty and rebuild every step.
    pop_mirror_dirty_ = !mirrors_unique_;
}

// Full recompute of the tolerance-mode per-flow aggregates, in exactly
// the order nodePhase accumulates them (node-ascending; per node the
// hop fcost entries, then the class entries in span order) so a value
// is bitwise the same whether it came from the rebuild or the
// admission pass.
void VectorLrgpEngine::rebuildFlowAccumulators() {
    const core::CompiledProblem& cp = compiled_;
    const std::vector<int>& pops = allocation_.populations;
    std::fill(flow_pb_.begin(), flow_pb_.end(), 0.0);
    std::fill(flow_w_.begin(), flow_w_.end(), 0.0);
    std::fill(flow_d_.begin(), flow_d_.end(), 0.0);
    std::fill(flow_n_.begin(), flow_n_.end(), 0);
    for (std::size_t b = 0; b < cp.nodeCount(); ++b) {
        const double price = prices_.node[b];
        for (std::size_t e = cp.node_flow_begin[b]; e < cp.node_flow_begin[b + 1]; ++e) {
            const std::uint32_t f = cp.node_flow_flow[e];
            if (!cp.flow_active[f]) continue;
            flow_pb_[f] += cp.node_flow_fcost[e] * price;
        }
        for (std::size_t e = cp.node_class_begin[b]; e < cp.node_class_begin[b + 1]; ++e) {
            const std::uint32_t cls = cp.node_class_class[e];
            const int n = pops[cls];
            if (n == 0) continue;
            const std::uint32_t f = cp.class_flow[cls];
            const double nd = static_cast<double>(n);
            flow_pb_[f] += cp.class_gcost[cls] * nd * price;
            flow_w_[f] += nd * cp.class_weight[cls];
            flow_d_[f] += nd * cp.class_dweight[cls];
            flow_n_[f] += n;
        }
    }
    flow_acc_dirty_ = false;
}

const char* VectorLrgpEngine::name() const noexcept {
    return mode_ == VectorMode::kExact ? "vector_exact" : "vector";
}

const char* VectorLrgpEngine::variant() const noexcept { return kernels_->name; }

void VectorLrgpEngine::scalarSolveFlow(std::size_t f) {
    const core::CompiledProblem& cp = compiled_;
    const std::vector<int>& pops = allocation_.populations;

    double pl = 0.0;
    for (std::size_t h = cp.flow_link_begin[f]; h < cp.flow_link_begin[f + 1]; ++h)
        pl += cp.link_hop_cost[h] * prices_.link[cp.link_hop_link[h]];
    double pb = 0.0;
    for (std::size_t h = cp.flow_node_begin[f]; h < cp.flow_node_begin[f + 1]; ++h) {
        double per_rate_cost = cp.node_hop_fcost[h];
        for (std::size_t e = cp.hop_class_begin[h]; e < cp.hop_class_begin[h + 1]; ++e)
            per_rate_cost += cp.hop_class_gcost[e] * pops[cp.hop_class_class[e]];
        pb += per_rate_cost * prices_.node[cp.node_hop_node[h]];
    }
    const double price = pl + pb;

    auto& terms = flow_terms_[f];
    const std::size_t begin = cp.flow_class_begin[f];
    for (std::size_t e = begin; e < cp.flow_class_begin[f + 1]; ++e)
        terms[e - begin].population = static_cast<double>(pops[cp.flow_class_class[e]]);
    const utility::RateSolveResult result = utility::solve_rate_objective(
        terms, price, cp.flow_rate_min[f], cp.flow_rate_max[f], options_.rate_solve);
    rates_vec_[f] = result.rate;
    if constexpr (obs::kEnabled) {
        if (obs_attached_) {
            switch (result.method) {
                case utility::RateSolveMethod::kClosedForm:
                    alloc_instr_.rate_closed_form->add(1);
                    break;
                case utility::RateSolveMethod::kNumeric:
                    alloc_instr_.rate_numeric->add(1);
                    break;
                default: alloc_instr_.rate_bound->add(1); break;
            }
        }
    }

    switch (cp.flow_family[f]) {
        case core::SolveFamily::kLog: trans_vec_[f] = std::log1p(result.rate); break;
        case core::SolveFamily::kPower:
            trans_vec_[f] = std::pow(result.rate, cp.flow_family_param[f]);
            break;
        case core::SolveFamily::kShiftedLog:
            trans_vec_[f] = std::log1p(result.rate / cp.flow_family_param[f]);
            break;
        case core::SolveFamily::kGeneric: break;
    }
}

void VectorLrgpEngine::nodePhase() {
    const core::CompiledProblem& cp = compiled_;
    NodeView view;
    view.nc_begin = nc_begin_.data();
    view.nc_cls = nc_cls_.data();
    view.nc_gcost = nc_gcost_.data();
    view.nc_weight = nc_weight_.data();
    view.nc_flow = nc_flow_.data();
    view.rates = rates_vec_.data();
    view.trans = trans_vec_.data();
    view.out_unit = out_unit_.data();
    view.out_value = out_value_.data();
    view.out_ratio = out_ratio_.data();
    KernelTallies node_tallies;

    // Tolerance mode folds the Eq. 7 aggregates into this pass: the
    // admission loop is the only writer of populations and the price
    // controller runs right here, so each node contributes its terms
    // while they are still in registers (see rebuildFlowAccumulators
    // for the matching cold-start order).
    const bool fold_accumulators = mode_ == VectorMode::kTolerance;
    if (fold_accumulators) {
        std::fill(flow_pb_.begin(), flow_pb_.end(), 0.0);
        std::fill(flow_w_.begin(), flow_w_.end(), 0.0);
        std::fill(flow_d_.begin(), flow_d_.end(), 0.0);
        std::fill(flow_n_.begin(), flow_n_.end(), 0);
    }

    [[maybe_unused]] std::uint64_t candidates = 0, price_moves = 0;
    for (std::size_t b = 0; b < cp.nodeCount(); ++b) {
        // F_{b,i} * r_i base usage, scalar in span order with the serial
        // engine's active-flow skip.
        double base_usage = 0.0;
        for (std::size_t e = cp.node_flow_begin[b]; e < cp.node_flow_begin[b + 1]; ++e) {
            const std::uint32_t f = cp.node_flow_flow[e];
            if (!cp.flow_active[f]) continue;
            base_usage += cp.node_flow_fcost[e] * allocation_.rates[f];
        }

        // Elementwise unit/value/ratio for the whole padded span, then a
        // scalar compaction replaying buildNodeCands' skip rules.
        kernels_->node_cands(view, nc_begin_[b], nc_begin_[b + 1], node_tallies);
        std::uint32_t count = 0;
        const std::size_t rb = cp.node_class_begin[b];
        const std::size_t re = cp.node_class_begin[b + 1];
        for (std::size_t j = 0; j < re - rb; ++j) {
            const std::uint32_t cls = cp.node_class_class[rb + j];
            allocation_.populations[cls] = 0;
            class_utility_term_[cls] = 0.0;
            const std::uint32_t f = cp.class_flow[cls];
            if (!cp.flow_active[f] || cp.class_max_consumers[cls] == 0) continue;
            const double unit_cost = out_unit_[j];
            if (!(unit_cost > 0.0)) continue;
            double value, ratio;
            if (cp.flow_family[f] == core::SolveFamily::kGeneric) {
                value = cp.class_utility[cls]->value(allocation_.rates[f]);
                ratio = value / unit_cost;
            } else {
                value = out_value_[j];
                ratio = out_ratio_[j];
            }
            cands_[count++] = {ratio, unit_cost, value, cp.class_max_consumers[cls], cls};
        }
        std::sort(cands_.begin(), cands_.begin() + count, core::BenefitCostOrder{});

        // Greedy admission (Algorithm 2), identical to the other engines.
        const double capacity = cp.node_capacity[b];
        double remaining = capacity - base_usage;
        std::optional<double> best_unmet_bc;
        for (std::uint32_t i = 0; i < count; ++i) {
            const Cand& cand = cands_[i];
            int admitted = 0;
            if (remaining > 0.0) {
                admitted = static_cast<int>(std::min(std::floor(remaining / cand.unit_cost),
                                                     static_cast<double>(cand.max_consumers)));
            }
            remaining -= admitted * cand.unit_cost;
            allocation_.populations[cand.cls] = admitted;
            class_utility_term_[cand.cls] = admitted > 0 ? admitted * cand.value : 0.0;
            if (admitted < cand.max_consumers && !best_unmet_bc) best_unmet_bc = cand.ratio;
        }
        if (!fold_accumulators) {
            // Exact mode streams populations through the span-ordered
            // mirrors; refresh the slots this node just rewrote (data
            // is still hot).
            for (std::size_t j = 0; j < re - rb; ++j) {
                const std::int32_t n = allocation_.populations[cp.node_class_class[rb + j]];
                hc_pop_[ncu_hcpos_[rb + j]] = n;
                fc_pop_[ncu_fcpos_[rb + j]] = n;
            }
        }

        prices_.node[b] = node_prices_[b].update(best_unmet_bc, capacity - remaining, capacity);
        if (fold_accumulators) {
            const double price = prices_.node[b];
            for (std::size_t e = cp.node_flow_begin[b]; e < cp.node_flow_begin[b + 1]; ++e) {
                const std::uint32_t f = cp.node_flow_flow[e];
                if (!cp.flow_active[f]) continue;
                flow_pb_[f] += cp.node_flow_fcost[e] * price;
            }
            for (std::size_t e = rb; e < re; ++e) {
                const std::uint32_t cls = cp.node_class_class[e];
                const int n = allocation_.populations[cls];
                if (n == 0) continue;
                const std::uint32_t f = cp.class_flow[cls];
                const double nd = static_cast<double>(n);
                flow_pb_[f] += cp.class_gcost[cls] * nd * price;
                flow_w_[f] += nd * cp.class_weight[cls];
                flow_d_[f] += nd * cp.class_dweight[cls];
                flow_n_[f] += n;
            }
        }
        if constexpr (obs::kEnabled) {
            candidates += count;
            if (node_prices_[b].lastMoved()) ++price_moves;
        }
    }

    if constexpr (obs::kEnabled) {
        if (obs_attached_ && cp.nodeCount() > 0) {
            alloc_instr_.greedy_allocations->add(cp.nodeCount());
            alloc_instr_.greedy_candidates->add(candidates);
            instr_.node_price_moves->add(price_moves);
        }
    }
}

const core::IterationRecord& VectorLrgpEngine::step() {
    const core::CompiledProblem& cp = compiled_;
    const std::size_t F = cp.flowCount();
    const std::size_t C = cp.classCount();
    const Reduction reduction =
        mode_ == VectorMode::kExact ? Reduction::kSerial : Reduction::kTree;

    [[maybe_unused]] bool obs_on = false;
    bool timed = collect_phase_times_;
    if constexpr (obs::kEnabled) {
        obs_on = obs_attached_;
        if (tracer_) tracer_->beginIteration(static_cast<std::uint64_t>(iteration_) + 1);
        timed = timed || obs_on || (tracer_ && tracer_->sampling());
    }
    std::uint64_t t0 = timed ? now_ns() : 0;

    // Refresh the state mirrors (dynamic ops edit the model arrays in
    // place between iterations; nodePhase keeps the population mirrors
    // fresh on the steady path).
    if (mode_ == VectorMode::kExact) {
        if (pop_mirror_dirty_) rebuildPopMirrors();
    } else if (flow_acc_dirty_) {
        rebuildFlowAccumulators();
    }
    std::copy(allocation_.rates.begin(), allocation_.rates.end(), rates_vec_.begin());

    // Phase 1: closed-form families through the vector kernel, the rest
    // through the reference solver.
    RateView rv;
    rv.flow_count = F;
    rv.flow_active = cp.flow_active.data();
    rv.flow_family = flow_family_.data();
    rv.flow_param = flow_param_.data();
    rv.rate_min = cp.flow_rate_min.data();
    rv.rate_max = cp.flow_rate_max.data();
    rv.fl_begin = fl_begin_.data();
    rv.fl_link = fl_link_.data();
    rv.fl_cost = fl_cost_.data();
    rv.fn_begin = cp.flow_node_begin.data();
    rv.fn_node = cp.node_hop_node.data();
    rv.fn_fcost = cp.node_hop_fcost.data();
    rv.hc_begin = hc_begin_.data();
    rv.hc_gcost = hc_gcost_.data();
    rv.fc_begin = fc_begin_.data();
    rv.fc_weight = fc_weight_.data();
    rv.fc_dweight = fc_dweight_.data();
    rv.hc_pop = hc_pop_.data();
    rv.fc_pop = fc_pop_.data();
    rv.flow_pb = flow_pb_.data();
    rv.flow_w = flow_w_.data();
    rv.flow_d = flow_d_.data();
    rv.flow_n = flow_n_.data();
    rv.node_price = prices_.node.data();
    rv.link_price = prices_.link.data();
    rv.rates = rates_vec_.data();
    rv.trans = trans_vec_.data();
    rv.scratch_a = scratch_a_.data();
    rv.scratch_b = scratch_b_.data();
    rv.reduction = reduction;
    rv.allow_closed_form = options_.rate_solve.allow_closed_form;

    KernelTallies tallies;
    kernels_->rate_phase(rv, 0, F, tallies);
    [[maybe_unused]] std::uint64_t reference_solves = 0;
    for (std::size_t f = 0; f < F; ++f) {
        if (!cp.flow_active[f]) continue;
        if (cp.flow_family[f] != core::SolveFamily::kGeneric &&
            options_.rate_solve.allow_closed_form)
            continue;
        scalarSolveFlow(f);
        ++reference_solves;
    }
    std::copy(rates_vec_.begin(), rates_vec_.begin() + static_cast<std::ptrdiff_t>(F),
              allocation_.rates.begin());
    std::uint64_t t1 = timed ? now_ns() : 0;

    // Phase 2: vector scoring + scalar rank/admit/price per node.
    nodePhase();
    std::uint64_t t2 = timed ? now_ns() : 0;

    // Phase 3: vector usage sums + scalar price controllers.
    {
        LinkView lv;
        lv.lf_begin = lf_begin_.data();
        lv.lf_flow = lf_flow_.data();
        lv.lf_cost = lf_cost_.data();
        lv.rates = rates_vec_.data();
        lv.scratch = link_scratch_.data();
        lv.usage = usage_.data();
        lv.reduction = reduction;
        kernels_->link_usage(lv, 0, cp.linkCount(), tallies);
        [[maybe_unused]] std::uint64_t price_moves = 0;
        for (std::size_t l = 0; l < cp.linkCount(); ++l) {
            prices_.link[l] = link_prices_[l].update(usage_[l], cp.link_capacity[l]);
            if constexpr (obs::kEnabled)
                if (link_prices_[l].lastMoved()) ++price_moves;
        }
        if constexpr (obs::kEnabled)
            if (obs_attached_ && price_moves > 0) instr_.link_price_moves->add(price_moves);
    }
    std::uint64_t t3 = timed ? now_ns() : 0;

    // Eq. 1 epilogue: serial class order in exact mode (bitwise the
    // scalar engines' sum), fixed-order tree in tolerance mode.
    const double utility = mode_ == VectorMode::kExact
                               ? kernels_->sum_serial(class_utility_term_.data(), C)
                               : kernels_->sum_tree(class_utility_term_.data(), C);

    ++iteration_;
    last_record_.iteration = iteration_;
    last_record_.utility = utility;
    last_record_.allocation = allocation_;
    last_record_.prices = prices_;
    trace_.append(utility);
    detector_.addSample(utility);

    std::uint64_t t4 = 0;
    if (timed) {
        t4 = now_ns();
        if (collect_phase_times_) {
            stats_.rate_ns += t1 - t0;
            stats_.node_ns += t2 - t1;
            stats_.link_ns += t3 - t2;
            stats_.reduce_ns += t4 - t3;
        }
    }
    ++stats_.iterations;
    stats_.lanes_occupied += lanes_real_per_iter_;
    stats_.lanes_masked += lanes_pad_per_iter_;
    stats_.bound_solves += tallies.bound_solves;
    stats_.closed_solves += tallies.closed_solves;

    if constexpr (obs::kEnabled) {
        [[maybe_unused]] long long admitted_total = 0;
        if (obs_on || (tracer_ && tracer_->sampling()))
            for (int n : allocation_.populations) admitted_total += n;
        if (obs_on) {
            instr_.iterations->add(1);
            instr_.rate_solves->add(tallies.bound_solves + tallies.closed_solves +
                                    reference_solves);
            if (tallies.bound_solves > 0) alloc_instr_.rate_bound->add(tallies.bound_solves);
            if (tallies.closed_solves > 0)
                alloc_instr_.rate_closed_form->add(tallies.closed_solves);
            instr_.admissions->add(static_cast<std::uint64_t>(admitted_total));
            alloc_instr_.greedy_admitted->add(static_cast<std::uint64_t>(admitted_total));
            instr_.utility->set(utility);
            instr_.admitted_consumers->set(static_cast<double>(admitted_total));
            instr_.phase_rate->observe(static_cast<double>(t1 - t0) * 1e-9);
            instr_.phase_node->observe(static_cast<double>(t2 - t1) * 1e-9);
            instr_.phase_link->observe(static_cast<double>(t3 - t2) * 1e-9);
            instr_.phase_reduce->observe(static_cast<double>(t4 - t3) * 1e-9);
            instr_.iter_seconds->observe(static_cast<double>(t4 - t0) * 1e-9);
            vec_instr_.lanes_occupied->add(lanes_real_per_iter_);
            vec_instr_.lanes_masked->add(lanes_pad_per_iter_);
            vec_instr_.rate_kernel_ns->add(t1 - t0);
            vec_instr_.node_kernel_ns->add(t2 - t1);
            vec_instr_.link_kernel_ns->add(t3 - t2);
            vec_instr_.bound_solves->add(tallies.bound_solves);
            vec_instr_.closed_solves->add(tallies.closed_solves);
        }
        if (tracer_ && tracer_->sampling()) {
            const double origin = tracer_->nowMicros();
            const auto us = [](std::uint64_t a, std::uint64_t b) {
                return static_cast<double>(b - a) * 1e-3;
            };
            const double ts0 = timed ? origin - us(t0, t4) : origin;
            tracer_->complete("rate_phase", "lrgp", 0, ts0, us(t0, t1));
            tracer_->complete("node_phase", "lrgp", 0, ts0 + us(t0, t1), us(t1, t2));
            tracer_->complete("link_phase", "lrgp", 0, ts0 + us(t0, t2), us(t2, t3));
            tracer_->complete("iteration", "lrgp", 0, ts0, us(t0, t4),
                              {{"iteration", static_cast<double>(iteration_)},
                               {"utility", utility},
                               {"admitted", static_cast<double>(admitted_total)}});
            tracer_->counterSample("utility", 0, origin, utility);
        }
    }
    return last_record_;
}

const core::IterationRecord& VectorLrgpEngine::run(int iterations) {
    if (iterations <= 0)
        throw std::invalid_argument("VectorLrgpEngine::run: iterations must be > 0");
    for (int i = 0; i < iterations; ++i) step();
    return last_record_;
}

std::optional<int> VectorLrgpEngine::runUntilConverged(int max_iterations) {
    if (max_iterations <= 0)
        throw std::invalid_argument("VectorLrgpEngine::runUntilConverged: bad max_iterations");
    for (int i = 0; i < max_iterations; ++i) {
        step();
        if (detector_.converged()) return static_cast<int>(detector_.convergedAt());
    }
    return std::nullopt;
}

void VectorLrgpEngine::noteConvergenceReset() {
    if constexpr (obs::kEnabled) {
        if (obs_attached_) instr_.convergence_resets->add(1);
        if (tracer_ && tracer_->sampling())
            tracer_->instant("convergence_reset", "lrgp", 0, tracer_->nowMicros());
    }
}

void VectorLrgpEngine::removeFlow(model::FlowId flow) {
    if (!spec_.flowActive(flow)) throw std::logic_error("removeFlow: flow already inactive");
    spec_.setFlowActive(flow, false);
    compiled_.setFlowActive(flow, false);
    allocation_.rates[flow.index()] = 0.0;
    for (model::ClassId j : spec_.classesOfFlow(flow)) allocation_.populations[j.index()] = 0;
    pop_mirror_dirty_ = true;
    flow_acc_dirty_ = true;
    detector_.reset();
    noteConvergenceReset();
}

void VectorLrgpEngine::restoreFlow(model::FlowId flow) {
    if (spec_.flowActive(flow)) throw std::logic_error("restoreFlow: flow already active");
    spec_.setFlowActive(flow, true);
    compiled_.setFlowActive(flow, true);
    flow_acc_dirty_ = true;
    allocation_.rates[flow.index()] = spec_.flow(flow).rate_min;
    detector_.reset();
    noteConvergenceReset();
}

void VectorLrgpEngine::setNodeCapacity(model::NodeId node, double capacity) {
    spec_.setNodeCapacity(node, capacity);
    compiled_.setNodeCapacity(node, capacity);
    detector_.reset();
    noteConvergenceReset();
}

void VectorLrgpEngine::setLinkCapacity(model::LinkId link, double capacity) {
    spec_.setLinkCapacity(link, capacity);
    compiled_.setLinkCapacity(link, capacity);
    detector_.reset();
    noteConvergenceReset();
}

void VectorLrgpEngine::setClassMaxConsumers(model::ClassId cls, int max_consumers) {
    spec_.setClassMaxConsumers(cls, max_consumers);
    compiled_.setClassMaxConsumers(cls, max_consumers);
    auto& n = allocation_.populations.at(cls.index());
    n = std::min(n, max_consumers);
    pop_mirror_dirty_ = true;
    flow_acc_dirty_ = true;
    detector_.reset();
    noteConvergenceReset();
}

void VectorLrgpEngine::warmStart(const core::PriceVector& prices,
                                 const std::vector<int>* populations) {
    if (prices.node.size() != spec_.nodeCount() || prices.link.size() != spec_.linkCount())
        throw std::invalid_argument("warmStart: price vector sized for another problem");
    prices_ = prices;
    for (std::size_t b = 0; b < node_prices_.size(); ++b)
        node_prices_[b].reset(prices.node[b]);
    for (std::size_t l = 0; l < link_prices_.size(); ++l)
        link_prices_[l].reset(prices.link[l]);
    if (populations != nullptr) {
        if (populations->size() != spec_.classCount())
            throw std::invalid_argument("warmStart: populations sized for another problem");
        for (const model::ClassSpec& c : spec_.classes())
            allocation_.populations[c.id.index()] =
                std::min((*populations)[c.id.index()], c.max_consumers);
        pop_mirror_dirty_ = true;
    }
    // New node prices invalidate the PB aggregates even when the
    // populations are kept.
    flow_acc_dirty_ = true;
    detector_.reset();
    noteConvergenceReset();
}

void VectorLrgpEngine::attachObservability(obs::Registry* registry,
                                           obs::IterationTracer* tracer) {
    if constexpr (obs::kEnabled) {
        if (registry != nullptr) {
            instr_ = obs::SolverInstruments::resolve(*registry);
            alloc_instr_ = obs::AllocatorInstruments::resolve(*registry);
            vec_instr_ = obs::VectorInstruments::resolve(*registry);
            obs_attached_ = true;
        } else {
            obs_attached_ = false;
        }
        tracer_ = tracer;
    } else {
        (void)registry;
        (void)tracer;
    }
}

double VectorLrgpEngine::currentUtility() const {
    return model::total_utility(spec_, allocation_);
}

double VectorLrgpEngine::nodeGamma(model::NodeId node) const {
    return node_prices_.at(node.index()).currentGamma();
}

std::unique_ptr<core::Engine> make_vector_engine(model::ProblemSpec spec,
                                                 core::LrgpOptions options,
                                                 VectorEngineConfig config) {
    return std::make_unique<VectorLrgpEngine>(std::move(spec), options, config);
}

std::function<std::unique_ptr<core::Engine>(model::ProblemSpec, core::LrgpOptions)>
vector_member_factory(VectorMode mode) {
    return [mode](model::ProblemSpec spec, core::LrgpOptions options) {
        VectorEngineConfig config;
        config.mode = mode;
        return std::make_unique<VectorLrgpEngine>(std::move(spec), options, config);
    };
}

}  // namespace lrgp::simd
