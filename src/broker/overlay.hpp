// A miniature content-based pub/sub broker overlay that *enacts* LRGP
// allocations and grounds the paper's resource model (Eqs. 4-5).
//
// The overlay is constructed from a ProblemSpec: every flow is routed to
// the nodes the spec says it reaches, a message at node b costs the
// spec's F_{b,i} units, and each delivery attempt to an admitted consumer
// of class j costs G_{b,j} units (filter evaluation + reliable-delivery
// work).  Traffic is simulated in epochs: producers publish at their
// enacted rates, nodes burn their capacity budgets, and overloaded nodes
// drop messages.  Tests verify that the measured per-node resource usage
// matches the constraint equation (5) the optimizer reasons about, which
// is the substitution for the paper's measurements on the closed-source
// Gryphon broker.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "broker/filter.hpp"
#include "broker/message.hpp"
#include "broker/transform.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"

namespace lrgp::broker {

using ConsumerId = std::uint32_t;

/// A connected consumer: belongs to a class, optionally filters content,
/// and accumulates delivery statistics.  Unadmitted consumers stay
/// connected but receive nothing (Section 2.1).
///
/// Reliability accounting (the paper's gold consumers "expect reliable
/// and fast delivery"): each consumer tracks the flow sequence numbers
/// it observes; gaps while admitted indicate messages lost to node
/// overload or link drops upstream.
struct Consumer {
    ConsumerId id = 0;
    model::ClassId cls;
    FilterPtr filter;          ///< never null
    bool admitted = false;
    std::uint64_t delivered = 0;     ///< messages that matched and were delivered
    std::uint64_t filtered_out = 0;  ///< messages inspected but not matched
    std::uint64_t gaps = 0;          ///< missed messages detected via sequence jumps
    std::uint64_t last_sequence = 0; ///< last observed flow sequence (valid if seen_any)
    bool seen_any = false;
};

/// Per-node statistics for one epoch.
struct NodeEpochStats {
    double used = 0.0;        ///< resource units consumed
    double budget = 0.0;      ///< capacity * epoch seconds
    std::uint64_t processed = 0;  ///< messages fully processed
    std::uint64_t dropped = 0;    ///< messages dropped for lack of budget
    [[nodiscard]] double utilization() const { return budget > 0.0 ? used / budget : 0.0; }
};

/// Per-link statistics for one epoch (bandwidth accounting, Eq. 4).
struct LinkEpochStats {
    double used = 0.0;            ///< bandwidth units consumed
    double budget = 0.0;          ///< capacity * epoch seconds
    std::uint64_t carried = 0;    ///< messages forwarded
    std::uint64_t dropped = 0;    ///< messages dropped for lack of budget
    [[nodiscard]] double utilization() const { return budget > 0.0 ? used / budget : 0.0; }
};

/// The outcome of one traffic epoch.
struct EpochReport {
    double seconds = 0.0;
    std::vector<NodeEpochStats> node_stats;   ///< indexed by NodeId
    std::vector<LinkEpochStats> link_stats;   ///< indexed by LinkId
    std::vector<std::uint64_t> published;     ///< messages published, per flow
};

/// The broker overlay.  Owns a copy of the problem spec it was built
/// from; consumer admission and flow rates are driven by enact().
class BrokerOverlay {
public:
    using MessageFactory = std::function<Message(model::FlowId, std::uint64_t seq)>;

    explicit BrokerOverlay(model::ProblemSpec spec);

    /// Registers a consumer of class `cls`.  Consumers are admitted in
    /// registration order when enact() applies a population.  A null
    /// filter means accept-all.
    ConsumerId addConsumer(model::ClassId cls, FilterPtr filter = nullptr);

    /// Installs the message generator for a flow (default: a single
    /// numeric "value" field equal to the sequence number).
    void setMessageFactory(model::FlowId flow, MessageFactory factory);

    /// Installs a transformation applied at `node` to `flow`'s messages
    /// before per-consumer processing (e.g. RemoveFields at the public
    /// edge).  Pass nullptr to clear.
    void setTransformation(model::FlowId flow, model::NodeId node, TransformationPtr transform);

    /// Applies an optimizer allocation: sets each flow's publish rate and
    /// admits the first n_j registered consumers of each class (the rest
    /// are unadmitted).  Throws std::invalid_argument on size mismatch.
    void enact(const model::Allocation& allocation);

    /// Runs `seconds` of traffic: each active flow publishes
    /// floor(rate * seconds) messages, evenly spaced and fairly
    /// interleaved across flows; nodes spend budget per Eqs. 4-5 and drop
    /// what they cannot afford.  Consumer statistics accumulate across
    /// epochs.
    EpochReport runEpoch(double seconds);

    [[nodiscard]] const Consumer& consumer(ConsumerId id) const { return consumers_.at(id); }
    [[nodiscard]] const std::vector<Consumer>& consumers() const noexcept { return consumers_; }
    [[nodiscard]] double flowRate(model::FlowId flow) const { return rates_.at(flow.index()); }
    [[nodiscard]] const model::ProblemSpec& problem() const noexcept { return spec_; }

    /// Consumers registered for one class, in registration order.
    [[nodiscard]] std::vector<ConsumerId> consumersOfClass(model::ClassId cls) const;

    /// Currently admitted consumers per class (indexed by ClassId) — the
    /// population side of the enacted state, for mirroring the overlay's
    /// live configuration into other substrates (e.g. the dataplane).
    [[nodiscard]] std::vector<int> admittedPopulations() const;

    /// Mirrors a capacity change into the overlay (fault injection /
    /// hardware change); affects subsequent epochs' budgets.
    void setNodeCapacity(model::NodeId node, double capacity) {
        spec_.setNodeCapacity(node, capacity);
    }

    /// Mirrors a consumer-population ceiling change (the optimizer side
    /// uses LrgpOptimizer::setClassMaxConsumers).
    void setClassMaxConsumers(model::ClassId cls, int max_consumers) {
        spec_.setClassMaxConsumers(cls, max_consumers);
    }

private:
    struct TransformSlot {
        model::FlowId flow;
        model::NodeId node;
        TransformationPtr transform;
    };

    model::ProblemSpec spec_;
    std::vector<Consumer> consumers_;
    std::vector<std::vector<ConsumerId>> consumers_by_class_;  // per class
    std::vector<double> rates_;                                // per flow
    std::vector<MessageFactory> factories_;                    // per flow
    std::vector<TransformSlot> transforms_;
};

}  // namespace lrgp::broker
