#include "broker/filter.hpp"

#include <sstream>
#include <stdexcept>

namespace lrgp::broker {

NumericCompare::NumericCompare(std::string field, Op op, double constant)
    : field_(std::move(field)), op_(op), constant_(constant) {
    if (field_.empty()) throw std::invalid_argument("NumericCompare: empty field name");
}

bool NumericCompare::matches(const Message& message) const {
    const double* value = message.numericField(field_);
    if (value == nullptr) return false;
    switch (op_) {
        case Op::kLess: return *value < constant_;
        case Op::kLessEq: return *value <= constant_;
        case Op::kGreater: return *value > constant_;
        case Op::kGreaterEq: return *value >= constant_;
        case Op::kEqual: return *value == constant_;
        case Op::kNotEqual: return *value != constant_;
    }
    return false;
}

std::string NumericCompare::describe() const {
    static constexpr const char* kOps[] = {"<", "<=", ">", ">=", "==", "!="};
    std::ostringstream os;
    os << field_ << ' ' << kOps[static_cast<int>(op_)] << ' ' << constant_;
    return os.str();
}

TextEquals::TextEquals(std::string field, std::string value)
    : field_(std::move(field)), value_(std::move(value)) {
    if (field_.empty()) throw std::invalid_argument("TextEquals: empty field name");
}

bool TextEquals::matches(const Message& message) const {
    const std::string* value = message.textField(field_);
    return value != nullptr && *value == value_;
}

std::string TextEquals::describe() const { return field_ + " == \"" + value_ + "\""; }

AndFilter::AndFilter(std::vector<FilterPtr> children) : children_(std::move(children)) {
    for (const FilterPtr& c : children_)
        if (!c) throw std::invalid_argument("AndFilter: null child");
}

bool AndFilter::matches(const Message& message) const {
    for (const FilterPtr& c : children_)
        if (!c->matches(message)) return false;
    return true;
}

std::string AndFilter::describe() const {
    std::ostringstream os;
    os << '(';
    for (std::size_t i = 0; i < children_.size(); ++i)
        os << (i ? " && " : "") << children_[i]->describe();
    os << ')';
    return os.str();
}

OrFilter::OrFilter(std::vector<FilterPtr> children) : children_(std::move(children)) {
    for (const FilterPtr& c : children_)
        if (!c) throw std::invalid_argument("OrFilter: null child");
}

bool OrFilter::matches(const Message& message) const {
    for (const FilterPtr& c : children_)
        if (c->matches(message)) return true;
    return false;
}

std::string OrFilter::describe() const {
    std::ostringstream os;
    os << '(';
    for (std::size_t i = 0; i < children_.size(); ++i)
        os << (i ? " || " : "") << children_[i]->describe();
    os << ')';
    return os.str();
}

NotFilter::NotFilter(FilterPtr child) : child_(std::move(child)) {
    if (!child_) throw std::invalid_argument("NotFilter: null child");
}

bool NotFilter::matches(const Message& message) const { return !child_->matches(message); }

std::string NotFilter::describe() const { return "!" + child_->describe(); }

}  // namespace lrgp::broker
