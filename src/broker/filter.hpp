// Content-based filters: per-consumer predicates evaluated against each
// message (the "price > 80" example from the paper's introduction).
// Filter evaluation is the per-message, per-consumer work that the
// consumer-node cost G_{b,j} models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "broker/message.hpp"

namespace lrgp::broker {

/// A predicate over messages.  Implementations must be pure.
class Filter {
public:
    virtual ~Filter() = default;
    [[nodiscard]] virtual bool matches(const Message& message) const = 0;
    [[nodiscard]] virtual std::string describe() const = 0;
};

using FilterPtr = std::shared_ptr<const Filter>;

/// Matches every message (consumers without content filtering).
class AcceptAll final : public Filter {
public:
    [[nodiscard]] bool matches(const Message&) const override { return true; }
    [[nodiscard]] std::string describe() const override { return "true"; }
};

/// Numeric comparison: field <op> constant.  A missing or textual field
/// never matches.
class NumericCompare final : public Filter {
public:
    enum class Op { kLess, kLessEq, kGreater, kGreaterEq, kEqual, kNotEqual };

    NumericCompare(std::string field, Op op, double constant);

    [[nodiscard]] bool matches(const Message& message) const override;
    [[nodiscard]] std::string describe() const override;

private:
    std::string field_;
    Op op_;
    double constant_;
};

/// Exact string match on a textual field.
class TextEquals final : public Filter {
public:
    TextEquals(std::string field, std::string value);

    [[nodiscard]] bool matches(const Message& message) const override;
    [[nodiscard]] std::string describe() const override;

private:
    std::string field_;
    std::string value_;
};

/// Conjunction of sub-filters; an empty conjunction matches everything.
class AndFilter final : public Filter {
public:
    explicit AndFilter(std::vector<FilterPtr> children);
    [[nodiscard]] bool matches(const Message& message) const override;
    [[nodiscard]] std::string describe() const override;

private:
    std::vector<FilterPtr> children_;
};

/// Disjunction of sub-filters; an empty disjunction matches nothing.
class OrFilter final : public Filter {
public:
    explicit OrFilter(std::vector<FilterPtr> children);
    [[nodiscard]] bool matches(const Message& message) const override;
    [[nodiscard]] std::string describe() const override;

private:
    std::vector<FilterPtr> children_;
};

/// Negation.
class NotFilter final : public Filter {
public:
    explicit NotFilter(FilterPtr child);
    [[nodiscard]] bool matches(const Message& message) const override;
    [[nodiscard]] std::string describe() const override;

private:
    FilterPtr child_;
};

}  // namespace lrgp::broker
