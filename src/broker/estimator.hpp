// Empirical resource-model calibration (the substitution for the paper's
// measurements on the Gryphon system, ref. [3] "Utility-aware resource
// allocation in an event processing system").
//
// The optimizer needs the cost coefficients F_{b,i} (per message at a
// node) and G_{b,j} (per message per admitted consumer).  In a real
// deployment these are *measured*, not configured: run traffic epochs at
// different (rate, population) operating points, record each node's
// resource usage, and fit the linear model
//
//     used_b / seconds  =  F * r  +  G * n * r
//
// by least squares.  CostEstimator accumulates observations and solves
// the 2x2 normal equations per (node, flow, class) grouping.  Tests
// verify the estimates recover the configured constants from
// BrokerOverlay epochs, closing the loop: measure -> build ProblemSpec ->
// optimize -> enact.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace lrgp::broker {

/// One traffic observation: a node's resource consumption over an epoch
/// at a known operating point.
struct CostObservation {
    double rate = 0.0;       ///< r, messages per second
    double consumers = 0.0;  ///< n, admitted consumers at the node
    double usage_per_second = 0.0;  ///< measured used / seconds
};

/// Fitted coefficients with a fit-quality indicator.
struct CostEstimate {
    double flow_node_cost = 0.0;  ///< F
    double consumer_cost = 0.0;   ///< G
    double max_residual = 0.0;    ///< worst absolute residual of the fit
};

/// Least-squares fit of usage = F*r + G*n*r over the observations.
class CostEstimator {
public:
    void addObservation(CostObservation observation);
    [[nodiscard]] std::size_t observationCount() const noexcept { return observations_.size(); }
    void clear() { observations_.clear(); }

    /// Solves the normal equations.  Requires at least two observations
    /// with distinct (r, n*r) directions; returns nullopt if the system
    /// is singular (e.g. all observations share the same n).
    [[nodiscard]] std::optional<CostEstimate> estimate() const;

private:
    std::vector<CostObservation> observations_;
};

}  // namespace lrgp::broker
