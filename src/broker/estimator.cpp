#include "broker/estimator.hpp"

#include <cmath>

namespace lrgp::broker {

void CostEstimator::addObservation(CostObservation observation) {
    observations_.push_back(observation);
}

std::optional<CostEstimate> CostEstimator::estimate() const {
    if (observations_.size() < 2) return std::nullopt;

    // Model: y = F*x1 + G*x2 with x1 = r, x2 = n*r.  Normal equations:
    //   [Sx1x1 Sx1x2] [F]   [Sx1y]
    //   [Sx1x2 Sx2x2] [G] = [Sx2y]
    double s11 = 0.0, s12 = 0.0, s22 = 0.0, s1y = 0.0, s2y = 0.0;
    for (const CostObservation& o : observations_) {
        const double x1 = o.rate;
        const double x2 = o.consumers * o.rate;
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        s1y += x1 * o.usage_per_second;
        s2y += x2 * o.usage_per_second;
    }
    const double det = s11 * s22 - s12 * s12;
    const double scale = s11 * s22;
    if (scale == 0.0 || std::abs(det) < 1e-9 * scale) return std::nullopt;  // singular fit

    CostEstimate est;
    est.flow_node_cost = (s1y * s22 - s2y * s12) / det;
    est.consumer_cost = (s2y * s11 - s1y * s12) / det;
    for (const CostObservation& o : observations_) {
        const double predicted =
            est.flow_node_cost * o.rate + est.consumer_cost * o.consumers * o.rate;
        est.max_residual = std::max(est.max_residual, std::abs(predicted - o.usage_per_second));
    }
    return est;
}

}  // namespace lrgp::broker
