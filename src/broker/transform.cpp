#include "broker/transform.hpp"

#include <sstream>
#include <stdexcept>

namespace lrgp::broker {

RemoveFields::RemoveFields(std::vector<std::string> fields) : fields_(std::move(fields)) {
    if (fields_.empty()) throw std::invalid_argument("RemoveFields: no fields");
}

std::optional<Message> RemoveFields::apply(const Message& message) {
    Message out = message;
    for (const std::string& f : fields_) out.fields.erase(f);
    return out;
}

std::string RemoveFields::describe() const {
    std::ostringstream os;
    os << "remove(";
    for (std::size_t i = 0; i < fields_.size(); ++i) os << (i ? "," : "") << fields_[i];
    os << ')';
    return os.str();
}

ScaleField::ScaleField(std::string field, double factor)
    : field_(std::move(field)), factor_(factor) {
    if (field_.empty()) throw std::invalid_argument("ScaleField: empty field name");
}

std::optional<Message> ScaleField::apply(const Message& message) {
    Message out = message;
    auto it = out.fields.find(field_);
    if (it != out.fields.end())
        if (double* v = std::get_if<double>(&it->second)) *v *= factor_;
    return out;
}

std::string ScaleField::describe() const {
    std::ostringstream os;
    os << field_ << " *= " << factor_;
    return os.str();
}

Aggregator::Aggregator(int window) : window_(window) {
    if (window < 1) throw std::invalid_argument("Aggregator: window must be >= 1");
}

std::optional<Message> Aggregator::apply(const Message& message) {
    ++count_;
    for (const auto& [name, value] : message.fields)
        if (const double* v = std::get_if<double>(&value)) numeric_sums_[name] += *v;
    last_ = message;
    if (count_ < window_) return std::nullopt;

    Message out = last_;
    for (auto& [name, sum] : numeric_sums_)
        out.fields[name] = sum / static_cast<double>(count_);
    count_ = 0;
    numeric_sums_.clear();
    return out;
}

std::string Aggregator::describe() const {
    std::ostringstream os;
    os << "aggregate(" << window_ << ')';
    return os.str();
}

Pipeline::Pipeline(std::vector<TransformationPtr> stages) : stages_(std::move(stages)) {
    for (const TransformationPtr& s : stages_)
        if (!s) throw std::invalid_argument("Pipeline: null stage");
}

std::optional<Message> Pipeline::apply(const Message& message) {
    std::optional<Message> current = message;
    for (const TransformationPtr& s : stages_) {
        current = s->apply(*current);
        if (!current) return std::nullopt;
    }
    return current;
}

std::string Pipeline::describe() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < stages_.size(); ++i)
        os << (i ? " | " : "") << stages_[i]->describe();
    return os.str();
}

}  // namespace lrgp::broker
