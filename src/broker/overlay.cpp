#include "broker/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace lrgp::broker {

BrokerOverlay::BrokerOverlay(model::ProblemSpec spec) : spec_(std::move(spec)) {
    consumers_by_class_.assign(spec_.classCount(), {});
    rates_.assign(spec_.flowCount(), 0.0);
    for (const model::FlowSpec& f : spec_.flows()) rates_[f.id.index()] = f.rate_min;
    factories_.resize(spec_.flowCount());
}

ConsumerId BrokerOverlay::addConsumer(model::ClassId cls, FilterPtr filter) {
    if (cls.index() >= spec_.classCount())
        throw std::invalid_argument("BrokerOverlay::addConsumer: unknown class");
    const ConsumerId id = static_cast<ConsumerId>(consumers_.size());
    Consumer c;
    c.id = id;
    c.cls = cls;
    c.filter = filter ? std::move(filter) : std::make_shared<AcceptAll>();
    consumers_.push_back(std::move(c));
    consumers_by_class_[cls.index()].push_back(id);
    return id;
}

void BrokerOverlay::setMessageFactory(model::FlowId flow, MessageFactory factory) {
    factories_.at(flow.index()) = std::move(factory);
}

void BrokerOverlay::setTransformation(model::FlowId flow, model::NodeId node,
                                      TransformationPtr transform) {
    for (TransformSlot& slot : transforms_) {
        if (slot.flow == flow && slot.node == node) {
            slot.transform = std::move(transform);
            return;
        }
    }
    transforms_.push_back(TransformSlot{flow, node, std::move(transform)});
}

void BrokerOverlay::enact(const model::Allocation& allocation) {
    if (allocation.rates.size() != spec_.flowCount() ||
        allocation.populations.size() != spec_.classCount())
        throw std::invalid_argument("BrokerOverlay::enact: allocation sized for another problem");
    rates_ = allocation.rates;
    for (const model::ClassSpec& c : spec_.classes()) {
        const int target = allocation.populations[c.id.index()];
        const std::vector<ConsumerId>& members = consumers_by_class_[c.id.index()];
        for (std::size_t k = 0; k < members.size(); ++k)
            consumers_[members[k]].admitted = static_cast<int>(k) < target;
    }
}

std::vector<ConsumerId> BrokerOverlay::consumersOfClass(model::ClassId cls) const {
    return consumers_by_class_.at(cls.index());
}

std::vector<int> BrokerOverlay::admittedPopulations() const {
    std::vector<int> admitted(spec_.classCount(), 0);
    for (const Consumer& c : consumers_)
        if (c.admitted) ++admitted[c.cls.index()];
    return admitted;
}

EpochReport BrokerOverlay::runEpoch(double seconds) {
    if (!(seconds > 0.0)) throw std::invalid_argument("BrokerOverlay::runEpoch: bad duration");

    EpochReport report;
    report.seconds = seconds;
    report.node_stats.resize(spec_.nodeCount());
    report.link_stats.resize(spec_.linkCount());
    report.published.assign(spec_.flowCount(), 0);
    for (const model::NodeSpec& b : spec_.nodes())
        report.node_stats[b.id.index()].budget = b.capacity * seconds;
    for (const model::LinkSpec& l : spec_.links())
        report.link_stats[l.id.index()].budget = l.capacity * seconds;

    // Fair interleaving: a calendar of (publish time, flow) entries with
    // evenly spaced messages per flow.
    struct Entry {
        double time;
        std::uint32_t flow;
        std::uint64_t seq;
        double spacing;
        std::uint64_t remaining;
    };
    auto later = [](const Entry& a, const Entry& b) { return a.time > b.time; };
    std::priority_queue<Entry, std::vector<Entry>, decltype(later)> calendar(later);
    for (const model::FlowSpec& f : spec_.flows()) {
        if (!f.active) continue;
        const double rate = rates_[f.id.index()];
        const auto count = static_cast<std::uint64_t>(std::floor(rate * seconds));
        if (count == 0) continue;
        calendar.push(Entry{0.0, f.id.value, 0, seconds / static_cast<double>(count), count});
    }

    // Per-(flow,node) transformation lookup; Aggregator instances are
    // stateful, so each slot is consulted in publish order.
    auto findTransform = [&](model::FlowId flow, model::NodeId node) -> Transformation* {
        for (const TransformSlot& slot : transforms_)
            if (slot.flow == flow && slot.node == node) return slot.transform.get();
        return nullptr;
    };

    while (!calendar.empty()) {
        Entry entry = calendar.top();
        calendar.pop();
        const model::FlowId flow{entry.flow};
        const model::FlowSpec& f = spec_.flow(flow);

        Message msg;
        if (factories_[flow.index()]) {
            msg = factories_[flow.index()](flow, entry.seq);
        } else {
            msg.fields["value"] = static_cast<double>(entry.seq);
        }
        msg.flow = flow;
        msg.sequence = entry.seq;
        ++report.published[flow.index()];

        // Capacity is enforced as a leaky bucket: by publish time t a
        // resource may have spent at most capacity * t plus a small burst
        // allowance (5% of the epoch budget).  This models a CPU/NIC that
        // cannot borrow from the future, so overload drops are spread
        // through the epoch instead of piling up at its end.
        const double kBurstFraction = 0.05;
        auto allowance = [&](double budget) {
            return std::min(budget, budget * (entry.time / seconds + kBurstFraction));
        };

        // Links first: the flow's path crosses its links before fanning
        // out to consumer nodes; a message that any link cannot afford is
        // lost for the whole downstream path (Eq. 4 accounting).
        bool dropped_on_link = false;
        for (const model::FlowLinkHop& hop : f.links) {
            LinkEpochStats& stats = report.link_stats[hop.link.index()];
            if (stats.used + hop.link_cost > allowance(stats.budget)) {
                ++stats.dropped;
                dropped_on_link = true;
                break;
            }
            stats.used += hop.link_cost;
            ++stats.carried;
        }
        if (dropped_on_link) {
            if (--entry.remaining > 0) {
                entry.time += entry.spacing;
                ++entry.seq;
                calendar.push(entry);
            }
            continue;
        }

        // Process at every node the flow reaches.  The cost of a message
        // at node b is F_{b,i} plus G_{b,j} per admitted consumer whose
        // class attaches there — exactly the integrand of Eq. 5.
        for (const model::FlowNodeHop& hop : f.nodes) {
            NodeEpochStats& stats = report.node_stats[hop.node.index()];
            double message_cost = hop.flow_node_cost;
            for (model::ClassId j : spec_.classesOfFlow(flow)) {
                if (spec_.consumerClass(j).node != hop.node) continue;
                for (ConsumerId cid : consumers_by_class_[j.index()])
                    if (consumers_[cid].admitted)
                        message_cost += spec_.consumerClass(j).consumer_cost;
            }
            if (stats.used + message_cost > allowance(stats.budget)) {
                ++stats.dropped;
                continue;
            }
            stats.used += message_cost;
            ++stats.processed;

            std::optional<Message> transformed = msg;
            if (Transformation* t = findTransform(flow, hop.node)) transformed = t->apply(msg);
            if (!transformed) continue;  // absorbed (e.g. aggregation window)

            for (model::ClassId j : spec_.classesOfFlow(flow)) {
                if (spec_.consumerClass(j).node != hop.node) continue;
                for (ConsumerId cid : consumers_by_class_[j.index()]) {
                    Consumer& consumer = consumers_[cid];
                    if (!consumer.admitted) continue;
                    // Reliability accounting: count sequence jumps —
                    // messages the consumer should have seen (it was
                    // admitted) but that were dropped upstream.
                    if (consumer.seen_any && msg.sequence > consumer.last_sequence + 1)
                        consumer.gaps += msg.sequence - consumer.last_sequence - 1;
                    consumer.last_sequence = msg.sequence;
                    consumer.seen_any = true;
                    if (consumer.filter->matches(*transformed)) ++consumer.delivered;
                    else ++consumer.filtered_out;
                }
            }
        }

        if (--entry.remaining > 0) {
            entry.time += entry.spacing;
            ++entry.seq;
            calendar.push(entry);
        }
    }

    return report;
}

}  // namespace lrgp::broker
