// Messages of the event-driven infrastructure: typed field maps published
// by producers on a flow, possibly transformed in-flight, and delivered
// to admitted consumers whose filters match (Section 1.1's scenarios).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "model/ids.hpp"

namespace lrgp::broker {

/// A message field is numeric or textual (e.g. price=80.5, symbol="IBM").
using FieldValue = std::variant<double, std::string>;

/// One event published on a flow.
struct Message {
    model::FlowId flow;
    std::uint64_t sequence = 0;
    std::map<std::string, FieldValue> fields;

    [[nodiscard]] bool hasField(const std::string& name) const {
        return fields.find(name) != fields.end();
    }
    /// Returns the numeric value of `name`, or nullptr if absent or textual.
    [[nodiscard]] const double* numericField(const std::string& name) const {
        auto it = fields.find(name);
        if (it == fields.end()) return nullptr;
        return std::get_if<double>(&it->second);
    }
    /// Returns the textual value of `name`, or nullptr if absent or numeric.
    [[nodiscard]] const std::string* textField(const std::string& name) const {
        auto it = fields.find(name);
        if (it == fields.end()) return nullptr;
        return std::get_if<std::string>(&it->second);
    }
};

}  // namespace lrgp::broker
