// In-flight message transformations (Section 1): field removal (the gold
// vs. public trade-data scenario), format/scale changes for integration,
// and aggregation of several messages into a more concise stream.
// Transformations are the per-message work that the flow-node cost
// F_{b,i} models.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/message.hpp"

namespace lrgp::broker {

/// A (possibly stateful) message transformation.  Returning nullopt drops
/// the message (e.g. an aggregator absorbing its inputs).
class Transformation {
public:
    virtual ~Transformation() = default;
    [[nodiscard]] virtual std::optional<Message> apply(const Message& message) = 0;
    [[nodiscard]] virtual std::string describe() const = 0;
};

using TransformationPtr = std::shared_ptr<Transformation>;

/// Removes the named fields (e.g. strip gold-only fields before public
/// delivery).  Stateless.
class RemoveFields final : public Transformation {
public:
    explicit RemoveFields(std::vector<std::string> fields);
    [[nodiscard]] std::optional<Message> apply(const Message& message) override;
    [[nodiscard]] std::string describe() const override;

private:
    std::vector<std::string> fields_;
};

/// Multiplies a numeric field by a constant (unit/format conversion).
/// Messages without the field pass through unchanged.  Stateless.
class ScaleField final : public Transformation {
public:
    ScaleField(std::string field, double factor);
    [[nodiscard]] std::optional<Message> apply(const Message& message) override;
    [[nodiscard]] std::string describe() const override;

private:
    std::string field_;
    double factor_;
};

/// Aggregates every `window` consecutive messages into one: numeric
/// fields are averaged, other fields are taken from the last message.
/// Stateful: emits only on every window-th input.
class Aggregator final : public Transformation {
public:
    explicit Aggregator(int window);
    [[nodiscard]] std::optional<Message> apply(const Message& message) override;
    [[nodiscard]] std::string describe() const override;

private:
    int window_;
    int count_ = 0;
    std::map<std::string, double> numeric_sums_;
    Message last_;
};

/// A chain of transformations applied in order; any stage may drop.
class Pipeline final : public Transformation {
public:
    explicit Pipeline(std::vector<TransformationPtr> stages);
    [[nodiscard]] std::optional<Message> apply(const Message& message) override;
    [[nodiscard]] std::string describe() const override;

private:
    std::vector<TransformationPtr> stages_;
};

}  // namespace lrgp::broker
