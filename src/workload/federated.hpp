// Federated workloads for the sharded control plane (ROADMAP item 1).
//
// A federated workload is G disjoint groups, each modelling one
// datacenter/region of the event-driven infrastructure: a producer node,
// C consumer-hosting nodes, F flows routed through every c-node of the
// group, and one consumer class per (flow, c-node) pair — F*C classes
// per group, G*F*C total.  Groups share no resources unless coupling is
// enabled, so the flow partitioner can rediscover them, and per-group
// capacity headroom controls how fast each region's LRGP dynamics
// settle:
//
//   * "loose" groups get capacity_factor * demand-bound capacity with
//     factor > 1: every consumer is admitted at full rate within a few
//     iterations and the region reaches a bitwise utility fixpoint;
//   * the first `tight_groups` groups get factor << 1: the greedy
//     admission keeps hitting the capacity wall, node prices oscillate
//     under the adaptive gamma, and convergence takes many times longer.
//
// This shape is what makes the sharded engine's convergence gating pay:
// the few tight groups keep only their own shards iterating, while a
// monolithic engine pays the full per-iteration publication cost until
// the slowest region settles.  Setting coupling_cost > 0 adds a shared
// hub node that the first flow of every group routes through, forcing a
// boundary resource that exercises budget reconciliation.
//
// Deterministic for a given option set: ranks and populations are
// jittered with a splitmix64 stream keyed by (seed, group, flow, cnode).
#pragma once

#include <cstddef>
#include <cstdint>

#include "model/problem.hpp"
#include "workload/workloads.hpp"

namespace lrgp::workload {

struct FederatedWorkloadOptions {
    int groups = 8;
    int flows_per_group = 4;
    int cnodes_per_group = 4;
    /// First `tight_groups` groups are capacity-starved.
    int tight_groups = 1;
    /// Node capacity as a fraction of the per-node demand bound
    /// sum_flows (F + G * n_max) * r_max.
    double tight_capacity_factor = 0.12;
    double loose_capacity_factor = 1.6;
    /// Rank multiplier for tight-group classes, so their convergence
    /// transient is visible in the global utility (Section 4.3's 0.1%
    /// amplitude criterion divides by the total).
    double tight_rank_boost = 4.0;
    int min_consumers = 10, max_consumers = 60;
    double min_rank = 1.0, max_rank = 50.0;
    double flow_node_cost = 3.0;  ///< F_{b,i}
    double consumer_cost = 19.0;  ///< G_{b,j}
    double rate_min = 10.0, rate_max = 1000.0;
    UtilityShape shape = UtilityShape::kLog;
    /// > 0 adds a shared "hub" node that flow 0 of every group routes
    /// through at this F cost (no classes attach there); the hub becomes
    /// a boundary resource under any multi-shard partition.
    double coupling_cost = 0.0;
    /// Hub capacity as a fraction of its own demand bound.
    double coupling_capacity_factor = 1.0;
    std::uint32_t seed = 1;
};

/// Total class count of the configuration (groups * flows * cnodes).
[[nodiscard]] std::size_t federated_class_count(const FederatedWorkloadOptions& options);

/// Builds the federated workload.  Deterministic for a given option set.
[[nodiscard]] model::ProblemSpec make_federated_workload(const FederatedWorkloadOptions& options);

}  // namespace lrgp::workload
