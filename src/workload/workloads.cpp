#include "workload/workloads.hpp"

#include <array>
#include <sstream>
#include <stdexcept>

namespace lrgp::workload {

std::string shape_name(UtilityShape shape) {
    switch (shape) {
        case UtilityShape::kLog: return "log(1+r)";
        case UtilityShape::kPow025: return "r^0.25";
        case UtilityShape::kPow05: return "r^0.5";
        case UtilityShape::kPow075: return "r^0.75";
    }
    throw std::invalid_argument("shape_name: unknown shape");
}

std::shared_ptr<const utility::UtilityFunction> make_class_utility(UtilityShape shape,
                                                                   double rank) {
    switch (shape) {
        case UtilityShape::kLog: return std::make_shared<utility::LogUtility>(rank);
        case UtilityShape::kPow025: return std::make_shared<utility::PowerUtility>(rank, 0.25);
        case UtilityShape::kPow05: return std::make_shared<utility::PowerUtility>(rank, 0.5);
        case UtilityShape::kPow075: return std::make_shared<utility::PowerUtility>(rank, 0.75);
    }
    throw std::invalid_argument("make_class_utility: unknown shape");
}

namespace {

/// One row of Table 1, describing a *pair* of classes.  node_a/node_b are
/// indices into the replica's c-node triple {S0, S1, S2}.
struct ClassPairTemplate {
    int flow;    ///< flow index within the replica, 0..5
    int node_a;  ///< first class's c-node (0=S0, 1=S1, 2=S2)
    int node_b;  ///< second class's c-node
    int max_consumers;
    double rank;
};

// Table 1.  Pairs attach to (S0,S2), (S0,S1) or (S1,S2) per the "nodes"
// column; higher-rank (more important) classes have fewer consumers.
constexpr std::array<ClassPairTemplate, 10> kBaseClassPairs{{
    {0, 0, 2, 400, 20.0},
    {0, 0, 2, 800, 5.0},
    {0, 0, 2, 2000, 1.0},
    {1, 0, 1, 1000, 15.0},
    {2, 1, 2, 1500, 10.0},
    {3, 0, 2, 400, 30.0},
    {3, 0, 2, 800, 3.0},
    {3, 0, 2, 2000, 2.0},
    {4, 0, 1, 1000, 40.0},
    {5, 1, 2, 1500, 100.0},
}};

constexpr int kFlowsPerReplica = 6;
constexpr int kCNodesPerReplica = 3;

}  // namespace

model::ProblemSpec make_base_workload(UtilityShape shape) {
    WorkloadOptions options;
    options.shape = shape;
    return make_scaled_workload(options);
}

model::ProblemSpec make_scaled_workload(const WorkloadOptions& options) {
    if (options.flow_replicas < 1 || options.cnode_replicas < 1)
        throw std::invalid_argument("make_scaled_workload: replica counts must be >= 1");

    model::ProblemBuilder builder;

    for (int rep = 0; rep < options.flow_replicas; ++rep) {
        // One producer node per replica hosts all six flow sources.  It
        // carries no cost (flows are routed only to c-nodes), so it never
        // constrains the optimization.
        std::ostringstream pname;
        pname << "r" << rep << "_P";
        const model::NodeId producer = builder.addNode(pname.str(), options.node_capacity);

        // cnode_replicas copies of each of S0, S1, S2.
        // cnodes[s][c] = the c-th copy of S<s>.
        std::vector<std::vector<model::NodeId>> cnodes(kCNodesPerReplica);
        for (int s = 0; s < kCNodesPerReplica; ++s) {
            for (int c = 0; c < options.cnode_replicas; ++c) {
                std::ostringstream name;
                name << "r" << rep << "_S" << s;
                if (options.cnode_replicas > 1) name << "#" << c;
                cnodes[s].push_back(builder.addNode(name.str(), options.node_capacity));
            }
        }

        std::vector<model::FlowId> flows;
        flows.reserve(kFlowsPerReplica);
        for (int f = 0; f < kFlowsPerReplica; ++f) {
            std::ostringstream name;
            name << "f" << rep << "_" << f;
            flows.push_back(
                builder.addFlow(name.str(), producer, options.rate_min, options.rate_max));
        }

        // Route each flow through every copy of every c-node that hosts one
        // of its classes (two-stage approximation, Section 2.4), then attach
        // the classes.  routeThroughNode must not repeat a (flow, node)
        // pair, so collect the node set per flow first.
        std::vector<std::vector<bool>> routed(
            kFlowsPerReplica, std::vector<bool>(kCNodesPerReplica, false));
        for (const ClassPairTemplate& t : kBaseClassPairs) {
            routed[t.flow][t.node_a] = true;
            routed[t.flow][t.node_b] = true;
        }
        for (int f = 0; f < kFlowsPerReplica; ++f)
            for (int s = 0; s < kCNodesPerReplica; ++s)
                if (routed[f][s])
                    for (model::NodeId node : cnodes[s])
                        builder.routeThroughNode(flows[f], node, options.flow_node_cost);

        int class_counter = 0;
        for (const ClassPairTemplate& t : kBaseClassPairs) {
            for (int side = 0; side < 2; ++side) {
                const int s = (side == 0) ? t.node_a : t.node_b;
                for (int c = 0; c < options.cnode_replicas; ++c) {
                    std::ostringstream name;
                    name << "r" << rep << "_c" << class_counter;
                    if (options.cnode_replicas > 1) name << "#" << c;
                    builder.addClass(name.str(), flows[t.flow], cnodes[s][c], t.max_consumers,
                                     options.consumer_cost,
                                     make_class_utility(options.shape, t.rank));
                }
                ++class_counter;
            }
        }
    }

    return builder.build();
}

model::FlowId find_flow(const model::ProblemSpec& spec, const std::string& name) {
    for (const model::FlowSpec& f : spec.flows())
        if (f.name == name) return f.id;
    throw std::invalid_argument("find_flow: no flow named '" + name + "'");
}

model::NodeId find_node(const model::ProblemSpec& spec, const std::string& name) {
    for (const model::NodeSpec& n : spec.nodes())
        if (n.name == name) return n.id;
    throw std::invalid_argument("find_node: no node named '" + name + "'");
}

}  // namespace lrgp::workload
