// Test workloads from Section 4.1 of the paper.
//
// The base workload (Table 1) has six flows, three consumer-hosting nodes
// (S0, S1, S2) and twenty consumer classes arranged in pairs: both
// classes of a pair share flow, n^max and rank, and differ only in the
// node they attach to.  Class utility is rank * f(r) with a configurable
// shape f.  The resource model is uniform: F = 3, G = 19, c_b = 9e5
// (constants measured on the Gryphon pub/sub system), r in [10, 1000],
// and there are no link bottlenecks.
//
// Scaling (Section 4.3) replicates the workload two ways:
//   * flow_replicas:  adds whole copies (6 flows + their 3 c-nodes each),
//     modelling new information flows entering the system;
//   * cnode_replicas: replicates each c-node within a copy, re-attaching
//     a duplicate of every class, modelling the same information
//     propagating to more consumers.
// Table 2's rows are {1,1}, {2,1}, {4,1}, {1,2}, {1,4}, {1,8}.
#pragma once

#include <memory>
#include <string>

#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "utility/utility_function.hpp"

namespace lrgp::workload {

/// The four class-utility shapes evaluated in the paper (Section 4.5).
enum class UtilityShape {
    kLog,      ///< rank * log(1+r)
    kPow025,   ///< rank * r^0.25
    kPow05,    ///< rank * r^0.5
    kPow075,   ///< rank * r^0.75
};

/// Short human-readable name, e.g. "log(1+r)" or "r^0.25".
[[nodiscard]] std::string shape_name(UtilityShape shape);

/// Builds rank * f(r) for the given shape.
[[nodiscard]] std::shared_ptr<const utility::UtilityFunction> make_class_utility(
    UtilityShape shape, double rank);

/// Knobs for workload construction; defaults reproduce Table 1.
struct WorkloadOptions {
    UtilityShape shape = UtilityShape::kLog;
    int flow_replicas = 1;
    int cnode_replicas = 1;
    double flow_node_cost = 3.0;    ///< F_{b,i}
    double consumer_cost = 19.0;    ///< G_{b,j}
    double node_capacity = 9.0e5;   ///< c_b
    double rate_min = 10.0;
    double rate_max = 1000.0;
};

/// The Table 1 base workload with the requested utility shape.
[[nodiscard]] model::ProblemSpec make_base_workload(UtilityShape shape = UtilityShape::kLog);

/// A scaled workload per WorkloadOptions (Table 2 rows).
[[nodiscard]] model::ProblemSpec make_scaled_workload(const WorkloadOptions& options);

/// Finds a flow by name; throws std::invalid_argument if absent.
/// Base-workload flows are named "f0_0" ... "f0_5" (replica 0).
[[nodiscard]] model::FlowId find_flow(const model::ProblemSpec& spec, const std::string& name);

/// Finds a node by name ("r0_S0" etc.); throws if absent.
[[nodiscard]] model::NodeId find_node(const model::ProblemSpec& spec, const std::string& name);

}  // namespace lrgp::workload
