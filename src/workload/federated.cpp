#include "workload/federated.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace lrgp::workload {

namespace {

/// splitmix64: the statelessly seedable mixer used across the repo for
/// deterministic jitter.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Uniform double in [lo, hi] from a mixed key.
double jitter(std::uint64_t key, double lo, double hi) {
    const double u = static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
    return lo + (hi - lo) * u;
}

/// Uniform int in [lo, hi] from a mixed key.
int jitter_int(std::uint64_t key, int lo, int hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo + 1);
    return lo + static_cast<int>(mix64(key) % span);
}

}  // namespace

std::size_t federated_class_count(const FederatedWorkloadOptions& options) {
    return static_cast<std::size_t>(options.groups) *
           static_cast<std::size_t>(options.flows_per_group) *
           static_cast<std::size_t>(options.cnodes_per_group);
}

model::ProblemSpec make_federated_workload(const FederatedWorkloadOptions& options) {
    if (options.groups < 1 || options.flows_per_group < 1 || options.cnodes_per_group < 1)
        throw std::invalid_argument("make_federated_workload: counts must be >= 1");
    if (options.tight_groups < 0 || options.tight_groups > options.groups)
        throw std::invalid_argument("make_federated_workload: tight_groups out of range");
    if (!(options.tight_capacity_factor > 0.0) || !(options.loose_capacity_factor > 0.0))
        throw std::invalid_argument("make_federated_workload: capacity factors must be > 0");
    if (options.min_consumers < 1 || options.max_consumers < options.min_consumers)
        throw std::invalid_argument("make_federated_workload: bad consumer range");

    model::ProblemBuilder builder;
    const std::uint64_t seed = static_cast<std::uint64_t>(options.seed) << 32;

    model::NodeId hub;
    if (options.coupling_cost > 0.0) {
        // Demand bound of the hub: flow 0 of every group at full rate.
        const double demand =
            options.coupling_cost * options.rate_max * static_cast<double>(options.groups);
        hub = builder.addNode("hub", demand * options.coupling_capacity_factor);
    }

    for (int g = 0; g < options.groups; ++g) {
        const bool tight = g < options.tight_groups;
        const double factor =
            tight ? options.tight_capacity_factor : options.loose_capacity_factor;

        // Per-class populations are jittered up front: the c-node
        // capacity is a factor of its own demand bound, which needs the
        // populations of every class that will attach there.
        // n_max[f][c] for flow f, c-node c of this group.
        std::vector<std::vector<int>> n_max(
            static_cast<std::size_t>(options.flows_per_group),
            std::vector<int>(static_cast<std::size_t>(options.cnodes_per_group), 0));
        for (int f = 0; f < options.flows_per_group; ++f)
            for (int c = 0; c < options.cnodes_per_group; ++c)
                n_max[f][c] = jitter_int(
                    seed ^ (static_cast<std::uint64_t>(g) << 40) ^
                        (static_cast<std::uint64_t>(f) << 20) ^ static_cast<std::uint64_t>(c),
                    options.min_consumers, options.max_consumers);

        std::ostringstream pname;
        pname << "g" << g << "_P";
        // The producer carries no cost (flows route only through
        // c-nodes), so its capacity never constrains the optimization.
        const model::NodeId producer = builder.addNode(pname.str(), 1e9);

        std::vector<model::NodeId> cnodes;
        cnodes.reserve(static_cast<std::size_t>(options.cnodes_per_group));
        for (int c = 0; c < options.cnodes_per_group; ++c) {
            double demand = 0.0;
            for (int f = 0; f < options.flows_per_group; ++f)
                demand += (options.flow_node_cost +
                           options.consumer_cost * static_cast<double>(n_max[f][c])) *
                          options.rate_max;
            std::ostringstream name;
            name << "g" << g << "_S" << c;
            cnodes.push_back(builder.addNode(name.str(), demand * factor));
        }

        for (int f = 0; f < options.flows_per_group; ++f) {
            std::ostringstream fname;
            fname << "g" << g << "_f" << f;
            const model::FlowId flow =
                builder.addFlow(fname.str(), producer, options.rate_min, options.rate_max);
            if (f == 0 && options.coupling_cost > 0.0)
                builder.routeThroughNode(flow, hub, options.coupling_cost);
            for (int c = 0; c < options.cnodes_per_group; ++c) {
                builder.routeThroughNode(flow, cnodes[static_cast<std::size_t>(c)],
                                         options.flow_node_cost);
                const double rank =
                    jitter(seed ^ 0x5bd1e995ULL ^ (static_cast<std::uint64_t>(g) << 40) ^
                               (static_cast<std::uint64_t>(f) << 20) ^
                               static_cast<std::uint64_t>(c),
                           options.min_rank, options.max_rank) *
                    (tight ? options.tight_rank_boost : 1.0);
                std::ostringstream cname;
                cname << "g" << g << "_f" << f << "_S" << c;
                builder.addClass(cname.str(), flow, cnodes[static_cast<std::size_t>(c)],
                                 n_max[f][c], options.consumer_cost,
                                 make_class_utility(options.shape, rank));
            }
        }
    }
    return builder.build();
}

}  // namespace lrgp::workload
