#include "workload/random_workload.hpp"

#include <algorithm>
#include <optional>
#include <random>
#include <sstream>
#include <stdexcept>

namespace lrgp::workload {

model::ProblemSpec make_random_workload(const RandomWorkloadOptions& options) {
    if (options.min_flows < 1 || options.max_flows < options.min_flows ||
        options.min_cnodes < 1 || options.max_cnodes < options.min_cnodes ||
        options.min_classes_per_flow < 1 ||
        options.max_classes_per_flow < options.min_classes_per_flow)
        throw std::invalid_argument("make_random_workload: inconsistent ranges");

    std::mt19937 rng(options.seed);
    auto uniform_int = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };
    auto uniform_real = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng);
    };

    model::ProblemBuilder builder;
    const model::NodeId producer = builder.addNode("P", 1e12);

    const int cnode_count = uniform_int(options.min_cnodes, options.max_cnodes);
    std::vector<model::NodeId> cnodes;
    cnodes.reserve(cnode_count);
    for (int s = 0; s < cnode_count; ++s) {
        std::ostringstream name;
        name << "S" << s;
        cnodes.push_back(builder.addNode(
            name.str(), uniform_real(options.min_capacity, options.max_capacity)));
    }

    // Optional shared bottleneck from the producer into the overlay.
    std::optional<model::LinkId> bottleneck;
    if (uniform_real(0.0, 1.0) < options.link_bottleneck_probability) {
        // Size the link so it binds: roughly enough for all flows at a
        // fraction of max rate.
        const int flows_guess = (options.min_flows + options.max_flows) / 2;
        bottleneck = builder.addLink("bottleneck", producer, cnodes[0],
                                     flows_guess * options.rate_max * 0.3);
    }

    const int flow_count = uniform_int(options.min_flows, options.max_flows);
    for (int fidx = 0; fidx < flow_count; ++fidx) {
        std::ostringstream fname;
        fname << "f" << fidx;
        const model::FlowId flow =
            builder.addFlow(fname.str(), producer, options.rate_min, options.rate_max);
        if (bottleneck) builder.routeOverLink(flow, *bottleneck, uniform_real(0.5, 2.0));

        // Pick a distinct subset of c-nodes for this flow's classes.
        const int class_count =
            uniform_int(options.min_classes_per_flow, options.max_classes_per_flow);
        std::vector<int> node_pool(cnodes.size());
        for (std::size_t k = 0; k < node_pool.size(); ++k) node_pool[k] = static_cast<int>(k);
        std::shuffle(node_pool.begin(), node_pool.end(), rng);
        const int nodes_used = std::min<int>(class_count, static_cast<int>(cnodes.size()));
        for (int h = 0; h < nodes_used; ++h)
            builder.routeThroughNode(flow, cnodes[node_pool[h]],
                                     uniform_real(options.min_flow_cost, options.max_flow_cost));

        for (int c = 0; c < class_count; ++c) {
            std::ostringstream cname;
            cname << "f" << fidx << "_c" << c;
            const model::NodeId node = cnodes[node_pool[c % nodes_used]];
            builder.addClass(
                cname.str(), flow, node, uniform_int(options.min_population, options.max_population),
                uniform_real(options.min_consumer_cost, options.max_consumer_cost),
                make_class_utility(options.shape, uniform_real(options.min_rank, options.max_rank)));
        }
    }

    return builder.build();
}

}  // namespace lrgp::workload
