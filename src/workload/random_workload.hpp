// Seeded random workload generation for property-based testing and
// robustness experiments.  Instances stay in the same family as the
// paper's workloads (consumer-node-constrained, optionally with shared
// link bottlenecks) but vary topology, class counts, ranks, populations,
// costs and capacities.
#pragma once

#include <cstdint>

#include "model/problem.hpp"
#include "workload/workloads.hpp"

namespace lrgp::workload {

struct RandomWorkloadOptions {
    std::uint32_t seed = 1;
    int min_flows = 2, max_flows = 8;
    int min_cnodes = 2, max_cnodes = 6;
    int min_classes_per_flow = 1, max_classes_per_flow = 4;
    double min_rank = 1.0, max_rank = 100.0;
    int min_population = 10, max_population = 2000;
    double min_flow_cost = 1.0, max_flow_cost = 10.0;      ///< F range
    double min_consumer_cost = 5.0, max_consumer_cost = 40.0;  ///< G range
    double min_capacity = 1e5, max_capacity = 2e6;         ///< c_b range
    double rate_min = 10.0, rate_max = 1000.0;
    UtilityShape shape = UtilityShape::kLog;
    /// Probability that the workload gets a shared bottleneck link
    /// carrying every flow (exercises link pricing).
    double link_bottleneck_probability = 0.0;
};

/// Builds a random-but-valid problem.  Deterministic for a given seed.
/// Every flow has at least one class; every class's node is on its
/// flow's route; all invariants of ProblemBuilder hold by construction.
[[nodiscard]] model::ProblemSpec make_random_workload(const RandomWorkloadOptions& options);

}  // namespace lrgp::workload
