#include "metrics/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lrgp::metrics {

BucketHistogram::BucketHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
    if (bounds_.empty()) throw std::invalid_argument("BucketHistogram: no bounds");
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (!(bounds_[i] > 0.0) || !std::isfinite(bounds_[i]))
            throw std::invalid_argument("BucketHistogram: bounds must be finite and > 0");
        if (i > 0 && !(bounds_[i] > bounds_[i - 1]))
            throw std::invalid_argument("BucketHistogram: bounds must be strictly increasing");
    }
    buckets_.assign(bounds_.size() + 1, 0);
}

void BucketHistogram::observe(double x) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
}

void BucketHistogram::observe(double x, std::uint64_t n) {
    if (n == 0) return;
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())] += n;
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    count_ += n;
    sum_ += x * static_cast<double>(n);
}

double BucketHistogram::quantile(double q) const {
    if (!(q >= 0.0) || !(q <= 1.0))
        throw std::invalid_argument("BucketHistogram::quantile: q outside [0, 1]");
    if (count_ == 0) return 0.0;
    const double target = q * static_cast<double>(count_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0) continue;
        const double next = cumulative + static_cast<double>(buckets_[i]);
        if (next >= target) {
            if (i == buckets_.size() - 1) return max_;  // overflow bucket
            const double lower = i == 0 ? 0.0 : bounds_[i - 1];
            const double upper = bounds_[i];
            const double frac =
                (target - cumulative) / static_cast<double>(buckets_[i]);
            return std::clamp(lower + frac * (upper - lower), min_, max_);
        }
        cumulative = next;
    }
    return max_;
}

std::vector<double> exponential_bounds(double lo, double hi, int per_decade) {
    if (!(lo > 0.0) || !(hi > lo) || per_decade < 1)
        throw std::invalid_argument("exponential_bounds: need 0 < lo < hi, per_decade >= 1");
    const double factor = std::pow(10.0, 1.0 / per_decade);
    std::vector<double> bounds;
    for (double b = lo; b < hi * factor; b *= factor) bounds.push_back(b);
    return bounds;
}

std::vector<double> default_latency_bounds() { return exponential_bounds(1e-4, 50.0, 5); }

}  // namespace lrgp::metrics
