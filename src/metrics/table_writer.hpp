// Fixed-width ASCII table and CSV writers used by the benchmark harnesses
// to print the rows of the paper's tables and the series of its figures.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace lrgp::metrics {

/// A cell is either text, an integer, or a floating-point value.
using Cell = std::variant<std::string, long long, double>;

/// Accumulates rows and renders them either as an aligned ASCII table
/// (for terminal output) or as CSV (for plotting).
class TableWriter {
public:
    explicit TableWriter(std::vector<std::string> columns, int float_precision = 2);

    /// Appends a row. Throws std::invalid_argument on column-count mismatch.
    void addRow(std::vector<Cell> row);

    [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

    /// Renders an aligned, boxed ASCII table.
    void printTable(std::ostream& os) const;

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    void printCsv(std::ostream& os) const;

    [[nodiscard]] std::string toTableString() const;
    [[nodiscard]] std::string toCsvString() const;

private:
    [[nodiscard]] std::string formatCell(const Cell& cell) const;

    std::vector<std::string> columns_;
    std::vector<std::vector<Cell>> rows_;
    int float_precision_;
};

}  // namespace lrgp::metrics
