#include "metrics/time_series.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace lrgp::metrics {

double TimeSeries::min() const {
    requireNonEmpty();
    return *std::min_element(samples_.begin(), samples_.end());
}

double TimeSeries::max() const {
    requireNonEmpty();
    return *std::max_element(samples_.begin(), samples_.end());
}

double TimeSeries::mean() const {
    requireNonEmpty();
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

double TimeSeries::stddev() const {
    requireNonEmpty();
    const double m = mean();
    double acc = 0.0;
    for (double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double TimeSeries::trailingAmplitude(std::size_t window) const {
    if (window == 0 || window > samples_.size())
        throw std::invalid_argument("TimeSeries: bad trailing window");
    auto first = samples_.end() - static_cast<std::ptrdiff_t>(window);
    auto [lo, hi] = std::minmax_element(first, samples_.end());
    return *hi - *lo;
}

double TimeSeries::trailingMean(std::size_t window) const {
    if (window == 0 || window > samples_.size())
        throw std::invalid_argument("TimeSeries: bad trailing window");
    auto first = samples_.end() - static_cast<std::ptrdiff_t>(window);
    return std::accumulate(first, samples_.end(), 0.0) / static_cast<double>(window);
}

double TimeSeries::trailingRelativeAmplitude(std::size_t window) const {
    const double amp = trailingAmplitude(window);
    const double m = std::abs(trailingMean(window));
    if (m == 0.0) {
        return amp == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    }
    return amp / m;
}

}  // namespace lrgp::metrics
