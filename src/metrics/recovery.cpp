#include "metrics/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lrgp::metrics {

namespace {

double windowMean(const TimeSeries& trace, std::size_t begin, std::size_t count) {
    double sum = 0.0;
    for (std::size_t i = begin; i < begin + count; ++i) sum += trace[i];
    return sum / static_cast<double>(count);
}

}  // namespace

RecoveryReport analyze_recovery(const TimeSeries& trace, std::size_t fault_index,
                                double sample_period, const RecoveryOptions& options) {
    if (!(sample_period > 0.0))
        throw std::invalid_argument("analyze_recovery: sample_period must be > 0");
    if (!(options.epsilon > 0.0))
        throw std::invalid_argument("analyze_recovery: epsilon must be > 0");
    if (options.baseline_window == 0 || options.settle_window == 0)
        throw std::invalid_argument("analyze_recovery: windows must be >= 1");
    if (fault_index < options.baseline_window)
        throw std::invalid_argument(
            "analyze_recovery: not enough samples before the fault for the baseline window");
    if (trace.size() < fault_index + options.settle_window)
        throw std::invalid_argument(
            "analyze_recovery: not enough samples after the fault for the settle window");

    RecoveryReport report;
    report.baseline_utility =
        windowMean(trace, fault_index - options.baseline_window, options.baseline_window);
    report.target_utility =
        options.target == RecoveryTarget::kPreFaultBaseline
            ? report.baseline_utility
            : windowMean(trace, trace.size() - options.settle_window, options.settle_window);

    const double band = options.epsilon * std::abs(report.target_utility);

    // First index at/after the fault whose trailing settle_window mean
    // sits within the band.  A sliding sum keeps this linear.
    double window_sum = 0.0;
    for (std::size_t i = fault_index; i < fault_index + options.settle_window; ++i)
        window_sum += trace[i];
    const double w = static_cast<double>(options.settle_window);
    for (std::size_t k = fault_index; k + options.settle_window <= trace.size(); ++k) {
        if (std::abs(window_sum / w - report.target_utility) <= band) {
            report.reconverged = true;
            report.samples_to_reconverge = k - fault_index;
            report.time_to_reconverge =
                static_cast<double>(k - fault_index) * sample_period;
            break;
        }
        if (k + options.settle_window < trace.size())
            window_sum += trace[k + options.settle_window] - trace[k];
    }

    // Dip statistics over [fault, reconvergence] (or the whole tail when
    // the system never made it back).
    const std::size_t dip_end = report.reconverged
                                    ? fault_index + report.samples_to_reconverge +
                                          options.settle_window
                                    : trace.size();
    report.min_utility = trace[fault_index];
    for (std::size_t i = fault_index; i < std::min(dip_end, trace.size()); ++i) {
        report.min_utility = std::min(report.min_utility, trace[i]);
        report.dip_integral +=
            std::max(0.0, report.target_utility - trace[i]) * sample_period;
    }
    report.max_dip = std::max(0.0, report.target_utility - report.min_utility);
    return report;
}

}  // namespace lrgp::metrics
