// Time-series container with summary statistics, used to record the
// per-iteration utility/price/rate traces produced by the optimizers.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace lrgp::metrics {

/// An append-only sequence of samples with O(1) append and on-demand
/// statistics over the whole series or a trailing window.
class TimeSeries {
public:
    TimeSeries() = default;
    explicit TimeSeries(std::vector<double> samples) : samples_(std::move(samples)) {}

    void append(double value) { samples_.push_back(value); }

    [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
    [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
    [[nodiscard]] double operator[](std::size_t i) const { return samples_.at(i); }
    [[nodiscard]] double back() const { return samples_.at(samples_.size() - 1); }
    [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;
    [[nodiscard]] double stddev() const;

    /// Peak-to-peak amplitude (max - min) of the trailing `window` samples.
    /// Throws std::invalid_argument if fewer than `window` samples exist.
    [[nodiscard]] double trailingAmplitude(std::size_t window) const;

    /// Mean of the trailing `window` samples.
    [[nodiscard]] double trailingMean(std::size_t window) const;

    /// Relative amplitude of the trailing window: (max-min)/|mean|.
    /// Returns +inf when the trailing mean is zero and amplitude is not.
    [[nodiscard]] double trailingRelativeAmplitude(std::size_t window) const;

private:
    void requireNonEmpty() const {
        if (samples_.empty()) throw std::logic_error("TimeSeries: empty series");
    }

    std::vector<double> samples_;
};

}  // namespace lrgp::metrics
