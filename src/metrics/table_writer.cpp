#include "metrics/table_writer.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lrgp::metrics {

TableWriter::TableWriter(std::vector<std::string> columns, int float_precision)
    : columns_(std::move(columns)), float_precision_(float_precision) {
    if (columns_.empty()) throw std::invalid_argument("TableWriter: no columns");
}

void TableWriter::addRow(std::vector<Cell> row) {
    if (row.size() != columns_.size())
        throw std::invalid_argument("TableWriter: row size does not match column count");
    rows_.push_back(std::move(row));
}

std::string TableWriter::formatCell(const Cell& cell) const {
    std::ostringstream os;
    std::visit(
        [&](const auto& v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, double>) {
                os << std::fixed << std::setprecision(float_precision_) << v;
            } else {
                os << v;
            }
        },
        cell);
    return os.str();
}

void TableWriter::printTable(std::ostream& os) const {
    std::vector<std::size_t> widths(columns_.size());
    std::vector<std::vector<std::string>> rendered;
    rendered.reserve(rows_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
        std::vector<std::string> r;
        r.reserve(row.size());
        for (std::size_t c = 0; c < row.size(); ++c) {
            r.push_back(formatCell(row[c]));
            widths[c] = std::max(widths[c], r.back().size());
        }
        rendered.push_back(std::move(r));
    }

    auto rule = [&] {
        os << '+';
        for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
        os << '\n';
    };

    rule();
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << columns_[c] << " |";
    os << '\n';
    rule();
    for (const auto& r : rendered) {
        os << '|';
        for (std::size_t c = 0; c < r.size(); ++c)
            os << ' ' << std::right << std::setw(static_cast<int>(widths[c])) << r[c] << " |";
        os << '\n';
    }
    rule();
}

namespace {
std::string csvEscape(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"') out += "\"\"";
        else out += ch;
    }
    out += '"';
    return out;
}
}  // namespace

void TableWriter::printCsv(std::ostream& os) const {
    for (std::size_t c = 0; c < columns_.size(); ++c)
        os << (c ? "," : "") << csvEscape(columns_[c]);
    os << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << csvEscape(formatCell(row[c]));
        os << '\n';
    }
}

std::string TableWriter::toTableString() const {
    std::ostringstream os;
    printTable(os);
    return os.str();
}

std::string TableWriter::toCsvString() const {
    std::ostringstream os;
    printCsv(os);
    return os.str();
}

}  // namespace lrgp::metrics
