// Recovery instrumentation for fault and departure experiments.
//
// Given a utility trace sampled at a fixed period and the sample index
// where a disturbance began, analyze_recovery measures how the system
// healed: the time until the trailing mean returns to within epsilon of
// the reference utility (time-to-reconverge) and the area lost below
// the reference while it was away (utility-dip integral, in
// utility-seconds).  The reference is either the pre-fault steady state
// (transient faults that heal: crashes with restart, partitions, loss
// bursts) or the final steady state (permanent changes such as a flow
// departure, where the system settles somewhere new).
#pragma once

#include <cstddef>
#include <limits>

#include "metrics/time_series.hpp"

namespace lrgp::metrics {

/// Which utility level recovery is measured against.
enum class RecoveryTarget {
    kPreFaultBaseline,  ///< mean of the window just before the fault
    kFinalSteadyState,  ///< mean of the last settle_window samples
};

struct RecoveryOptions {
    double epsilon = 0.01;              ///< relative band around the target
    std::size_t baseline_window = 40;   ///< samples averaged before the fault
    std::size_t settle_window = 20;     ///< trailing samples that must sit in band
    RecoveryTarget target = RecoveryTarget::kPreFaultBaseline;
};

struct RecoveryReport {
    double baseline_utility = 0.0;  ///< pre-fault steady-state mean
    double target_utility = 0.0;    ///< level recovery is measured against
    double min_utility = 0.0;       ///< deepest post-fault sample
    double max_dip = 0.0;           ///< target - min, clamped at 0
    /// Integral of max(0, target - u(t)) dt from the fault until
    /// reconvergence (or the end of the trace), in utility-seconds.
    double dip_integral = 0.0;
    /// Seconds from the fault until the first sample whose settle_window
    /// mean is within epsilon of the target; +inf when never.
    double time_to_reconverge = std::numeric_limits<double>::infinity();
    /// Same instant in samples (rounds); SIZE_MAX when never.
    std::size_t samples_to_reconverge = std::numeric_limits<std::size_t>::max();
    bool reconverged = false;
};

/// Analyzes `trace` (one sample every `sample_period` seconds) around a
/// disturbance that began at sample `fault_index`.
///
/// Throws std::invalid_argument when the trace is too short to hold the
/// baseline window before the fault plus one settle window after it, or
/// when sample_period/epsilon/windows are non-positive.
[[nodiscard]] RecoveryReport analyze_recovery(const TimeSeries& trace, std::size_t fault_index,
                                              double sample_period,
                                              const RecoveryOptions& options = {});

}  // namespace lrgp::metrics
