// Fixed-bucket histogram with quantile estimation, used by the
// dataplane for end-to-end latency percentiles.
//
// Unlike obs::Histogram (relaxed atomics, Prometheus export, no
// queries), this is a plain single-threaded container that can answer
// quantile() questions: observations are counted against sorted upper
// bounds and quantiles are linearly interpolated inside the bucket that
// crosses the requested rank.  Exact minimum and maximum are tracked so
// the tails never report a bucket bound instead of a real observation.
#pragma once

#include <cstdint>
#include <vector>

namespace lrgp::metrics {

class BucketHistogram {
public:
    /// `upper_bounds` must be non-empty, strictly increasing, and
    /// positive; throws std::invalid_argument otherwise.  Observations
    /// above the last bound land in an implicit overflow bucket.
    explicit BucketHistogram(std::vector<double> upper_bounds);

    void observe(double x);

    /// Weighted insert: `n` identical observations of `x` in one call.
    /// Equivalent to calling observe(x) n times (the fastpath records a
    /// whole message cohort's latency estimate at once); n == 0 is a
    /// no-op.
    void observe(double x, std::uint64_t n);

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    [[nodiscard]] double mean() const noexcept {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    /// Exact extrema of the observed samples (0 when empty).
    [[nodiscard]] double minObserved() const noexcept { return count_ ? min_ : 0.0; }
    [[nodiscard]] double maxObserved() const noexcept { return count_ ? max_ : 0.0; }

    /// Estimated q-quantile (q in [0, 1]; throws outside), linearly
    /// interpolated within the crossing bucket and clamped to the exact
    /// observed extrema.  Returns 0 when empty.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] const std::vector<double>& upperBounds() const noexcept { return bounds_; }
    /// Count in bucket i; bucketCount(upperBounds().size()) is overflow.
    [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const { return buckets_.at(i); }

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> buckets_;  ///< bounds_.size() + 1 (overflow)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Geometric bucket ladder: `per_decade` bounds per power of ten from
/// `lo` up to (at least) `hi`.  Throws std::invalid_argument unless
/// 0 < lo < hi and per_decade >= 1.
[[nodiscard]] std::vector<double> exponential_bounds(double lo, double hi, int per_decade = 5);

/// The dataplane's default latency ladder: 100us .. 50s, 5 per decade.
[[nodiscard]] std::vector<double> default_latency_bounds();

}  // namespace lrgp::metrics
