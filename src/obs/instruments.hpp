// Pre-resolved instrument bundles for the LRGP engines.
//
// Engines resolve their named metrics once, at attach time, into one of
// these structs of raw pointers; the per-iteration hot path then touches
// plain atomics without any name lookups.  All metric names are
// documented in docs/observability.md.
#pragma once

#include <vector>

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace lrgp::obs {

/// Instruments shared by LrgpOptimizer and ParallelLrgpEngine.
/// All pointers live in (and are owned by) the Registry.
struct SolverInstruments {
    Counter* iterations = nullptr;          ///< lrgp_iterations_total
    Counter* rate_solves = nullptr;         ///< lrgp_rate_solves_total
    Counter* admissions = nullptr;          ///< lrgp_admissions_total (consumer-slots granted)
    Counter* node_price_moves = nullptr;    ///< lrgp_node_price_moves_total
    Counter* link_price_moves = nullptr;    ///< lrgp_link_price_moves_total
    Counter* convergence_resets = nullptr;  ///< lrgp_convergence_resets_total
    Gauge* utility = nullptr;               ///< lrgp_utility
    Gauge* admitted_consumers = nullptr;    ///< lrgp_admitted_consumers
    Histogram* iter_seconds = nullptr;      ///< lrgp_iteration_seconds
    Histogram* phase_rate = nullptr;        ///< lrgp_phase_seconds{phase="rate"}
    Histogram* phase_node = nullptr;        ///< lrgp_phase_seconds{phase="node"}
    Histogram* phase_link = nullptr;        ///< lrgp_phase_seconds{phase="link"}
    Histogram* phase_reduce = nullptr;      ///< lrgp_phase_seconds{phase="reduce"}

    /// Registers/looks up every solver metric in `registry`.
    static SolverInstruments resolve(Registry& registry);
};

/// TaskPool fan-out statistics (ParallelLrgpEngine wiring).
struct PoolInstruments {
    Counter* jobs = nullptr;            ///< lrgp_pool_jobs_total (parallelFor calls)
    Counter* chunks = nullptr;          ///< lrgp_pool_chunks_total (chunks executed)
    Histogram* fanout = nullptr;        ///< lrgp_pool_fanout_chunks (chunks queued per job)

    static PoolInstruments resolve(Registry& registry);
};

/// Distributed-protocol instruments (DistLrgp).
struct DistInstruments {
    Counter* sent_rate = nullptr;        ///< dist_messages_sent_total{kind="rate"}
    Counter* sent_node_report = nullptr; ///< dist_messages_sent_total{kind="node_report"}
    Counter* sent_link_report = nullptr; ///< dist_messages_sent_total{kind="link_report"}
    Counter* delivered = nullptr;        ///< dist_messages_delivered_total
    Counter* dropped_loss = nullptr;     ///< dist_messages_dropped_total{cause="loss"}
    Counter* dropped_fault = nullptr;    ///< dist_messages_dropped_total{cause="fault"}
    Counter* suspicions = nullptr;       ///< dist_suspicions_total
    Counter* reannouncements = nullptr;  ///< dist_reannouncements_total
    Counter* crashes = nullptr;          ///< dist_crashes_total
    Counter* restarts = nullptr;         ///< dist_restarts_total
    Counter* rounds = nullptr;           ///< dist_rounds_completed_total
    Gauge* utility = nullptr;            ///< dist_utility

    static DistInstruments resolve(Registry& registry);
};

/// Message-level dataplane instruments (dataplane::Dataplane).
struct DataplaneInstruments {
    Counter* emitted = nullptr;       ///< dataplane_messages_emitted_total
    Counter* shaped = nullptr;        ///< dataplane_messages_shaped_total (token-bucket policer)
    Counter* delivered = nullptr;     ///< dataplane_messages_delivered_total (per class copy)
    Counter* dropped_node = nullptr;  ///< dataplane_messages_dropped_total{where="node"}
    Counter* dropped_link = nullptr;  ///< dataplane_messages_dropped_total{where="link"}
    Counter* enactments = nullptr;    ///< dataplane_enactments_total
    Gauge* planned_utility = nullptr;   ///< dataplane_planned_utility
    Gauge* achieved_utility = nullptr;  ///< dataplane_achieved_utility
    Histogram* latency = nullptr;       ///< dataplane_delivery_latency_seconds

    static DataplaneInstruments resolve(Registry& registry);
};

/// Batched fastpath dataplane instruments (fastpath::Fastpath).
/// Counters are exported as deltas at sampler instants and the
/// histograms fill from the serial merge phase, so the Prometheus text
/// is byte-stable across worker counts (golden-tested).
struct FastpathInstruments {
    Counter* quanta = nullptr;        ///< lrgp_fastpath_quanta_total
    Counter* batches = nullptr;       ///< lrgp_fastpath_batches_total
    Counter* emitted = nullptr;       ///< lrgp_fastpath_messages_emitted_total
    Counter* shaped = nullptr;        ///< lrgp_fastpath_messages_shaped_total
    Counter* delivered = nullptr;     ///< lrgp_fastpath_messages_delivered_total
    Counter* dropped_node = nullptr;  ///< lrgp_fastpath_messages_dropped_total{where="node"}
    Counter* dropped_link = nullptr;  ///< lrgp_fastpath_messages_dropped_total{where="link"}
    Counter* enactments = nullptr;    ///< lrgp_fastpath_enactments_total
    Gauge* workers = nullptr;         ///< lrgp_fastpath_workers
    Gauge* planned_utility = nullptr;   ///< lrgp_fastpath_planned_utility
    Gauge* achieved_utility = nullptr;  ///< lrgp_fastpath_achieved_utility
    Histogram* batch_fill = nullptr;    ///< lrgp_fastpath_batch_fill_messages
    Histogram* latency = nullptr;       ///< lrgp_fastpath_delivery_latency_seconds

    static FastpathInstruments resolve(Registry& registry);
};

/// Dirty-set bookkeeping of the incremental engine
/// (ParallelLrgpEngine with EngineConfig::incremental).  Counters, not
/// gauges: per-iteration dirty-set sizes are the deltas, and the totals
/// divide by lrgp_iterations_total for averages.
struct IncrementalInstruments {
    Counter* dirty_flows = nullptr;     ///< lrgp_inc_dirty_flows_total (rate solves re-run)
    Counter* skipped_solves = nullptr;  ///< lrgp_inc_skipped_solves_total (active flows skipped)
    Counter* dirty_nodes = nullptr;     ///< lrgp_inc_dirty_nodes_total (nodes re-admitted)
    Counter* node_cache_hits = nullptr; ///< lrgp_inc_node_cache_hits_total (nodes fully skipped)
    Counter* rank_cache_hits = nullptr; ///< lrgp_inc_rank_cache_hits_total (cached ranking reused)
    Counter* dirty_links = nullptr;     ///< lrgp_inc_dirty_links_total (link usages recomputed)
    Counter* utility_cache_hits = nullptr; ///< lrgp_inc_utility_cache_hits_total (Eq. 1 sum reused)

    static IncrementalInstruments resolve(Registry& registry);
};

/// Vectorized-engine instruments (simd::VectorLrgpEngine): SIMD lane
/// occupancy of the padded structure-of-arrays layout and per-phase
/// kernel time.  Mirrors the lrgp_inc_* pattern: counters are totals,
/// divide by lrgp_iterations_total for per-iteration averages.
struct VectorInstruments {
    Counter* lanes_occupied = nullptr;  ///< lrgp_vec_lanes_occupied_total
    Counter* lanes_masked = nullptr;    ///< lrgp_vec_lanes_masked_total (padding waste)
    Counter* rate_kernel_ns = nullptr;  ///< lrgp_vec_kernel_ns_total{phase="rate"}
    Counter* node_kernel_ns = nullptr;  ///< lrgp_vec_kernel_ns_total{phase="node"}
    Counter* link_kernel_ns = nullptr;  ///< lrgp_vec_kernel_ns_total{phase="link"}
    Counter* bound_solves = nullptr;    ///< lrgp_vec_bound_solves_total
    Counter* closed_solves = nullptr;   ///< lrgp_vec_closed_solves_total

    static VectorInstruments resolve(Registry& registry);
};

/// Sharded-engine instruments (shard::ShardedLrgpEngine): partition
/// shape, lockstep/gated progress, and the boundary-price reconciler.
struct ShardInstruments {
    Counter* steps = nullptr;              ///< lrgp_shard_steps_total (merged super-steps)
    Counter* member_iterations = nullptr;  ///< lrgp_shard_member_iterations_total
    Counter* reconciles = nullptr;         ///< lrgp_shard_reconciles_total
    Counter* price_exchanges = nullptr;    ///< lrgp_shard_price_exchanges_total
    Counter* budget_updates = nullptr;     ///< lrgp_shard_budget_updates_total
    Counter* wakeups = nullptr;            ///< lrgp_shard_wakeups_total
    Gauge* shard_count = nullptr;          ///< lrgp_shard_count
    Gauge* boundary_nodes = nullptr;       ///< lrgp_shard_boundary_nodes
    Gauge* boundary_links = nullptr;       ///< lrgp_shard_boundary_links
    Gauge* budget_moved = nullptr;         ///< lrgp_shard_budget_moved_units
    Histogram* reconcile_seconds = nullptr;  ///< lrgp_shard_reconcile_seconds
    /// lrgp_shard_iterations_total{shard="0".."K-1"}: per-shard member
    /// iterations, sized at resolve time from the engine's shard count.
    std::vector<Counter*> iterations_by_shard;

    static ShardInstruments resolve(Registry& registry, int shards);
};

/// Live asynchronous shard-agent runtime instruments
/// (runtime::AsyncShardRuntime).  Counter totals are exported by the
/// driver at the end of every runFor call; the histograms fill live
/// from the agent threads (relaxed atomics).  Histogram values are
/// runtime-clock seconds / inbox depths — deterministic quantities in
/// virtual-time mode, so the Prometheus export stays golden-testable.
struct RuntimeInstruments {
    Counter* digests_sent = nullptr;      ///< lrgp_runtime_digests_sent_total
    Counter* digests_received = nullptr;  ///< lrgp_runtime_digests_received_total
    Counter* rejected_stale = nullptr;    ///< lrgp_runtime_digests_rejected_stale_total
    Counter* dropped_fault = nullptr;     ///< lrgp_runtime_messages_dropped_total{cause="fault"}
    Counter* dropped_backpressure = nullptr;  ///< ...{cause="backpressure"}
    Counter* send_failures = nullptr;     ///< lrgp_runtime_send_failures_total
    Counter* retries = nullptr;           ///< lrgp_runtime_retries_total
    Counter* suspicions = nullptr;        ///< lrgp_runtime_suspicions_total
    Counter* recoveries = nullptr;        ///< lrgp_runtime_recoveries_total
    Counter* crashes = nullptr;           ///< lrgp_runtime_crashes_total
    Counter* restarts = nullptr;          ///< lrgp_runtime_restarts_total
    Counter* snapshots = nullptr;         ///< lrgp_runtime_snapshots_total
    Counter* snapshot_restores = nullptr; ///< lrgp_runtime_snapshot_restores_total
    Counter* budget_updates = nullptr;    ///< lrgp_runtime_budget_updates_total
    Counter* degradations = nullptr;      ///< lrgp_runtime_degradations_total
    Gauge* agents = nullptr;              ///< lrgp_runtime_agents
    Gauge* utility = nullptr;             ///< lrgp_runtime_utility
    Histogram* digest_age = nullptr;      ///< lrgp_runtime_digest_age_seconds
    Histogram* queue_depth = nullptr;     ///< lrgp_runtime_queue_depth

    static RuntimeInstruments resolve(Registry& registry);
};

/// Scenario-replay instruments (scenario::run_scenario): the shape of
/// the replayed cell and how well the engine tracked it.  Every value
/// derives from the deterministic replay alone, so the Prometheus
/// export is golden-testable byte-exact.
struct ScenarioInstruments {
    Counter* ops_applied = nullptr;   ///< lrgp_scenario_ops_applied_total
    Counter* ticks = nullptr;         ///< lrgp_scenario_ticks_total (replay iterations)
    Gauge* flows = nullptr;           ///< lrgp_scenario_flows
    Gauge* classes = nullptr;         ///< lrgp_scenario_classes
    Gauge* nodes = nullptr;           ///< lrgp_scenario_nodes
    Gauge* links = nullptr;           ///< lrgp_scenario_links
    Gauge* schedule_ops = nullptr;    ///< lrgp_scenario_schedule_ops
    Gauge* final_utility = nullptr;   ///< lrgp_scenario_final_utility
    Gauge* best_known_utility = nullptr;  ///< lrgp_scenario_best_known_utility
    Gauge* utility_vs_best = nullptr;     ///< lrgp_scenario_utility_vs_best
    Gauge* drop_rate = nullptr;           ///< lrgp_scenario_drop_rate (dataplane runs)
    Gauge* achieved_vs_planned = nullptr; ///< lrgp_scenario_achieved_vs_planned

    static ScenarioInstruments resolve(Registry& registry);
};

/// Allocator-level instruments, shared by every engine that drives the
/// greedy/rate allocators (serial, parallel, distributed).
struct AllocatorInstruments {
    Counter* greedy_allocations = nullptr;   ///< greedy_allocations_total (allocate calls)
    Counter* greedy_candidates = nullptr;    ///< greedy_candidates_ranked_total
    Counter* greedy_admitted = nullptr;      ///< greedy_consumers_admitted_total
    Counter* rate_closed_form = nullptr;     ///< rate_solves_by_method_total{method="closed_form"}
    Counter* rate_numeric = nullptr;         ///< rate_solves_by_method_total{method="numeric"}
    Counter* rate_bound = nullptr;           ///< rate_solves_by_method_total{method="bound"}

    static AllocatorInstruments resolve(Registry& registry);
};

}  // namespace lrgp::obs
