// RAII scoped timing into a Histogram (seconds).  A null histogram makes
// the timer free: no clock is read.  Use together with the compile-time
// gate:
//
//     if constexpr (obs::kEnabled) { ... }  // or pass nullptr
//     obs::ScopedTimer t(instr_ ? instr_->iter_seconds : nullptr);
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace lrgp::obs {

[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

class ScopedTimer {
public:
    explicit ScopedTimer(Histogram* sink) noexcept
        : sink_(sink), start_ns_(sink ? monotonic_ns() : 0) {}

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    ~ScopedTimer() {
        if (sink_) sink_->observe(static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
    }

    /// Nanoseconds elapsed so far (0 when no sink was attached).
    [[nodiscard]] std::uint64_t elapsedNs() const noexcept {
        return sink_ ? monotonic_ns() - start_ns_ : 0;
    }

private:
    Histogram* sink_;
    std::uint64_t start_ns_;
};

}  // namespace lrgp::obs
