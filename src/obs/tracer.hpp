// Structured iteration tracing for the LRGP engines.
//
// The tracer records a bounded in-memory sequence of events — phase
// spans, instants (suspicions, crashes), and counter samples — and
// exports them as Chrome trace_event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev).  Timestamps are supplied
// by the caller in microseconds: the in-process engines use a monotonic
// clock relative to the tracer's creation, while DistLrgp uses simulated
// time, which makes distributed traces fully deterministic.
//
// Cost model: recording is two branches (sampling gate, capacity gate)
// plus a vector push_back; an unsampled iteration records nothing.  The
// `sample_every` option keeps long runs cheap — only every Nth
// iteration's events are kept — and `max_events` hard-bounds memory
// (excess events are counted in droppedEvents(), never allocated).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace lrgp::obs {

/// One Chrome trace_event.  `ph` is the Chrome phase tag: 'X' complete
/// (span with duration), 'i' instant, 'C' counter sample.
struct TraceEvent {
    std::string name;
    std::string cat;
    char ph = 'X';
    double ts_us = 0.0;   ///< event start, microseconds
    double dur_us = 0.0;  ///< span length ('X' only)
    std::uint32_t tid = 0;
    std::vector<std::pair<std::string, std::variant<double, std::string>>> args;
};

struct TracerOptions {
    /// Record every Nth iteration's events (1 = all).  beginIteration()
    /// applies the gate; events recorded outside any iteration (e.g.
    /// DistLrgp fault instants) are always eligible.
    std::uint64_t sample_every = 1;
    /// Hard cap on stored events; the excess is counted, not stored.
    std::size_t max_events = 1u << 20;
};

class IterationTracer {
public:
    explicit IterationTracer(TracerOptions options = {});

    IterationTracer(const IterationTracer&) = delete;
    IterationTracer& operator=(const IterationTracer&) = delete;

    /// Marks the start of iteration `iteration` (1-based) and decides
    /// whether its events are sampled.
    void beginIteration(std::uint64_t iteration);
    /// True when the current iteration's events are being recorded.
    [[nodiscard]] bool sampling() const noexcept { return sampling_; }

    /// Microseconds since tracer construction on the monotonic clock —
    /// the timestamp base for in-process engines.
    [[nodiscard]] double nowMicros() const noexcept;

    void complete(std::string name, std::string cat, std::uint32_t tid, double ts_us,
                  double dur_us,
                  std::vector<std::pair<std::string, std::variant<double, std::string>>> args = {});
    void instant(std::string name, std::string cat, std::uint32_t tid, double ts_us,
                 std::vector<std::pair<std::string, std::variant<double, std::string>>> args = {});
    /// Counter track sample: chrome plots `value` over time under `name`.
    void counterSample(std::string name, std::uint32_t tid, double ts_us, double value);

    [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
    [[nodiscard]] std::size_t droppedEvents() const noexcept { return dropped_; }

    /// Chrome trace_event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
    /// Events render in recording order; numbers use shortest-exact
    /// formatting, so deterministic inputs give byte-stable output.
    void writeChromeTrace(std::ostream& os) const;
    [[nodiscard]] std::string chromeTraceText() const;

private:
    void push(TraceEvent&& event);

    TracerOptions options_;
    std::vector<TraceEvent> events_;
    std::size_t dropped_ = 0;
    bool sampling_ = true;
    std::uint64_t origin_ns_ = 0;
};

}  // namespace lrgp::obs
