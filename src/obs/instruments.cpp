#include "obs/instruments.hpp"

namespace lrgp::obs {

SolverInstruments SolverInstruments::resolve(Registry& registry) {
    SolverInstruments instruments;
    instruments.iterations =
        &registry.counter("lrgp_iterations_total", "LRGP iterations completed");
    instruments.rate_solves =
        &registry.counter("lrgp_rate_solves_total", "Per-flow rate subproblems solved (Alg. 1)");
    instruments.admissions = &registry.counter(
        "lrgp_admissions_total", "Consumer slots granted by the greedy allocator (Alg. 2)");
    instruments.node_price_moves =
        &registry.counter("lrgp_node_price_moves_total", "Node price updates that changed the price");
    instruments.link_price_moves =
        &registry.counter("lrgp_link_price_moves_total", "Link price updates that changed the price");
    instruments.convergence_resets = &registry.counter(
        "lrgp_convergence_resets_total", "Convergence detector restarts after workload changes");
    instruments.utility = &registry.gauge("lrgp_utility", "Eq. 1 utility after the last iteration");
    instruments.admitted_consumers = &registry.gauge(
        "lrgp_admitted_consumers", "Total admitted consumers after the last iteration");
    instruments.iter_seconds = &registry.histogram(
        "lrgp_iteration_seconds", default_time_buckets(), "Wall time per LRGP iteration");
    const std::string phase_help = "Wall time per iteration phase";
    instruments.phase_rate = &registry.histogram("lrgp_phase_seconds", default_time_buckets(),
                                                 phase_help, {{"phase", "rate"}});
    instruments.phase_node = &registry.histogram("lrgp_phase_seconds", default_time_buckets(),
                                                 phase_help, {{"phase", "node"}});
    instruments.phase_link = &registry.histogram("lrgp_phase_seconds", default_time_buckets(),
                                                 phase_help, {{"phase", "link"}});
    instruments.phase_reduce = &registry.histogram("lrgp_phase_seconds", default_time_buckets(),
                                                   phase_help, {{"phase", "reduce"}});
    return instruments;
}

PoolInstruments PoolInstruments::resolve(Registry& registry) {
    PoolInstruments instruments;
    instruments.jobs =
        &registry.counter("lrgp_pool_jobs_total", "parallelFor fork-join dispatches");
    instruments.chunks =
        &registry.counter("lrgp_pool_chunks_total", "Statically partitioned chunks executed");
    instruments.fanout = &registry.histogram(
        "lrgp_pool_fanout_chunks", {1, 2, 4, 8, 16, 32, 64, 128},
        "Chunks queued per dispatch (the pool's queue depth; static partitioning, no stealing)");
    return instruments;
}

DistInstruments DistInstruments::resolve(Registry& registry) {
    DistInstruments instruments;
    const std::string sent_help = "Protocol messages handed to the network";
    instruments.sent_rate =
        &registry.counter("dist_messages_sent_total", sent_help, {{"kind", "rate"}});
    instruments.sent_node_report =
        &registry.counter("dist_messages_sent_total", sent_help, {{"kind", "node_report"}});
    instruments.sent_link_report =
        &registry.counter("dist_messages_sent_total", sent_help, {{"kind", "link_report"}});
    instruments.delivered =
        &registry.counter("dist_messages_delivered_total", "Messages that reached their handler");
    const std::string drop_help = "Messages dropped in transit";
    instruments.dropped_loss =
        &registry.counter("dist_messages_dropped_total", drop_help, {{"cause", "loss"}});
    instruments.dropped_fault =
        &registry.counter("dist_messages_dropped_total", drop_help, {{"cause", "fault"}});
    instruments.suspicions = &registry.counter(
        "dist_suspicions_total", "Transitions of a peer into the suspected state");
    instruments.reannouncements = &registry.counter(
        "dist_reannouncements_total", "Backoff re-announcements sent to suspected resources");
    instruments.crashes = &registry.counter("dist_crashes_total", "Agent crash events injected");
    instruments.restarts = &registry.counter("dist_restarts_total", "Agent restarts completed");
    instruments.rounds =
        &registry.counter("dist_rounds_completed_total", "Synchronous rounds completed");
    instruments.utility =
        &registry.gauge("dist_utility", "Utility of the latest global snapshot");
    return instruments;
}

DataplaneInstruments DataplaneInstruments::resolve(Registry& registry) {
    DataplaneInstruments instruments;
    instruments.emitted = &registry.counter("dataplane_messages_emitted_total",
                                            "Messages emitted by traffic sources");
    instruments.shaped = &registry.counter(
        "dataplane_messages_shaped_total", "Messages policed away by the source token bucket");
    instruments.delivered = &registry.counter(
        "dataplane_messages_delivered_total", "Per-class message deliveries at consumer nodes");
    const std::string drop_help = "Messages dropped at a bounded server queue";
    instruments.dropped_node =
        &registry.counter("dataplane_messages_dropped_total", drop_help, {{"where", "node"}});
    instruments.dropped_link =
        &registry.counter("dataplane_messages_dropped_total", drop_help, {{"where", "link"}});
    instruments.enactments = &registry.counter("dataplane_enactments_total",
                                               "Allocations pushed into the dataplane");
    instruments.planned_utility = &registry.gauge(
        "dataplane_planned_utility", "Optimizer-planned utility at the last sample");
    instruments.achieved_utility = &registry.gauge(
        "dataplane_achieved_utility", "Measured utility over the last sample window");
    instruments.latency = &registry.histogram(
        "dataplane_delivery_latency_seconds", default_time_buckets(),
        "End-to-end latency from source emission to class delivery (simulated seconds)");
    return instruments;
}

FastpathInstruments FastpathInstruments::resolve(Registry& registry) {
    FastpathInstruments instruments;
    instruments.quanta =
        &registry.counter("lrgp_fastpath_quanta_total", "Fixed time quanta processed");
    instruments.batches = &registry.counter("lrgp_fastpath_batches_total",
                                            "Message batches pushed through the gate graph");
    instruments.emitted = &registry.counter("lrgp_fastpath_messages_emitted_total",
                                            "Messages emitted past the traffic scheduler");
    instruments.shaped = &registry.counter(
        "lrgp_fastpath_messages_shaped_total", "Messages the per-flow credit policer shaped away");
    instruments.delivered = &registry.counter(
        "lrgp_fastpath_messages_delivered_total", "Per-class message deliveries at node gates");
    const std::string drop_help = "Messages dropped at a full gate queue";
    instruments.dropped_node = &registry.counter("lrgp_fastpath_messages_dropped_total",
                                                 drop_help, {{"where", "node"}});
    instruments.dropped_link = &registry.counter("lrgp_fastpath_messages_dropped_total",
                                                 drop_help, {{"where", "link"}});
    instruments.enactments = &registry.counter("lrgp_fastpath_enactments_total",
                                               "Allocations pushed into the fastpath");
    instruments.workers =
        &registry.gauge("lrgp_fastpath_workers", "Worker threads serving the gate graph");
    instruments.planned_utility = &registry.gauge(
        "lrgp_fastpath_planned_utility", "Optimizer-planned utility at the last sample");
    instruments.achieved_utility = &registry.gauge(
        "lrgp_fastpath_achieved_utility", "Measured utility over the last sample window");
    instruments.batch_fill = &registry.histogram(
        "lrgp_fastpath_batch_fill_messages", {1, 2, 4, 8, 16, 32},
        "Messages per batch entering the gate graph (batch_size caps the fill)");
    instruments.latency = &registry.histogram(
        "lrgp_fastpath_delivery_latency_seconds", default_time_buckets(),
        "Estimated end-to-end latency per delivered cohort (simulated seconds)");
    return instruments;
}

IncrementalInstruments IncrementalInstruments::resolve(Registry& registry) {
    IncrementalInstruments instruments;
    instruments.dirty_flows = &registry.counter(
        "lrgp_inc_dirty_flows_total", "Flows whose Eq. 7 rate solve re-ran (dirty inputs)");
    instruments.skipped_solves = &registry.counter(
        "lrgp_inc_skipped_solves_total", "Active flows whose rate solve was skipped (clean inputs)");
    instruments.dirty_nodes = &registry.counter(
        "lrgp_inc_dirty_nodes_total", "Nodes that re-ran greedy admission (dirty incident state)");
    instruments.node_cache_hits = &registry.counter(
        "lrgp_inc_node_cache_hits_total",
        "Nodes skipped entirely: cached populations, usage and BC(b,t) reused");
    instruments.rank_cache_hits = &registry.counter(
        "lrgp_inc_rank_cache_hits_total",
        "Node re-admissions that reused the cached benefit-cost ordering (no re-rank)");
    instruments.dirty_links = &registry.counter(
        "lrgp_inc_dirty_links_total", "Links whose usage sum was recomputed (dirty incident rates)");
    instruments.utility_cache_hits = &registry.counter(
        "lrgp_inc_utility_cache_hits_total",
        "Iterations that reused the cached Eq. 1 utility sum (no node re-ran)");
    return instruments;
}

VectorInstruments VectorInstruments::resolve(Registry& registry) {
    VectorInstruments instruments;
    instruments.lanes_occupied = &registry.counter(
        "lrgp_vec_lanes_occupied_total",
        "Real structure-of-arrays elements carried in SIMD lanes");
    instruments.lanes_masked = &registry.counter(
        "lrgp_vec_lanes_masked_total",
        "Padded SIMD lanes carried along (span-padding waste)");
    const std::string kernel_help = "Vector phase wall nanoseconds (kernel + scalar epilogue)";
    instruments.rate_kernel_ns =
        &registry.counter("lrgp_vec_kernel_ns_total", kernel_help, {{"phase", "rate"}});
    instruments.node_kernel_ns =
        &registry.counter("lrgp_vec_kernel_ns_total", kernel_help, {{"phase", "node"}});
    instruments.link_kernel_ns =
        &registry.counter("lrgp_vec_kernel_ns_total", kernel_help, {{"phase", "link"}});
    instruments.bound_solves = &registry.counter(
        "lrgp_vec_bound_solves_total",
        "Closed-form-family flows resolved at a rate bound by the vector kernel");
    instruments.closed_solves = &registry.counter(
        "lrgp_vec_closed_solves_total",
        "Closed-form-family flows resolved in the interior by the vector kernel");
    return instruments;
}

ShardInstruments ShardInstruments::resolve(Registry& registry, int shards) {
    ShardInstruments instruments;
    instruments.steps = &registry.counter("lrgp_shard_steps_total",
                                          "Merged sharded-engine super-steps completed");
    instruments.member_iterations = &registry.counter(
        "lrgp_shard_member_iterations_total", "Member-engine iterations summed over shards");
    instruments.reconciles = &registry.counter(
        "lrgp_shard_reconciles_total", "Boundary-price reconciliation passes completed");
    instruments.price_exchanges = &registry.counter(
        "lrgp_shard_price_exchanges_total",
        "Boundary (resource, shard) price samples exchanged by the reconciler");
    instruments.budget_updates = &registry.counter(
        "lrgp_shard_budget_updates_total", "Per-shard capacity budget updates applied");
    instruments.wakeups = &registry.counter(
        "lrgp_shard_wakeups_total", "Converged shards resumed by a boundary budget change");
    instruments.shard_count = &registry.gauge("lrgp_shard_count", "Configured shard count K");
    instruments.boundary_nodes = &registry.gauge(
        "lrgp_shard_boundary_nodes", "Nodes shared by >= 2 shards after partitioning");
    instruments.boundary_links = &registry.gauge(
        "lrgp_shard_boundary_links", "Links shared by >= 2 shards after partitioning");
    instruments.budget_moved = &registry.gauge(
        "lrgp_shard_budget_moved_units", "Cumulative capacity units moved between shards");
    instruments.reconcile_seconds = &registry.histogram(
        "lrgp_shard_reconcile_seconds", default_time_buckets(),
        "Wall time per boundary-price reconciliation pass");
    const std::string iter_help = "Member-engine iterations by shard";
    instruments.iterations_by_shard.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s)
        instruments.iterations_by_shard.push_back(&registry.counter(
            "lrgp_shard_iterations_total", iter_help, {{"shard", std::to_string(s)}}));
    return instruments;
}

RuntimeInstruments RuntimeInstruments::resolve(Registry& registry) {
    RuntimeInstruments instruments;
    instruments.digests_sent = &registry.counter("lrgp_runtime_digests_sent_total",
                                                 "Digests handed to the transport");
    instruments.digests_received = &registry.counter("lrgp_runtime_digests_received_total",
                                                     "Digests polled from agent inboxes");
    instruments.rejected_stale = &registry.counter(
        "lrgp_runtime_digests_rejected_stale_total",
        "Digests rejected on receipt: older than the staleness horizon, replayed or reordered");
    const std::string drop_help = "Messages lost in the transport";
    instruments.dropped_fault = &registry.counter("lrgp_runtime_messages_dropped_total",
                                                  drop_help, {{"cause", "fault"}});
    instruments.dropped_backpressure = &registry.counter(
        "lrgp_runtime_messages_dropped_total", drop_help, {{"cause", "backpressure"}});
    instruments.send_failures = &registry.counter(
        "lrgp_runtime_send_failures_total",
        "Sends rejected by a full per-peer in-flight window (backpressure)");
    instruments.retries = &registry.counter(
        "lrgp_runtime_retries_total",
        "Retried sends: backoff digests to suspected peers and backpressure resends");
    instruments.suspicions = &registry.counter(
        "lrgp_runtime_suspicions_total", "Transitions of a peer into the suspected state");
    instruments.recoveries = &registry.counter(
        "lrgp_runtime_recoveries_total", "Suspected peers heard from again (unsuspected)");
    instruments.crashes =
        &registry.counter("lrgp_runtime_crashes_total", "Agent crash events taken");
    instruments.restarts =
        &registry.counter("lrgp_runtime_restarts_total", "Agent restarts completed");
    instruments.snapshots = &registry.counter("lrgp_runtime_snapshots_total",
                                              "Engine snapshots captured (checkpoints)");
    instruments.snapshot_restores = &registry.counter(
        "lrgp_runtime_snapshot_restores_total", "Restarts that restored an engine snapshot");
    instruments.budget_updates = &registry.counter(
        "lrgp_runtime_budget_updates_total", "Boundary budget assignment slices applied");
    instruments.degradations = &registry.counter(
        "lrgp_runtime_degradations_total",
        "Boundary slices clamped to their floor while a sharing peer was suspected");
    instruments.agents = &registry.gauge("lrgp_runtime_agents", "Configured shard agents");
    instruments.utility =
        &registry.gauge("lrgp_runtime_utility", "Global utility at the last sample");
    instruments.digest_age = &registry.histogram(
        "lrgp_runtime_digest_age_seconds", {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.6, 1.5},
        "Age (runtime-clock seconds) of accepted digests at receipt");
    instruments.queue_depth = &registry.histogram(
        "lrgp_runtime_queue_depth", {0, 1, 2, 4, 8, 16, 32, 64},
        "Inbox depth observed at each poll (before the drain)");
    return instruments;
}

ScenarioInstruments ScenarioInstruments::resolve(Registry& registry) {
    ScenarioInstruments instruments;
    instruments.ops_applied = &registry.counter("lrgp_scenario_ops_applied_total",
                                                "Dynamic ops replayed into the engine");
    instruments.ticks =
        &registry.counter("lrgp_scenario_ticks_total", "Replay iterations stepped");
    instruments.flows = &registry.gauge("lrgp_scenario_flows", "Flows in the scenario problem");
    instruments.classes =
        &registry.gauge("lrgp_scenario_classes", "Consumer classes in the scenario problem");
    instruments.nodes = &registry.gauge("lrgp_scenario_nodes", "Nodes in the scenario problem");
    instruments.links = &registry.gauge("lrgp_scenario_links", "Links in the scenario problem");
    instruments.schedule_ops =
        &registry.gauge("lrgp_scenario_schedule_ops", "Dynamic ops in the scenario schedule");
    instruments.final_utility = &registry.gauge(
        "lrgp_scenario_final_utility", "Utility after the post-replay convergence solve");
    instruments.best_known_utility = &registry.gauge(
        "lrgp_scenario_best_known_utility", "Fresh serial solve of the end-state problem");
    instruments.utility_vs_best =
        &registry.gauge("lrgp_scenario_utility_vs_best", "final_utility / best_known_utility");
    instruments.drop_rate = &registry.gauge(
        "lrgp_scenario_drop_rate", "Dataplane drop rate over the replay (dataplane runs only)");
    instruments.achieved_vs_planned =
        &registry.gauge("lrgp_scenario_achieved_vs_planned",
                        "Trailing achieved / planned dataplane utility (dataplane runs only)");
    return instruments;
}

AllocatorInstruments AllocatorInstruments::resolve(Registry& registry) {
    AllocatorInstruments instruments;
    instruments.greedy_allocations =
        &registry.counter("greedy_allocations_total", "Greedy node allocations run (Alg. 2)");
    instruments.greedy_candidates = &registry.counter(
        "greedy_candidates_ranked_total", "Benefit-cost candidates ranked across allocations");
    instruments.greedy_admitted = &registry.counter(
        "greedy_consumers_admitted_total", "Consumer slots granted across allocations");
    const std::string method_help = "Rate solves by solution path";
    instruments.rate_closed_form = &registry.counter("rate_solves_by_method_total", method_help,
                                                     {{"method", "closed_form"}});
    instruments.rate_numeric =
        &registry.counter("rate_solves_by_method_total", method_help, {{"method", "numeric"}});
    instruments.rate_bound =
        &registry.counter("rate_solves_by_method_total", method_help, {{"method", "bound"}});
    return instruments;
}

}  // namespace lrgp::obs
