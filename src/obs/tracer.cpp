#include "obs/tracer.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/scoped_timer.hpp"

namespace lrgp::obs {

namespace {

void append_json_string(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_json_number(std::string& out, double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        out += buf;
        return;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

}  // namespace

IterationTracer::IterationTracer(TracerOptions options)
    : options_(options), origin_ns_(monotonic_ns()) {
    if (options_.sample_every == 0) options_.sample_every = 1;
}

void IterationTracer::beginIteration(std::uint64_t iteration) {
    sampling_ = (iteration % options_.sample_every) == 0 ||
                (options_.sample_every > 1 && iteration == 1);
}

double IterationTracer::nowMicros() const noexcept {
    return static_cast<double>(monotonic_ns() - origin_ns_) * 1e-3;
}

void IterationTracer::push(TraceEvent&& event) {
    if (!sampling_) return;
    if (events_.size() >= options_.max_events) {
        ++dropped_;
        return;
    }
    events_.push_back(std::move(event));
}

void IterationTracer::complete(
    std::string name, std::string cat, std::uint32_t tid, double ts_us, double dur_us,
    std::vector<std::pair<std::string, std::variant<double, std::string>>> args) {
    push(TraceEvent{std::move(name), std::move(cat), 'X', ts_us, dur_us, tid, std::move(args)});
}

void IterationTracer::instant(
    std::string name, std::string cat, std::uint32_t tid, double ts_us,
    std::vector<std::pair<std::string, std::variant<double, std::string>>> args) {
    push(TraceEvent{std::move(name), std::move(cat), 'i', ts_us, 0.0, tid, std::move(args)});
}

void IterationTracer::counterSample(std::string name, std::uint32_t tid, double ts_us,
                                    double value) {
    push(TraceEvent{std::move(name), "counter", 'C', ts_us, 0.0, tid,
                    {{"value", value}}});
}

void IterationTracer::writeChromeTrace(std::ostream& os) const {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::string line;
    for (const TraceEvent& e : events_) {
        line.clear();
        if (!first) line += ',';
        first = false;
        line += "\n{\"name\":";
        append_json_string(line, e.name);
        line += ",\"cat\":";
        append_json_string(line, e.cat);
        line += ",\"ph\":\"";
        line += e.ph;
        line += "\",\"pid\":1,\"tid\":";
        append_json_number(line, static_cast<double>(e.tid));
        line += ",\"ts\":";
        append_json_number(line, e.ts_us);
        if (e.ph == 'X') {
            line += ",\"dur\":";
            append_json_number(line, e.dur_us);
        }
        if (e.ph == 'i') line += ",\"s\":\"t\"";  // thread-scoped instant
        if (!e.args.empty()) {
            line += ",\"args\":{";
            bool first_arg = true;
            for (const auto& [key, value] : e.args) {
                if (!first_arg) line += ',';
                first_arg = false;
                append_json_string(line, key);
                line += ':';
                if (const double* d = std::get_if<double>(&value))
                    append_json_number(line, *d);
                else
                    append_json_string(line, std::get<std::string>(value));
            }
            line += '}';
        }
        line += '}';
        os << line;
    }
    os << "\n]}\n";
}

std::string IterationTracer::chromeTraceText() const {
    std::ostringstream os;
    writeChromeTrace(os);
    return os.str();
}

}  // namespace lrgp::obs
