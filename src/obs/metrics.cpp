#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace lrgp::obs {

namespace {

bool valid_metric_name(const std::string& name) {
    if (name.empty()) return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
    };
    auto tail = [&](char c) { return head(c) || (c >= '0' && c <= '9'); };
    if (!head(name.front())) return false;
    return std::all_of(name.begin() + 1, name.end(), tail);
}

/// Shortest-round-trip style formatting: integers render without a
/// decimal point, everything else through %g with enough digits to be
/// unambiguous.  Deterministic across runs (golden-tested).
std::string format_number(double v) {
    if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 && v < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string render_labels(const Labels& labels) {
    if (labels.empty()) return "";
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ',';
        first = false;
        out += k;
        out += "=\"";
        for (char c : v) {
            if (c == '\\' || c == '"') out += '\\';
            out += c;
        }
        out += '"';
    }
    out += '}';
    return out;
}

std::string render_labels_plus(const Labels& labels, const std::string& key,
                               const std::string& value) {
    Labels all = labels;
    all.emplace_back(key, value);
    return render_labels(all);
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
        throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    buckets_.resize(bounds_.size() + 1);  // + implicit +Inf bucket
}

void Histogram::observe(double x) noexcept {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // C++20 atomic<double>::fetch_add: relaxed CAS loop under the hood.
    sum_.fetch_add(x, std::memory_order_relaxed);
}

void Histogram::observe(double x, std::uint64_t n) noexcept {
    if (n == 0) return;
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        n, std::memory_order_relaxed);
    count_.fetch_add(n, std::memory_order_relaxed);
    sum_.fetch_add(x * static_cast<double>(n), std::memory_order_relaxed);
}

std::vector<double> default_time_buckets() {
    std::vector<double> bounds;
    for (double decade = 1e-6; decade < 10.0; decade *= 10.0)
        for (double m : {1.0, 2.5, 5.0}) bounds.push_back(decade * m);
    return bounds;
}

Registry::Entry* Registry::find(Kind kind, const std::string& name, const Labels& labels) {
    for (Entry& e : entries_)
        if (e.kind == kind && e.name == name && e.labels == labels) return &e;
    return nullptr;
}

const Registry::Entry* Registry::findConst(Kind kind, const std::string& name,
                                           const Labels& labels) const {
    for (const Entry& e : entries_)
        if (e.kind == kind && e.name == name && e.labels == labels) return &e;
    return nullptr;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           const Labels& labels) {
    if (!valid_metric_name(name)) throw std::invalid_argument("Registry: bad metric name " + name);
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry* e = find(Kind::kCounter, name, labels)) return *e->counter;
    entries_.push_back(Entry{Kind::kCounter, name, help, labels,
                             std::make_unique<Counter>(), nullptr, nullptr});
    return *entries_.back().counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help, const Labels& labels) {
    if (!valid_metric_name(name)) throw std::invalid_argument("Registry: bad metric name " + name);
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry* e = find(Kind::kGauge, name, labels)) return *e->gauge;
    entries_.push_back(Entry{Kind::kGauge, name, help, labels, nullptr,
                             std::make_unique<Gauge>(), nullptr});
    return *entries_.back().gauge;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds,
                               const std::string& help, const Labels& labels) {
    if (!valid_metric_name(name)) throw std::invalid_argument("Registry: bad metric name " + name);
    std::lock_guard<std::mutex> lock(mutex_);
    if (Entry* e = find(Kind::kHistogram, name, labels)) {
        if (e->histogram->upperBounds() != upper_bounds)
            throw std::invalid_argument("Registry: histogram " + name +
                                        " re-registered with different bounds");
        return *e->histogram;
    }
    entries_.push_back(Entry{Kind::kHistogram, name, help, labels, nullptr, nullptr,
                             std::make_unique<Histogram>(std::move(upper_bounds))});
    return *entries_.back().histogram;
}

const Counter* Registry::findCounter(const std::string& name, const Labels& labels) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const Entry* e = findConst(Kind::kCounter, name, labels);
    return e ? e->counter.get() : nullptr;
}

const Gauge* Registry::findGauge(const std::string& name, const Labels& labels) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const Entry* e = findConst(Kind::kGauge, name, labels);
    return e ? e->gauge.get() : nullptr;
}

const Histogram* Registry::findHistogram(const std::string& name, const Labels& labels) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const Entry* e = findConst(Kind::kHistogram, name, labels);
    return e ? e->histogram.get() : nullptr;
}

std::uint64_t Registry::counterValue(const std::string& name, const Labels& labels) const {
    const Counter* c = findCounter(name, labels);
    return c ? c->value() : 0;
}

std::size_t Registry::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void Registry::writePrometheus(std::ostream& os) const {
    std::lock_guard<std::mutex> lock(mutex_);
    // One HELP/TYPE header per family, emitted at the family's first
    // series; labeled series of the same family registered consecutively
    // share the header (registration order is preserved throughout).
    std::string last_header;
    for (const Entry& e : entries_) {
        const char* type = e.kind == Kind::kCounter  ? "counter"
                           : e.kind == Kind::kGauge  ? "gauge"
                                                     : "histogram";
        if (e.name != last_header) {
            if (!e.help.empty()) os << "# HELP " << e.name << ' ' << e.help << '\n';
            os << "# TYPE " << e.name << ' ' << type << '\n';
            last_header = e.name;
        }
        switch (e.kind) {
            case Kind::kCounter:
                os << e.name << render_labels(e.labels) << ' ' << e.counter->value() << '\n';
                break;
            case Kind::kGauge:
                os << e.name << render_labels(e.labels) << ' '
                   << format_number(e.gauge->value()) << '\n';
                break;
            case Kind::kHistogram: {
                const Histogram& h = *e.histogram;
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0; i < h.upperBounds().size(); ++i) {
                    cumulative += h.bucketCount(i);
                    os << e.name << "_bucket"
                       << render_labels_plus(e.labels, "le", format_number(h.upperBounds()[i]))
                       << ' ' << cumulative << '\n';
                }
                cumulative += h.bucketCount(h.upperBounds().size());
                os << e.name << "_bucket" << render_labels_plus(e.labels, "le", "+Inf") << ' '
                   << cumulative << '\n';
                os << e.name << "_sum" << render_labels(e.labels) << ' '
                   << format_number(h.sum()) << '\n';
                os << e.name << "_count" << render_labels(e.labels) << ' ' << h.count() << '\n';
                break;
            }
        }
    }
}

std::string Registry::prometheusText() const {
    std::ostringstream os;
    writePrometheus(os);
    return os.str();
}

}  // namespace lrgp::obs
