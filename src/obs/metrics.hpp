// Lightweight metrics primitives for the LRGP engines: monotonic
// counters, gauges, and fixed-bucket histograms, collected in a named
// Registry and exportable as Prometheus-style text.
//
// Design constraints (docs/observability.md):
//  * near-zero cost when unused — every instrumented call site guards on
//    `if constexpr (obs::kEnabled)` (compile-time, the LRGP_OBS macro)
//    and then on a null instrument pointer (runtime, one predictable
//    branch when nothing is attached);
//  * safe to update from the TaskPool workers — all mutation is relaxed
//    atomics, registration alone takes a lock;
//  * deterministic export — metrics render in registration order, so the
//    text output of a deterministic run is byte-stable (golden-tested).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lrgp::obs {

/// Compile-time master switch.  Builds without LRGP_OBS compile every
/// instrumentation block out of the hot paths entirely.
#ifdef LRGP_OBS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Prometheus-style labels attached to a metric at registration time.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down (last write wins).
class Gauge {
public:
    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: counts of observations <= each upper bound,
/// plus the running sum and total count.  Bounds are set at registration
/// and never change; an implicit +Inf bucket catches the tail.
class Histogram {
public:
    explicit Histogram(std::vector<double> upper_bounds);

    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void observe(double x) noexcept;
    /// Weighted insert: `n` identical observations of `x` (a whole
    /// fastpath message cohort at once); n == 0 is a no-op.
    void observe(double x, std::uint64_t n) noexcept;

    [[nodiscard]] const std::vector<double>& upperBounds() const noexcept { return bounds_; }
    /// Count in bucket `i` (observations <= bounds_[i]); `bucketCount(size())`
    /// is the +Inf bucket.
    [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const noexcept {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

private:
    std::vector<double> bounds_;                    ///< sorted, strictly increasing
    std::deque<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1 (+Inf)
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/// Exponential seconds buckets (1us .. 10s) suitable for phase timings.
[[nodiscard]] std::vector<double> default_time_buckets();

/// Owns named metrics.  Registering the same (name, labels) twice
/// returns the existing instrument, so engines can share a registry.
/// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* (Prometheus rules);
/// violations throw std::invalid_argument.
class Registry {
public:
    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    Counter& counter(const std::string& name, const std::string& help = "",
                     const Labels& labels = {});
    Gauge& gauge(const std::string& name, const std::string& help = "",
                 const Labels& labels = {});
    /// `upper_bounds` is only consulted when the histogram is first
    /// registered; a second registration with different bounds throws.
    Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                         const std::string& help = "", const Labels& labels = {});

    /// Lookup without registering; nullptr when absent.
    [[nodiscard]] const Counter* findCounter(const std::string& name,
                                             const Labels& labels = {}) const;
    [[nodiscard]] const Gauge* findGauge(const std::string& name, const Labels& labels = {}) const;
    [[nodiscard]] const Histogram* findHistogram(const std::string& name,
                                                 const Labels& labels = {}) const;

    /// Convenience for tests and benches: counter value or 0 when absent.
    [[nodiscard]] std::uint64_t counterValue(const std::string& name,
                                             const Labels& labels = {}) const;

    [[nodiscard]] std::size_t size() const;

    /// Prometheus text exposition: one # HELP / # TYPE pair per metric
    /// family, series in registration order.  Deterministic for a
    /// deterministic run (golden-tested byte-exact).
    void writePrometheus(std::ostream& os) const;
    [[nodiscard]] std::string prometheusText() const;

private:
    enum class Kind { kCounter, kGauge, kHistogram };
    struct Entry {
        Kind kind;
        std::string name;
        std::string help;
        Labels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry* find(Kind kind, const std::string& name, const Labels& labels);
    const Entry* findConst(Kind kind, const std::string& name, const Labels& labels) const;

    mutable std::mutex mutex_;
    std::deque<Entry> entries_;  ///< deque: stable addresses across registration
};

}  // namespace lrgp::obs
