// A minimal JSON value, writer, and recursive-descent parser — just
// enough to persist problem specifications and allocations without an
// external dependency.  Supports the JSON subset the library emits:
// objects, arrays, strings, finite numbers, booleans, null; UTF-8 is
// passed through verbatim; \uXXXX escapes are accepted for ASCII.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace lrgp::io {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// A dynamically-typed JSON value.
class JsonValue {
public:
    using Storage =
        std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

    JsonValue() : storage_(nullptr) {}
    JsonValue(std::nullptr_t) : storage_(nullptr) {}
    JsonValue(bool b) : storage_(b) {}
    JsonValue(double d) : storage_(d) {}
    JsonValue(int i) : storage_(static_cast<double>(i)) {}
    JsonValue(const char* s) : storage_(std::string(s)) {}
    JsonValue(std::string s) : storage_(std::move(s)) {}
    JsonValue(JsonArray a) : storage_(std::move(a)) {}
    JsonValue(JsonObject o) : storage_(std::move(o)) {}

    [[nodiscard]] bool isNull() const { return std::holds_alternative<std::nullptr_t>(storage_); }
    [[nodiscard]] bool isBool() const { return std::holds_alternative<bool>(storage_); }
    [[nodiscard]] bool isNumber() const { return std::holds_alternative<double>(storage_); }
    [[nodiscard]] bool isString() const { return std::holds_alternative<std::string>(storage_); }
    [[nodiscard]] bool isArray() const { return std::holds_alternative<JsonArray>(storage_); }
    [[nodiscard]] bool isObject() const { return std::holds_alternative<JsonObject>(storage_); }

    /// Typed accessors; throw std::runtime_error on type mismatch.
    [[nodiscard]] bool asBool() const;
    [[nodiscard]] double asNumber() const;
    [[nodiscard]] const std::string& asString() const;
    [[nodiscard]] const JsonArray& asArray() const;
    [[nodiscard]] const JsonObject& asObject() const;

    /// Object member access; throws std::runtime_error if absent or not
    /// an object.
    [[nodiscard]] const JsonValue& at(const std::string& key) const;
    /// True if this is an object containing `key`.
    [[nodiscard]] bool has(const std::string& key) const;

    /// Serializes compactly (no whitespace) or pretty (2-space indent).
    [[nodiscard]] std::string dump(bool pretty = false) const;

private:
    void dumpTo(std::string& out, bool pretty, int depth) const;

    Storage storage_;
};

/// Parses a complete JSON document.  Throws std::runtime_error with a
/// byte offset on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace lrgp::io
