// JSON persistence for problem specifications and allocations, so
// workloads can be versioned, shared, and fed to the CLI without
// recompiling.  The schema mirrors the builder API:
//
// {
//   "nodes":  [{"name": "S0", "capacity": 9e5}, ...],
//   "links":  [{"name": "l0", "from": "P", "to": "S0", "capacity": 100}, ...],
//   "flows":  [{"name": "f0", "source": "P", "rate_min": 10, "rate_max": 1000,
//               "active": true,
//               "nodes": [{"node": "S0", "cost": 3}, ...],
//               "links": [{"link": "l0", "cost": 1}, ...]}, ...],
//   "classes":[{"name": "c0", "flow": "f0", "node": "S0", "max_consumers": 400,
//               "consumer_cost": 19,
//               "utility": {"type": "log", "weight": 20}}, ...]
// }
//
// Utility schema: {"type": "log", "weight": w} |
//                 {"type": "power", "weight": w, "exponent": k} |
//                 {"type": "scaled", "factor": f, "base": {...}}
#pragma once

#include <string>

#include "io/json.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"

namespace lrgp::io {

/// Serializes a problem (entity names are the cross-reference keys).
[[nodiscard]] JsonValue problem_to_json(const model::ProblemSpec& spec);
[[nodiscard]] std::string problem_to_json_string(const model::ProblemSpec& spec,
                                                 bool pretty = true);

/// Rebuilds a problem through ProblemBuilder (so every builder invariant
/// is revalidated).  Throws std::runtime_error on schema violations and
/// std::invalid_argument on semantic ones (unknown names, bad bounds).
[[nodiscard]] model::ProblemSpec problem_from_json(const JsonValue& json);
[[nodiscard]] model::ProblemSpec problem_from_json_string(const std::string& text);

/// Allocation schema: {"rates": {"f0": 10.0, ...}, "populations": {"c0": 400, ...}}.
[[nodiscard]] JsonValue allocation_to_json(const model::ProblemSpec& spec,
                                           const model::Allocation& alloc);
[[nodiscard]] model::Allocation allocation_from_json(const model::ProblemSpec& spec,
                                                     const JsonValue& json);

}  // namespace lrgp::io
