#include "io/problem_json.hpp"

#include <stdexcept>
#include <unordered_map>

namespace lrgp::io {

namespace {

JsonValue utilityToJson(const utility::UtilityFunction& fn) {
    if (const auto* log_u = dynamic_cast<const utility::LogUtility*>(&fn)) {
        JsonObject obj;
        obj.emplace("type", "log");
        obj.emplace("weight", log_u->weight());
        return JsonValue(std::move(obj));
    }
    if (const auto* pow_u = dynamic_cast<const utility::PowerUtility*>(&fn)) {
        JsonObject obj;
        obj.emplace("type", "power");
        obj.emplace("weight", pow_u->weight());
        obj.emplace("exponent", pow_u->exponent());
        return JsonValue(std::move(obj));
    }
    if (const auto* shifted = dynamic_cast<const utility::ShiftedLogUtility*>(&fn)) {
        JsonObject obj;
        obj.emplace("type", "shifted_log");
        obj.emplace("weight", shifted->weight());
        obj.emplace("scale", shifted->scale());
        return JsonValue(std::move(obj));
    }
    if (const auto* sig = dynamic_cast<const utility::SigmoidUtility*>(&fn)) {
        JsonObject obj;
        obj.emplace("type", "sigmoid");
        obj.emplace("weight", sig->weight());
        obj.emplace("midpoint", sig->midpoint());
        obj.emplace("steepness", sig->steepness());
        return JsonValue(std::move(obj));
    }
    if (const auto* scaled = dynamic_cast<const utility::ScaledUtility*>(&fn)) {
        JsonObject obj;
        obj.emplace("type", "scaled");
        obj.emplace("factor", scaled->factor());
        obj.emplace("base", utilityToJson(scaled->base()));
        return JsonValue(std::move(obj));
    }
    throw std::runtime_error("problem_to_json: unserializable utility type: " + fn.describe());
}

std::shared_ptr<const utility::UtilityFunction> utilityFromJson(const JsonValue& json) {
    const std::string& type = json.at("type").asString();
    if (type == "log") return std::make_shared<utility::LogUtility>(json.at("weight").asNumber());
    if (type == "power")
        return std::make_shared<utility::PowerUtility>(json.at("weight").asNumber(),
                                                       json.at("exponent").asNumber());
    if (type == "shifted_log")
        return std::make_shared<utility::ShiftedLogUtility>(json.at("weight").asNumber(),
                                                            json.at("scale").asNumber());
    if (type == "sigmoid")
        return std::make_shared<utility::SigmoidUtility>(json.at("weight").asNumber(),
                                                         json.at("midpoint").asNumber(),
                                                         json.at("steepness").asNumber());
    if (type == "scaled")
        return std::make_shared<utility::ScaledUtility>(json.at("factor").asNumber(),
                                                        utilityFromJson(json.at("base")));
    throw std::runtime_error("problem_from_json: unknown utility type '" + type + "'");
}

}  // namespace

JsonValue problem_to_json(const model::ProblemSpec& spec) {
    JsonObject root;

    JsonArray nodes;
    for (const model::NodeSpec& n : spec.nodes()) {
        JsonObject obj;
        obj.emplace("name", n.name);
        obj.emplace("capacity", n.capacity);
        nodes.emplace_back(std::move(obj));
    }
    root.emplace("nodes", std::move(nodes));

    JsonArray links;
    for (const model::LinkSpec& l : spec.links()) {
        JsonObject obj;
        obj.emplace("name", l.name);
        obj.emplace("from", spec.node(l.from).name);
        obj.emplace("to", spec.node(l.to).name);
        obj.emplace("capacity", l.capacity);
        links.emplace_back(std::move(obj));
    }
    root.emplace("links", std::move(links));

    JsonArray flows;
    for (const model::FlowSpec& f : spec.flows()) {
        JsonObject obj;
        obj.emplace("name", f.name);
        obj.emplace("source", spec.node(f.source).name);
        obj.emplace("rate_min", f.rate_min);
        obj.emplace("rate_max", f.rate_max);
        obj.emplace("active", f.active);
        JsonArray hops;
        for (const model::FlowNodeHop& hop : f.nodes) {
            JsonObject h;
            h.emplace("node", spec.node(hop.node).name);
            h.emplace("cost", hop.flow_node_cost);
            hops.emplace_back(std::move(h));
        }
        obj.emplace("nodes", std::move(hops));
        JsonArray lhops;
        for (const model::FlowLinkHop& hop : f.links) {
            JsonObject h;
            h.emplace("link", spec.link(hop.link).name);
            h.emplace("cost", hop.link_cost);
            lhops.emplace_back(std::move(h));
        }
        obj.emplace("links", std::move(lhops));
        flows.emplace_back(std::move(obj));
    }
    root.emplace("flows", std::move(flows));

    JsonArray classes;
    for (const model::ClassSpec& c : spec.classes()) {
        JsonObject obj;
        obj.emplace("name", c.name);
        obj.emplace("flow", spec.flow(c.flow).name);
        obj.emplace("node", spec.node(c.node).name);
        obj.emplace("max_consumers", static_cast<double>(c.max_consumers));
        obj.emplace("consumer_cost", c.consumer_cost);
        obj.emplace("utility", utilityToJson(*c.utility));
        classes.emplace_back(std::move(obj));
    }
    root.emplace("classes", std::move(classes));

    return JsonValue(std::move(root));
}

std::string problem_to_json_string(const model::ProblemSpec& spec, bool pretty) {
    return problem_to_json(spec).dump(pretty);
}

model::ProblemSpec problem_from_json(const JsonValue& json) {
    model::ProblemBuilder builder;
    std::unordered_map<std::string, model::NodeId> node_ids;
    std::unordered_map<std::string, model::LinkId> link_ids;
    std::unordered_map<std::string, model::FlowId> flow_ids;

    auto lookup = [](const auto& map, const std::string& name, const char* kind) {
        auto it = map.find(name);
        if (it == map.end())
            throw std::runtime_error(std::string("problem_from_json: unknown ") + kind + " '" +
                                     name + "'");
        return it->second;
    };

    for (const JsonValue& n : json.at("nodes").asArray()) {
        const std::string& name = n.at("name").asString();
        if (node_ids.count(name))
            throw std::runtime_error("problem_from_json: duplicate node '" + name + "'");
        node_ids.emplace(name, builder.addNode(name, n.at("capacity").asNumber()));
    }
    if (json.has("links")) {
        for (const JsonValue& l : json.at("links").asArray()) {
            const std::string& name = l.at("name").asString();
            if (link_ids.count(name))
                throw std::runtime_error("problem_from_json: duplicate link '" + name + "'");
            link_ids.emplace(name, builder.addLink(name,
                                                   lookup(node_ids, l.at("from").asString(), "node"),
                                                   lookup(node_ids, l.at("to").asString(), "node"),
                                                   l.at("capacity").asNumber()));
        }
    }
    std::vector<std::pair<model::FlowId, bool>> flow_active;
    for (const JsonValue& f : json.at("flows").asArray()) {
        const std::string& name = f.at("name").asString();
        if (flow_ids.count(name))
            throw std::runtime_error("problem_from_json: duplicate flow '" + name + "'");
        const model::FlowId id =
            builder.addFlow(name, lookup(node_ids, f.at("source").asString(), "node"),
                            f.at("rate_min").asNumber(), f.at("rate_max").asNumber());
        flow_ids.emplace(name, id);
        flow_active.emplace_back(id, !f.has("active") || f.at("active").asBool());
        for (const JsonValue& hop : f.at("nodes").asArray())
            builder.routeThroughNode(id, lookup(node_ids, hop.at("node").asString(), "node"),
                                     hop.at("cost").asNumber());
        if (f.has("links")) {
            for (const JsonValue& hop : f.at("links").asArray())
                builder.routeOverLink(id, lookup(link_ids, hop.at("link").asString(), "link"),
                                      hop.at("cost").asNumber());
        }
    }
    for (const JsonValue& c : json.at("classes").asArray()) {
        builder.addClass(c.at("name").asString(),
                         lookup(flow_ids, c.at("flow").asString(), "flow"),
                         lookup(node_ids, c.at("node").asString(), "node"),
                         static_cast<int>(c.at("max_consumers").asNumber()),
                         c.at("consumer_cost").asNumber(), utilityFromJson(c.at("utility")));
    }

    model::ProblemSpec spec = builder.build();
    for (const auto& [id, active] : flow_active)
        if (!active) spec.setFlowActive(id, false);
    return spec;
}

model::ProblemSpec problem_from_json_string(const std::string& text) {
    return problem_from_json(parse_json(text));
}

JsonValue allocation_to_json(const model::ProblemSpec& spec, const model::Allocation& alloc) {
    if (alloc.rates.size() != spec.flowCount() || alloc.populations.size() != spec.classCount())
        throw std::invalid_argument("allocation_to_json: allocation sized for another problem");
    JsonObject rates;
    for (const model::FlowSpec& f : spec.flows())
        rates.emplace(f.name, alloc.rates[f.id.index()]);
    JsonObject populations;
    for (const model::ClassSpec& c : spec.classes())
        populations.emplace(c.name, static_cast<double>(alloc.populations[c.id.index()]));
    JsonObject root;
    root.emplace("rates", std::move(rates));
    root.emplace("populations", std::move(populations));
    return JsonValue(std::move(root));
}

model::Allocation allocation_from_json(const model::ProblemSpec& spec, const JsonValue& json) {
    model::Allocation alloc;
    alloc.rates.assign(spec.flowCount(), 0.0);
    alloc.populations.assign(spec.classCount(), 0);
    for (const model::FlowSpec& f : spec.flows())
        alloc.rates[f.id.index()] = json.at("rates").at(f.name).asNumber();
    for (const model::ClassSpec& c : spec.classes())
        alloc.populations[c.id.index()] =
            static_cast<int>(json.at("populations").at(c.name).asNumber());
    return alloc;
}

}  // namespace lrgp::io
