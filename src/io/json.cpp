#include "io/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace lrgp::io {

namespace {

[[noreturn]] void typeError(const char* expected) {
    throw std::runtime_error(std::string("JsonValue: not a ") + expected);
}

void escapeTo(std::string& out, const std::string& s) {
    out += '"';
    for (char ch : s) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", ch);
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    out += '"';
}

void numberTo(std::string& out, double d) {
    if (!std::isfinite(d)) throw std::runtime_error("JsonValue: non-finite number");
    // Round-trippable double formatting.
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    // Prefer a shorter representation when it round-trips.
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.15g", d);
    double reparsed = 0.0;
    std::sscanf(shorter, "%lf", &reparsed);
    out += (reparsed == d) ? shorter : buf;
}

}  // namespace

bool JsonValue::asBool() const {
    if (const bool* b = std::get_if<bool>(&storage_)) return *b;
    typeError("bool");
}

double JsonValue::asNumber() const {
    if (const double* d = std::get_if<double>(&storage_)) return *d;
    typeError("number");
}

const std::string& JsonValue::asString() const {
    if (const std::string* s = std::get_if<std::string>(&storage_)) return *s;
    typeError("string");
}

const JsonArray& JsonValue::asArray() const {
    if (const JsonArray* a = std::get_if<JsonArray>(&storage_)) return *a;
    typeError("array");
}

const JsonObject& JsonValue::asObject() const {
    if (const JsonObject* o = std::get_if<JsonObject>(&storage_)) return *o;
    typeError("object");
}

const JsonValue& JsonValue::at(const std::string& key) const {
    const JsonObject& obj = asObject();
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("JsonValue: missing key '" + key + "'");
    return it->second;
}

bool JsonValue::has(const std::string& key) const {
    if (!isObject()) return false;
    const JsonObject& obj = std::get<JsonObject>(storage_);
    return obj.find(key) != obj.end();
}

void JsonValue::dumpTo(std::string& out, bool pretty, int depth) const {
    const std::string indent = pretty ? std::string(2 * (depth + 1), ' ') : "";
    const std::string closing_indent = pretty ? std::string(2 * depth, ' ') : "";
    const char* newline = pretty ? "\n" : "";

    std::visit(
        [&](const auto& v) {
            using T = std::decay_t<decltype(v)>;
            if constexpr (std::is_same_v<T, std::nullptr_t>) {
                out += "null";
            } else if constexpr (std::is_same_v<T, bool>) {
                out += v ? "true" : "false";
            } else if constexpr (std::is_same_v<T, double>) {
                numberTo(out, v);
            } else if constexpr (std::is_same_v<T, std::string>) {
                escapeTo(out, v);
            } else if constexpr (std::is_same_v<T, JsonArray>) {
                if (v.empty()) {
                    out += "[]";
                    return;
                }
                out += '[';
                out += newline;
                for (std::size_t i = 0; i < v.size(); ++i) {
                    out += indent;
                    v[i].dumpTo(out, pretty, depth + 1);
                    if (i + 1 < v.size()) out += ',';
                    out += newline;
                }
                out += closing_indent;
                out += ']';
            } else if constexpr (std::is_same_v<T, JsonObject>) {
                if (v.empty()) {
                    out += "{}";
                    return;
                }
                out += '{';
                out += newline;
                std::size_t i = 0;
                for (const auto& [key, value] : v) {
                    out += indent;
                    escapeTo(out, key);
                    out += pretty ? ": " : ":";
                    value.dumpTo(out, pretty, depth + 1);
                    if (++i < v.size()) out += ',';
                    out += newline;
                }
                out += closing_indent;
                out += '}';
            }
        },
        storage_);
}

std::string JsonValue::dump(bool pretty) const {
    std::string out;
    dumpTo(out, pretty, 0);
    return out;
}

// ------------------------------------------------------------------ parser

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue parseDocument() {
        JsonValue value = parseValue();
        skipWhitespace();
        if (pos_ != text_.size()) fail("trailing characters");
        return value;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        std::ostringstream os;
        os << "JSON parse error at byte " << pos_ << ": " << what;
        throw std::runtime_error(os.str());
    }

    void skipWhitespace() {
        while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                       text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char ch) {
        if (peek() != ch) fail(std::string("expected '") + ch + "'");
        ++pos_;
    }

    bool consumeLiteral(const char* literal) {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    JsonValue parseValue() {
        skipWhitespace();
        switch (peek()) {
            case '{': return parseObject();
            case '[': return parseArray();
            case '"': return JsonValue(parseString());
            case 't':
                if (consumeLiteral("true")) return JsonValue(true);
                fail("bad literal");
            case 'f':
                if (consumeLiteral("false")) return JsonValue(false);
                fail("bad literal");
            case 'n':
                if (consumeLiteral("null")) return JsonValue(nullptr);
                fail("bad literal");
            default: return parseNumber();
        }
    }

    JsonValue parseObject() {
        expect('{');
        JsonObject obj;
        skipWhitespace();
        if (peek() == '}') {
            ++pos_;
            return JsonValue(std::move(obj));
        }
        while (true) {
            skipWhitespace();
            std::string key = parseString();
            skipWhitespace();
            expect(':');
            obj.emplace(std::move(key), parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return JsonValue(std::move(obj));
        }
    }

    JsonValue parseArray() {
        expect('[');
        JsonArray arr;
        skipWhitespace();
        if (peek() == ']') {
            ++pos_;
            return JsonValue(std::move(arr));
        }
        while (true) {
            arr.push_back(parseValue());
            skipWhitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return JsonValue(std::move(arr));
        }
    }

    std::string parseString() {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            char ch = text_[pos_++];
            if (ch == '"') return out;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size()) fail("bad escape");
            char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        const char hex = text_[pos_++];
                        code <<= 4;
                        if (hex >= '0' && hex <= '9') code |= static_cast<unsigned>(hex - '0');
                        else if (hex >= 'a' && hex <= 'f')
                            code |= static_cast<unsigned>(hex - 'a' + 10);
                        else if (hex >= 'A' && hex <= 'F')
                            code |= static_cast<unsigned>(hex - 'A' + 10);
                        else fail("bad hex digit in \\u escape");
                    }
                    if (code > 0x7F) fail("non-ASCII \\u escapes are not supported");
                    out += static_cast<char>(code);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue parseNumber() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
                text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) fail("bad number");
        const std::string token = text_.substr(start, pos_ - start);
        try {
            std::size_t consumed = 0;
            const double value = std::stod(token, &consumed);
            if (consumed != token.size()) fail("bad number");
            return JsonValue(value);
        } catch (const std::exception&) {
            fail("bad number");
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) { return Parser(text).parseDocument(); }

}  // namespace lrgp::io
