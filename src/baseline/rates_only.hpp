// Rates-only network utility maximization — the related-work baseline
// (Kelly 1998, Low & Lapsley 1999) the paper contrasts itself against:
// "network flow optimization is based only on flow rates ... In
// contrast, we explicitly consider admission control" (Section 5).
//
// Populations are *fixed up front* by a policy, then the classic dual
// algorithm iterates: sources solve the priced rate problem, resources
// run gradient-projection price updates.  With populations pinned, the
// node constraint is linear in r (like a link), so this is exactly the
// convex NUM setting.  Comparing its utility against LRGP quantifies
// what joint rate + admission optimization buys.
#pragma once

#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"

namespace lrgp::baseline {

/// How the fixed populations are chosen.
enum class PopulationPolicy {
    /// n_j = n_j^max — serve every consumer, the implicit assumption of
    /// admission-free flow control.  On consumer-heavy workloads (like
    /// the paper's) this is infeasible even at minimum rates: the result
    /// reports feasible = false and the achieved (violating) usage.
    kMaxDemand,
    /// n_j = floor(phi * n_j^max) with the largest uniform phi in [0, 1]
    /// such that every node constraint holds at r = r_min.  A fair,
    /// admission-blind static cut — the best a rates-only system could
    /// do with a uniform pre-provisioning rule.
    kProportionalFill,
};

struct RatesOnlyOptions {
    PopulationPolicy policy = PopulationPolicy::kProportionalFill;
    int iterations = 500;
    /// Node gradient stepsize, applied to the *relative* excess
    /// (used - c)/c so one setting works across capacity scales.
    double node_gamma = 0.05;
    double link_gamma = 1e-5;
};

struct RatesOnlyResult {
    model::Allocation allocation;
    double utility = 0.0;
    bool feasible = false;           ///< final allocation satisfies all constraints
    metrics::TimeSeries utility_trace;
    double population_fill = 0.0;    ///< phi actually used (1.0 for kMaxDemand)
};

/// Runs the rates-only dual algorithm on `spec` with fixed populations.
[[nodiscard]] RatesOnlyResult rates_only_num(const model::ProblemSpec& spec,
                                             const RatesOnlyOptions& options = {});

}  // namespace lrgp::baseline
