// Incrementally-evaluated search state shared by the centralized baseline
// optimizers (simulated annealing, hill climbing, random search).
//
// The optimizers explore the joint (rates, populations) space with
// single-variable moves.  Recomputing total utility and every constraint
// from scratch per move is O(|classes| + |nodes|*|flows|); this state
// keeps per-node and per-link usage plus the utility as running values
// so a move costs only the entities the changed variable touches.
#pragma once

#include <vector>

#include "model/allocation.hpp"
#include "model/problem.hpp"

namespace lrgp::baseline {

/// A feasible allocation with cached usage and utility, supporting O(1)
/// amortized single-variable moves with feasibility rejection.
class SearchState {
public:
    /// Starts from the given allocation, which must be feasible; throws
    /// std::invalid_argument otherwise.
    SearchState(const model::ProblemSpec& spec, model::Allocation initial);

    /// Starts from the minimal allocation (rates at r_min, no consumers).
    explicit SearchState(const model::ProblemSpec& spec);

    /// Attempts to set flow `i`'s rate to `new_rate` (must be within the
    /// flow's bounds; callers clamp).  Applies and returns true iff every
    /// affected node/link stays within capacity.
    bool tryRateMove(model::FlowId i, double new_rate);

    /// Attempts to set class `j`'s population to `new_n` (within
    /// [0, n^max]; callers clamp).  Applies and returns true iff the
    /// class's node stays within capacity.
    bool tryPopulationMove(model::ClassId j, int new_n);

    /// Largest population of class `j` that fits its node's remaining
    /// capacity at the current rates (counting the class's own current
    /// usage as available).  Clamped to [0, n^max].
    [[nodiscard]] int maxFeasiblePopulation(model::ClassId j) const;

    /// Largest rate of flow `i` that keeps every node/link it touches
    /// within capacity at the current populations.  May be below the
    /// flow's rate_min (callers decide how to handle that).
    [[nodiscard]] double maxFeasibleRate(model::FlowId i) const;

    [[nodiscard]] double utility() const noexcept { return utility_; }
    [[nodiscard]] const model::Allocation& allocation() const noexcept { return allocation_; }
    [[nodiscard]] double nodeUsage(model::NodeId b) const { return node_usage_.at(b.index()); }
    [[nodiscard]] double linkUsage(model::LinkId l) const { return link_usage_.at(l.index()); }

    /// Recomputes everything from scratch; used by tests to confirm the
    /// incremental bookkeeping matches the ground-truth evaluators.
    void rebuildCaches();

private:
    const model::ProblemSpec* spec_;
    model::Allocation allocation_;
    std::vector<double> node_usage_;
    std::vector<double> link_usage_;
    double utility_ = 0.0;
};

}  // namespace lrgp::baseline
