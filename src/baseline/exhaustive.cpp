#include "baseline/exhaustive.hpp"

#include <chrono>
#include <stdexcept>
#include <vector>

#include "model/allocation.hpp"

namespace lrgp::baseline {

SearchResult exhaustive_search(const model::ProblemSpec& spec, const ExhaustiveOptions& options) {
    if (options.rate_grid < 1) throw std::invalid_argument("exhaustive_search: bad rate grid");

    const auto start_time = std::chrono::steady_clock::now();

    // Dimension tables: the grid of candidate values per variable.
    std::vector<std::vector<double>> rate_values;       // per flow
    std::vector<model::FlowId> grid_flows;
    for (const model::FlowSpec& f : spec.flows()) {
        if (!f.active) continue;
        grid_flows.push_back(f.id);
        std::vector<double> values;
        if (f.rate_min == f.rate_max || options.rate_grid == 1) {
            values.push_back(f.rate_min);
        } else {
            for (int k = 0; k < options.rate_grid; ++k)
                values.push_back(f.rate_min + (f.rate_max - f.rate_min) * k /
                                                  (options.rate_grid - 1));
        }
        rate_values.push_back(std::move(values));
    }
    std::vector<model::ClassId> grid_classes;
    for (const model::ClassSpec& c : spec.classes())
        if (spec.flowActive(c.flow) && c.max_consumers > 0) grid_classes.push_back(c.id);

    // Count combinations with overflow care.
    std::uint64_t combos = 1;
    auto multiply = [&](std::uint64_t n) {
        if (combos > options.max_combinations / std::max<std::uint64_t>(1, n))
            throw std::invalid_argument("exhaustive_search: search space too large");
        combos *= n;
    };
    for (const auto& values : rate_values) multiply(values.size());
    for (model::ClassId j : grid_classes)
        multiply(static_cast<std::uint64_t>(spec.consumerClass(j).max_consumers) + 1);

    SearchResult result;
    result.best = model::Allocation::minimal(spec);
    result.best_utility = model::total_utility(spec, result.best);

    // Odometer enumeration over rates x populations.
    std::vector<std::size_t> rate_idx(rate_values.size(), 0);
    std::vector<int> pops(grid_classes.size(), 0);
    model::Allocation candidate = model::Allocation::minimal(spec);

    bool done = false;
    while (!done) {
        for (std::size_t k = 0; k < grid_flows.size(); ++k)
            candidate.rates[grid_flows[k].index()] = rate_values[k][rate_idx[k]];
        for (std::size_t k = 0; k < grid_classes.size(); ++k)
            candidate.populations[grid_classes[k].index()] = pops[k];

        ++result.steps_taken;
        if (model::check_feasibility(spec, candidate).feasible()) {
            const double u = model::total_utility(spec, candidate);
            if (u > result.best_utility) {
                result.best_utility = u;
                result.best = candidate;
            }
        }

        // Advance the odometer: populations first, then rates.
        done = true;
        for (std::size_t k = 0; k < grid_classes.size(); ++k) {
            if (pops[k] < spec.consumerClass(grid_classes[k]).max_consumers) {
                ++pops[k];
                done = false;
                break;
            }
            pops[k] = 0;
        }
        if (done) {
            for (std::size_t k = 0; k < rate_idx.size(); ++k) {
                if (rate_idx[k] + 1 < rate_values[k].size()) {
                    ++rate_idx[k];
                    done = false;
                    break;
                }
                rate_idx[k] = 0;
            }
        }
    }

    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
    return result;
}

}  // namespace lrgp::baseline
