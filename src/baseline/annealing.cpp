#include "baseline/annealing.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace lrgp::baseline {

namespace {

/// Proposes and (maybe) applies one random single-variable move.
/// Returns {attempted_delta_utility, applied}.
struct MoveOutcome {
    double old_utility = 0.0;
    bool applied = false;
    bool feasible = true;
};

class MoveProposer {
public:
    MoveProposer(const model::ProblemSpec& spec, double rate_frac, double pop_frac,
                 std::mt19937& rng)
        : spec_(&spec), rate_frac_(rate_frac), pop_frac_(pop_frac), rng_(&rng) {
        for (const model::FlowSpec& f : spec.flows())
            if (f.active) flows_.push_back(f.id);
        for (const model::ClassSpec& c : spec.classes())
            if (spec.flowActive(c.flow) && c.max_consumers > 0) classes_.push_back(c.id);
        if (flows_.empty() && classes_.empty())
            throw std::invalid_argument("MoveProposer: nothing to optimize");
    }

    /// Applies a random feasible move to `state` if accepted by `accept`
    /// (called with the utility delta).  Returns the outcome.
    ///
    /// Three move kinds are proposed with equal probability:
    ///  * a single-flow rate perturbation,
    ///  * a single-class population perturbation,
    ///  * a coupled move: perturb one flow's rate and re-run a greedy
    ///    population fill at every node that flow touches.  The coupled
    ///    move is what lets the walk trade rate against admissions in one
    ///    step; without it, coordinate-wise search ratchets rates up and
    ///    gets trapped far from the good region.
    template <class AcceptFn>
    MoveOutcome propose(SearchState& state, AcceptFn&& accept) {
        MoveOutcome outcome;
        outcome.old_utility = state.utility();

        std::uniform_real_distribution<double> coin(0.0, 1.0);
        const double which = coin(*rng_);
        if (!flows_.empty() && which < 1.0 / 3.0) {
            return proposeJoint(state, accept, outcome);
        }
        const bool rate_move = !flows_.empty() && (classes_.empty() || which < 2.0 / 3.0);
        if (rate_move) {
            const model::FlowId i = flows_[pick(flows_.size())];
            const model::FlowSpec& f = spec_->flow(i);
            const double range = f.rate_max - f.rate_min;
            std::uniform_real_distribution<double> delta(-rate_frac_ * range, rate_frac_ * range);
            const double old_rate = state.allocation().rates[i.index()];
            double new_rate = std::clamp(old_rate + delta(*rng_), f.rate_min, f.rate_max);
            // Repair: a rate increase that would overflow a resource is
            // clamped to the largest feasible rate instead of being
            // rejected outright, keeping the walk effective near the
            // constraint boundary.
            if (new_rate > old_rate) new_rate = std::min(new_rate, state.maxFeasibleRate(i));
            if (new_rate < f.rate_min) {
                outcome.feasible = false;
            } else {
                outcome.feasible = state.tryRateMove(i, new_rate);
            }
            if (outcome.feasible && !accept(state.utility() - outcome.old_utility)) {
                // Roll back: the reverse move is always feasible.
                state.tryRateMove(i, old_rate);
            } else if (outcome.feasible) {
                outcome.applied = true;
            }
        } else {
            const model::ClassId j = classes_[pick(classes_.size())];
            const model::ClassSpec& c = spec_->consumerClass(j);
            const int span = std::max(1, static_cast<int>(pop_frac_ * c.max_consumers));
            std::uniform_int_distribution<int> delta(-span, span);
            const int old_n = state.allocation().populations[j.index()];
            int new_n = std::clamp(old_n + delta(*rng_), 0, c.max_consumers);
            // Repair: admit as many of the proposed consumers as fit
            // (the current state is feasible, so maxFeasible >= old_n).
            if (new_n > old_n) new_n = std::min(new_n, state.maxFeasiblePopulation(j));
            outcome.feasible = state.tryPopulationMove(j, new_n);
            if (outcome.feasible && !accept(state.utility() - outcome.old_utility)) {
                state.tryPopulationMove(j, old_n);
            } else if (outcome.feasible) {
                outcome.applied = true;
            }
        }
        return outcome;
    }

private:
    /// The coupled move: zero the populations at every node the chosen
    /// flow reaches, perturb the flow's rate, greedily refill those nodes
    /// in benefit-cost order, and accept or roll back atomically.
    template <class AcceptFn>
    MoveOutcome proposeJoint(SearchState& state, AcceptFn&& accept, MoveOutcome outcome) {
        const model::FlowId i = flows_[pick(flows_.size())];
        const model::FlowSpec& f = spec_->flow(i);

        // Affected classes: everything attached at the flow's nodes
        // (other flows' classes there compete for the freed capacity).
        std::vector<model::ClassId> affected;
        for (const model::FlowNodeHop& hop : f.nodes)
            for (model::ClassId j : spec_->classesAtNode(hop.node))
                if (spec_->flowActive(spec_->consumerClass(j).flow)) affected.push_back(j);

        const double old_rate = state.allocation().rates[i.index()];
        std::vector<int> saved(affected.size());
        for (std::size_t k = 0; k < affected.size(); ++k)
            saved[k] = state.allocation().populations[affected[k].index()];

        auto rollback = [&] {
            for (model::ClassId j : affected) (void)state.tryPopulationMove(j, 0);
            (void)state.tryRateMove(i, old_rate);
            for (std::size_t k = 0; k < affected.size(); ++k)
                (void)state.tryPopulationMove(affected[k], saved[k]);
        };

        // Clear the nodes, move the rate, refill greedily.
        for (model::ClassId j : affected) (void)state.tryPopulationMove(j, 0);
        const double range = f.rate_max - f.rate_min;
        std::uniform_real_distribution<double> delta(-rate_frac_ * range, rate_frac_ * range);
        double new_rate = std::clamp(old_rate + delta(*rng_), f.rate_min, f.rate_max);
        new_rate = std::min(new_rate, state.maxFeasibleRate(i));
        if (new_rate < f.rate_min || !state.tryRateMove(i, new_rate)) {
            rollback();
            outcome.feasible = false;
            return outcome;
        }
        for (const model::FlowNodeHop& hop : f.nodes) {
            // Benefit-cost order at this node under the current rates.
            std::vector<std::pair<double, model::ClassId>> ranked;
            for (model::ClassId j : spec_->classesAtNode(hop.node)) {
                const model::ClassSpec& c = spec_->consumerClass(j);
                if (!spec_->flowActive(c.flow) || c.max_consumers == 0) continue;
                const double r = state.allocation().rates[c.flow.index()];
                ranked.emplace_back(c.utility->value(r) / (c.consumer_cost * r), j);
            }
            std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
            });
            for (const auto& [ratio, j] : ranked)
                (void)state.tryPopulationMove(j, state.maxFeasiblePopulation(j));
        }

        if (!accept(state.utility() - outcome.old_utility)) {
            rollback();
            return outcome;
        }
        outcome.applied = true;
        return outcome;
    }

    std::size_t pick(std::size_t n) {
        std::uniform_int_distribution<std::size_t> d(0, n - 1);
        return d(*rng_);
    }

    const model::ProblemSpec* spec_;
    double rate_frac_;
    double pop_frac_;
    std::mt19937* rng_;
    std::vector<model::FlowId> flows_;
    std::vector<model::ClassId> classes_;
};

}  // namespace

SearchResult simulated_annealing(const model::ProblemSpec& spec, const AnnealOptions& options) {
    if (!(options.start_temperature > options.end_temperature))
        throw std::invalid_argument("simulated_annealing: start temperature must exceed end");
    if (!(options.cooling_factor > 0.0 && options.cooling_factor < 1.0))
        throw std::invalid_argument("simulated_annealing: cooling factor must be in (0,1)");
    if (options.max_steps == 0)
        throw std::invalid_argument("simulated_annealing: zero step budget");

    const auto start_time = std::chrono::steady_clock::now();

    // Number of temperature levels until T drops to end_temperature.
    const std::uint64_t levels = static_cast<std::uint64_t>(std::ceil(
        std::log(options.end_temperature / options.start_temperature) /
        std::log(options.cooling_factor)));
    const std::uint64_t steps_per_level = std::max<std::uint64_t>(1, options.max_steps / levels);

    std::mt19937 rng(options.seed);
    SearchState state(spec);
    MoveProposer proposer(spec, options.rate_step_fraction, options.population_step_fraction, rng);
    std::uniform_real_distribution<double> unif(0.0, 1.0);

    SearchResult result;
    result.best = state.allocation();
    result.best_utility = state.utility();

    double temperature = options.start_temperature;
    std::uint64_t steps = 0;
    while (temperature > options.end_temperature && steps < options.max_steps) {
        for (std::uint64_t s = 0; s < steps_per_level && steps < options.max_steps; ++s, ++steps) {
            const MoveOutcome outcome = proposer.propose(state, [&](double delta_utility) {
                return delta_utility >= 0.0 ||
                       unif(rng) < std::exp(delta_utility / temperature);
            });
            if (!outcome.feasible) {
                ++result.rejected_infeasible;
                continue;
            }
            if (outcome.applied) {
                ++result.accepted;
                if (state.utility() > result.best_utility) {
                    result.best_utility = state.utility();
                    result.best = state.allocation();
                }
            }
        }
        temperature *= options.cooling_factor;
    }

    result.steps_taken = steps;
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
    return result;
}

SearchResult best_of_annealing(const model::ProblemSpec& spec,
                               const std::vector<double>& start_temperatures,
                               std::uint64_t steps_per_run, std::uint32_t seed) {
    if (start_temperatures.empty())
        throw std::invalid_argument("best_of_annealing: no temperatures");
    SearchResult best;
    bool first = true;
    double total_seconds = 0.0;
    std::uint64_t total_steps = 0;
    for (std::size_t k = 0; k < start_temperatures.size(); ++k) {
        AnnealOptions opts;
        opts.start_temperature = start_temperatures[k];
        opts.max_steps = steps_per_run;
        opts.seed = seed + static_cast<std::uint32_t>(k);
        SearchResult r = simulated_annealing(spec, opts);
        total_seconds += r.wall_seconds;
        total_steps += r.steps_taken;
        if (first || r.best_utility > best.best_utility) {
            best = std::move(r);
            first = false;
        }
    }
    best.wall_seconds = total_seconds;
    best.steps_taken = total_steps;
    return best;
}

SearchResult hill_climb(const model::ProblemSpec& spec, const HillClimbOptions& options) {
    const auto start_time = std::chrono::steady_clock::now();
    std::mt19937 rng(options.seed);
    SearchState state(spec);
    MoveProposer proposer(spec, options.rate_step_fraction, options.population_step_fraction, rng);

    SearchResult result;
    for (std::uint64_t s = 0; s < options.max_steps; ++s) {
        const MoveOutcome outcome =
            proposer.propose(state, [](double delta_utility) { return delta_utility >= 0.0; });
        if (!outcome.feasible) ++result.rejected_infeasible;
        else if (outcome.applied) ++result.accepted;
    }
    result.best = state.allocation();
    result.best_utility = state.utility();
    result.steps_taken = options.max_steps;
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
    return result;
}

SearchResult random_search(const model::ProblemSpec& spec, const RandomSearchOptions& options) {
    const auto start_time = std::chrono::steady_clock::now();
    std::mt19937 rng(options.seed);
    std::uniform_real_distribution<double> unif(0.0, 1.0);

    SearchResult result;
    result.best = model::Allocation::minimal(spec);
    result.best_utility = model::total_utility(spec, result.best);

    for (std::uint64_t s = 0; s < options.samples; ++s) {
        SearchState state(spec);
        // Random rates, then random population fill in random class order.
        for (const model::FlowSpec& f : spec.flows()) {
            if (!f.active) continue;
            const double r = f.rate_min + unif(rng) * (f.rate_max - f.rate_min);
            if (!state.tryRateMove(f.id, r)) continue;  // keep previous rate on rejection
        }
        std::vector<model::ClassId> order;
        for (const model::ClassSpec& c : spec.classes())
            if (spec.flowActive(c.flow)) order.push_back(c.id);
        std::shuffle(order.begin(), order.end(), rng);
        for (model::ClassId j : order) {
            const model::ClassSpec& c = spec.consumerClass(j);
            const int target = static_cast<int>(unif(rng) * (c.max_consumers + 1));
            int n = std::min(target, c.max_consumers);
            // Back off until feasible (population moves are monotone in cost).
            while (n > 0 && !state.tryPopulationMove(j, n)) n /= 2;
        }
        if (state.utility() > result.best_utility) {
            result.best_utility = state.utility();
            result.best = state.allocation();
        }
        ++result.steps_taken;
    }
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
    return result;
}

}  // namespace lrgp::baseline
