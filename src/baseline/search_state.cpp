#include "baseline/search_state.hpp"

#include <algorithm>
#include <stdexcept>

namespace lrgp::baseline {

SearchState::SearchState(const model::ProblemSpec& spec, model::Allocation initial)
    : spec_(&spec), allocation_(std::move(initial)) {
    const model::FeasibilityReport report = model::check_feasibility(spec, allocation_);
    if (!report.feasible())
        throw std::invalid_argument("SearchState: initial allocation is infeasible: " +
                                    report.violations.front().detail);
    rebuildCaches();
}

SearchState::SearchState(const model::ProblemSpec& spec)
    : SearchState(spec, model::Allocation::minimal(spec)) {}

void SearchState::rebuildCaches() {
    node_usage_.assign(spec_->nodeCount(), 0.0);
    link_usage_.assign(spec_->linkCount(), 0.0);
    for (const model::NodeSpec& b : spec_->nodes())
        node_usage_[b.id.index()] = model::node_usage(*spec_, allocation_, b.id);
    for (const model::LinkSpec& l : spec_->links())
        link_usage_[l.id.index()] = model::link_usage(*spec_, allocation_, l.id);
    utility_ = model::total_utility(*spec_, allocation_);
}

int SearchState::maxFeasiblePopulation(model::ClassId j) const {
    const model::ClassSpec& c = spec_->consumerClass(j);
    if (!spec_->flowActive(c.flow)) return 0;
    const double rate = allocation_.rates[c.flow.index()];
    const double unit_cost = c.consumer_cost * rate;
    if (unit_cost <= 0.0) return c.max_consumers;
    const double usage_without =
        node_usage_[c.node.index()] - unit_cost * allocation_.populations[j.index()];
    const double headroom = spec_->node(c.node).capacity - usage_without;
    if (headroom <= 0.0) return 0;
    // Shave a ULP-scale margin so tryPopulationMove's strict check passes.
    const int fit = static_cast<int>(headroom * (1.0 - 1e-12) / unit_cost);
    return std::clamp(fit, 0, c.max_consumers);
}

double SearchState::maxFeasibleRate(model::FlowId i) const {
    const model::FlowSpec& f = spec_->flow(i);
    if (!f.active) return 0.0;
    const double current = allocation_.rates[i.index()];
    double best = f.rate_max;
    for (const model::FlowNodeHop& hop : f.nodes) {
        double per_rate = hop.flow_node_cost;
        for (model::ClassId j : spec_->classesOfFlow(i)) {
            const model::ClassSpec& c = spec_->consumerClass(j);
            if (c.node == hop.node)
                per_rate += c.consumer_cost * allocation_.populations[j.index()];
        }
        if (per_rate <= 0.0) continue;
        const double usage_without = node_usage_[hop.node.index()] - per_rate * current;
        best = std::min(best, (spec_->nodes()[hop.node.index()].capacity - usage_without) *
                                  (1.0 - 1e-12) / per_rate);
    }
    for (const model::FlowLinkHop& hop : f.links) {
        const double usage_without = link_usage_[hop.link.index()] - hop.link_cost * current;
        best = std::min(best, (spec_->links()[hop.link.index()].capacity - usage_without) *
                                  (1.0 - 1e-12) / hop.link_cost);
    }
    return best;
}

bool SearchState::tryRateMove(model::FlowId i, double new_rate) {
    const model::FlowSpec& f = spec_->flow(i);
    if (!f.active) return false;
    const double old_rate = allocation_.rates[i.index()];
    const double dr = new_rate - old_rate;
    if (dr == 0.0) return true;

    // Per-unit-rate cost of the flow at each node it reaches: F plus the
    // admitted consumers' G terms.
    std::vector<std::pair<std::size_t, double>> node_deltas;
    node_deltas.reserve(f.nodes.size());
    for (const model::FlowNodeHop& hop : f.nodes) {
        double per_rate = hop.flow_node_cost;
        for (model::ClassId j : spec_->classesOfFlow(i)) {
            const model::ClassSpec& c = spec_->consumerClass(j);
            if (c.node == hop.node)
                per_rate += c.consumer_cost * allocation_.populations[j.index()];
        }
        const double delta = per_rate * dr;
        const std::size_t b = hop.node.index();
        if (node_usage_[b] + delta > spec_->nodes()[b].capacity) return false;
        node_deltas.emplace_back(b, delta);
    }
    std::vector<std::pair<std::size_t, double>> link_deltas;
    link_deltas.reserve(f.links.size());
    for (const model::FlowLinkHop& hop : f.links) {
        const double delta = hop.link_cost * dr;
        const std::size_t l = hop.link.index();
        if (link_usage_[l] + delta > spec_->links()[l].capacity) return false;
        link_deltas.emplace_back(l, delta);
    }

    for (const auto& [b, delta] : node_deltas) node_usage_[b] += delta;
    for (const auto& [l, delta] : link_deltas) link_usage_[l] += delta;
    for (model::ClassId j : spec_->classesOfFlow(i)) {
        const model::ClassSpec& c = spec_->consumerClass(j);
        const int n = allocation_.populations[j.index()];
        if (n > 0) utility_ += n * (c.utility->value(new_rate) - c.utility->value(old_rate));
    }
    allocation_.rates[i.index()] = new_rate;
    return true;
}

bool SearchState::tryPopulationMove(model::ClassId j, int new_n) {
    const model::ClassSpec& c = spec_->consumerClass(j);
    if (!spec_->flowActive(c.flow)) return false;
    const int old_n = allocation_.populations[j.index()];
    const int dn = new_n - old_n;
    if (dn == 0) return true;

    const double rate = allocation_.rates[c.flow.index()];
    const double delta = c.consumer_cost * dn * rate;
    const std::size_t b = c.node.index();
    if (node_usage_[b] + delta > spec_->nodes()[b].capacity) return false;

    node_usage_[b] += delta;
    utility_ += dn * c.utility->value(rate);
    allocation_.populations[j.index()] = new_n;
    return true;
}

}  // namespace lrgp::baseline
