// Centralized baselines (Section 4.4): simulated annealing with the
// paper's cooling schedule, plus hill climbing and random search used as
// sanity baselines in tests and ablations.
//
// The paper's schedule: start temperature in {5, 10, 50, 100}; after each
// simulation round the temperature is multiplied by 0.999; the run ends
// when T <= 1; the step budget (10^6 / 10^7 / 10^8 in the paper) is split
// equally among the temperature levels.  Moves that violate a constraint
// are rejected, keeping the walk inside the feasible region.
#pragma once

#include <cstdint>
#include <random>

#include "baseline/search_state.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"

namespace lrgp::baseline {

struct AnnealOptions {
    double start_temperature = 5.0;
    double cooling_factor = 0.999;  ///< multiplied in after each temperature level
    double end_temperature = 1.0;   ///< stop when T <= this
    std::uint64_t max_steps = 1'000'000;
    std::uint32_t seed = 1;
    /// Maximum rate perturbation as a fraction of (r_max - r_min).
    double rate_step_fraction = 0.1;
    /// Maximum population perturbation as a fraction of n^max.
    double population_step_fraction = 0.1;
};

struct SearchResult {
    model::Allocation best;
    double best_utility = 0.0;
    std::uint64_t steps_taken = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected_infeasible = 0;
    double wall_seconds = 0.0;
};

/// Simulated annealing over the joint (rates, populations) space.
[[nodiscard]] SearchResult simulated_annealing(const model::ProblemSpec& spec,
                                               const AnnealOptions& options);

/// Runs simulated_annealing over several start temperatures and returns
/// the best outcome (the paper reports the best of {5,10,50,100} x step
/// budgets); `steps_per_run` applies to each run.
[[nodiscard]] SearchResult best_of_annealing(const model::ProblemSpec& spec,
                                             const std::vector<double>& start_temperatures,
                                             std::uint64_t steps_per_run, std::uint32_t seed);

struct HillClimbOptions {
    std::uint64_t max_steps = 100'000;
    std::uint32_t seed = 1;
    double rate_step_fraction = 0.1;
    double population_step_fraction = 0.1;
};

/// Greedy stochastic hill climbing: accepts only improving feasible moves.
[[nodiscard]] SearchResult hill_climb(const model::ProblemSpec& spec,
                                      const HillClimbOptions& options);

struct RandomSearchOptions {
    std::uint64_t samples = 10'000;
    std::uint32_t seed = 1;
};

/// Uniform random sampling of rates plus greedy-random population fill;
/// keeps the best feasible sample.  A weak baseline used to calibrate the
/// difficulty of a workload in tests.
[[nodiscard]] SearchResult random_search(const model::ProblemSpec& spec,
                                         const RandomSearchOptions& options);

}  // namespace lrgp::baseline
