#include "baseline/rates_only.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "lrgp/prices.hpp"
#include "lrgp/rate_allocator.hpp"

namespace lrgp::baseline {

namespace {

/// Largest uniform fill fraction phi such that, at r = r_min, every node
/// satisfies sum_i (F + sum_j G * phi * n_max) * r_min <= c_b.
double proportionalFill(const model::ProblemSpec& spec) {
    double phi = 1.0;
    for (const model::NodeSpec& b : spec.nodes()) {
        double fixed = 0.0;     // F terms at r_min
        double scalable = 0.0;  // G*n_max terms at r_min
        for (model::FlowId i : spec.flowsAtNode(b.id)) {
            if (!spec.flowActive(i)) continue;
            fixed += spec.flowNodeCost(b.id, i) * spec.flow(i).rate_min;
        }
        for (model::ClassId j : spec.classesAtNode(b.id)) {
            const model::ClassSpec& c = spec.consumerClass(j);
            if (!spec.flowActive(c.flow)) continue;
            scalable += c.consumer_cost * c.max_consumers * spec.flow(c.flow).rate_min;
        }
        if (scalable <= 0.0) continue;
        phi = std::min(phi, std::max(0.0, (b.capacity - fixed) / scalable));
    }
    return std::clamp(phi, 0.0, 1.0);
}

}  // namespace

RatesOnlyResult rates_only_num(const model::ProblemSpec& spec, const RatesOnlyOptions& options) {
    if (options.iterations <= 0)
        throw std::invalid_argument("rates_only_num: iterations must be positive");
    if (options.node_gamma < 0.0 || options.link_gamma < 0.0)
        throw std::invalid_argument("rates_only_num: negative stepsize");

    RatesOnlyResult result;
    result.allocation.rates.assign(spec.flowCount(), 0.0);
    result.allocation.populations.assign(spec.classCount(), 0);

    // Fix the populations per policy.
    result.population_fill =
        options.policy == PopulationPolicy::kMaxDemand ? 1.0 : proportionalFill(spec);
    for (const model::ClassSpec& c : spec.classes()) {
        if (!spec.flowActive(c.flow)) continue;
        result.allocation.populations[c.id.index()] =
            options.policy == PopulationPolicy::kMaxDemand
                ? c.max_consumers
                : static_cast<int>(std::floor(result.population_fill * c.max_consumers));
    }

    // Classic dual iteration: priced rate solve + gradient price update.
    core::RateAllocator allocator(spec);
    core::PriceVector prices = core::PriceVector::zeros(spec.nodeCount(), spec.linkCount());
    for (const model::FlowSpec& f : spec.flows())
        result.allocation.rates[f.id.index()] = f.active ? f.rate_min : 0.0;

    for (int t = 0; t < options.iterations; ++t) {
        for (const model::FlowSpec& f : spec.flows()) {
            if (!f.active) continue;
            result.allocation.rates[f.id.index()] =
                allocator.computeRate(f.id, result.allocation.populations, prices).rate;
        }
        for (const model::NodeSpec& b : spec.nodes()) {
            const double used = model::node_usage(spec, result.allocation, b.id);
            prices.node[b.id.index()] = std::max(
                0.0, prices.node[b.id.index()] +
                         options.node_gamma * (used - b.capacity) / b.capacity);
        }
        for (const model::LinkSpec& l : spec.links()) {
            const double used = model::link_usage(spec, result.allocation, l.id);
            prices.link[l.id.index()] =
                std::max(0.0, prices.link[l.id.index()] + options.link_gamma * (used - l.capacity));
        }
        result.utility_trace.append(model::total_utility(spec, result.allocation));
    }

    result.utility = model::total_utility(spec, result.allocation);
    result.feasible = model::check_feasibility(spec, result.allocation).feasible();
    return result;
}

}  // namespace lrgp::baseline
