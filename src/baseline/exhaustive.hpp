// Exhaustive grid search over the joint allocation space.  Only viable
// for tiny instances; used in tests as the optimality ground truth that
// the paper could not compute for its workloads ("the size of the
// solution space does not allow exhaustive search").
#pragma once

#include <cstdint>

#include "baseline/annealing.hpp"
#include "model/problem.hpp"

namespace lrgp::baseline {

struct ExhaustiveOptions {
    /// Number of evenly spaced rate samples per flow (>= 2 unless a
    /// flow's bounds coincide).  Populations are enumerated exactly.
    int rate_grid = 16;
    /// Safety valve: throws std::invalid_argument if the grid would
    /// exceed this many combinations.
    std::uint64_t max_combinations = 50'000'000;
};

/// Evaluates every grid point and returns the best feasible allocation.
/// Throws if the search space exceeds options.max_combinations.
[[nodiscard]] SearchResult exhaustive_search(const model::ProblemSpec& spec,
                                             const ExhaustiveOptions& options = {});

}  // namespace lrgp::baseline
