#include "dataplane/cost_model.hpp"

namespace lrgp::dataplane {

double node_message_cost(const model::ProblemSpec& spec, model::NodeId node, model::FlowId flow,
                         const std::vector<int>& populations) {
    double cost = spec.flowNodeCost(node, flow);
    for (const model::ClassId j : spec.classesAtNode(node)) {
        const model::ClassSpec& cls = spec.consumerClass(j);
        if (cls.flow == flow) {
            cost += cls.consumer_cost * static_cast<double>(populations[j.index()]);
        }
    }
    return cost;
}

}  // namespace lrgp::dataplane
