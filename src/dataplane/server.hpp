// A bounded-FIFO, work-conserving queueing server — the dataplane's
// stand-in for a broker node's CPU or a link's NIC, in the spirit of a
// BESS module: messages arrive, wait in a bounded queue, and are served
// one at a time at a rate derived from the entity's capacity.
//
// The service time of a message is cost(message) / capacity seconds,
// where the cost callback evaluates the paper's resource model at
// dequeue time (L[l,i] on links; F[b,i] + sum_j G[b,j]*n_j at nodes, so
// enacting a new population mid-run immediately changes service times).
// Arrivals to a full queue are dropped and counted — the measured
// analogue of the optimizer's capacity constraints going infeasible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "dataplane/message.hpp"
#include "sim/simulator.hpp"

namespace lrgp::dataplane {

struct ServerStats {
    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    std::uint64_t dropped = 0;       ///< bounded-queue overflow
    double busy_seconds = 0.0;       ///< total service time spent
    std::size_t peak_queue = 0;      ///< deepest queue observed (incl. in service)
};

class QueueServer {
public:
    using CostFn = std::function<double(const DataMessage&)>;
    using CompleteFn = std::function<void(const DataMessage&)>;

    /// `capacity` in resource units/second (> 0); `queue_limit` bounds
    /// the FIFO including the message in service (>= 1).  `cost` maps a
    /// message to resource units; `on_complete` receives each served
    /// message.  Throws std::invalid_argument on bad arguments.
    QueueServer(sim::Simulator& simulator, double capacity, std::size_t queue_limit, CostFn cost,
                CompleteFn on_complete);

    /// Enqueues the message or drops it when the queue is full.
    /// Returns true when accepted.
    bool arrive(const DataMessage& message);

    /// Mirrors a capacity change (fault injection); affects messages
    /// served after the one currently in service.
    void setCapacity(double capacity);

    [[nodiscard]] double capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::size_t queueDepth() const noexcept { return queue_.size(); }
    [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }

private:
    void startService();
    void completeService();

    sim::Simulator& simulator_;
    double capacity_;
    std::size_t queue_limit_;
    CostFn cost_;
    CompleteFn on_complete_;

    std::deque<DataMessage> queue_;  ///< front = in service when busy_
    bool busy_ = false;
    ServerStats stats_;
};

}  // namespace lrgp::dataplane
