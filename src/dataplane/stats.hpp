// Dataplane measurement snapshot: what the traffic engine actually did
// with an enacted allocation — achieved rates, goodput, drops, queue
// depths, latency percentiles, and achieved vs planned utility.  The
// JSON serialization contains only simulation-derived quantities (no
// wall-clock timestamps), so two same-seed runs dump byte-identical
// documents — the property the CI determinism check asserts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/json.hpp"

namespace lrgp::dataplane {

/// Per-flow source-side counters.
struct FlowStats {
    std::string name;
    bool active = true;
    double enacted_rate = 0.0;   ///< r_i currently enacted (tokens/s)
    double offered_rate = 0.0;   ///< arrival-process rate (>= enacted when overdriven)
    std::uint64_t emitted = 0;   ///< messages past the policer
    std::uint64_t shaped = 0;    ///< messages the token bucket policed away
};

/// Per-consumer-class delivery counters.
struct ClassStats {
    std::string name;
    int population = 0;             ///< n_j currently enacted
    std::uint64_t delivered = 0;    ///< messages delivered to the class
    double achieved_rate = 0.0;     ///< delivered / elapsed (messages/s)
};

/// Per-link or per-node queueing-server counters.
struct EntityStats {
    std::string name;
    double capacity = 0.0;
    std::uint64_t arrivals = 0;
    std::uint64_t served = 0;
    std::uint64_t dropped = 0;
    std::size_t queue_depth = 0;   ///< at snapshot time
    std::size_t peak_queue = 0;
    double utilization = 0.0;      ///< busy_seconds / elapsed
};

/// End-to-end delivery latency summary (source emission -> class delivery).
struct LatencyStats {
    std::uint64_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/// Utility accounting: what the optimizer wanted vs what the wire did.
struct UtilityStats {
    double planned = 0.0;            ///< sum n_j U_j(r_i) of the last planned allocation
    double enacted = 0.0;            ///< same, for the last *enacted* allocation
    double achieved_window = 0.0;    ///< last sampler window, sum n_j U_j(r-hat_j)
    double achieved_cumulative = 0.0;///< over the whole run, r-hat_j = delivered_j/elapsed
};

/// Complete dataplane snapshot at `elapsed` seconds of simulated time.
struct DataplaneStats {
    double elapsed = 0.0;
    std::uint64_t events_scheduled = 0;  ///< simulator calendar lifetime count
    std::size_t enactments = 0;          ///< allocations pushed into the dataplane

    std::uint64_t total_emitted = 0;
    std::uint64_t total_shaped = 0;
    std::uint64_t total_delivered = 0;
    std::uint64_t dropped_link = 0;
    std::uint64_t dropped_node = 0;
    /// dropped / (dropped + served-equivalent): fraction of messages that
    /// entered the overlay but never reached a server completion.
    double drop_rate = 0.0;

    std::vector<FlowStats> flows;
    std::vector<ClassStats> classes;
    std::vector<EntityStats> links;
    std::vector<EntityStats> nodes;
    LatencyStats latency;
    UtilityStats utility;
};

/// Serializes a snapshot; schema documented in docs/schemas.md.
[[nodiscard]] io::JsonValue stats_to_json(const DataplaneStats& stats);

}  // namespace lrgp::dataplane
