#include "dataplane/traffic_source.hpp"

#include <cmath>
#include <stdexcept>

namespace lrgp::dataplane {

TrafficSource::TrafficSource(sim::Simulator& simulator, std::uint32_t flow,
                             ArrivalProcess process, std::uint64_t seed, double bucket_depth,
                             std::function<void(const DataMessage&)> emit)
    : simulator_(simulator),
      flow_(flow),
      process_(process),
      bucket_(bucket_depth, 0.0),
      emit_(std::move(emit)),
      rng_state_(seed == 0 ? 0x9E3779B97F4A7C15ull : seed) {
    if (!emit_) throw std::invalid_argument("TrafficSource: null emit callback");
}

double TrafficSource::uniform() {
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    // (0, 1]: a zero draw would make the exponential inter-arrival 0/inf.
    return (static_cast<double>(rng_state_ >> 11) + 1.0) * 0x1.0p-53;
}

void TrafficSource::setEnactedRate(double rate) {
    if (!(rate >= 0.0)) throw std::invalid_argument("TrafficSource: rate must be >= 0");
    if (rate == enacted_rate_) return;
    const bool offered_changes = offered_override_ < 0.0;
    enacted_rate_ = rate;
    bucket_.setRate(simulator_.now(), rate);
    if (offered_changes) reschedule();
}

void TrafficSource::setOfferedRate(double rate) {
    offered_override_ = rate < 0.0 ? -1.0 : rate;
    reschedule();
}

void TrafficSource::setActive(bool active) {
    if (active == active_) return;
    active_ = active;
    reschedule();
}

void TrafficSource::reschedule() {
    ++epoch_;  // orphan any pending emission
    scheduleNext();
}

void TrafficSource::scheduleNext() {
    const double rate = offeredRate();
    if (!active_ || !(rate > 0.0)) return;
    const double gap = process_ == ArrivalProcess::kDeterministic
                           ? 1.0 / rate
                           : -std::log(uniform()) / rate;
    simulator_.schedule(gap, [this, epoch = epoch_] {
        if (epoch != epoch_) return;  // rate changed since scheduling
        onArrival();
        scheduleNext();
    });
}

void TrafficSource::onArrival() {
    if (!bucket_.tryConsume(simulator_.now())) {
        ++shaped_;
        return;
    }
    DataMessage message;
    message.flow = flow_;
    message.sequence = sequence_++;
    message.emitted_at = simulator_.now();
    ++emitted_;
    emit_(message);
}

}  // namespace lrgp::dataplane
