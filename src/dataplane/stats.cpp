#include "dataplane/stats.hpp"

namespace lrgp::dataplane {

namespace {

io::JsonValue entity_json(const EntityStats& e) {
    io::JsonObject o;
    o["name"] = e.name;
    o["capacity"] = e.capacity;
    o["arrivals"] = static_cast<double>(e.arrivals);
    o["served"] = static_cast<double>(e.served);
    o["dropped"] = static_cast<double>(e.dropped);
    o["queue_depth"] = static_cast<double>(e.queue_depth);
    o["peak_queue"] = static_cast<double>(e.peak_queue);
    o["utilization"] = e.utilization;
    return io::JsonValue(std::move(o));
}

}  // namespace

io::JsonValue stats_to_json(const DataplaneStats& stats) {
    io::JsonObject root;
    root["elapsed"] = stats.elapsed;
    root["events_scheduled"] = static_cast<double>(stats.events_scheduled);
    root["enactments"] = static_cast<double>(stats.enactments);

    io::JsonObject totals;
    totals["emitted"] = static_cast<double>(stats.total_emitted);
    totals["shaped"] = static_cast<double>(stats.total_shaped);
    totals["delivered"] = static_cast<double>(stats.total_delivered);
    totals["dropped_link"] = static_cast<double>(stats.dropped_link);
    totals["dropped_node"] = static_cast<double>(stats.dropped_node);
    totals["drop_rate"] = stats.drop_rate;
    root["totals"] = io::JsonValue(std::move(totals));

    io::JsonArray flows;
    for (const FlowStats& f : stats.flows) {
        io::JsonObject o;
        o["name"] = f.name;
        o["active"] = f.active;
        o["enacted_rate"] = f.enacted_rate;
        o["offered_rate"] = f.offered_rate;
        o["emitted"] = static_cast<double>(f.emitted);
        o["shaped"] = static_cast<double>(f.shaped);
        flows.emplace_back(std::move(o));
    }
    root["flows"] = io::JsonValue(std::move(flows));

    io::JsonArray classes;
    for (const ClassStats& c : stats.classes) {
        io::JsonObject o;
        o["name"] = c.name;
        o["population"] = c.population;
        o["delivered"] = static_cast<double>(c.delivered);
        o["achieved_rate"] = c.achieved_rate;
        classes.emplace_back(std::move(o));
    }
    root["classes"] = io::JsonValue(std::move(classes));

    io::JsonArray links;
    for (const EntityStats& e : stats.links) links.push_back(entity_json(e));
    root["links"] = io::JsonValue(std::move(links));

    io::JsonArray nodes;
    for (const EntityStats& e : stats.nodes) nodes.push_back(entity_json(e));
    root["nodes"] = io::JsonValue(std::move(nodes));

    io::JsonObject latency;
    latency["count"] = static_cast<double>(stats.latency.count);
    latency["mean"] = stats.latency.mean;
    latency["p50"] = stats.latency.p50;
    latency["p90"] = stats.latency.p90;
    latency["p99"] = stats.latency.p99;
    latency["max"] = stats.latency.max;
    root["latency"] = io::JsonValue(std::move(latency));

    io::JsonObject utility;
    utility["planned"] = stats.utility.planned;
    utility["enacted"] = stats.utility.enacted;
    utility["achieved_window"] = stats.utility.achieved_window;
    utility["achieved_cumulative"] = stats.utility.achieved_cumulative;
    root["utility"] = io::JsonValue(std::move(utility));

    return io::JsonValue(std::move(root));
}

}  // namespace lrgp::dataplane
