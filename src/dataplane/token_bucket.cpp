#include "dataplane/token_bucket.hpp"

#include <algorithm>
#include <stdexcept>

namespace lrgp::dataplane {

TokenBucket::TokenBucket(double depth, double rate) : depth_(depth), rate_(rate), tokens_(depth) {
    if (!(depth >= 1.0)) throw std::invalid_argument("TokenBucket: depth must be >= 1");
    if (!(rate >= 0.0)) throw std::invalid_argument("TokenBucket: rate must be >= 0");
}

void TokenBucket::refill(sim::SimTime now) {
    if (now > last_refill_) {
        tokens_ = std::min(depth_, tokens_ + rate_ * (now - last_refill_));
        last_refill_ = now;
    }
}

bool TokenBucket::tryConsume(sim::SimTime now) {
    refill(now);
    // A hair of slack absorbs floating-point drift when deterministic
    // arrivals run at exactly the refill rate (1/r spacing refills one
    // token per arrival up to rounding).
    if (tokens_ >= 1.0 - 1e-9) {
        tokens_ -= 1.0;
        return true;
    }
    return false;
}

void TokenBucket::setRate(sim::SimTime now, double rate) {
    if (!(rate >= 0.0)) throw std::invalid_argument("TokenBucket::setRate: rate must be >= 0");
    refill(now);
    rate_ = rate;
}

}  // namespace lrgp::dataplane
