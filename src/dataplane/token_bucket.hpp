// Token-bucket policer, the host-level enforcement point between what a
// producer *offers* and what the optimizer *allocated* (in the spirit
// of heyp-agents' host enforcers of cluster-level allocations): tokens
// refill at the enacted rate, each emitted message spends one, and a
// message arriving to an empty bucket is policed away instead of
// entering the overlay.  When the offered rate equals the enacted rate
// the bucket is transparent; when a producer overdrives its allocation
// the excess is shaped off at the edge, before it can waste overlay
// capacity — which is exactly how the dataplane keeps the measured
// per-node usage inside the constraint Eq. 5 reasons about.
#pragma once

#include "sim/simulator.hpp"

namespace lrgp::dataplane {

class TokenBucket {
public:
    /// `depth` is the burst allowance in messages (>= 1); `rate` the
    /// refill rate in messages/second (>= 0; 0 passes nothing).  The
    /// bucket starts full.  Throws std::invalid_argument on bad depth.
    TokenBucket(double depth, double rate);

    /// Refills for the elapsed time and tries to spend one token.
    /// Returns true when the message may pass.  `now` must not go
    /// backwards between calls.
    [[nodiscard]] bool tryConsume(sim::SimTime now);

    /// Changes the refill rate (refills at the old rate first so the
    /// change is not retroactive).
    void setRate(sim::SimTime now, double rate);

    [[nodiscard]] double rate() const noexcept { return rate_; }
    [[nodiscard]] double depth() const noexcept { return depth_; }

private:
    void refill(sim::SimTime now);

    double depth_;
    double rate_;
    double tokens_;
    sim::SimTime last_refill_ = 0.0;
};

}  // namespace lrgp::dataplane
