// The unit of traffic in the message-level dataplane.
//
// A DataMessage is deliberately tiny — flow identity, sequence number,
// emission timestamp, and the position in the flow's link chain — so
// millions of copies per simulated run stay cheap.  Content-based
// filtering lives in src/broker; the dataplane measures *capacity and
// timing*, which depend only on the cost model, not on payloads.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"

namespace lrgp::dataplane {

struct DataMessage {
    std::uint32_t flow = 0;        ///< FlowId value
    std::uint64_t sequence = 0;    ///< per-flow, assigned at emission
    sim::SimTime emitted_at = 0.0; ///< source emission time (latency origin)
    std::uint32_t link_stage = 0;  ///< next index into the flow's link chain
};

}  // namespace lrgp::dataplane
