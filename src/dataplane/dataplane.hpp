// Message-level dataplane: a discrete-event traffic engine that *runs*
// an enacted LRGP allocation instead of just evaluating its objective.
//
// Topology mirrors the paper's resource model one-to-one:
//   * one TrafficSource per flow, policed at the enacted rate r_i;
//   * one QueueServer per link (capacity c_l, per-message cost L_{l,i});
//   * one QueueServer per node (capacity c_b, per-message cost
//     F_{b,i} + sum_j G_{b,j} n_j over the classes admitted there), so
//     the constraint sums of Eqs. 4-5 become offered load on servers
//     and an infeasible allocation shows up as queues and drops;
//   * messages traverse the flow's link chain in order, then fan out to
//     every node on the flow's route, where each admitted consumer
//     class takes delivery of a copy.
//
// A periodic sampler converts delivery counts into achieved per-class
// rates and the achieved utility sum n_j U_j(r-hat_j), appended to
// TimeSeries traces compatible with metrics::analyze_recovery — the
// measured counterpart of the optimizer's allocation-level traces.
//
// Determinism: all randomness comes from seeded per-flow xorshift64
// streams; the obs hooks touch atomics only and never schedule events,
// so same-seed runs are bitwise identical with or without a Registry
// attached.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dataplane/server.hpp"
#include "dataplane/stats.hpp"
#include "dataplane/traffic_source.hpp"
#include "metrics/histogram.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "obs/instruments.hpp"
#include "sim/simulator.hpp"

namespace lrgp::dataplane {

struct DataplaneOptions {
    std::uint64_t seed = 1;  ///< base seed; flow i uses seed + i
    ArrivalProcess arrivals = ArrivalProcess::kDeterministic;
    double token_bucket_depth = 8.0;  ///< burst allowance per source (messages)
    std::size_t queue_capacity = 64;  ///< bounded FIFO depth per server
    double propagation_delay = 1e-4;  ///< per hop-to-hop handoff (seconds)
    double sample_period = 0.5;       ///< achieved-utility sampling (seconds)
};

/// The traffic engine.  Owns its own Simulator; a coupling layer (see
/// closed_loop.hpp) advances it in lockstep with an optimizer.
class Dataplane {
public:
    /// `spec` must outlive the Dataplane.  Sources start at rate zero —
    /// nothing moves until the first enact().  Throws
    /// std::invalid_argument on bad options.
    explicit Dataplane(const model::ProblemSpec& spec, DataplaneOptions options = {});

    Dataplane(const Dataplane&) = delete;
    Dataplane& operator=(const Dataplane&) = delete;

    /// Pushes an allocation into the running dataplane: re-rates every
    /// source's token bucket and swaps the admitted populations that the
    /// node cost model and the delivery sinks see.  Throws
    /// std::invalid_argument when the allocation is mis-sized.
    void enact(const model::Allocation& allocation);

    /// Records the optimizer's latest (pre-deadband) allocation so the
    /// planned-utility trace reflects intent even while the enactment
    /// policy suppresses churn.
    void notePlanned(const model::Allocation& allocation);

    /// Source churn: an inactive flow emits nothing (the Figure 3
    /// departure experiment, measured).
    void setFlowActive(model::FlowId flow, bool active);

    /// Overdrives (or starves) a producer relative to its allocation;
    /// negative resumes following the enacted rate.
    void setOfferedRate(model::FlowId flow, double rate);

    /// Mirrors a node-capacity fault into the node's server.
    void setNodeCapacity(model::NodeId node, double capacity);

    /// Advances the traffic simulation to absolute time `until`.
    void runUntil(sim::SimTime until);

    [[nodiscard]] sim::SimTime now() const noexcept { return simulator_.now(); }
    [[nodiscard]] double samplePeriod() const noexcept { return options_.sample_period; }
    [[nodiscard]] std::size_t enactments() const noexcept { return enactments_; }
    [[nodiscard]] const model::Allocation& enacted() const noexcept { return enacted_; }

    /// Achieved utility per sampler window, one sample every
    /// sample_period starting at t = sample_period.
    [[nodiscard]] const metrics::TimeSeries& achievedUtilityTrace() const noexcept {
        return achieved_trace_;
    }
    /// Planned utility at the same sampling instants.
    [[nodiscard]] const metrics::TimeSeries& plannedUtilityTrace() const noexcept {
        return planned_trace_;
    }

    /// Wires counters/gauges/histograms from `registry` (nullptr
    /// detaches).  Purely observational: traffic is bitwise identical
    /// with and without it.
    void attachObservability(obs::Registry* registry);

    [[nodiscard]] DataplaneStats collectStats() const;
    /// stats_to_json(collectStats()).dump(pretty).
    [[nodiscard]] std::string statsJson(bool pretty = true) const;

private:
    void emitFromSource(const DataMessage& message);
    void forwardAfterLink(const DataMessage& message);
    void fanOutToNodes(const DataMessage& message);
    void deliverAtNode(model::NodeId node, const DataMessage& message);
    [[nodiscard]] double nodeMessageCost(model::NodeId node, const DataMessage& message) const;
    void scheduleSampler();
    void takeSample();

    const model::ProblemSpec& spec_;
    DataplaneOptions options_;
    sim::Simulator simulator_;

    std::vector<TrafficSource> sources_;                 ///< by flow
    std::vector<QueueServer> link_servers_;              ///< by link
    std::vector<QueueServer> node_servers_;              ///< by node
    std::vector<std::vector<model::LinkId>> link_chain_; ///< by flow, in route order
    std::vector<std::vector<model::NodeId>> node_hops_;  ///< by flow

    model::Allocation enacted_;  ///< rates all zero until the first enact()
    model::Allocation planned_;
    std::size_t enactments_ = 0;
    bool planned_noted_ = false;

    std::vector<std::uint64_t> delivered_;     ///< cumulative, by class
    std::vector<std::uint64_t> window_;        ///< deliveries this sampler window
    std::uint64_t dropped_link_ = 0;
    std::uint64_t dropped_node_ = 0;
    metrics::BucketHistogram latency_;

    metrics::TimeSeries achieved_trace_;
    metrics::TimeSeries planned_trace_;

    obs::DataplaneInstruments obs_;
    bool obs_attached_ = false;
    std::uint64_t obs_shaped_reported_ = 0;  ///< shaped count already exported
};

}  // namespace lrgp::dataplane
