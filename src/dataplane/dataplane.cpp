#include "dataplane/dataplane.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "dataplane/cost_model.hpp"

namespace lrgp::dataplane {

Dataplane::Dataplane(const model::ProblemSpec& spec, DataplaneOptions options)
    : spec_(spec), options_(options), latency_(metrics::default_latency_bounds()) {
    if (!(options_.token_bucket_depth >= 1.0))
        throw std::invalid_argument("Dataplane: token_bucket_depth must be >= 1");
    if (options_.queue_capacity < 1)
        throw std::invalid_argument("Dataplane: queue_capacity must be >= 1");
    if (!(options_.propagation_delay >= 0.0))
        throw std::invalid_argument("Dataplane: propagation_delay must be >= 0");
    if (!(options_.sample_period > 0.0))
        throw std::invalid_argument("Dataplane: sample_period must be > 0");

    const std::size_t flows = spec_.flowCount();
    enacted_.rates.assign(flows, 0.0);
    enacted_.populations.assign(spec_.classCount(), 0);
    planned_ = enacted_;
    delivered_.assign(spec_.classCount(), 0);
    window_.assign(spec_.classCount(), 0);

    link_chain_.resize(flows);
    node_hops_.resize(flows);
    for (std::size_t i = 0; i < flows; ++i) {
        const model::FlowSpec& flow = spec_.flows()[i];
        for (const model::FlowLinkHop& hop : flow.links) link_chain_[i].push_back(hop.link);
        for (const model::FlowNodeHop& hop : flow.nodes) node_hops_[i].push_back(hop.node);
    }

    // Servers and sources schedule lambdas capturing their own address;
    // reserve exact sizes so emplace_back never relocates them.
    sources_.reserve(flows);
    for (std::size_t i = 0; i < flows; ++i) {
        sources_.emplace_back(
            simulator_, static_cast<std::uint32_t>(i), options_.arrivals, options_.seed + i,
            options_.token_bucket_depth,
            [this](const DataMessage& message) { emitFromSource(message); });
        sources_.back().setActive(spec_.flows()[i].active);
    }
    link_servers_.reserve(spec_.linkCount());
    for (std::size_t l = 0; l < spec_.linkCount(); ++l) {
        const model::LinkId link{static_cast<std::uint32_t>(l)};
        link_servers_.emplace_back(
            simulator_, spec_.link(link).capacity, options_.queue_capacity,
            [this, link](const DataMessage& message) {
                return link_message_cost(spec_, link, model::FlowId{message.flow});
            },
            [this](const DataMessage& message) { forwardAfterLink(message); });
    }
    node_servers_.reserve(spec_.nodeCount());
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b) {
        const model::NodeId node{static_cast<std::uint32_t>(b)};
        node_servers_.emplace_back(
            simulator_, spec_.node(node).capacity, options_.queue_capacity,
            [this, node](const DataMessage& message) { return nodeMessageCost(node, message); },
            [this, node](const DataMessage& message) { deliverAtNode(node, message); });
    }

    scheduleSampler();
}

void Dataplane::enact(const model::Allocation& allocation) {
    if (allocation.rates.size() != spec_.flowCount() ||
        allocation.populations.size() != spec_.classCount()) {
        throw std::invalid_argument("Dataplane::enact: allocation does not match problem");
    }
    for (std::size_t i = 0; i < allocation.rates.size(); ++i) {
        sources_[i].setEnactedRate(allocation.rates[i]);
    }
    enacted_ = allocation;
    ++enactments_;
    if constexpr (obs::kEnabled) {
        if (obs_attached_) obs_.enactments->add();
    }
}

void Dataplane::notePlanned(const model::Allocation& allocation) {
    if (allocation.rates.size() != spec_.flowCount() ||
        allocation.populations.size() != spec_.classCount()) {
        throw std::invalid_argument("Dataplane::notePlanned: allocation does not match problem");
    }
    planned_ = allocation;
    planned_noted_ = true;
}

void Dataplane::setFlowActive(model::FlowId flow, bool active) {
    sources_.at(flow.index()).setActive(active);
}

void Dataplane::setOfferedRate(model::FlowId flow, double rate) {
    sources_.at(flow.index()).setOfferedRate(rate);
}

void Dataplane::setNodeCapacity(model::NodeId node, double capacity) {
    node_servers_.at(node.index()).setCapacity(capacity);
}

void Dataplane::runUntil(sim::SimTime until) { simulator_.runUntil(until); }

void Dataplane::emitFromSource(const DataMessage& message) {
    if constexpr (obs::kEnabled) {
        if (obs_attached_) obs_.emitted->add();
    }
    const auto& chain = link_chain_[message.flow];
    if (chain.empty()) {
        simulator_.schedule(options_.propagation_delay,
                            [this, message] { fanOutToNodes(message); });
        return;
    }
    const model::LinkId first = chain.front();
    simulator_.schedule(options_.propagation_delay, [this, first, message] {
        if (!link_servers_[first.index()].arrive(message)) {
            ++dropped_link_;
            if constexpr (obs::kEnabled) {
                if (obs_attached_) obs_.dropped_link->add();
            }
        }
    });
}

void Dataplane::forwardAfterLink(const DataMessage& message) {
    const auto& chain = link_chain_[message.flow];
    const std::uint32_t next_stage = message.link_stage + 1;
    if (next_stage < chain.size()) {
        DataMessage forwarded = message;
        forwarded.link_stage = next_stage;
        const model::LinkId next = chain[next_stage];
        simulator_.schedule(options_.propagation_delay, [this, next, forwarded] {
            if (!link_servers_[next.index()].arrive(forwarded)) {
                ++dropped_link_;
                if constexpr (obs::kEnabled) {
                    if (obs_attached_) obs_.dropped_link->add();
                }
            }
        });
        return;
    }
    simulator_.schedule(options_.propagation_delay, [this, message] { fanOutToNodes(message); });
}

void Dataplane::fanOutToNodes(const DataMessage& message) {
    for (const model::NodeId node : node_hops_[message.flow]) {
        if (!node_servers_[node.index()].arrive(message)) {
            ++dropped_node_;
            if constexpr (obs::kEnabled) {
                if (obs_attached_) obs_.dropped_node->add();
            }
        }
    }
}

double Dataplane::nodeMessageCost(model::NodeId node, const DataMessage& message) const {
    return node_message_cost(spec_, node, model::FlowId{message.flow}, enacted_.populations);
}

void Dataplane::deliverAtNode(model::NodeId node, const DataMessage& message) {
    const model::FlowId flow{message.flow};
    for (const model::ClassId j : spec_.classesAtNode(node)) {
        const model::ClassSpec& cls = spec_.consumerClass(j);
        if (cls.flow != flow || enacted_.populations[j.index()] <= 0) continue;
        ++delivered_[j.index()];
        ++window_[j.index()];
        const double latency = simulator_.now() - message.emitted_at;
        latency_.observe(latency);
        if constexpr (obs::kEnabled) {
            if (obs_attached_) {
                obs_.delivered->add();
                obs_.latency->observe(latency);
            }
        }
    }
}

void Dataplane::scheduleSampler() {
    simulator_.schedule(options_.sample_period, [this] {
        takeSample();
        scheduleSampler();
    });
}

void Dataplane::takeSample() {
    double achieved = 0.0;
    for (std::size_t j = 0; j < window_.size(); ++j) {
        const int population = enacted_.populations[j];
        if (population <= 0) continue;
        const double rate = static_cast<double>(window_[j]) / options_.sample_period;
        achieved += static_cast<double>(population) *
                    spec_.classes()[j].utility->value(rate);
    }
    const model::Allocation& plan = planned_noted_ ? planned_ : enacted_;
    const double planned = model::total_utility(spec_, plan);
    achieved_trace_.append(achieved);
    planned_trace_.append(planned);
    std::fill(window_.begin(), window_.end(), std::uint64_t{0});
    if constexpr (obs::kEnabled) {
        if (obs_attached_) {
            obs_.achieved_utility->set(achieved);
            obs_.planned_utility->set(planned);
            std::uint64_t shaped = 0;
            for (const TrafficSource& source : sources_) shaped += source.shaped();
            if (shaped > obs_shaped_reported_) {
                obs_.shaped->add(shaped - obs_shaped_reported_);
                obs_shaped_reported_ = shaped;
            }
        }
    }
}

DataplaneStats Dataplane::collectStats() const {
    DataplaneStats stats;
    stats.elapsed = simulator_.now();
    stats.events_scheduled = simulator_.scheduledEvents();
    stats.enactments = enactments_;
    stats.dropped_link = dropped_link_;
    stats.dropped_node = dropped_node_;

    const double elapsed = stats.elapsed > 0.0 ? stats.elapsed : 1.0;

    for (std::size_t i = 0; i < sources_.size(); ++i) {
        const TrafficSource& source = sources_[i];
        FlowStats f;
        f.name = spec_.flows()[i].name;
        f.active = source.active();
        f.enacted_rate = source.enactedRate();
        f.offered_rate = source.offeredRate();
        f.emitted = source.emitted();
        f.shaped = source.shaped();
        stats.total_emitted += f.emitted;
        stats.total_shaped += f.shaped;
        stats.flows.push_back(std::move(f));
    }
    for (std::size_t j = 0; j < spec_.classCount(); ++j) {
        ClassStats c;
        c.name = spec_.classes()[j].name;
        c.population = enacted_.populations[j];
        c.delivered = delivered_[j];
        c.achieved_rate = static_cast<double>(delivered_[j]) / elapsed;
        stats.total_delivered += c.delivered;
        stats.classes.push_back(std::move(c));
    }

    std::uint64_t total_arrivals = 0;
    std::uint64_t total_dropped = 0;
    const auto entity = [&](const QueueServer& server, std::string name) {
        EntityStats e;
        e.name = std::move(name);
        e.capacity = server.capacity();
        e.arrivals = server.stats().arrivals;
        e.served = server.stats().served;
        e.dropped = server.stats().dropped;
        e.queue_depth = server.queueDepth();
        e.peak_queue = server.stats().peak_queue;
        e.utilization = server.stats().busy_seconds / elapsed;
        total_arrivals += e.arrivals;
        total_dropped += e.dropped;
        return e;
    };
    for (std::size_t l = 0; l < link_servers_.size(); ++l) {
        stats.links.push_back(entity(link_servers_[l], spec_.links()[l].name));
    }
    for (std::size_t b = 0; b < node_servers_.size(); ++b) {
        stats.nodes.push_back(entity(node_servers_[b], spec_.nodes()[b].name));
    }
    stats.drop_rate =
        total_arrivals > 0 ? static_cast<double>(total_dropped) / static_cast<double>(total_arrivals)
                           : 0.0;

    stats.latency.count = latency_.count();
    stats.latency.mean = latency_.mean();
    stats.latency.p50 = latency_.quantile(0.50);
    stats.latency.p90 = latency_.quantile(0.90);
    stats.latency.p99 = latency_.quantile(0.99);
    stats.latency.max = latency_.maxObserved();

    stats.utility.planned =
        model::total_utility(spec_, planned_noted_ ? planned_ : enacted_);
    stats.utility.enacted = model::total_utility(spec_, enacted_);
    stats.utility.achieved_window = achieved_trace_.empty() ? 0.0 : achieved_trace_.back();
    double cumulative = 0.0;
    for (std::size_t j = 0; j < spec_.classCount(); ++j) {
        const int population = enacted_.populations[j];
        if (population <= 0) continue;
        const double rate = static_cast<double>(delivered_[j]) / elapsed;
        cumulative += static_cast<double>(population) * spec_.classes()[j].utility->value(rate);
    }
    stats.utility.achieved_cumulative = cumulative;
    return stats;
}

std::string Dataplane::statsJson(bool pretty) const {
    return stats_to_json(collectStats()).dump(pretty);
}

void Dataplane::attachObservability(obs::Registry* registry) {
    (void)registry;  // unused when compiled without LRGP_OBS
    if constexpr (obs::kEnabled) {
        if (registry != nullptr) {
            obs_ = obs::DataplaneInstruments::resolve(*registry);
            obs_attached_ = true;
            return;
        }
    }
    obs_ = obs::DataplaneInstruments{};
    obs_attached_ = false;
}

}  // namespace lrgp::dataplane
