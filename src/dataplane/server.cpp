#include "dataplane/server.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lrgp::dataplane {

QueueServer::QueueServer(sim::Simulator& simulator, double capacity, std::size_t queue_limit,
                         CostFn cost, CompleteFn on_complete)
    : simulator_(simulator),
      capacity_(capacity),
      queue_limit_(queue_limit),
      cost_(std::move(cost)),
      on_complete_(std::move(on_complete)) {
    if (!(capacity > 0.0)) throw std::invalid_argument("QueueServer: capacity must be > 0");
    if (queue_limit < 1) throw std::invalid_argument("QueueServer: queue_limit must be >= 1");
    if (!cost_) throw std::invalid_argument("QueueServer: null cost callback");
    if (!on_complete_) throw std::invalid_argument("QueueServer: null completion callback");
}

bool QueueServer::arrive(const DataMessage& message) {
    ++stats_.arrivals;
    if (queue_.size() >= queue_limit_) {
        ++stats_.dropped;
        return false;
    }
    queue_.push_back(message);
    stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
    if (!busy_) startService();
    return true;
}

void QueueServer::setCapacity(double capacity) {
    if (!(capacity > 0.0)) throw std::invalid_argument("QueueServer::setCapacity: capacity must be > 0");
    capacity_ = capacity;
}

void QueueServer::startService() {
    busy_ = true;
    const double service_time = cost_(queue_.front()) / capacity_;
    stats_.busy_seconds += service_time;
    simulator_.schedule(service_time, [this] { completeService(); });
}

void QueueServer::completeService() {
    const DataMessage message = queue_.front();
    queue_.pop_front();
    ++stats_.served;
    if (!queue_.empty()) {
        startService();
    } else {
        busy_ = false;
    }
    on_complete_(message);
}

}  // namespace lrgp::dataplane
