// The paper's per-message resource cost model, shared by the
// discrete-event dataplane (dataplane::Dataplane) and the batched
// fastpath (fastpath::Fastpath) so both plants charge exactly the same
// work per message:
//
//   * link l, flow i:  L_{l,i}            (bandwidth units / message)
//   * node b, flow i:  F_{b,i} + sum over classes j of flow i admitted
//                      at b of G_{b,j} * n_j   (CPU units / message)
//
// Keeping this in one place is what makes the fastpath/sim differential
// oracle meaningful: any divergence between the two engines is a
// queueing/batching artifact, never a cost-model fork.
#pragma once

#include <vector>

#include "model/problem.hpp"

namespace lrgp::dataplane {

/// L_{l,i}: cost of one flow-i message crossing link l.
[[nodiscard]] inline double link_message_cost(const model::ProblemSpec& spec, model::LinkId link,
                                              model::FlowId flow) {
    return spec.linkCost(link, flow);
}

/// F_{b,i} + sum_j G_{b,j} n_j over classes j of flow i at node b:
/// cost of one flow-i message processed at node b under the admitted
/// populations `populations` (indexed by ClassId, as in Allocation).
[[nodiscard]] double node_message_cost(const model::ProblemSpec& spec, model::NodeId node,
                                       model::FlowId flow, const std::vector<int>& populations);

}  // namespace lrgp::dataplane
