#include "dataplane/closed_loop.hpp"

#include <stdexcept>

namespace lrgp::dataplane {

ClosedLoopResult run_closed_loop(
    core::LrgpOptimizer& optimizer, Dataplane& dataplane, const ClosedLoopOptions& options,
    const std::function<void(double, core::LrgpOptimizer&, Dataplane&)>& on_tick) {
    if (!(options.iteration_period > 0.0))
        throw std::invalid_argument("run_closed_loop: iteration_period must be > 0");
    if (!(options.duration >= 0.0))
        throw std::invalid_argument("run_closed_loop: duration must be >= 0");

    core::EnactmentController enactor(
        options.enactment,
        [&dataplane](const model::Allocation& allocation) { dataplane.enact(allocation); });

    ClosedLoopResult result;
    for (double t = 0.0; t <= options.duration; t += options.iteration_period) {
        const core::IterationRecord record = optimizer.step();
        ++result.iterations;
        dataplane.notePlanned(record.allocation);
        enactor.offer(t, record.allocation);
        dataplane.runUntil(t);
        if (on_tick) on_tick(t, optimizer, dataplane);
    }
    dataplane.runUntil(options.duration);
    result.offers = enactor.offers();
    result.enactments = enactor.enactments();
    return result;
}

DistCoupling::DistCoupling(dist::DistLrgp& engine, Dataplane& dataplane,
                           core::EnactmentOptions options)
    : dataplane_(dataplane),
      enactor_(options, [&dataplane](const model::Allocation& allocation) {
          dataplane.enact(allocation);
      }) {
    engine.setSampleCallback([this](sim::SimTime now, const model::Allocation& allocation) {
        dataplane_.notePlanned(allocation);
        enactor_.offer(now, allocation);
        dataplane_.runUntil(now);
    });
}

}  // namespace lrgp::dataplane
