// Per-flow traffic generation: an arrival process (deterministic
// spacing or seeded-Poisson) running at the *offered* rate, policed by
// a token bucket refilling at the *enacted* rate.
//
// Rescheduling without event cancellation: the simulator has no cancel
// primitive, so every scheduled emission captures the source's epoch
// counter; bumping the epoch (rate change, deactivation) orphans the
// pending event, which fires as a no-op.  All randomness comes from a
// private xorshift64 stream, so runs are bitwise reproducible per
// (options, seed).
#pragma once

#include <cstdint>
#include <functional>

#include "dataplane/message.hpp"
#include "dataplane/token_bucket.hpp"
#include "sim/simulator.hpp"

namespace lrgp::dataplane {

enum class ArrivalProcess : std::uint8_t {
    kDeterministic,  ///< evenly spaced, 1/rate apart
    kPoisson,        ///< exponential inter-arrival times (seeded)
};

class TrafficSource {
public:
    /// `emit` receives each message that passed the policer; never null.
    TrafficSource(sim::Simulator& simulator, std::uint32_t flow, ArrivalProcess process,
                  std::uint64_t seed, double bucket_depth,
                  std::function<void(const DataMessage&)> emit);

    /// Sets the enacted (bucket) rate; by default the offered rate
    /// follows it.  No-op when the rate is unchanged, so re-enacting an
    /// identical allocation does not perturb emission phase.
    void setEnactedRate(double rate);

    /// Overrides the arrival-process rate independently of the enacted
    /// rate (an overdriving producer); pass a negative value to resume
    /// following the enacted rate.
    void setOfferedRate(double rate);

    /// An inactive source emits nothing; reactivation restarts the
    /// arrival process at the current rates.
    void setActive(bool active);

    [[nodiscard]] bool active() const noexcept { return active_; }
    [[nodiscard]] double enactedRate() const noexcept { return enacted_rate_; }
    [[nodiscard]] double offeredRate() const noexcept {
        return offered_override_ >= 0.0 ? offered_override_ : enacted_rate_;
    }
    [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }
    [[nodiscard]] std::uint64_t shaped() const noexcept { return shaped_; }

private:
    void reschedule();
    void scheduleNext();
    void onArrival();
    [[nodiscard]] double uniform();  ///< deterministic draw in (0, 1]

    sim::Simulator& simulator_;
    std::uint32_t flow_;
    ArrivalProcess process_;
    TokenBucket bucket_;
    std::function<void(const DataMessage&)> emit_;

    double enacted_rate_ = 0.0;
    double offered_override_ = -1.0;
    bool active_ = true;
    std::uint64_t epoch_ = 0;      ///< orphans stale scheduled emissions
    std::uint64_t sequence_ = 0;   ///< next message sequence number
    std::uint64_t emitted_ = 0;
    std::uint64_t shaped_ = 0;
    std::uint64_t rng_state_;
};

}  // namespace lrgp::dataplane
