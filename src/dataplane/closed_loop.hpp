// Closed-loop wiring: optimizer iterations -> enactment policy ->
// dataplane traffic, with the dataplane's clock advanced in lockstep so
// workload churn and fault scenarios show up as *measured* utility dips
// rather than just allocation-trace dips.
//
// Two couplings are provided:
//   * run_closed_loop(): drives a (centralized) LrgpOptimizer at a fixed
//     iteration cadence against a Dataplane, offering every iterate to
//     an EnactmentController whose enact callback is Dataplane::enact.
//   * DistCoupling: taps DistLrgp's sample callback, so the dataplane
//     follows whatever allocation the distributed protocol has actually
//     converged to — including the degraded allocations it holds while
//     a FaultPlan scenario is active.
#pragma once

#include <cstddef>
#include <functional>

#include "dataplane/dataplane.hpp"
#include "dist/dist_lrgp.hpp"
#include "lrgp/enactment.hpp"
#include "lrgp/optimizer.hpp"

namespace lrgp::dataplane {

struct ClosedLoopOptions {
    /// Simulated seconds attributed to one optimizer iteration.
    double iteration_period = 0.05;
    /// Total simulated duration to run.
    double duration = 20.0;
    /// Hysteresis policy between the optimizer and the dataplane.
    core::EnactmentOptions enactment{};
};

struct ClosedLoopResult {
    std::size_t iterations = 0;
    std::size_t offers = 0;
    std::size_t enactments = 0;
};

/// Steps `optimizer` every iteration_period of dataplane time, records
/// each iterate as the planned allocation, offers it to the enactment
/// policy, and advances the dataplane between iterations.  `on_tick`
/// (may be null) runs after each iteration — the hook point for
/// mid-run churn such as spec changes or fault injection.
ClosedLoopResult run_closed_loop(
    core::LrgpOptimizer& optimizer, Dataplane& dataplane, const ClosedLoopOptions& options,
    const std::function<void(double, core::LrgpOptimizer&, Dataplane&)>& on_tick = nullptr);

/// Couples a DistLrgp engine to a Dataplane for the engine's lifetime:
/// every allocation sample the protocol takes is offered to the
/// enactment policy and the dataplane clock is advanced to the
/// protocol's clock.  Construct before DistLrgp::runFor; keep alive
/// while the engine runs.
class DistCoupling {
public:
    /// Installs itself as `engine`'s sample callback (replacing any
    /// previous one).  Both references must outlive the coupling.
    DistCoupling(dist::DistLrgp& engine, Dataplane& dataplane, core::EnactmentOptions options);

    [[nodiscard]] std::size_t offers() const noexcept { return enactor_.offers(); }
    [[nodiscard]] std::size_t enactments() const noexcept { return enactor_.enactments(); }
    [[nodiscard]] std::size_t suppressions() const noexcept { return enactor_.suppressions(); }

private:
    Dataplane& dataplane_;
    core::EnactmentController enactor_;
};

}  // namespace lrgp::dataplane
