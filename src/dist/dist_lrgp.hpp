// LRGP as a message-passing distributed protocol (Section 3, Algorithms
// 1-3), running on the discrete-event simulator.
//
// One agent runs per flow source, per consumer-hosting node, and per
// link.  Messages carry rates downstream and (price, population) reports
// upstream, each with a network latency drawn from a LatencyModel.
//
// Two execution modes:
//  * synchronous (the paper's formulation): agents act once per round,
//    after hearing from all their peers for that round.  The resulting
//    per-round utility trace is bit-identical to the centralized
//    LrgpOptimizer — the protocol only distributes the arithmetic.
//  * asynchronous (Section 3.5): every agent acts on a local timer using
//    the freshest values it has, and sources average the last few prices
//    from each resource to tolerate missing or stale reports.
//
// The asynchronous mode can additionally be chaos-hardened: a
// faults::FaultPlan injects message loss, delay spikes, reordering,
// partitions, agent crash/restart and price corruption, while
// RobustnessOptions enables heartbeat failure detection, stale-price
// expiry, exponential-backoff re-announcement and graceful degradation
// to the flow's minimum rate.  Everything stays deterministic: the same
// (problem, options, plan, seed) reproduces a bitwise-identical run.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "faults/fault_plan.hpp"
#include "lrgp/greedy_allocator.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/price_controllers.hpp"
#include "lrgp/rate_allocator.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "obs/instruments.hpp"
#include "sim/simulator.hpp"

namespace lrgp::dist {

/// Fault-tolerance knobs for the asynchronous protocol.  All zero by
/// default: the baseline protocol relies only on Section 3.5's price
/// averaging.  Enable heartbeat_timeout to turn on failure detection;
/// the other mechanisms build on it.
struct RobustnessOptions {
    /// A priced resource (or a flow, seen from a node) is *suspected*
    /// once it has been silent for this long.  0 disables detection.
    sim::SimTime heartbeat_timeout = 0.0;
    /// Price-window entries older than this are expired instead of
    /// being averaged forever; the newest entry is always retained as
    /// the last-known price.  0 disables expiry.
    sim::SimTime price_max_age = 0.0;
    /// While a resource is suspected, the source stops streaming rates
    /// to it every tick and instead re-announces with exponential
    /// backoff in [min, max] — fast recovery without flooding a dead
    /// peer.  0 disables backoff (suspected peers keep receiving every
    /// tick).  Requires heartbeat_timeout > 0.
    sim::SimTime reannounce_backoff_min = 0.0;
    sim::SimTime reannounce_backoff_max = 0.0;
    /// When more than this fraction of a source's priced resources are
    /// suspected, the source degrades gracefully: it clamps its rate to
    /// r_min instead of trusting stale prices.
    double degrade_fraction = 0.5;

    [[nodiscard]] bool enabled() const noexcept { return heartbeat_timeout > 0.0; }

    /// The hardened preset used by the chaos suite: 0.25s heartbeat,
    /// 0.6s price expiry, 0.05s-0.8s re-announcement backoff, majority
    /// degradation.
    [[nodiscard]] static RobustnessOptions standard();
};

struct DistOptions {
    core::GammaPolicy gamma = core::AdaptiveGamma{};
    double link_gamma = 1e-5;
    utility::RateSolveOptions rate_solve;

    bool synchronous = true;
    sim::SimTime latency_min = 0.005;   ///< seconds, per message
    sim::SimTime latency_max = 0.015;
    std::uint32_t seed = 1;

    // Asynchronous mode only:
    sim::SimTime agent_period = 0.05;   ///< local timer period per agent
    std::size_t price_window = 3;       ///< prices averaged per resource
    sim::SimTime sample_period = 0.05;  ///< utility sampling period
    /// Probability that any single protocol message is lost in transit.
    /// The price/rate averaging of Section 3.5 is exactly what tolerates
    /// such loss; only valid in asynchronous mode (sync counts messages).
    double message_loss_probability = 0.0;

    /// Scheduled fault injections (async only; empty = no chaos).
    faults::FaultPlan fault_plan;
    /// Hardening mechanisms (async only; zeros = baseline protocol).
    RobustnessOptions robustness;
};

/// Drives the distributed protocol and records the utility trace.
class DistLrgp {
public:
    /// Validates `options` (and the fault plan against the problem
    /// size); throws std::invalid_argument on inconsistent settings —
    /// inverted latency bounds, loss probability outside [0, 1], loss /
    /// faults / robustness in synchronous mode, zero price window, bad
    /// agent or sample periods, malformed fault plans, or fault-plan
    /// agent references outside the problem.
    DistLrgp(model::ProblemSpec spec, DistOptions options = {});
    ~DistLrgp();

    DistLrgp(const DistLrgp&) = delete;
    DistLrgp& operator=(const DistLrgp&) = delete;

    /// Synchronous mode: runs until `rounds` rounds have completed at
    /// every node.  Throws std::logic_error in asynchronous mode.
    void runRounds(int rounds);

    /// Runs the simulation clock forward `seconds` (either mode).
    /// Throws std::logic_error if the run exceeds its event budget —
    /// a runaway event loop would otherwise stop silently at a cap.
    void runFor(sim::SimTime seconds);

    /// Schedules a flow source's departure at absolute sim time `when`.
    void removeFlowAt(model::FlowId flow, sim::SimTime when);

    /// Best-known global allocation (latest rates and populations).
    [[nodiscard]] model::Allocation snapshot() const;
    [[nodiscard]] double currentUtility() const;

    /// Sync mode: utility after each completed round (matches the
    /// centralized optimizer's trace).  Async mode: utility sampled every
    /// sample_period seconds.
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept { return trace_; }

    /// Invoked with (sim time, global allocation snapshot) at every
    /// trace sample — each completed round in synchronous mode, every
    /// sample_period in asynchronous mode.  This is the enactment tap:
    /// a closed-loop driver offers each snapshot to an
    /// EnactmentController that pushes it into a live substrate (e.g.
    /// dataplane::Dataplane).  The callback must not mutate this
    /// protocol instance; it does not affect the protocol's own event
    /// stream, so traces stay bitwise identical with or without it.
    using SampleCallback = std::function<void(sim::SimTime, const model::Allocation&)>;
    void setSampleCallback(SampleCallback callback) { sample_callback_ = std::move(callback); }

    [[nodiscard]] int completedRounds() const noexcept { return completed_rounds_; }
    [[nodiscard]] sim::SimTime now() const noexcept { return simulator_.now(); }
    [[nodiscard]] std::size_t messagesSent() const noexcept { return messages_sent_; }
    [[nodiscard]] std::size_t messagesLost() const noexcept { return messages_lost_; }
    [[nodiscard]] const model::ProblemSpec& problem() const noexcept { return spec_; }

    // ------------------------------------------ chaos instrumentation

    /// Injection counters (all zero when no fault plan was given).
    [[nodiscard]] faults::FaultStats faultStats() const;
    /// Backoff re-announcements sent to suspected resources.
    [[nodiscard]] std::size_t reannouncementsSent() const noexcept { return reannouncements_; }
    /// Resource/flow transitions into the suspected state.
    [[nodiscard]] std::size_t suspicionEvents() const noexcept { return suspicion_events_; }
    /// True while `agent` is crashed.
    [[nodiscard]] bool agentDown(faults::AgentRef agent) const;

    // ------------------------------------------------- observability

    /// Attaches a metrics registry (message counters by kind, drop
    /// causes, suspicion/reannouncement/crash counters, round counter,
    /// utility gauge) and optionally a tracer.  Tracer timestamps use
    /// *simulated* time, so traces are deterministic per (problem,
    /// options, seed).  Pass nullptrs to detach; a no-op without
    /// LRGP_OBS.
    void attachObservability(obs::Registry* registry, obs::IterationTracer* tracer = nullptr);

private:
    struct SourceAgent;
    struct NodeAgent;
    struct LinkAgent;

    [[nodiscard]] static DistOptions validated(DistOptions options);
    void validateFaultPlanAgents() const;

    /// Routes one protocol message through the legacy uniform-loss
    /// model, the fault injector, and the latency model.  `price`
    /// carries a corruptible payload for report messages (the handler
    /// receives the possibly-corrupted value); pass nullopt for rate
    /// messages.
    void sendMessage(const faults::MessageContext& ctx, std::optional<double> price,
                     std::function<void(double)> handler);

    void scheduleCrashes();
    void crashAgent(faults::AgentRef agent);
    void restartAgent(faults::AgentRef agent);

    // Chaos bookkeeping + optional metrics/trace emission (the agents
    // call these instead of bumping the driver counters directly).
    void noteSuspicion(const char* who);
    void noteReannouncement();
    [[nodiscard]] double simMicros() const noexcept { return simulator_.now() * 1e6; }

    [[nodiscard]] std::size_t eventBudget(sim::SimTime seconds) const;
    [[nodiscard]] bool hardened() const noexcept {
        return !options_.synchronous && options_.robustness.enabled();
    }

    void onRoundCompletedAtNode(int round, const NodeAgent& agent);
    void startSyncRound();
    void scheduleAsyncTimers();
    void scheduleSampler();

    model::ProblemSpec spec_;
    DistOptions options_;
    sim::Simulator simulator_;
    sim::LatencyModel latency_;
    core::RateAllocator rate_allocator_;
    core::GreedyConsumerAllocator greedy_allocator_;
    std::unique_ptr<faults::FaultInjector> injector_;  ///< null without a plan

    std::vector<std::unique_ptr<SourceAgent>> sources_;  // per flow
    std::vector<std::unique_ptr<NodeAgent>> node_agents_;  // per node
    std::vector<std::unique_ptr<LinkAgent>> link_agents_;  // per link

    metrics::TimeSeries trace_;
    SampleCallback sample_callback_;
    // Synchronous mode: the per-round utility must be computed from the
    // state every node actually used in that round.  Sources on fast
    // subgraphs may already have advanced to round t+1 while slower
    // subgraphs are still finishing round t, so each completing node
    // contributes its round-t rates and populations here.
    struct RoundState {
        std::vector<double> rates;
        std::vector<int> populations;
        std::size_t completions = 0;
    };
    std::unordered_map<int, RoundState> round_states_;
    int completed_rounds_ = 0;
    int target_rounds_ = 0;
    bool sync_started_ = false;  ///< round-1 kickoff happens on first run call
    std::size_t messages_sent_ = 0;
    std::size_t messages_lost_ = 0;
    std::size_t reannouncements_ = 0;
    std::size_t suspicion_events_ = 0;
    std::uint64_t loss_rng_state_ = 0;

    // Observability (all null until attachObservability).
    obs::DistInstruments dist_instr_;
    obs::AllocatorInstruments alloc_instr_;
    bool obs_attached_ = false;
    obs::IterationTracer* tracer_ = nullptr;
};

}  // namespace lrgp::dist
