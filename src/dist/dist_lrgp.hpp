// LRGP as a message-passing distributed protocol (Section 3, Algorithms
// 1-3), running on the discrete-event simulator.
//
// One agent runs per flow source, per consumer-hosting node, and per
// link.  Messages carry rates downstream and (price, population) reports
// upstream, each with a network latency drawn from a LatencyModel.
//
// Two execution modes:
//  * synchronous (the paper's formulation): agents act once per round,
//    after hearing from all their peers for that round.  The resulting
//    per-round utility trace is bit-identical to the centralized
//    LrgpOptimizer — the protocol only distributes the arithmetic.
//  * asynchronous (Section 3.5): every agent acts on a local timer using
//    the freshest values it has, and sources average the last few prices
//    from each resource to tolerate missing or stale reports.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "lrgp/greedy_allocator.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/price_controllers.hpp"
#include "lrgp/rate_allocator.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "sim/simulator.hpp"

namespace lrgp::dist {

struct DistOptions {
    core::GammaPolicy gamma = core::AdaptiveGamma{};
    double link_gamma = 1e-5;
    utility::RateSolveOptions rate_solve;

    bool synchronous = true;
    sim::SimTime latency_min = 0.005;   ///< seconds, per message
    sim::SimTime latency_max = 0.015;
    std::uint32_t seed = 1;

    // Asynchronous mode only:
    sim::SimTime agent_period = 0.05;   ///< local timer period per agent
    std::size_t price_window = 3;       ///< prices averaged per resource
    sim::SimTime sample_period = 0.05;  ///< utility sampling period
    /// Probability that any single protocol message is lost in transit.
    /// The price/rate averaging of Section 3.5 is exactly what tolerates
    /// such loss; only valid in asynchronous mode (sync counts messages).
    double message_loss_probability = 0.0;
};

/// Drives the distributed protocol and records the utility trace.
class DistLrgp {
public:
    DistLrgp(model::ProblemSpec spec, DistOptions options = {});
    ~DistLrgp();

    DistLrgp(const DistLrgp&) = delete;
    DistLrgp& operator=(const DistLrgp&) = delete;

    /// Synchronous mode: runs until `rounds` rounds have completed at
    /// every node.  Throws std::logic_error in asynchronous mode.
    void runRounds(int rounds);

    /// Runs the simulation clock forward `seconds` (either mode).
    void runFor(sim::SimTime seconds);

    /// Schedules a flow source's departure at absolute sim time `when`.
    void removeFlowAt(model::FlowId flow, sim::SimTime when);

    /// Best-known global allocation (latest rates and populations).
    [[nodiscard]] model::Allocation snapshot() const;
    [[nodiscard]] double currentUtility() const;

    /// Sync mode: utility after each completed round (matches the
    /// centralized optimizer's trace).  Async mode: utility sampled every
    /// sample_period seconds.
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept { return trace_; }

    [[nodiscard]] int completedRounds() const noexcept { return completed_rounds_; }
    [[nodiscard]] sim::SimTime now() const noexcept { return simulator_.now(); }
    [[nodiscard]] std::size_t messagesSent() const noexcept { return messages_sent_; }
    [[nodiscard]] std::size_t messagesLost() const noexcept { return messages_lost_; }
    [[nodiscard]] const model::ProblemSpec& problem() const noexcept { return spec_; }

private:
    struct SourceAgent;
    struct NodeAgent;
    struct LinkAgent;

    void deliver(std::function<void()> handler);
    void onRoundCompletedAtNode(int round, const NodeAgent& agent);
    void startSyncRound();
    void scheduleAsyncTimers();
    void scheduleSampler();

    model::ProblemSpec spec_;
    DistOptions options_;
    sim::Simulator simulator_;
    sim::LatencyModel latency_;
    core::RateAllocator rate_allocator_;
    core::GreedyConsumerAllocator greedy_allocator_;

    std::vector<std::unique_ptr<SourceAgent>> sources_;  // per flow
    std::vector<std::unique_ptr<NodeAgent>> node_agents_;  // per node
    std::vector<std::unique_ptr<LinkAgent>> link_agents_;  // per link

    metrics::TimeSeries trace_;
    // Synchronous mode: the per-round utility must be computed from the
    // state every node actually used in that round.  Sources on fast
    // subgraphs may already have advanced to round t+1 while slower
    // subgraphs are still finishing round t, so each completing node
    // contributes its round-t rates and populations here.
    struct RoundState {
        std::vector<double> rates;
        std::vector<int> populations;
        std::size_t completions = 0;
    };
    std::unordered_map<int, RoundState> round_states_;
    int completed_rounds_ = 0;
    int target_rounds_ = 0;
    std::size_t messages_sent_ = 0;
    std::size_t messages_lost_ = 0;
    std::uint64_t loss_rng_state_ = 0;
};

}  // namespace lrgp::dist
