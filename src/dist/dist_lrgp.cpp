#include "dist/dist_lrgp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lrgp::dist {

namespace {

constexpr sim::SimTime kNeverHeard = -std::numeric_limits<sim::SimTime>::infinity();

faults::AgentRef sourceRef(model::FlowId id) {
    return {faults::AgentKind::kSource, static_cast<std::uint32_t>(id.value)};
}
faults::AgentRef nodeRef(model::NodeId id) {
    return {faults::AgentKind::kNode, static_cast<std::uint32_t>(id.value)};
}
faults::AgentRef linkRef(model::LinkId id) {
    return {faults::AgentKind::kLink, static_cast<std::uint32_t>(id.value)};
}

[[maybe_unused]] const char* agent_kind_name(faults::AgentKind kind) {
    switch (kind) {
        case faults::AgentKind::kSource: return "source";
        case faults::AgentKind::kNode: return "node";
        case faults::AgentKind::kLink: return "link";
    }
    return "unknown";
}

}  // namespace

RobustnessOptions RobustnessOptions::standard() {
    RobustnessOptions rb;
    rb.heartbeat_timeout = 0.25;
    rb.price_max_age = 0.6;
    rb.reannounce_backoff_min = 0.05;
    rb.reannounce_backoff_max = 0.8;
    rb.degrade_fraction = 0.5;
    return rb;
}

// ----------------------------------------------------------------- agents

/// One per flow: runs Algorithm 1 (rate allocation) at the flow source.
struct DistLrgp::SourceAgent {
    DistLrgp* driver = nullptr;
    model::FlowId flow;
    bool active = true;
    bool down = false;            ///< crashed (fault injection)
    std::uint32_t timer_epoch = 0;  ///< invalidates stale async timers

    // Latest known populations for this flow's classes (full-size vector,
    // only this flow's class entries are ever non-zero).
    std::vector<int> populations;

    // Latest/windowed prices per resource, timestamped so stale entries
    // can expire; full-size PriceVector rebuilt before each rate
    // computation.
    struct PriceSample {
        sim::SimTime time;
        double value;
    };
    std::unordered_map<std::uint32_t, std::deque<PriceSample>> node_price_window;
    std::unordered_map<std::uint32_t, std::deque<PriceSample>> link_price_window;

    // Heartbeat bookkeeping, one entry per priced resource on the route
    // (nodes first, then links, in route order — the same order
    // computeAndSend visits them).
    struct ResourceWatch {
        bool is_link = false;
        std::uint32_t key = 0;
        sim::SimTime last_heard = 0.0;
        bool suspected = false;
        sim::SimTime next_reannounce = 0.0;
        sim::SimTime backoff = 0.0;
    };
    std::vector<ResourceWatch> watches;
    /// True while contact with more than degrade_fraction of the priced
    /// resources is lost; the source then clamps to r_min.
    bool degraded = false;

    double latest_rate = 0.0;

    // Sync bookkeeping: reports received per round.
    std::unordered_map<int, std::size_t> reports_for_round;
    std::size_t expected_reports = 0;

    void recordPrice(std::unordered_map<std::uint32_t, std::deque<PriceSample>>& window,
                     std::uint32_t key, double price) {
        // Averaging over recent prices is an asynchronous-mode tolerance
        // mechanism (Section 3.5); the synchronous protocol must use
        // exactly the latest price to match the centralized iteration.
        const std::size_t effective_window =
            driver->options_.synchronous ? 1 : driver->options_.price_window;
        auto& dq = window[key];
        dq.push_back(PriceSample{driver->simulator_.now(), price});
        while (dq.size() > effective_window) dq.pop_front();
    }

    /// Stale-price expiry: drops window entries older than price_max_age
    /// but always keeps the newest sample as the last-known price — a
    /// silent resource keeps its final price rather than reverting to 0
    /// (which would send the rate to r_max on no information).
    void prunePriceWindows(sim::SimTime now) {
        const sim::SimTime max_age = driver->options_.robustness.price_max_age;
        if (max_age <= 0.0) return;
        for (auto* window : {&node_price_window, &link_price_window})
            for (auto& [key, dq] : *window)
                while (dq.size() > 1 && now - dq.front().time > max_age) dq.pop_front();
    }

    [[nodiscard]] core::PriceVector assemblePrices() const {
        core::PriceVector prices = core::PriceVector::zeros(driver->spec_.nodeCount(),
                                                            driver->spec_.linkCount());
        for (const auto& [key, dq] : node_price_window) {
            double sum = 0.0;
            for (const PriceSample& p : dq) sum += p.value;
            prices.node[key] = dq.empty() ? 0.0 : sum / static_cast<double>(dq.size());
        }
        for (const auto& [key, dq] : link_price_window) {
            double sum = 0.0;
            for (const PriceSample& p : dq) sum += p.value;
            prices.link[key] = dq.empty() ? 0.0 : sum / static_cast<double>(dq.size());
        }
        return prices;
    }

    void updateSuspicions(sim::SimTime now) {
        const RobustnessOptions& rb = driver->options_.robustness;
        std::size_t suspected_count = 0;
        for (ResourceWatch& w : watches) {
            const bool silent = now - w.last_heard > rb.heartbeat_timeout;
            if (silent && !w.suspected) {
                w.suspected = true;
                w.backoff = rb.reannounce_backoff_min;
                w.next_reannounce = now;
                driver->noteSuspicion("source");
            } else if (!silent && w.suspected) {
                w.suspected = false;
            }
            if (w.suspected) ++suspected_count;
        }
        degraded = !watches.empty() &&
                   static_cast<double>(suspected_count) >
                       rb.degrade_fraction * static_cast<double>(watches.size());
    }

    void touchWatch(bool is_link, std::uint32_t key, sim::SimTime now) {
        for (ResourceWatch& w : watches) {
            if (w.is_link == is_link && w.key == key) {
                w.last_heard = now;
                w.suspected = false;
                return;
            }
        }
    }

    /// Whether this tick should send a rate to watch `idx`: healthy
    /// resources get one every tick; suspected ones only when their
    /// exponential backoff expires (re-announcement without flooding).
    [[nodiscard]] bool shouldSendTo(std::size_t idx, sim::SimTime now) {
        ResourceWatch& w = watches[idx];
        if (!w.suspected) return true;
        const RobustnessOptions& rb = driver->options_.robustness;
        if (rb.reannounce_backoff_min <= 0.0) return true;  // backoff disabled
        if (now >= w.next_reannounce) {
            w.next_reannounce = now + w.backoff;
            w.backoff = std::min(w.backoff * 2.0, rb.reannounce_backoff_max);
            driver->noteReannouncement();
            return true;
        }
        return false;
    }

    void crash() {
        down = true;
        ++timer_epoch;
        node_price_window.clear();
        link_price_window.clear();
        std::fill(populations.begin(), populations.end(), 0);
        latest_rate = 0.0;
        degraded = false;
        reports_for_round.clear();
    }

    void restart() {
        down = false;
        ++timer_epoch;
        // Full state loss: the restarted source has heard from nobody.
        // With hardening on, every resource is immediately suspected, so
        // the first ticks run degraded at r_min until reports arrive —
        // the conservative restart the degradation policy prescribes.
        for (ResourceWatch& w : watches) {
            w.last_heard = kNeverHeard;
            w.suspected = false;
            w.next_reannounce = 0.0;
            w.backoff = 0.0;
        }
        degraded = false;
    }

    void computeAndSend(int round);
    void onNodeReport(model::NodeId node, double price,
                      const std::vector<std::pair<model::ClassId, int>>& pops, int round);
    void onLinkReport(model::LinkId link, double price, int round);
    void onTick(std::uint32_t epoch);
};

/// One per node: runs Algorithm 2 (greedy consumer allocation + pricing).
struct DistLrgp::NodeAgent {
    DistLrgp* driver = nullptr;
    model::NodeId node;
    bool down = false;
    std::uint32_t timer_epoch = 0;
    std::unique_ptr<core::NodePriceController> price_controller;

    std::vector<double> rates;  // latest rate per flow (full-size)
    std::vector<std::pair<model::ClassId, int>> latest_populations;

    // Heartbeats: when each flow's rate was last heard; silent flows are
    // suspected and clamped to their r_min floor for allocation.
    std::vector<sim::SimTime> last_rate_time;  // full-size, per flow
    std::vector<char> flow_suspected;          // full-size, per flow
    std::vector<double> effective_rates;       // scratch for the clamped view

    std::unordered_map<int, std::size_t> rates_for_round;

    [[nodiscard]] std::size_t expectedFlows() const {
        std::size_t n = 0;
        for (model::FlowId i : driver->spec_.flowsAtNode(node))
            if (driver->spec_.flowActive(i)) ++n;
        return n;
    }

    void resetRates() {
        rates.assign(driver->spec_.flowCount(), 0.0);
        for (const model::FlowSpec& f : driver->spec_.flows())
            rates[f.id.index()] = f.rate_min;
    }

    void crash() {
        down = true;
        ++timer_epoch;
        latest_populations.clear();
        rates_for_round.clear();
    }

    void restart() {
        down = false;
        ++timer_epoch;
        // State loss: rates back to the floor, pricing state gone, and
        // every flow starts suspected until a fresh rate arrives.
        resetRates();
        price_controller->reset();
        latest_populations.clear();
        last_rate_time.assign(driver->spec_.flowCount(), kNeverHeard);
        std::fill(flow_suspected.begin(), flow_suspected.end(), 0);
    }

    void allocateAndReport(int round);
    void onRate(model::FlowId flow, double rate, int round);
    void onFlowRemoved(model::FlowId flow);
    void onTick(std::uint32_t epoch);
};

/// One per link: runs Algorithm 3 (gradient-projection link pricing).
struct DistLrgp::LinkAgent {
    DistLrgp* driver = nullptr;
    model::LinkId link;
    bool down = false;
    std::uint32_t timer_epoch = 0;
    std::unique_ptr<core::LinkPriceController> price_controller;

    std::vector<double> rates;
    std::vector<sim::SimTime> last_rate_time;
    std::vector<char> flow_suspected;
    std::unordered_map<int, std::size_t> rates_for_round;

    [[nodiscard]] std::size_t expectedFlows() const {
        std::size_t n = 0;
        for (model::FlowId i : driver->spec_.flowsOnLink(link))
            if (driver->spec_.flowActive(i)) ++n;
        return n;
    }

    void resetRates() {
        rates.assign(driver->spec_.flowCount(), 0.0);
        for (const model::FlowSpec& f : driver->spec_.flows())
            rates[f.id.index()] = f.rate_min;
    }

    void crash() {
        down = true;
        ++timer_epoch;
        rates_for_round.clear();
    }

    void restart() {
        down = false;
        ++timer_epoch;
        resetRates();
        price_controller->reset();
        last_rate_time.assign(driver->spec_.flowCount(), kNeverHeard);
        std::fill(flow_suspected.begin(), flow_suspected.end(), 0);
    }

    void priceAndReport(int round);
    void onRate(model::FlowId flow, double rate, int round);
    void onTick(std::uint32_t epoch);
};

// ---------------------------------------------------------- agent methods

void DistLrgp::SourceAgent::computeAndSend(int round) {
    if (!active || down) return;
    const sim::SimTime now = driver->simulator_.now();
    const bool hardened = driver->hardened();
    if (hardened) {
        updateSuspicions(now);
        prunePriceWindows(now);
    }
    const core::PriceVector prices = assemblePrices();
    double rate = driver->rate_allocator_.computeRate(flow, populations, prices).rate;
    const model::FlowSpec& f = driver->spec_.flow(flow);
    // Graceful degradation: out of touch with most priced resources
    // means the assembled prices are fiction — fall back to the
    // conservative floor instead of trusting them.
    if (degraded) rate = f.rate_min;
    latest_rate = rate;

    std::size_t watch_idx = 0;
    for (const model::FlowNodeHop& hop : f.nodes) {
        const std::size_t idx = watch_idx++;
        if (hardened && !shouldSendTo(idx, now)) continue;
        NodeAgent* target = driver->node_agents_[hop.node.index()].get();
        const model::FlowId flow_copy = flow;
        const double rate_copy = latest_rate;
        driver->sendMessage(
            {sourceRef(flow), nodeRef(hop.node), faults::MessageKind::kRate}, std::nullopt,
            [target, flow_copy, rate_copy, round](double) {
                target->onRate(flow_copy, rate_copy, round);
            });
    }
    for (const model::FlowLinkHop& hop : f.links) {
        const std::size_t idx = watch_idx++;
        if (hardened && !shouldSendTo(idx, now)) continue;
        LinkAgent* target = driver->link_agents_[hop.link.index()].get();
        const model::FlowId flow_copy = flow;
        const double rate_copy = latest_rate;
        driver->sendMessage(
            {sourceRef(flow), linkRef(hop.link), faults::MessageKind::kRate}, std::nullopt,
            [target, flow_copy, rate_copy, round](double) {
                target->onRate(flow_copy, rate_copy, round);
            });
    }
}

void DistLrgp::SourceAgent::onNodeReport(
    model::NodeId node, double price, const std::vector<std::pair<model::ClassId, int>>& pops,
    int round) {
    if (!active || down) return;
    recordPrice(node_price_window, static_cast<std::uint32_t>(node.value), price);
    if (driver->hardened())
        touchWatch(/*is_link=*/false, static_cast<std::uint32_t>(node.value),
                   driver->simulator_.now());
    for (const auto& [cls, n] : pops) populations[cls.index()] = n;
    if (driver->options_.synchronous) {
        if (++reports_for_round[round] == expected_reports) {
            reports_for_round.erase(round);
            computeAndSend(round + 1);
        }
    }
}

void DistLrgp::SourceAgent::onLinkReport(model::LinkId link, double price, int round) {
    if (!active || down) return;
    recordPrice(link_price_window, static_cast<std::uint32_t>(link.value), price);
    if (driver->hardened())
        touchWatch(/*is_link=*/true, static_cast<std::uint32_t>(link.value),
                   driver->simulator_.now());
    if (driver->options_.synchronous) {
        if (++reports_for_round[round] == expected_reports) {
            reports_for_round.erase(round);
            computeAndSend(round + 1);
        }
    }
}

void DistLrgp::SourceAgent::onTick(std::uint32_t epoch) {
    if (epoch != timer_epoch || down || !active) return;
    computeAndSend(/*round=*/-1);
    driver->simulator_.schedule(driver->options_.agent_period,
                                [this, e = timer_epoch] { onTick(e); });
}

void DistLrgp::NodeAgent::allocateAndReport(int round) {
    if (down) return;
    const std::vector<double>* rate_view = &rates;
    if (driver->hardened()) {
        // Failure detection: clamp flows that have gone silent past the
        // heartbeat timeout to their r_min floor — a vanished source no
        // longer holds consumer capacity at its stale (higher) rate.
        const sim::SimTime now = driver->simulator_.now();
        const RobustnessOptions& rb = driver->options_.robustness;
        effective_rates = rates;
        for (model::FlowId i : driver->spec_.flowsAtNode(node)) {
            if (!driver->spec_.flowActive(i)) continue;
            const bool silent = now - last_rate_time[i.index()] > rb.heartbeat_timeout;
            if (silent && !flow_suspected[i.index()]) {
                flow_suspected[i.index()] = 1;
                driver->noteSuspicion("node");
            } else if (!silent) {
                flow_suspected[i.index()] = 0;
            }
            if (silent) {
                const double floor = driver->spec_.flow(i).rate_min;
                effective_rates[i.index()] = std::min(effective_rates[i.index()], floor);
            }
        }
        rate_view = &effective_rates;
    }

    const core::NodeAllocationResult result = driver->greedy_allocator_.allocate(node, *rate_view);
    latest_populations = result.populations;
    const double capacity = driver->spec_.node(node).capacity;
    const double price = price_controller->update(result.best_unmet_bc, result.used, capacity);

    // Group this node's class populations by flow and report to sources.
    for (model::FlowId i : driver->spec_.flowsAtNode(node)) {
        if (!driver->spec_.flowActive(i)) continue;
        std::vector<std::pair<model::ClassId, int>> pops;
        for (const auto& [cls, n] : result.populations)
            if (driver->spec_.consumerClass(cls).flow == i) pops.emplace_back(cls, n);
        SourceAgent* target = driver->sources_[i.index()].get();
        const model::NodeId node_copy = node;
        driver->sendMessage(
            {nodeRef(node), sourceRef(i), faults::MessageKind::kNodeReport}, price,
            [target, node_copy, pops = std::move(pops), round](double delivered_price) {
                target->onNodeReport(node_copy, delivered_price, pops, round);
            });
    }
    if (driver->options_.synchronous && round > 0) driver->onRoundCompletedAtNode(round, *this);
}

void DistLrgp::NodeAgent::onRate(model::FlowId flow, double rate, int round) {
    if (down) return;
    if (!driver->spec_.flowActive(flow)) return;
    rates[flow.index()] = rate;
    last_rate_time[flow.index()] = driver->simulator_.now();
    flow_suspected[flow.index()] = 0;
    if (driver->options_.synchronous) {
        if (++rates_for_round[round] == expectedFlows()) {
            rates_for_round.erase(round);
            allocateAndReport(round);
        }
    }
}

void DistLrgp::NodeAgent::onFlowRemoved(model::FlowId flow) { rates[flow.index()] = 0.0; }

void DistLrgp::NodeAgent::onTick(std::uint32_t epoch) {
    if (epoch != timer_epoch || down) return;
    if (expectedFlows() > 0) allocateAndReport(/*round=*/-1);
    driver->simulator_.schedule(driver->options_.agent_period,
                                [this, e = timer_epoch] { onTick(e); });
}

void DistLrgp::LinkAgent::priceAndReport(int round) {
    if (down) return;
    const bool hardened = driver->hardened();
    const sim::SimTime now = driver->simulator_.now();
    const RobustnessOptions& rb = driver->options_.robustness;
    double usage = 0.0;
    for (model::FlowId i : driver->spec_.flowsOnLink(link)) {
        if (!driver->spec_.flowActive(i)) continue;
        double rate = rates[i.index()];
        if (hardened) {
            const bool silent = now - last_rate_time[i.index()] > rb.heartbeat_timeout;
            if (silent && !flow_suspected[i.index()]) {
                flow_suspected[i.index()] = 1;
                driver->noteSuspicion("link");
            } else if (!silent) {
                flow_suspected[i.index()] = 0;
            }
            if (silent) rate = std::min(rate, driver->spec_.flow(i).rate_min);
        }
        usage += driver->spec_.linkCost(link, i) * rate;
    }
    const double price = price_controller->update(usage, driver->spec_.link(link).capacity);
    for (model::FlowId i : driver->spec_.flowsOnLink(link)) {
        if (!driver->spec_.flowActive(i)) continue;
        SourceAgent* target = driver->sources_[i.index()].get();
        const model::LinkId link_copy = link;
        driver->sendMessage(
            {linkRef(link), sourceRef(i), faults::MessageKind::kLinkReport}, price,
            [target, link_copy, round](double delivered_price) {
                target->onLinkReport(link_copy, delivered_price, round);
            });
    }
}

void DistLrgp::LinkAgent::onRate(model::FlowId flow, double rate, int round) {
    if (down) return;
    if (!driver->spec_.flowActive(flow)) return;
    rates[flow.index()] = rate;
    last_rate_time[flow.index()] = driver->simulator_.now();
    flow_suspected[flow.index()] = 0;
    if (driver->options_.synchronous) {
        if (++rates_for_round[round] == expectedFlows()) {
            rates_for_round.erase(round);
            priceAndReport(round);
        }
    }
}

void DistLrgp::LinkAgent::onTick(std::uint32_t epoch) {
    if (epoch != timer_epoch || down) return;
    if (expectedFlows() > 0) priceAndReport(/*round=*/-1);
    driver->simulator_.schedule(driver->options_.agent_period,
                                [this, e = timer_epoch] { onTick(e); });
}

// ------------------------------------------------------------------ driver

DistOptions DistLrgp::validated(DistOptions options) {
    if (options.latency_min < 0.0)
        throw std::invalid_argument("DistLrgp: latency_min must be >= 0");
    if (options.latency_min > options.latency_max)
        throw std::invalid_argument("DistLrgp: latency_min must be <= latency_max");
    if (options.message_loss_probability < 0.0 || options.message_loss_probability >= 1.0)
        throw std::invalid_argument("DistLrgp: message loss probability must be in [0, 1)");
    if (options.price_window == 0)
        throw std::invalid_argument("DistLrgp: price_window must be >= 1");

    const RobustnessOptions& rb = options.robustness;
    if (rb.heartbeat_timeout < 0.0 || rb.price_max_age < 0.0 ||
        rb.reannounce_backoff_min < 0.0 || rb.reannounce_backoff_max < 0.0)
        throw std::invalid_argument("DistLrgp: robustness timeouts must be >= 0");
    if (rb.degrade_fraction < 0.0 || rb.degrade_fraction > 1.0)
        throw std::invalid_argument("DistLrgp: degrade_fraction must be in [0, 1]");
    if (rb.reannounce_backoff_min > 0.0) {
        if (!rb.enabled())
            throw std::invalid_argument(
                "DistLrgp: re-announcement backoff requires heartbeat_timeout > 0");
        if (rb.reannounce_backoff_min > rb.reannounce_backoff_max)
            throw std::invalid_argument(
                "DistLrgp: reannounce_backoff_min must be <= reannounce_backoff_max");
    }
    if (rb.price_max_age > 0.0 && rb.enabled() && rb.price_max_age < rb.heartbeat_timeout)
        throw std::invalid_argument(
            "DistLrgp: price_max_age (staleness horizon) must be >= heartbeat_timeout — "
            "expiring prices faster than failures are detected leaves suspected resources "
            "with no last-known price to degrade from; raise price_max_age or lower "
            "heartbeat_timeout");
    options.fault_plan.validate();

    if (options.synchronous) {
        // In synchronous mode the per-round utility must be read before any
        // upstream report lands; a strictly positive latency guarantees it.
        if (!(options.latency_min > 0.0))
            throw std::invalid_argument("DistLrgp: synchronous mode needs latency_min > 0");
        // Synchronous rounds count messages; losing, reordering or
        // corrupting one deadlocks or desynchronizes the round.
        if (options.message_loss_probability > 0.0)
            throw std::invalid_argument(
                "DistLrgp: message loss is only meaningful in asynchronous mode");
        if (!options.fault_plan.empty())
            throw std::invalid_argument(
                "DistLrgp: fault injection requires asynchronous mode");
        if (rb.enabled() || rb.price_max_age > 0.0)
            throw std::invalid_argument(
                "DistLrgp: robustness options require asynchronous mode");
    } else {
        if (!(options.agent_period > 0.0))
            throw std::invalid_argument("DistLrgp: agent_period must be > 0");
        if (!(options.sample_period > 0.0))
            throw std::invalid_argument("DistLrgp: sample_period must be > 0");
    }
    return options;
}

DistLrgp::DistLrgp(model::ProblemSpec spec, DistOptions options)
    : spec_(std::move(spec)),
      options_(validated(std::move(options))),
      latency_(options_.latency_min, options_.latency_max, options_.seed),
      rate_allocator_(spec_, options_.rate_solve),
      greedy_allocator_(spec_) {
    loss_rng_state_ = 0x853C49E6748FEA9Bull ^ options_.seed;
    if (!options_.fault_plan.empty()) {
        validateFaultPlanAgents();
        injector_ = std::make_unique<faults::FaultInjector>(options_.fault_plan, options_.seed);
    }

    for (const model::FlowSpec& f : spec_.flows()) {
        auto src = std::make_unique<SourceAgent>();
        src->driver = this;
        src->flow = f.id;
        src->active = f.active;
        src->populations.assign(spec_.classCount(), 0);
        src->expected_reports = f.nodes.size() + f.links.size();
        src->watches.reserve(f.nodes.size() + f.links.size());
        for (const model::FlowNodeHop& hop : f.nodes)
            src->watches.push_back(SourceAgent::ResourceWatch{
                false, static_cast<std::uint32_t>(hop.node.value), 0.0, false, 0.0, 0.0});
        for (const model::FlowLinkHop& hop : f.links)
            src->watches.push_back(SourceAgent::ResourceWatch{
                true, static_cast<std::uint32_t>(hop.link.value), 0.0, false, 0.0, 0.0});
        sources_.push_back(std::move(src));
    }
    for (const model::NodeSpec& b : spec_.nodes()) {
        auto agent = std::make_unique<NodeAgent>();
        agent->driver = this;
        agent->node = b.id;
        agent->price_controller = std::make_unique<core::NodePriceController>(options_.gamma);
        agent->resetRates();
        agent->last_rate_time.assign(spec_.flowCount(), 0.0);
        agent->flow_suspected.assign(spec_.flowCount(), 0);
        node_agents_.push_back(std::move(agent));
    }
    for (const model::LinkSpec& l : spec_.links()) {
        auto agent = std::make_unique<LinkAgent>();
        agent->driver = this;
        agent->link = l.id;
        agent->price_controller =
            std::make_unique<core::LinkPriceController>(options_.link_gamma);
        agent->resetRates();
        agent->last_rate_time.assign(spec_.flowCount(), 0.0);
        agent->flow_suspected.assign(spec_.flowCount(), 0);
        link_agents_.push_back(std::move(agent));
    }

    scheduleCrashes();

    // Synchronous kickoff (the round-1 announcements) is deferred to the
    // first run call so a registry attached between construction and
    // runRounds() observes every message.
    if (!options_.synchronous) {
        scheduleAsyncTimers();
        scheduleSampler();
    }
}

DistLrgp::~DistLrgp() = default;

void DistLrgp::validateFaultPlanAgents() const {
    auto check = [this](const faults::AgentRef& ref, const char* what) {
        std::size_t count = 0;
        switch (ref.kind) {
            case faults::AgentKind::kSource: count = spec_.flowCount(); break;
            case faults::AgentKind::kNode: count = spec_.nodeCount(); break;
            case faults::AgentKind::kLink: count = spec_.linkCount(); break;
        }
        if (ref.index >= count)
            throw std::invalid_argument(std::string("DistLrgp: fault plan ") + what +
                                        " references an agent outside the problem");
    };
    const faults::FaultPlan& plan = options_.fault_plan;
    for (const auto& f : plan.losses) {
        if (f.from) check(*f.from, "loss burst");
        if (f.to) check(*f.to, "loss burst");
    }
    for (const auto& f : plan.delay_spikes) {
        if (f.from) check(*f.from, "delay spike");
        if (f.to) check(*f.to, "delay spike");
    }
    for (const auto& f : plan.partitions)
        for (const auto& member : f.island) check(member, "partition");
    for (const auto& f : plan.asymmetric_partitions)
        for (const auto& member : f.island) check(member, "asymmetric partition");
    for (const auto& f : plan.crashes) check(f.agent, "crash");
    for (const auto& f : plan.corruptions)
        if (f.from) check(*f.from, "price corruption");
}

void DistLrgp::sendMessage(const faults::MessageContext& ctx, std::optional<double> price,
                           std::function<void(double)> handler) {
    ++messages_sent_;
    if constexpr (obs::kEnabled) {
        if (obs_attached_) {
            switch (ctx.kind) {
                case faults::MessageKind::kRate: dist_instr_.sent_rate->add(1); break;
                case faults::MessageKind::kNodeReport:
                    dist_instr_.sent_node_report->add(1);
                    break;
                case faults::MessageKind::kLinkReport:
                    dist_instr_.sent_link_report->add(1);
                    break;
            }
        }
    }
    if (options_.message_loss_probability > 0.0) {
        // xorshift64: deterministic loss pattern per seed.
        loss_rng_state_ ^= loss_rng_state_ << 13;
        loss_rng_state_ ^= loss_rng_state_ >> 7;
        loss_rng_state_ ^= loss_rng_state_ << 17;
        const double unit = static_cast<double>(loss_rng_state_ >> 11) * 0x1.0p-53;
        if (unit < options_.message_loss_probability) {
            ++messages_lost_;
            if constexpr (obs::kEnabled)
                if (obs_attached_) dist_instr_.dropped_loss->add(1);
            return;  // dropped in transit
        }
    }
    sim::SimTime extra_delay = 0.0;
    double payload = price.value_or(0.0);
    if (injector_) {
        const faults::FaultDecision decision = injector_->onMessage(ctx, simulator_.now());
        if (decision.drop) {
            ++messages_lost_;
            if constexpr (obs::kEnabled)
                if (obs_attached_) dist_instr_.dropped_fault->add(1);
            return;
        }
        extra_delay = decision.extra_delay;
        if (price) payload *= decision.price_factor;
    }
    simulator_.schedule(latency_.sample() + extra_delay,
                        [this, h = std::move(handler), payload] {
                            if constexpr (obs::kEnabled)
                                if (obs_attached_) dist_instr_.delivered->add(1);
                            h(payload);
                        });
}

void DistLrgp::scheduleCrashes() {
    for (const faults::CrashEvent& c : options_.fault_plan.crashes) {
        simulator_.scheduleAt(c.at, [this, agent = c.agent] { crashAgent(agent); });
        if (std::isfinite(c.restart_at))
            simulator_.scheduleAt(c.restart_at, [this, agent = c.agent] { restartAgent(agent); });
    }
}

void DistLrgp::crashAgent(faults::AgentRef agent) {
    switch (agent.kind) {
        case faults::AgentKind::kSource: {
            SourceAgent* a = sources_[agent.index].get();
            if (a->down) return;
            a->crash();
            break;
        }
        case faults::AgentKind::kNode: {
            NodeAgent* a = node_agents_[agent.index].get();
            if (a->down) return;
            a->crash();
            break;
        }
        case faults::AgentKind::kLink: {
            LinkAgent* a = link_agents_[agent.index].get();
            if (a->down) return;
            a->crash();
            break;
        }
    }
    if (injector_) injector_->noteCrash();
    if constexpr (obs::kEnabled) {
        if (obs_attached_) dist_instr_.crashes->add(1);
        if (tracer_)
            tracer_->instant("crash", "dist", agent.index, simMicros(),
                             {{"kind", std::string(agent_kind_name(agent.kind))}});
    }
}

void DistLrgp::restartAgent(faults::AgentRef agent) {
    switch (agent.kind) {
        case faults::AgentKind::kSource: {
            SourceAgent* a = sources_[agent.index].get();
            if (!a->down) return;
            a->restart();
            a->onTick(a->timer_epoch);
            break;
        }
        case faults::AgentKind::kNode: {
            NodeAgent* a = node_agents_[agent.index].get();
            if (!a->down) return;
            a->restart();
            a->onTick(a->timer_epoch);
            break;
        }
        case faults::AgentKind::kLink: {
            LinkAgent* a = link_agents_[agent.index].get();
            if (!a->down) return;
            a->restart();
            a->onTick(a->timer_epoch);
            break;
        }
    }
    if (injector_) injector_->noteRestart();
    if constexpr (obs::kEnabled) {
        if (obs_attached_) dist_instr_.restarts->add(1);
        if (tracer_)
            tracer_->instant("restart", "dist", agent.index, simMicros(),
                             {{"kind", std::string(agent_kind_name(agent.kind))}});
    }
}

bool DistLrgp::agentDown(faults::AgentRef agent) const {
    switch (agent.kind) {
        case faults::AgentKind::kSource: return sources_.at(agent.index)->down;
        case faults::AgentKind::kNode: return node_agents_.at(agent.index)->down;
        case faults::AgentKind::kLink: return link_agents_.at(agent.index)->down;
    }
    return false;
}

faults::FaultStats DistLrgp::faultStats() const {
    return injector_ ? injector_->stats() : faults::FaultStats{};
}

void DistLrgp::attachObservability(obs::Registry* registry, obs::IterationTracer* tracer) {
    if constexpr (obs::kEnabled) {
        if (registry != nullptr) {
            dist_instr_ = obs::DistInstruments::resolve(*registry);
            alloc_instr_ = obs::AllocatorInstruments::resolve(*registry);
            rate_allocator_.setInstruments(&alloc_instr_);
            greedy_allocator_.setInstruments(&alloc_instr_);
            obs_attached_ = true;
        } else {
            rate_allocator_.setInstruments(nullptr);
            greedy_allocator_.setInstruments(nullptr);
            obs_attached_ = false;
        }
        tracer_ = tracer;
    } else {
        (void)registry;
        (void)tracer;
    }
}

void DistLrgp::noteSuspicion(const char* who) {
    ++suspicion_events_;
    if constexpr (obs::kEnabled) {
        if (obs_attached_) dist_instr_.suspicions->add(1);
        if (tracer_)
            tracer_->instant("suspicion", "dist", 0, simMicros(),
                             {{"watcher", std::string(who)}});
    } else {
        (void)who;
    }
}

void DistLrgp::noteReannouncement() {
    ++reannouncements_;
    if constexpr (obs::kEnabled) {
        if (obs_attached_) dist_instr_.reannouncements->add(1);
        if (tracer_) tracer_->instant("reannounce", "dist", 0, simMicros());
    }
}

void DistLrgp::startSyncRound() {
    for (auto& src : sources_)
        if (src->active) src->computeAndSend(1);
}

void DistLrgp::scheduleAsyncTimers() {
    // Stagger agent timers so they do not act in lockstep.
    const std::size_t agent_count =
        sources_.size() + node_agents_.size() + link_agents_.size();
    std::size_t k = 0;
    auto phase = [&] {
        return options_.agent_period * static_cast<double>(++k) /
               static_cast<double>(agent_count + 1);
    };
    for (auto& src : sources_) {
        SourceAgent* agent = src.get();
        simulator_.schedule(phase(), [agent, e = agent->timer_epoch] { agent->onTick(e); });
    }
    for (auto& na : node_agents_) {
        NodeAgent* agent = na.get();
        simulator_.schedule(phase(), [agent, e = agent->timer_epoch] { agent->onTick(e); });
    }
    for (auto& la : link_agents_) {
        LinkAgent* agent = la.get();
        simulator_.schedule(phase(), [agent, e = agent->timer_epoch] { agent->onTick(e); });
    }
}

void DistLrgp::scheduleSampler() {
    simulator_.schedule(options_.sample_period, [this] {
        const model::Allocation allocation = snapshot();
        const double utility = model::total_utility(spec_, allocation);
        trace_.append(utility);
        if constexpr (obs::kEnabled) {
            if (obs_attached_) dist_instr_.utility->set(utility);
            if (tracer_) tracer_->counterSample("dist_utility", 0, simMicros(), utility);
        }
        if (sample_callback_) sample_callback_(simulator_.now(), allocation);
        scheduleSampler();
    });
}

void DistLrgp::onRoundCompletedAtNode(int round, const NodeAgent& agent) {
    RoundState& state = round_states_[round];
    if (state.rates.empty()) {
        state.rates.assign(spec_.flowCount(), 0.0);
        state.populations.assign(spec_.classCount(), 0);
    }
    // Contribute the rates this node used (identical values arrive from
    // every node a flow reaches) and the populations it just allocated.
    for (model::FlowId i : spec_.flowsAtNode(agent.node))
        if (spec_.flowActive(i)) state.rates[i.index()] = agent.rates[i.index()];
    for (const auto& [cls, n] : agent.latest_populations)
        state.populations[cls.index()] = n;

    std::size_t participating = 0;
    for (const auto& node_agent : node_agents_)
        if (node_agent->expectedFlows() > 0) ++participating;
    if (++state.completions == participating) {
        model::Allocation allocation{std::move(state.rates), std::move(state.populations)};
        round_states_.erase(round);
        completed_rounds_ = std::max(completed_rounds_, round);
        const double utility = model::total_utility(spec_, allocation);
        trace_.append(utility);
        if constexpr (obs::kEnabled) {
            if (obs_attached_) {
                dist_instr_.rounds->add(1);
                dist_instr_.utility->set(utility);
            }
            if (tracer_) {
                tracer_->counterSample("dist_utility", 0, simMicros(), utility);
                tracer_->instant("round_complete", "dist",
                                 static_cast<std::uint32_t>(round), simMicros(),
                                 {{"round", static_cast<double>(round)},
                                  {"utility", utility}});
            }
        }
        if (sample_callback_) sample_callback_(simulator_.now(), allocation);
    }
}

void DistLrgp::runRounds(int rounds) {
    if (!options_.synchronous)
        throw std::logic_error("DistLrgp::runRounds: only available in synchronous mode");
    if (rounds <= 0) throw std::invalid_argument("DistLrgp::runRounds: rounds must be > 0");
    if (!sync_started_) {
        sync_started_ = true;
        startSyncRound();
    }
    target_rounds_ = completed_rounds_ + rounds;
    // Process events until the target round completes (each round needs a
    // bounded number of events, so runOne cannot spin forever unless the
    // protocol deadlocks; the cap turns a deadlock into an exception).
    std::size_t guard = 0;
    const std::size_t max_events =
        static_cast<std::size_t>(target_rounds_ + 2) *
        (spec_.flowCount() + 2) * (spec_.nodeCount() + spec_.linkCount() + 2) * 8;
    while (completed_rounds_ < target_rounds_) {
        if (!simulator_.runOne())
            throw std::logic_error("DistLrgp::runRounds: protocol deadlocked (no events)");
        if (++guard > max_events)
            throw std::logic_error("DistLrgp::runRounds: event budget exceeded");
    }
}

std::size_t DistLrgp::eventBudget(sim::SimTime seconds) const {
    // A generous upper bound on legitimate event counts for a window of
    // `seconds`: per timer period each agent ticks once and every hop
    // can carry a message down and a report up (plus deliveries), and
    // the sampler fires every sample_period.  Anything far beyond this
    // is a runaway scheduling loop, not a busy protocol.
    const double hops = static_cast<double>(spec_.totalFlowNodeHops() + spec_.totalFlowLinkHops());
    const double agents =
        static_cast<double>(spec_.flowCount() + spec_.nodeCount() + spec_.linkCount());
    double per_second = 0.0;
    if (options_.synchronous) {
        per_second = (4.0 * hops + agents + 8.0) / std::max(options_.latency_min, 1e-6);
    } else {
        per_second = (4.0 * hops + 2.0 * agents + 8.0) / options_.agent_period +
                     2.0 / options_.sample_period;
    }
    const double budget = (per_second * (seconds + 1.0) + 4096.0) * 8.0;
    constexpr double kMin = 1u << 20;
    return static_cast<std::size_t>(std::min(std::max(budget, kMin), 9.0e18));
}

void DistLrgp::runFor(sim::SimTime seconds) {
    if (seconds < 0.0) throw std::invalid_argument("DistLrgp::runFor: negative duration");
    if (options_.synchronous && !sync_started_) {
        sync_started_ = true;
        startSyncRound();
    }
    const sim::SimTime until = simulator_.now() + seconds;
    const std::size_t budget = eventBudget(seconds);
    const std::size_t processed = simulator_.runUntil(until, budget);
    if (processed >= budget) {
        // The cap is only an error if work within the window remains —
        // i.e. the calendar kept growing faster than time advanced.
        const std::optional<sim::SimTime> next = simulator_.nextEventTime();
        if (next && *next <= until)
            throw std::logic_error(
                "DistLrgp::runFor: event budget exceeded (runaway event scheduling)");
    }
}

void DistLrgp::removeFlowAt(model::FlowId flow, sim::SimTime when) {
    if (options_.synchronous)
        throw std::logic_error(
            "DistLrgp::removeFlowAt: only supported in asynchronous mode; use the "
            "centralized LrgpOptimizer for synchronous recovery experiments");
    simulator_.scheduleAt(when, [this, flow] {
        if (!spec_.flowActive(flow)) return;
        spec_.setFlowActive(flow, false);
        sources_[flow.index()]->active = false;
        sources_[flow.index()]->latest_rate = 0.0;
        const model::FlowSpec& f = spec_.flow(flow);
        for (const model::FlowNodeHop& hop : f.nodes)
            node_agents_[hop.node.index()]->onFlowRemoved(flow);
    });
}

model::Allocation DistLrgp::snapshot() const {
    model::Allocation alloc;
    alloc.rates.assign(spec_.flowCount(), 0.0);
    alloc.populations.assign(spec_.classCount(), 0);
    for (const auto& src : sources_)
        alloc.rates[src->flow.index()] = (src->active && !src->down) ? src->latest_rate : 0.0;
    for (const auto& agent : node_agents_) {
        if (agent->down) continue;  // a crashed node serves no consumers
        for (const auto& [cls, n] : agent->latest_populations)
            alloc.populations[cls.index()] = spec_.flowActive(spec_.consumerClass(cls).flow)
                                                 ? n
                                                 : 0;
    }
    return alloc;
}

double DistLrgp::currentUtility() const { return model::total_utility(spec_, snapshot()); }

}  // namespace lrgp::dist
