#include "dist/dist_lrgp.hpp"

#include <algorithm>
#include <stdexcept>

namespace lrgp::dist {

// ----------------------------------------------------------------- agents

/// One per flow: runs Algorithm 1 (rate allocation) at the flow source.
struct DistLrgp::SourceAgent {
    DistLrgp* driver = nullptr;
    model::FlowId flow;
    bool active = true;

    // Latest known populations for this flow's classes (full-size vector,
    // only this flow's class entries are ever non-zero).
    std::vector<int> populations;
    // Latest/windowed prices per resource; full-size PriceVector rebuilt
    // from these before each rate computation.
    std::unordered_map<std::uint32_t, std::deque<double>> node_price_window;
    std::unordered_map<std::uint32_t, std::deque<double>> link_price_window;

    double latest_rate = 0.0;

    // Sync bookkeeping: reports received per round.
    std::unordered_map<int, std::size_t> reports_for_round;
    std::size_t expected_reports = 0;

    void recordPrice(std::unordered_map<std::uint32_t, std::deque<double>>& window,
                     std::uint32_t key, double price) {
        // Averaging over stale prices is an asynchronous-mode tolerance
        // mechanism (Section 3.5); the synchronous protocol must use
        // exactly the latest price to match the centralized iteration.
        const std::size_t effective_window =
            driver->options_.synchronous ? 1 : driver->options_.price_window;
        auto& dq = window[key];
        dq.push_back(price);
        while (dq.size() > effective_window) dq.pop_front();
    }

    [[nodiscard]] core::PriceVector assemblePrices() const {
        core::PriceVector prices = core::PriceVector::zeros(driver->spec_.nodeCount(),
                                                            driver->spec_.linkCount());
        for (const auto& [key, dq] : node_price_window) {
            double sum = 0.0;
            for (double p : dq) sum += p;
            prices.node[key] = dq.empty() ? 0.0 : sum / static_cast<double>(dq.size());
        }
        for (const auto& [key, dq] : link_price_window) {
            double sum = 0.0;
            for (double p : dq) sum += p;
            prices.link[key] = dq.empty() ? 0.0 : sum / static_cast<double>(dq.size());
        }
        return prices;
    }

    void computeAndSend(int round);
    void onNodeReport(model::NodeId node, double price,
                      const std::vector<std::pair<model::ClassId, int>>& pops, int round);
    void onLinkReport(model::LinkId link, double price, int round);
    void onTick();
};

/// One per node: runs Algorithm 2 (greedy consumer allocation + pricing).
struct DistLrgp::NodeAgent {
    DistLrgp* driver = nullptr;
    model::NodeId node;
    std::unique_ptr<core::NodePriceController> price_controller;

    std::vector<double> rates;  // latest rate per flow (full-size)
    std::vector<std::pair<model::ClassId, int>> latest_populations;

    std::unordered_map<int, std::size_t> rates_for_round;

    [[nodiscard]] std::size_t expectedFlows() const {
        std::size_t n = 0;
        for (model::FlowId i : driver->spec_.flowsAtNode(node))
            if (driver->spec_.flowActive(i)) ++n;
        return n;
    }

    void allocateAndReport(int round);
    void onRate(model::FlowId flow, double rate, int round);
    void onFlowRemoved(model::FlowId flow);
    void onTick();
};

/// One per link: runs Algorithm 3 (gradient-projection link pricing).
struct DistLrgp::LinkAgent {
    DistLrgp* driver = nullptr;
    model::LinkId link;
    std::unique_ptr<core::LinkPriceController> price_controller;

    std::vector<double> rates;
    std::unordered_map<int, std::size_t> rates_for_round;

    [[nodiscard]] std::size_t expectedFlows() const {
        std::size_t n = 0;
        for (model::FlowId i : driver->spec_.flowsOnLink(link))
            if (driver->spec_.flowActive(i)) ++n;
        return n;
    }

    void priceAndReport(int round);
    void onRate(model::FlowId flow, double rate, int round);
    void onTick();
};

// ---------------------------------------------------------- agent methods

void DistLrgp::SourceAgent::computeAndSend(int round) {
    if (!active) return;
    const core::PriceVector prices = assemblePrices();
    latest_rate = driver->rate_allocator_.computeRate(flow, populations, prices).rate;

    const model::FlowSpec& f = driver->spec_.flow(flow);
    for (const model::FlowNodeHop& hop : f.nodes) {
        NodeAgent* target = driver->node_agents_[hop.node.index()].get();
        const model::FlowId flow_copy = flow;
        const double rate_copy = latest_rate;
        driver->deliver([target, flow_copy, rate_copy, round] {
            target->onRate(flow_copy, rate_copy, round);
        });
    }
    for (const model::FlowLinkHop& hop : f.links) {
        LinkAgent* target = driver->link_agents_[hop.link.index()].get();
        const model::FlowId flow_copy = flow;
        const double rate_copy = latest_rate;
        driver->deliver([target, flow_copy, rate_copy, round] {
            target->onRate(flow_copy, rate_copy, round);
        });
    }
}

void DistLrgp::SourceAgent::onNodeReport(
    model::NodeId node, double price, const std::vector<std::pair<model::ClassId, int>>& pops,
    int round) {
    if (!active) return;
    recordPrice(node_price_window, node.value, price);
    for (const auto& [cls, n] : pops) populations[cls.index()] = n;
    if (driver->options_.synchronous) {
        if (++reports_for_round[round] == expected_reports) {
            reports_for_round.erase(round);
            computeAndSend(round + 1);
        }
    }
}

void DistLrgp::SourceAgent::onLinkReport(model::LinkId link, double price, int round) {
    if (!active) return;
    recordPrice(link_price_window, link.value, price);
    if (driver->options_.synchronous) {
        if (++reports_for_round[round] == expected_reports) {
            reports_for_round.erase(round);
            computeAndSend(round + 1);
        }
    }
}

void DistLrgp::SourceAgent::onTick() {
    if (!active) return;
    computeAndSend(/*round=*/-1);
    driver->simulator_.schedule(driver->options_.agent_period, [this] { onTick(); });
}

void DistLrgp::NodeAgent::allocateAndReport(int round) {
    const core::NodeAllocationResult result = driver->greedy_allocator_.allocate(node, rates);
    latest_populations = result.populations;
    const double capacity = driver->spec_.node(node).capacity;
    const double price = price_controller->update(result.best_unmet_bc, result.used, capacity);

    // Group this node's class populations by flow and report to sources.
    for (model::FlowId i : driver->spec_.flowsAtNode(node)) {
        if (!driver->spec_.flowActive(i)) continue;
        std::vector<std::pair<model::ClassId, int>> pops;
        for (const auto& [cls, n] : result.populations)
            if (driver->spec_.consumerClass(cls).flow == i) pops.emplace_back(cls, n);
        SourceAgent* target = driver->sources_[i.index()].get();
        const model::NodeId node_copy = node;
        driver->deliver([target, node_copy, price, pops = std::move(pops), round] {
            target->onNodeReport(node_copy, price, pops, round);
        });
    }
    if (driver->options_.synchronous && round > 0) driver->onRoundCompletedAtNode(round, *this);
}

void DistLrgp::NodeAgent::onRate(model::FlowId flow, double rate, int round) {
    if (!driver->spec_.flowActive(flow)) return;
    rates[flow.index()] = rate;
    if (driver->options_.synchronous) {
        if (++rates_for_round[round] == expectedFlows()) {
            rates_for_round.erase(round);
            allocateAndReport(round);
        }
    }
}

void DistLrgp::NodeAgent::onFlowRemoved(model::FlowId flow) { rates[flow.index()] = 0.0; }

void DistLrgp::NodeAgent::onTick() {
    if (expectedFlows() > 0) allocateAndReport(/*round=*/-1);
    driver->simulator_.schedule(driver->options_.agent_period, [this] { onTick(); });
}

void DistLrgp::LinkAgent::priceAndReport(int round) {
    double usage = 0.0;
    for (model::FlowId i : driver->spec_.flowsOnLink(link)) {
        if (!driver->spec_.flowActive(i)) continue;
        usage += driver->spec_.linkCost(link, i) * rates[i.index()];
    }
    const double price = price_controller->update(usage, driver->spec_.link(link).capacity);
    for (model::FlowId i : driver->spec_.flowsOnLink(link)) {
        if (!driver->spec_.flowActive(i)) continue;
        SourceAgent* target = driver->sources_[i.index()].get();
        const model::LinkId link_copy = link;
        driver->deliver(
            [target, link_copy, price, round] { target->onLinkReport(link_copy, price, round); });
    }
}

void DistLrgp::LinkAgent::onRate(model::FlowId flow, double rate, int round) {
    if (!driver->spec_.flowActive(flow)) return;
    rates[flow.index()] = rate;
    if (driver->options_.synchronous) {
        if (++rates_for_round[round] == expectedFlows()) {
            rates_for_round.erase(round);
            priceAndReport(round);
        }
    }
}

void DistLrgp::LinkAgent::onTick() {
    if (expectedFlows() > 0) priceAndReport(/*round=*/-1);
    driver->simulator_.schedule(driver->options_.agent_period, [this] { onTick(); });
}

// ------------------------------------------------------------------ driver

DistLrgp::DistLrgp(model::ProblemSpec spec, DistOptions options)
    : spec_(std::move(spec)),
      options_(options),
      latency_(options.latency_min, options.latency_max, options.seed),
      rate_allocator_(spec_, options.rate_solve),
      greedy_allocator_(spec_) {
    if (options_.price_window == 0)
        throw std::invalid_argument("DistLrgp: price_window must be >= 1");
    // In synchronous mode the per-round utility must be read before any
    // upstream report lands; a strictly positive latency guarantees it.
    if (options_.synchronous && !(options_.latency_min > 0.0))
        throw std::invalid_argument("DistLrgp: synchronous mode needs latency_min > 0");
    if (options_.message_loss_probability < 0.0 || options_.message_loss_probability >= 1.0)
        throw std::invalid_argument("DistLrgp: message loss probability must be in [0, 1)");
    // Synchronous rounds count messages; losing one deadlocks the round.
    if (options_.synchronous && options_.message_loss_probability > 0.0)
        throw std::invalid_argument(
            "DistLrgp: message loss is only meaningful in asynchronous mode");
    loss_rng_state_ = 0x853C49E6748FEA9Bull ^ options_.seed;

    for (const model::FlowSpec& f : spec_.flows()) {
        auto src = std::make_unique<SourceAgent>();
        src->driver = this;
        src->flow = f.id;
        src->active = f.active;
        src->populations.assign(spec_.classCount(), 0);
        src->expected_reports = f.nodes.size() + f.links.size();
        sources_.push_back(std::move(src));
    }
    for (const model::NodeSpec& b : spec_.nodes()) {
        auto agent = std::make_unique<NodeAgent>();
        agent->driver = this;
        agent->node = b.id;
        agent->price_controller = std::make_unique<core::NodePriceController>(options_.gamma);
        agent->rates.assign(spec_.flowCount(), 0.0);
        for (const model::FlowSpec& f : spec_.flows())
            agent->rates[f.id.index()] = f.rate_min;
        node_agents_.push_back(std::move(agent));
    }
    for (const model::LinkSpec& l : spec_.links()) {
        auto agent = std::make_unique<LinkAgent>();
        agent->driver = this;
        agent->link = l.id;
        agent->price_controller =
            std::make_unique<core::LinkPriceController>(options_.link_gamma);
        agent->rates.assign(spec_.flowCount(), 0.0);
        for (const model::FlowSpec& f : spec_.flows())
            agent->rates[f.id.index()] = f.rate_min;
        link_agents_.push_back(std::move(agent));
    }

    if (options_.synchronous) {
        startSyncRound();
    } else {
        scheduleAsyncTimers();
        scheduleSampler();
    }
}

DistLrgp::~DistLrgp() = default;

void DistLrgp::deliver(std::function<void()> handler) {
    ++messages_sent_;
    if (options_.message_loss_probability > 0.0) {
        // xorshift64: deterministic loss pattern per seed.
        loss_rng_state_ ^= loss_rng_state_ << 13;
        loss_rng_state_ ^= loss_rng_state_ >> 7;
        loss_rng_state_ ^= loss_rng_state_ << 17;
        const double unit = static_cast<double>(loss_rng_state_ >> 11) * 0x1.0p-53;
        if (unit < options_.message_loss_probability) {
            ++messages_lost_;
            return;  // dropped in transit
        }
    }
    simulator_.schedule(latency_.sample(), std::move(handler));
}

void DistLrgp::startSyncRound() {
    for (auto& src : sources_)
        if (src->active) src->computeAndSend(1);
}

void DistLrgp::scheduleAsyncTimers() {
    // Stagger agent timers so they do not act in lockstep.
    const std::size_t agent_count =
        sources_.size() + node_agents_.size() + link_agents_.size();
    std::size_t k = 0;
    auto phase = [&] {
        return options_.agent_period * static_cast<double>(++k) /
               static_cast<double>(agent_count + 1);
    };
    for (auto& src : sources_) {
        SourceAgent* agent = src.get();
        simulator_.schedule(phase(), [agent] { agent->onTick(); });
    }
    for (auto& na : node_agents_) {
        NodeAgent* agent = na.get();
        simulator_.schedule(phase(), [agent] { agent->onTick(); });
    }
    for (auto& la : link_agents_) {
        LinkAgent* agent = la.get();
        simulator_.schedule(phase(), [agent] { agent->onTick(); });
    }
}

void DistLrgp::scheduleSampler() {
    simulator_.schedule(options_.sample_period, [this] {
        trace_.append(currentUtility());
        scheduleSampler();
    });
}

void DistLrgp::onRoundCompletedAtNode(int round, const NodeAgent& agent) {
    RoundState& state = round_states_[round];
    if (state.rates.empty()) {
        state.rates.assign(spec_.flowCount(), 0.0);
        state.populations.assign(spec_.classCount(), 0);
    }
    // Contribute the rates this node used (identical values arrive from
    // every node a flow reaches) and the populations it just allocated.
    for (model::FlowId i : spec_.flowsAtNode(agent.node))
        if (spec_.flowActive(i)) state.rates[i.index()] = agent.rates[i.index()];
    for (const auto& [cls, n] : agent.latest_populations)
        state.populations[cls.index()] = n;

    std::size_t participating = 0;
    for (const auto& node_agent : node_agents_)
        if (node_agent->expectedFlows() > 0) ++participating;
    if (++state.completions == participating) {
        model::Allocation allocation{std::move(state.rates), std::move(state.populations)};
        round_states_.erase(round);
        completed_rounds_ = std::max(completed_rounds_, round);
        trace_.append(model::total_utility(spec_, allocation));
    }
}

void DistLrgp::runRounds(int rounds) {
    if (!options_.synchronous)
        throw std::logic_error("DistLrgp::runRounds: only available in synchronous mode");
    if (rounds <= 0) throw std::invalid_argument("DistLrgp::runRounds: rounds must be > 0");
    target_rounds_ = completed_rounds_ + rounds;
    // Process events until the target round completes (each round needs a
    // bounded number of events, so runOne cannot spin forever unless the
    // protocol deadlocks; the cap turns a deadlock into an exception).
    std::size_t guard = 0;
    const std::size_t max_events =
        static_cast<std::size_t>(target_rounds_ + 2) *
        (spec_.flowCount() + 2) * (spec_.nodeCount() + spec_.linkCount() + 2) * 8;
    while (completed_rounds_ < target_rounds_) {
        if (!simulator_.runOne())
            throw std::logic_error("DistLrgp::runRounds: protocol deadlocked (no events)");
        if (++guard > max_events)
            throw std::logic_error("DistLrgp::runRounds: event budget exceeded");
    }
}

void DistLrgp::runFor(sim::SimTime seconds) {
    if (seconds < 0.0) throw std::invalid_argument("DistLrgp::runFor: negative duration");
    simulator_.runUntil(simulator_.now() + seconds);
}

void DistLrgp::removeFlowAt(model::FlowId flow, sim::SimTime when) {
    if (options_.synchronous)
        throw std::logic_error(
            "DistLrgp::removeFlowAt: only supported in asynchronous mode; use the "
            "centralized LrgpOptimizer for synchronous recovery experiments");
    simulator_.scheduleAt(when, [this, flow] {
        if (!spec_.flowActive(flow)) return;
        spec_.setFlowActive(flow, false);
        sources_[flow.index()]->active = false;
        sources_[flow.index()]->latest_rate = 0.0;
        const model::FlowSpec& f = spec_.flow(flow);
        for (const model::FlowNodeHop& hop : f.nodes)
            node_agents_[hop.node.index()]->onFlowRemoved(flow);
    });
}

model::Allocation DistLrgp::snapshot() const {
    model::Allocation alloc;
    alloc.rates.assign(spec_.flowCount(), 0.0);
    alloc.populations.assign(spec_.classCount(), 0);
    for (const auto& src : sources_)
        alloc.rates[src->flow.index()] = src->active ? src->latest_rate : 0.0;
    for (const auto& agent : node_agents_)
        for (const auto& [cls, n] : agent->latest_populations)
            alloc.populations[cls.index()] = spec_.flowActive(spec_.consumerClass(cls).flow)
                                                 ? n
                                                 : 0;
    return alloc;
}

double DistLrgp::currentUtility() const { return model::total_utility(spec_, snapshot()); }

}  // namespace lrgp::dist
