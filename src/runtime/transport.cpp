#include "runtime/transport.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lrgp::runtime {

namespace {

/// xorshift64 step (same generator family as faults::FaultInjector);
/// each sender owns one stream so draws are interleaving-independent.
std::uint64_t xorshift64(std::uint64_t& state) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

double uniform01(std::uint64_t& state) {
    return static_cast<double>(xorshift64(state) >> 11) * 0x1.0p-53;
}

}  // namespace

ChannelTransport::ChannelTransport(int agents, TransportOptions options)
    : options_(std::move(options)) {
    if (agents < 1)
        throw std::invalid_argument("ChannelTransport: agents must be >= 1");
    if (!(options_.latency_min > 0.0))
        throw std::invalid_argument(
            "ChannelTransport: latency_min must be > 0 — zero-latency delivery would let a "
            "message arrive inside its own send tick and break the lockstep determinism "
            "contract");
    if (!(options_.latency_max >= options_.latency_min))
        throw std::invalid_argument("ChannelTransport: latency_max must be >= latency_min");
    if (options_.queue_capacity < 1)
        throw std::invalid_argument("ChannelTransport: queue_capacity must be >= 1");
    options_.fault_plan.validate();

    senders_.reserve(static_cast<std::size_t>(agents));
    inboxes_.reserve(static_cast<std::size_t>(agents));
    for (int a = 0; a < agents; ++a) {
        auto sender = std::make_unique<Sender>();
        // Distinct deterministic streams per sender: mix the agent id
        // into both the latency stream and the injector seed.
        const auto mixed =
            static_cast<std::uint32_t>(options_.seed + 7919u * static_cast<std::uint32_t>(a + 1));
        sender->latency_rng = 0x9E6C63D0876A9A35ull ^
                              (static_cast<std::uint64_t>(mixed) * 0x9E3779B97F4A7C15ull);
        if (!options_.fault_plan.empty())
            sender->injector = std::make_unique<faults::FaultInjector>(options_.fault_plan, mixed);
        senders_.push_back(std::move(sender));
        inboxes_.push_back(std::make_unique<Inbox>());
    }
    // queue_capacity bounds the whole inbox of a polling receiver; each
    // of the K-1 possible senders gets an equal in-flight window slice.
    link_capacity_ = agents > 1
                         ? std::max<std::size_t>(1, options_.queue_capacity /
                                                        static_cast<std::size_t>(agents - 1))
                         : options_.queue_capacity;
}

SendResult ChannelTransport::send(int from, int to, double now, Digest digest) {
    Sender& sender = *senders_[static_cast<std::size_t>(from)];
    Delivery delivery;
    delivery.from = from;
    delivery.to = to;
    delivery.send_time = now;
    {
        std::lock_guard<std::mutex> lock(sender.mutex);
        delivery.seq = sender.seq++;
        const double latency =
            options_.latency_min +
            uniform01(sender.latency_rng) * (options_.latency_max - options_.latency_min);
        delivery.deliver_time = now + latency;
        if (sender.injector != nullptr) {
            const faults::MessageContext ctx{
                {faults::AgentKind::kNode, static_cast<std::uint32_t>(from)},
                {faults::AgentKind::kNode, static_cast<std::uint32_t>(to)},
                faults::MessageKind::kNodeReport};
            const faults::FaultDecision decision = sender.injector->onMessage(ctx, now);
            if (decision.drop) {
                // Silent loss: the sender believes the message left.
                dropped_fault_.fetch_add(1, std::memory_order_relaxed);
                sent_.fetch_add(1, std::memory_order_relaxed);
                return SendResult::kSent;
            }
            delivery.deliver_time += decision.extra_delay;
            if (decision.price_factor != 1.0)
                for (PriceEntry& entry : digest.prices) entry.price *= decision.price_factor;
        }
    }
    delivery.digest = std::move(digest);

    Inbox& inbox = *inboxes_[static_cast<std::size_t>(to)];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    // Backpressure is a per-channel in-flight window, NOT a check on the
    // total inbox size: whether a racing peer's message landed first
    // depends on mutex order, but the sender's own in-flight count
    // (deliver_time still in the future) depends only on its program
    // order and the clock — polls remove only deliver_time <= now
    // messages.  That keeps rejection decisions byte-identical across
    // thread schedules even with the inbox near capacity.
    std::size_t in_flight = 0;
    for (const Delivery& d : inbox.pending)
        if (d.from == from && d.deliver_time > now) ++in_flight;
    if (in_flight >= link_capacity_) {
        dropped_backpressure_.fetch_add(1, std::memory_order_relaxed);
        return SendResult::kQueueFull;
    }
    inbox.pending.push_back(std::move(delivery));
    sent_.fetch_add(1, std::memory_order_relaxed);
    return SendResult::kSent;
}

std::size_t ChannelTransport::poll(int to, double now, std::vector<Delivery>& out) {
    Inbox& inbox = *inboxes_[static_cast<std::size_t>(to)];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    const std::size_t depth = inbox.pending.size();
    auto split = std::partition(inbox.pending.begin(), inbox.pending.end(),
                                [now](const Delivery& d) { return d.deliver_time > now; });
    const auto first = static_cast<std::size_t>(split - inbox.pending.begin());
    std::sort(inbox.pending.begin() + static_cast<std::ptrdiff_t>(first), inbox.pending.end(),
              [](const Delivery& a, const Delivery& b) {
                  if (a.deliver_time != b.deliver_time) return a.deliver_time < b.deliver_time;
                  if (a.from != b.from) return a.from < b.from;
                  return a.seq < b.seq;
              });
    for (std::size_t i = first; i < inbox.pending.size(); ++i)
        out.push_back(std::move(inbox.pending[i]));
    inbox.pending.resize(first);
    return depth;
}

std::size_t ChannelTransport::queueDepth(int to) const {
    const Inbox& inbox = *inboxes_[static_cast<std::size_t>(to)];
    std::lock_guard<std::mutex> lock(inbox.mutex);
    return inbox.pending.size();
}

std::uint64_t ChannelTransport::messagesSent() const noexcept {
    return sent_.load(std::memory_order_relaxed);
}

std::uint64_t ChannelTransport::droppedFault() const noexcept {
    return dropped_fault_.load(std::memory_order_relaxed);
}

std::uint64_t ChannelTransport::droppedBackpressure() const noexcept {
    return dropped_backpressure_.load(std::memory_order_relaxed);
}

faults::FaultStats ChannelTransport::faultStats() const {
    faults::FaultStats total;
    for (const auto& sender : senders_) {
        if (sender->injector == nullptr) continue;
        std::lock_guard<std::mutex> lock(sender->mutex);
        const faults::FaultStats& s = sender->injector->stats();
        total.messages_dropped += s.messages_dropped;
        total.messages_delayed += s.messages_delayed;
        total.messages_reordered += s.messages_reordered;
        total.prices_corrupted += s.prices_corrupted;
        total.crashes += s.crashes;
        total.restarts += s.restarts;
    }
    return total;
}

}  // namespace lrgp::runtime
