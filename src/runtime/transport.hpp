// In-process message transport with live fault injection.
//
// ChannelTransport gives every agent a bounded inbox and routes digests
// between threads with a per-message network latency.  The PR 2 fault
// catalog (faults::FaultPlan) is embedded *live*: every send consults a
// FaultInjector, so loss bursts, delay spikes, reorder storms and
// (asymmetric) partitions happen in runtime clock time while the agent
// threads are running — not in a discrete-event replay.
//
// Determinism contract (the virtual-time mode of runtime.hpp relies on
// it): each sender draws latency and fault decisions from its own
// private streams, in its own program order, so what happens to a
// message depends only on (seed, sender, send index, clock) — never on
// thread interleaving.  poll() returns deliverable messages sorted by
// the schedule-independent key (deliver_time, from, seq), so receivers
// observe an identical sequence on every rerun even though senders race
// on the inbox mutex.  Minimum latency must be positive: a message sent
// in tick t then cannot be delivered before tick t+1, which is what
// lets the lockstep driver use one barrier per tick.
//
// The design is socket-shaped on purpose: send() can fail with
// backpressure (the sender sees it and retries), fault drops are
// silent (the sender does NOT learn about them — real networks don't
// tell you), and all cross-thread state is confined to the per-inbox
// mutexes.  Backpressure is a per-channel in-flight window (like a
// sender-side TCP window): a send is rejected when the sender already
// has queue_capacity / (K-1) messages to that receiver whose
// deliver_time is still in the future.  Checking the *total* inbox
// size instead would make the rejection depend on which racing sender
// grabbed the inbox mutex first — schedule-dependent, breaking the
// determinism contract exactly when inboxes saturate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "faults/fault_plan.hpp"
#include "runtime/message.hpp"

namespace lrgp::runtime {

struct TransportOptions {
    /// Per-message latency drawn uniformly from [min, max] seconds.
    /// latency_min must be > 0 (see the determinism contract above).
    double latency_min = 0.001;
    double latency_max = 0.004;
    /// Bounded inbox capacity per agent while it polls; divided evenly
    /// into per-sender in-flight windows (see the backpressure note
    /// above), so each of the K-1 peers may have at most
    /// queue_capacity / (K-1) messages in flight to this agent.
    std::size_t queue_capacity = 64;
    std::uint32_t seed = 1;
    /// Live fault schedule (empty = clean network).  Runtime agent i is
    /// faults::AgentRef{kNode, i} for message matching; crashes are
    /// handled by the runtime itself (matched by index, any kind).
    faults::FaultPlan fault_plan;
};

enum class SendResult {
    kSent,       ///< accepted (possibly silently dropped by a fault)
    kQueueFull,  ///< receiver inbox full — backpressure, caller retries
};

class ChannelTransport {
public:
    /// Validates options (positive latencies, min <= max, capacity >= 1)
    /// and the fault plan; throws std::invalid_argument.
    ChannelTransport(int agents, TransportOptions options);

    ChannelTransport(const ChannelTransport&) = delete;
    ChannelTransport& operator=(const ChannelTransport&) = delete;

    /// Routes one digest.  Thread-safe; callable concurrently from every
    /// agent thread (a sender's own sends must stay in program order,
    /// which they do when each agent sends only from its own thread).
    SendResult send(int from, int to, double now, Digest digest);

    /// Appends every message deliverable at `now` (deliver_time <= now)
    /// to `out`, sorted by (deliver_time, from, seq); returns the inbox
    /// depth *before* the drain.  Thread-safe per receiver.
    std::size_t poll(int to, double now, std::vector<Delivery>& out);

    /// Messages currently queued for `to` (delivered or in flight).
    [[nodiscard]] std::size_t queueDepth(int to) const;

    [[nodiscard]] int agentCount() const noexcept { return static_cast<int>(senders_.size()); }

    /// Messages accepted by send() so far.
    [[nodiscard]] std::uint64_t messagesSent() const noexcept;
    /// Silent fault drops (loss bursts, partitions).
    [[nodiscard]] std::uint64_t droppedFault() const noexcept;
    /// Backpressure rejections (bounded inbox full).
    [[nodiscard]] std::uint64_t droppedBackpressure() const noexcept;

    /// Aggregated injector counters across all senders.  Only call while
    /// no agent thread is sending (e.g. between runFor calls).
    [[nodiscard]] faults::FaultStats faultStats() const;

private:
    struct Sender {
        std::mutex mutex;  ///< serializes this sender's draws
        std::unique_ptr<faults::FaultInjector> injector;  ///< null = clean
        std::uint64_t latency_rng = 0;
        std::uint64_t seq = 0;
    };
    struct Inbox {
        mutable std::mutex mutex;
        std::vector<Delivery> pending;
    };

    TransportOptions options_;
    std::size_t link_capacity_ = 1;  ///< per-(sender, receiver) in-flight window
    std::vector<std::unique_ptr<Sender>> senders_;
    std::vector<std::unique_ptr<Inbox>> inboxes_;
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> dropped_fault_{0};
    std::atomic<std::uint64_t> dropped_backpressure_{0};
};

}  // namespace lrgp::runtime
