// Live asynchronous shard-agent runtime (ROADMAP item 4).
//
// AsyncShardRuntime runs one *agent thread* per shard of the overlay:
// each agent owns an incremental ParallelLrgpEngine over its subproblem
// (shard/subproblems.hpp) and coordinates boundary capacity with its
// peers by exchanging compact versioned digests over a ChannelTransport
// whose embedded fault injector loses, delays, reorders and partitions
// messages *live* (runtime/transport.hpp).  This is the asynchronous,
// failure-prone sibling of shard::ShardedLrgpEngine's lockstep loop —
// same subproblems, same boundary-budget arithmetic, no barrier between
// shards, faults in wall-clock (or virtual) time.
//
// Tolerance mechanisms (docs/async_runtime.md has the state machines):
//  * heartbeat failure suspicion — any digest doubles as a heartbeat;
//    a peer silent past heartbeat_timeout becomes *suspected*, and
//    sends to it back off exponentially (with deterministic jitter)
//    instead of flooding a dead peer;
//  * graceful degradation — while any peer sharing a boundary resource
//    is suspected, the agent clamps its slice of that resource to the
//    guaranteed-feasible floor, trading utility for safety;
//  * bounded staleness — digests older than staleness_horizon (and
//    out-of-order or replayed ones, by version/epoch) are rejected;
//  * crash recovery — agents snapshot their engine periodically
//    (lrgp/snapshot.hpp); a fault-plan crash discards live state, and
//    the restart restores the snapshot and bumps the agent's membership
//    epoch so peers discard pre-crash digests still in flight;
//  * safe budget reconciliation — the lowest incident agent coordinates
//    each boundary resource and moves capacity toward the higher-priced
//    shards (shard/budget.hpp) in a shrink-before-grow handshake:
//    capacity grants are withheld until every live peer acknowledged
//    the matching reductions, so the applied slices never sum above the
//    global capacity even under loss, reordering or partitions.
//
// Execution modes:
//  * deterministic (default) — virtual time: all agent threads step in
//    lockstep ticks separated by a std::barrier, and time advances
//    tick_period per tick.  Because the transport's delivery order is
//    schedule-independent and latency_min > 0 keeps a tick's sends out
//    of the same tick's receives, the whole run — utility trace, digest
//    logs, every counter — is byte-identical across reruns and thread
//    interleavings, while still exercising real threads, mutexes and
//    barriers (the TSan suite runs exactly this mode).
//  * real time (deterministic = false) — agents free-run on the wall
//    clock with sleep-paced ticks; timing-dependent, for soak tests and
//    live deployments.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "lrgp/optimizer.hpp"
#include "lrgp/parallel_engine.hpp"
#include "metrics/time_series.hpp"
#include "model/problem.hpp"
#include "obs/instruments.hpp"
#include "runtime/transport.hpp"
#include "shard/subproblems.hpp"

namespace lrgp::runtime {

struct RuntimeOptions {
    /// Shard agents (one thread each while running).
    int agents = 2;
    /// Virtual-time lockstep (byte-identical reruns) vs wall clock.
    bool deterministic = true;

    /// Agent loop period in seconds; every tick an agent drains its
    /// inbox, steps its engine and sends due digests.
    double tick_period = 0.005;
    /// Engine iterations per tick.
    int iters_per_tick = 1;
    /// Digest (= heartbeat) spacing per live peer.
    double digest_period = 0.01;

    /// A peer silent for longer than this is suspected.  Must be >=
    /// digest_period — suspecting peers faster than they heartbeat
    /// would flap on every healthy gap.
    double heartbeat_timeout = 0.25;
    /// Digests older than this are rejected on receipt.  Must be >=
    /// digest_period (the heartbeat interval): a shorter horizon would
    /// reject every digest that shared a tick with a scheduling hiccup.
    double staleness_horizon = 0.6;

    /// Exponential backoff for sends to a suspected peer, in seconds.
    /// backoff_factor must be > 1 or the backoff never backs off.
    double backoff_min = 0.05;
    double backoff_max = 0.8;
    double backoff_factor = 2.0;
    /// Deterministic jitter fraction in [0, 1): each backoff interval
    /// is scaled by (1 + jitter * u), u drawn per agent.
    double backoff_jitter = 0.2;

    /// Transport latency bounds (TransportOptions); latency_min > 0.
    double latency_min = 0.001;
    double latency_max = 0.004;
    /// Bounded inbox capacity per agent, divided into per-sender
    /// in-flight windows of queue_capacity / (agents - 1) so that
    /// backpressure decisions stay schedule-independent
    /// (runtime/transport.hpp).
    std::size_t queue_capacity = 64;

    /// Engine snapshot spacing (crash-recovery checkpoint interval).
    double snapshot_period = 0.5;
    /// Utility sampling period of the driver (utilityTrace()).
    double sample_period = 0.05;

    /// Coordinator rebalance attempt spacing, in ticks.
    int reconcile_ticks = 8;
    /// Budget-exchange stepsize in [0, 1] (shard/budget.hpp).
    double reconcile_step = 0.5;
    /// Hysteresis: transfers below this fraction of a resource's
    /// capacity — AND below this fraction of every individual slice —
    /// are not worth a handshake.  (The per-slice clause lets a
    /// collapsed slice regrow: its early steps are absolutely tiny but
    /// relatively huge.)
    double min_rebalance_fraction = 1e-3;
    /// Price quarantine after a degraded slice is restored, in seconds.
    /// A price measured against a floored capacity is meaningless for
    /// rebalancing, and the engine's price controller needs time to
    /// decay back once the real slice returns; while a slice is
    /// degraded — and for this long after restore — its price is not
    /// advertised and its coordinator defers rebalancing.
    double price_settle = 0.5;

    std::uint32_t seed = 1;
    /// Live fault schedule.  Message faults match runtime agent i as
    /// faults::AgentRef{kNode, i}; crash events match by index with any
    /// kind (so the standard catalog's node/source crashes both hit
    /// agent `index`).
    faults::FaultPlan fault_plan;

    /// Partitioner knobs (shard/partitioner.hpp).
    int refine_passes = 3;
    double balance_slack = 0.25;

    /// Record per-agent digest logs (hexfloat, byte-stable in
    /// deterministic mode; see AsyncShardRuntime::digestLog).
    bool keep_digest_log = false;
};

/// Point-in-time snapshot of one agent's counters.
struct AgentCounters {
    std::uint64_t engine_iterations = 0;
    std::uint64_t digests_sent = 0;
    std::uint64_t digests_received = 0;
    std::uint64_t digests_rejected_stale = 0;  ///< too old, replayed or reordered
    std::uint64_t send_failures = 0;           ///< backpressure-rejected sends
    std::uint64_t retries = 0;                 ///< backoff sends to suspected peers + resends
    std::uint64_t suspicions = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t snapshots = 0;
    std::uint64_t snapshot_restores = 0;
    std::uint64_t budget_updates = 0;  ///< assignment slices applied to the engine
    std::uint64_t degradations = 0;    ///< slices clamped to floor on suspicion
};

/// Per-agent shape and progress, for the CLI summary and tests.
struct AgentSummary {
    int agent = 0;
    std::size_t flows = 0;
    std::size_t classes = 0;
    std::size_t nodes = 0;
    std::size_t links = 0;
    bool down = false;
    std::uint64_t epoch = 0;
    double utility = 0.0;
    AgentCounters counters;
};

/// Aggregate runtime statistics (all agents + transport).
struct RuntimeStats {
    AgentCounters totals;
    std::uint64_t messages_sent = 0;
    std::uint64_t dropped_fault = 0;
    std::uint64_t dropped_backpressure = 0;
    faults::FaultStats fault_stats;
};

class AsyncShardRuntime {
public:
    /// Partitions `spec` into `runtime.agents` shard subproblems and
    /// builds the agents and transport.  Validates every option field
    /// (throws std::invalid_argument with an actionable message) and
    /// the fault plan against the agent count.  No threads run until
    /// runFor().
    AsyncShardRuntime(model::ProblemSpec spec, core::LrgpOptions options = {},
                      RuntimeOptions runtime = {});
    ~AsyncShardRuntime();

    AsyncShardRuntime(const AsyncShardRuntime&) = delete;
    AsyncShardRuntime& operator=(const AsyncShardRuntime&) = delete;

    /// Advances the runtime `seconds` (virtual seconds in deterministic
    /// mode, wall seconds otherwise): spawns one thread per agent, runs
    /// them, samples the global utility every sample_period, and joins
    /// every thread before returning.  Callable repeatedly; the clock
    /// carries across calls.
    void runFor(double seconds);

    /// Runtime clock: virtual time advanced so far (deterministic) or
    /// accumulated wall run time.
    [[nodiscard]] double now() const noexcept { return base_time_; }

    /// Latest sampled global utility (sum of the agents' published
    /// utilities in agent order; crashed agents contribute zero).
    [[nodiscard]] double currentUtility() const;

    /// One utility sample every sample_period seconds.
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept { return trace_; }

    [[nodiscard]] int agentCount() const noexcept { return static_cast<int>(agents_.size()); }
    [[nodiscard]] bool agentDown(int agent) const;
    [[nodiscard]] std::vector<AgentSummary> summaries() const;
    /// Aggregate stats; only call between runFor invocations.
    [[nodiscard]] RuntimeStats stats() const;

    /// The agent's digest log (one line per sent digest, hexfloat
    /// payloads).  Empty unless RuntimeOptions::keep_digest_log; only
    /// read between runFor invocations.  In deterministic mode the log
    /// is byte-identical across reruns of the same configuration.
    [[nodiscard]] const std::string& digestLog(int agent) const;

    [[nodiscard]] const model::ProblemSpec& problem() const noexcept { return spec_; }
    [[nodiscard]] const RuntimeOptions& options() const noexcept { return runtime_; }

    /// The agent's local subproblem engine (nullptr for an empty shard).
    /// Quiescent inspection only — call between runFor invocations; the
    /// engine is owned and mutated by the agent's thread during a run.
    [[nodiscard]] const core::ParallelLrgpEngine* agentEngine(int agent) const;

    // -- quiescent dynamic workload ops (scenario churn) -----------------
    //
    // Apply between runFor() invocations only — no agent threads run
    // then, so the owning agent's engine and its cold-restart copy can
    // be mutated directly.  Only ops that leave boundary capacity
    // budgets untouched are offered here; capacity changes would race
    // the shrink-before-grow handshakes and are rejected by the
    // scenario runner instead.  A crash before the next snapshot
    // restores pre-op engine state from the previous checkpoint, so
    // scenario suites do not combine churn with crash fault plans.

    /// Marks the flow's source as departed on the owning agent (and in
    /// the global mirror).  Throws std::invalid_argument on a bad id.
    void removeFlow(model::FlowId flow);
    /// Brings a removed flow back (resumes at r_min, zero consumers).
    void restoreFlow(model::FlowId flow);
    /// Changes a class's n^max on the owning agent.
    void setClassMaxConsumers(model::ClassId cls, int max_consumers);

    /// Registers the lrgp_runtime_* series (docs/observability.md).
    /// Counter totals are exported at the end of every runFor call;
    /// histograms (digest age, inbox depth) fill live from the agent
    /// threads.  Pass nullptr to detach; a no-op without LRGP_OBS.
    void attachObservability(obs::Registry* registry);

private:
    struct Agent;
    struct Resource;

    [[nodiscard]] static RuntimeOptions validated(RuntimeOptions runtime);

    void buildResources(const shard::SubproblemSet& sub);
    void buildAgents(shard::SubproblemSet sub, const core::LrgpOptions& options);
    void applyFlowActive(model::FlowId flow, bool active);

    void runVirtual(double seconds);
    void runReal(double seconds);
    void sampleUtility();
    void exportCounters();

    // -- agent tick pipeline (all called on the agent's own thread) ----
    void tickAgent(Agent& agent, double now);
    void crashAgent(Agent& agent);
    void restartAgent(Agent& agent, double now);
    void receiveDigests(Agent& agent, double now);
    void applyDigest(Agent& agent, const Delivery& delivery, double now);
    void detectFailures(Agent& agent, double now);
    void suspectPeer(Agent& agent, int peer, double now);
    void unsuspectPeer(Agent& agent, int peer, double now);
    void applySlice(Agent& agent, std::size_t budget_index, double slice);
    [[nodiscard]] double localPrice(const Agent& agent, std::size_t resource_index) const;
    void setEngineCapacity(Agent& agent, std::size_t budget_index, double capacity);
    [[nodiscard]] double jitteredBackoff(Agent& agent, double interval) const;
    void coordinate(Agent& agent, double now);
    void sendDigests(Agent& agent, double now);
    [[nodiscard]] Digest buildDigest(Agent& agent, int to, double now);
    void logDigest(Agent& agent, int to, const Digest& digest);
    void maybeSnapshot(Agent& agent, double now);

    model::ProblemSpec spec_;
    RuntimeOptions runtime_;
    std::vector<Resource> resources_;
    /// Resource-table index per global node/link id (kAbsent = interior).
    std::vector<std::uint32_t> node_resource_;
    std::vector<std::uint32_t> link_resource_;
    std::vector<std::unique_ptr<Agent>> agents_;
    std::unique_ptr<ChannelTransport> transport_;

    metrics::TimeSeries trace_;
    double base_time_ = 0.0;    ///< runtime clock at the last runFor exit
    double next_sample_ = 0.0;  ///< first sample strictly after time 0
    std::atomic<double> published_total_{0.0};

    obs::RuntimeInstruments instr_;
    bool obs_attached_ = false;
    AgentCounters exported_;  ///< counter totals already pushed to obs
    std::uint64_t exported_sent_ = 0, exported_fault_ = 0, exported_backpressure_ = 0;
};

}  // namespace lrgp::runtime
