// Wire format of the live asynchronous shard-agent runtime.
//
// Agents exchange compact versioned *digests* — never raw engine state.
// A digest carries the sender's local prices for the boundary resources
// it shares with the recipient (the Eq. 12/13 scarcity signals), the
// coordinator's budget assignments for resources it owns, and acks for
// assignments the sender applied.  Versions and epochs make delivery
// idempotent: receivers drop replayed or reordered digests (version) and
// detect peer restarts (epoch), so the transport may lose, delay,
// duplicate-deliver or reorder messages freely.
#pragma once

#include <cstdint>
#include <vector>

namespace lrgp::runtime {

/// One boundary resource's local price as seen by the sender.
struct PriceEntry {
    bool node = true;      ///< node (true) or link (false) resource
    std::uint32_t id = 0;  ///< global resource index
    double price = 0.0;    ///< sender's local LRGP price
};

/// A coordinator's capacity slice for the *recipient* on one boundary
/// resource.  (epoch, version) orders assignments across coordinator
/// restarts; receivers apply only strictly newer pairs.
struct BudgetAssignment {
    bool node = true;
    std::uint32_t id = 0;
    std::uint64_t epoch = 0;    ///< coordinator's membership epoch
    std::uint64_t version = 0;  ///< per-resource assignment version
    double slice = 0.0;         ///< recipient's capacity slice
};

/// Piggybacked acknowledgement: the sender has applied assignment
/// (epoch, version) for this resource.  Coordinators gate budget grants
/// on these (shrink-before-grow keeps the capacity sum safe, see
/// docs/async_runtime.md).
struct BudgetAck {
    bool node = true;
    std::uint32_t id = 0;
    std::uint64_t epoch = 0;
    std::uint64_t version = 0;
};

/// One agent-to-agent digest.  Also the heartbeat: any received digest
/// refreshes the sender's liveness at the receiver.
struct Digest {
    int from = 0;
    std::uint64_t version = 0;  ///< per-sender monotonic sequence
    std::uint64_t epoch = 0;    ///< sender's restart epoch
    double send_time = 0.0;     ///< runtime clock at send
    std::vector<PriceEntry> prices;
    std::vector<BudgetAssignment> assignments;
    std::vector<BudgetAck> acks;
};

/// A digest in flight (or delivered): transport bookkeeping around the
/// payload.  `seq` is the per-sender send counter used to break delivery
/// ties deterministically.
struct Delivery {
    int from = 0;
    int to = 0;
    std::uint64_t seq = 0;
    double send_time = 0.0;
    double deliver_time = 0.0;
    Digest digest;
};

}  // namespace lrgp::runtime
