#include "runtime/runtime.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "shard/budget.hpp"

namespace lrgp::runtime {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-agent deterministic stream (same family as the transport's).
std::uint64_t xorshift64(std::uint64_t& state) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

double uniform01(std::uint64_t& state) {
    return static_cast<double>(xorshift64(state) >> 11) * 0x1.0p-53;
}

void appendHex(std::string& out, double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%a", v);
    out += buf;
}

void appendUint(std::string& out, std::uint64_t v) { out += std::to_string(v); }

}  // namespace

/// One boundary resource of the global problem, shared by >= 2 agents.
struct AsyncShardRuntime::Resource {
    bool node = true;            ///< node vs link
    std::uint32_t id = 0;        ///< global node/link index
    double capacity = 0.0;       ///< full global capacity
    std::vector<int> agents;     ///< incident agents, ascending
    std::vector<double> floor;   ///< guaranteed-feasible slice per rank
    std::vector<double> initial; ///< construction-time split per rank
    int coordinator = 0;         ///< lowest incident agent
};

struct AsyncShardRuntime::Agent {
    int id = 0;

    // -- local engine -----------------------------------------------------
    std::unique_ptr<core::ParallelLrgpEngine> engine;  ///< null when no flows
    model::ProblemSpec pristine;   ///< cold-restart copy of the subproblem
    bool has_engine = false;
    core::LrgpOptions engine_options;

    // -- entity maps (local <-> global) ----------------------------------
    std::vector<std::uint32_t> flows, classes, nodes, links;
    std::vector<std::uint32_t> node_local, link_local;  ///< global -> local

    // -- peer bookkeeping -------------------------------------------------
    struct Peer {
        bool neighbor = false;   ///< shares at least one boundary resource
        double last_heard = 0.0;
        bool suspected = false;
        std::uint64_t epoch = 0;    ///< highest digest (epoch, version) seen
        std::uint64_t version = 0;
        double next_send = 0.0;
        double backoff = 0.0;       ///< current backoff interval (suspected)
        bool resend_pending = false;  ///< last send hit backpressure
    };
    std::vector<Peer> peers;
    std::vector<int> neighbors;  ///< ids with peers[j].neighbor, ascending

    // -- boundary slices this agent holds ---------------------------------
    struct LocalBudget {
        std::size_t resource = 0;   ///< index into resources_
        std::uint32_t local_id = 0; ///< node/link index inside the subproblem
        std::size_t rank = 0;       ///< my rank in resources_[resource].agents
        double applied = 0.0;       ///< authoritative slice (coordinator's word)
        std::uint64_t epoch = 0;    ///< of the applied assignment
        std::uint64_t version = 0;
        bool degraded = false;      ///< clamped to floor while a peer is suspected
        double settle_until = 0.0;  ///< price quarantined until then after restore
    };
    std::vector<LocalBudget> budgets;

    // -- coordinator state (resources where coordinator == id) ------------
    struct Coordination {
        std::size_t resource = 0;
        std::size_t budget_index = 0;  ///< my LocalBudget for this resource
        std::vector<double> current;   ///< granted slices per rank (sum == capacity)
        std::vector<double> pending;   ///< target slices while shrinking
        std::uint64_t version = 0;
        bool shrinking = false;  ///< shrink published, grow withheld until acked
        std::vector<std::uint64_t> acked_version;  ///< per rank
        std::vector<std::uint64_t> acked_epoch;
        std::vector<double> peer_price;       ///< freshest boundary price per rank
        std::vector<double> peer_price_time;  ///< send_time of that price
        int ticks_since = 0;
    };
    std::vector<Coordination> coords;

    // -- liveness ----------------------------------------------------------
    bool down = false;
    std::uint64_t epoch = 0;  ///< membership epoch, bumped on every restart
    double restart_at = kInf;
    std::vector<faults::CrashEvent> crash_schedule;  ///< sorted by `at`
    std::size_t next_crash = 0;

    // -- crash-recovery checkpoint ----------------------------------------
    std::string snapshot_bytes;  ///< empty until the first snapshot
    double next_snapshot = 0.0;

    // -- misc --------------------------------------------------------------
    std::uint64_t digest_version = 0;  ///< monotone across all sends
    std::uint64_t rng = 0;             ///< jitter stream
    std::atomic<double> published{0.0};
    AgentCounters counters;
    std::string log;
    std::vector<Delivery> inbox;  ///< poll() scratch
};

// ---------------------------------------------------------------------------
// construction & validation
// ---------------------------------------------------------------------------

RuntimeOptions AsyncShardRuntime::validated(RuntimeOptions runtime) {
    const auto fail = [](const std::string& msg) {
        throw std::invalid_argument("AsyncShardRuntime: " + msg);
    };
    if (runtime.agents < 1) fail("agents must be >= 1 (one shard agent per thread)");
    if (!(runtime.tick_period > 0.0))
        fail("tick_period must be > 0 seconds — it is the agent loop period; a zero or "
             "negative period would never advance the runtime clock");
    if (runtime.iters_per_tick < 1) fail("iters_per_tick must be >= 1");
    if (!(runtime.digest_period > 0.0))
        fail("digest_period must be > 0 seconds — digests double as heartbeats; a zero "
             "period floods the transport and a negative one never sends");
    if (!(runtime.heartbeat_timeout > 0.0))
        fail("heartbeat_timeout must be > 0 seconds — a non-positive timeout suspects "
             "every peer instantly; use a clean fault plan to disable failures instead");
    if (runtime.heartbeat_timeout < runtime.digest_period)
        fail("heartbeat_timeout must be >= digest_period (the heartbeat interval) — a "
             "shorter timeout suspects healthy peers between their own heartbeats; raise "
             "heartbeat_timeout or lower digest_period");
    if (!(runtime.staleness_horizon > 0.0))
        fail("staleness_horizon must be > 0 seconds — a non-positive horizon rejects "
             "every digest on arrival");
    if (runtime.staleness_horizon < runtime.digest_period)
        fail("staleness_horizon must be >= digest_period — digests age at least one "
             "heartbeat interval in flight under load, so a shorter horizon rejects "
             "healthy traffic; raise staleness_horizon or lower digest_period");
    if (!(runtime.backoff_min > 0.0)) fail("backoff_min must be > 0 seconds");
    if (!(runtime.backoff_max >= runtime.backoff_min))
        fail("backoff_max must be >= backoff_min");
    if (!(runtime.backoff_factor > 1.0))
        fail("backoff_factor must be > 1 — a factor <= 1 never backs off and keeps "
             "flooding a suspected (likely dead) peer at full rate");
    if (!(runtime.backoff_jitter >= 0.0 && runtime.backoff_jitter < 1.0))
        fail("backoff_jitter must be in [0, 1)");
    if (!(runtime.latency_min > 0.0))
        fail("latency_min must be > 0 — zero-latency delivery would let a message arrive "
             "inside its own send tick and break the deterministic-mode contract");
    if (!(runtime.latency_max >= runtime.latency_min))
        fail("latency_max must be >= latency_min");
    if (runtime.queue_capacity < 1) fail("queue_capacity must be >= 1");
    if (!(runtime.snapshot_period > 0.0))
        fail("snapshot_period must be > 0 seconds — snapshots are the crash-recovery "
             "checkpoints; disable crashes in the fault plan rather than the snapshots");
    if (!(runtime.sample_period > 0.0)) fail("sample_period must be > 0 seconds");
    if (runtime.reconcile_ticks < 1) fail("reconcile_ticks must be >= 1");
    if (!(runtime.reconcile_step >= 0.0 && runtime.reconcile_step <= 1.0))
        fail("reconcile_step must be in [0, 1]");
    if (!(runtime.min_rebalance_fraction >= 0.0))
        fail("min_rebalance_fraction must be >= 0");
    if (!(runtime.price_settle >= 0.0))
        fail("price_settle must be >= 0 seconds — it is the quarantine applied to a "
             "boundary price after its degraded slice is restored; the engine's price "
             "controller needs that long to decay from the floored-capacity level");
    if (runtime.refine_passes < 0) fail("refine_passes must be >= 0");
    if (!(runtime.balance_slack >= 0.0)) fail("balance_slack must be >= 0");

    runtime.fault_plan.validate();
    const auto agent_count = static_cast<std::uint32_t>(runtime.agents);
    const auto check_ref = [&](const faults::AgentRef& ref, const char* what) {
        if (ref.index >= agent_count)
            fail(std::string("fault plan ") + what + " references agent index " +
                 std::to_string(ref.index) + " but the runtime has only " +
                 std::to_string(agent_count) + " agents (indices 0.." +
                 std::to_string(agent_count - 1) + ")");
    };
    const auto check_opt = [&](const std::optional<faults::AgentRef>& ref, const char* what) {
        if (ref.has_value()) check_ref(*ref, what);
    };
    for (const auto& l : runtime.fault_plan.losses) {
        check_opt(l.from, "loss burst sender");
        check_opt(l.to, "loss burst receiver");
    }
    for (const auto& d : runtime.fault_plan.delay_spikes) {
        check_opt(d.from, "delay spike sender");
        check_opt(d.to, "delay spike receiver");
    }
    for (const auto& p : runtime.fault_plan.partitions)
        for (const auto& ref : p.island) check_ref(ref, "partition island member");
    for (const auto& p : runtime.fault_plan.asymmetric_partitions)
        for (const auto& ref : p.island) check_ref(ref, "asymmetric partition island member");
    for (const auto& c : runtime.fault_plan.crashes) check_ref(c.agent, "crash event");
    for (const auto& c : runtime.fault_plan.corruptions)
        check_opt(c.from, "price corruption sender");
    return runtime;
}

AsyncShardRuntime::AsyncShardRuntime(model::ProblemSpec spec, core::LrgpOptions options,
                                     RuntimeOptions runtime)
    : spec_(std::move(spec)), runtime_(validated(std::move(runtime))) {
    shard::PartitionOptions popts;
    popts.shards = runtime_.agents;
    popts.refine_passes = runtime_.refine_passes;
    popts.balance_slack = runtime_.balance_slack;
    shard::SubproblemSet sub = shard::build_subproblems(spec_, popts);

    buildResources(sub);
    buildAgents(std::move(sub), options);

    TransportOptions topts;
    topts.latency_min = runtime_.latency_min;
    topts.latency_max = runtime_.latency_max;
    topts.queue_capacity = runtime_.queue_capacity;
    topts.seed = runtime_.seed;
    topts.fault_plan = runtime_.fault_plan;
    transport_ = std::make_unique<ChannelTransport>(runtime_.agents, std::move(topts));

    next_sample_ = runtime_.sample_period;
}

AsyncShardRuntime::~AsyncShardRuntime() = default;

void AsyncShardRuntime::buildResources(const shard::SubproblemSet& sub) {
    node_resource_.assign(spec_.nodes().size(), shard::kAbsent);
    link_resource_.assign(spec_.links().size(), shard::kAbsent);
    resources_.reserve(sub.node_budgets.size() + sub.link_budgets.size());
    const auto add = [this](const shard::BoundaryBudget& b, bool node) {
        Resource r;
        r.node = node;
        r.id = b.id;
        r.capacity = b.capacity;
        r.agents = b.shards;
        r.floor = b.floor;
        r.initial = b.budget;
        r.coordinator = b.shards.front();  // incident list is ascending
        (node ? node_resource_ : link_resource_)[b.id] =
            static_cast<std::uint32_t>(resources_.size());
        resources_.push_back(std::move(r));
    };
    for (const shard::BoundaryBudget& b : sub.node_budgets) add(b, true);
    for (const shard::BoundaryBudget& b : sub.link_budgets) add(b, false);
}

void AsyncShardRuntime::buildAgents(shard::SubproblemSet sub, const core::LrgpOptions& options) {
    const int count = runtime_.agents;
    agents_.reserve(static_cast<std::size_t>(count));
    for (int s = 0; s < count; ++s) {
        auto agent = std::make_unique<Agent>();
        agent->id = s;
        agent->engine_options = options;
        shard::MemberSpec& ms = sub.members[static_cast<std::size_t>(s)];
        agent->flows = std::move(ms.flows);
        agent->classes = std::move(ms.classes);
        agent->nodes = std::move(ms.nodes);
        agent->links = std::move(ms.links);
        agent->node_local = std::move(ms.node_local);
        agent->link_local = std::move(ms.link_local);
        if (ms.spec.has_value()) {
            agent->pristine = *ms.spec;  // cold-restart copy
            agent->has_engine = true;
            core::EngineConfig config;
            config.threads = 1;
            config.incremental = true;
            agent->engine = std::make_unique<core::ParallelLrgpEngine>(
                std::move(*ms.spec), options, config);
            agent->published.store(agent->engine->currentUtility(), std::memory_order_relaxed);
        }
        agent->peers.resize(static_cast<std::size_t>(count));
        agent->rng = 0xC3A5C85C97CB3127ull ^
                     (static_cast<std::uint64_t>(runtime_.seed + 104729u *
                                                 static_cast<std::uint32_t>(s + 1)) *
                      0x9E3779B97F4A7C15ull);
        agent->next_snapshot = runtime_.snapshot_period;

        for (const faults::CrashEvent& ev : runtime_.fault_plan.crashes)
            if (ev.agent.index == static_cast<std::uint32_t>(s))
                agent->crash_schedule.push_back(ev);
        std::stable_sort(agent->crash_schedule.begin(), agent->crash_schedule.end(),
                         [](const faults::CrashEvent& a, const faults::CrashEvent& b) {
                             return a.at < b.at;
                         });
        agents_.push_back(std::move(agent));
    }

    // Boundary incidence: budgets, coordinator state and the peer graph.
    for (std::size_t ri = 0; ri < resources_.size(); ++ri) {
        const Resource& r = resources_[ri];
        for (std::size_t rank = 0; rank < r.agents.size(); ++rank) {
            Agent& agent = *agents_[static_cast<std::size_t>(r.agents[rank])];
            Agent::LocalBudget lb;
            lb.resource = ri;
            lb.local_id = r.node ? agent.node_local[r.id] : agent.link_local[r.id];
            lb.rank = rank;
            lb.applied = r.initial[rank];
            agent.budgets.push_back(lb);
            if (agent.id == r.coordinator) {
                Agent::Coordination c;
                c.resource = ri;
                c.budget_index = agent.budgets.size() - 1;
                c.current = r.initial;
                c.version = 1;
                c.acked_version.assign(r.agents.size(), 0);
                c.acked_epoch.assign(r.agents.size(), 0);
                c.peer_price.assign(r.agents.size(), 0.0);
                c.peer_price_time.assign(r.agents.size(), -kInf);
                agent.coords.push_back(std::move(c));
            }
            for (int other : r.agents)
                if (other != agent.id) agent.peers[static_cast<std::size_t>(other)].neighbor = true;
        }
    }
    for (auto& agent : agents_)
        for (int j = 0; j < count; ++j)
            if (agent->peers[static_cast<std::size_t>(j)].neighbor) agent->neighbors.push_back(j);
}

// ---------------------------------------------------------------------------
// quiescent dynamic workload ops
// ---------------------------------------------------------------------------

void AsyncShardRuntime::applyFlowActive(model::FlowId flow, bool active) {
    if (!flow.valid() || flow.index() >= spec_.flowCount())
        throw std::invalid_argument("AsyncShardRuntime: flow id out of range");
    spec_.setFlowActive(flow, active);
    for (auto& agent : agents_) {
        for (std::size_t i = 0; i < agent->flows.size(); ++i) {
            if (agent->flows[i] != flow.value) continue;
            const model::FlowId local{static_cast<std::uint32_t>(i)};
            agent->pristine.setFlowActive(local, active);
            if (agent->has_engine) {
                if (active)
                    agent->engine->restoreFlow(local);
                else
                    agent->engine->removeFlow(local);
            }
            return;
        }
    }
    throw std::logic_error("AsyncShardRuntime: flow not owned by any agent");
}

void AsyncShardRuntime::removeFlow(model::FlowId flow) { applyFlowActive(flow, false); }

void AsyncShardRuntime::restoreFlow(model::FlowId flow) { applyFlowActive(flow, true); }

void AsyncShardRuntime::setClassMaxConsumers(model::ClassId cls, int max_consumers) {
    if (!cls.valid() || cls.index() >= spec_.classCount())
        throw std::invalid_argument("AsyncShardRuntime: class id out of range");
    spec_.setClassMaxConsumers(cls, max_consumers);
    for (auto& agent : agents_) {
        for (std::size_t i = 0; i < agent->classes.size(); ++i) {
            if (agent->classes[i] != cls.value) continue;
            const model::ClassId local{static_cast<std::uint32_t>(i)};
            agent->pristine.setClassMaxConsumers(local, max_consumers);
            if (agent->has_engine) agent->engine->setClassMaxConsumers(local, max_consumers);
            return;
        }
    }
    throw std::logic_error("AsyncShardRuntime: class not owned by any agent");
}

// ---------------------------------------------------------------------------
// drivers
// ---------------------------------------------------------------------------

void AsyncShardRuntime::runFor(double seconds) {
    if (!(seconds > 0.0))
        throw std::invalid_argument("AsyncShardRuntime: runFor seconds must be > 0");
    if (runtime_.deterministic)
        runVirtual(seconds);
    else
        runReal(seconds);
    exportCounters();
}

void AsyncShardRuntime::runVirtual(double seconds) {
    auto ticks = static_cast<std::uint64_t>(std::llround(seconds / runtime_.tick_period));
    if (ticks == 0) ticks = 1;

    // Two barrier phases per tick: every agent ticks between them, the
    // driver samples after them.  latency_min > 0 guarantees a tick's
    // sends are invisible to the same tick's polls, so the single tick
    // barrier already makes message visibility schedule-independent.
    std::barrier gate(static_cast<std::ptrdiff_t>(agents_.size()) + 1);
    std::vector<std::thread> threads;
    threads.reserve(agents_.size());
    for (auto& owned : agents_) {
        Agent* agent = owned.get();
        threads.emplace_back([this, agent, &gate, ticks] {
            for (std::uint64_t t = 0; t < ticks; ++t) {
                gate.arrive_and_wait();
                tickAgent(*agent, base_time_ + static_cast<double>(t + 1) * runtime_.tick_period);
                gate.arrive_and_wait();
            }
        });
    }
    for (std::uint64_t t = 0; t < ticks; ++t) {
        gate.arrive_and_wait();
        gate.arrive_and_wait();
        const double now = base_time_ + static_cast<double>(t + 1) * runtime_.tick_period;
        while (next_sample_ <= now + 1e-12) {
            sampleUtility();
            next_sample_ += runtime_.sample_period;
        }
    }
    for (std::thread& th : threads) th.join();
    base_time_ += static_cast<double>(ticks) * runtime_.tick_period;
}

void AsyncShardRuntime::runReal(double seconds) {
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    const double base = base_time_;
    const auto to_duration = [](double s) {
        return std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(s));
    };

    std::vector<std::thread> threads;
    threads.reserve(agents_.size());
    for (auto& owned : agents_) {
        Agent* agent = owned.get();
        threads.emplace_back([this, agent, start, base, seconds, to_duration] {
            for (std::uint64_t t = 0;; ++t) {
                const double offset = static_cast<double>(t + 1) * runtime_.tick_period;
                if (offset > seconds) break;
                std::this_thread::sleep_until(start + to_duration(offset));
                const double now =
                    base + std::chrono::duration<double>(clock::now() - start).count();
                tickAgent(*agent, now);
            }
        });
    }
    while (next_sample_ <= base + seconds + 1e-12) {
        std::this_thread::sleep_until(start + to_duration(next_sample_ - base));
        sampleUtility();
        next_sample_ += runtime_.sample_period;
    }
    for (std::thread& th : threads) th.join();
    base_time_ = base + seconds;
}

void AsyncShardRuntime::sampleUtility() {
    double total = 0.0;
    for (const auto& agent : agents_) total += agent->published.load(std::memory_order_relaxed);
    published_total_.store(total, std::memory_order_relaxed);
    trace_.append(total);
}

// ---------------------------------------------------------------------------
// agent tick pipeline
// ---------------------------------------------------------------------------

void AsyncShardRuntime::tickAgent(Agent& agent, double now) {
    if (agent.down) {
        if (now < agent.restart_at) return;  // inbox keeps filling: backpressure
        restartAgent(agent, now);
    }
    if (agent.next_crash < agent.crash_schedule.size() &&
        agent.crash_schedule[agent.next_crash].at <= now) {
        agent.restart_at = agent.crash_schedule[agent.next_crash].restart_at;
        ++agent.next_crash;
        crashAgent(agent);
        return;
    }
    receiveDigests(agent, now);
    detectFailures(agent, now);
    if (agent.engine != nullptr) {
        for (int i = 0; i < runtime_.iters_per_tick; ++i)
            agent.published.store(agent.engine->step().utility, std::memory_order_relaxed);
        agent.counters.engine_iterations += static_cast<std::uint64_t>(runtime_.iters_per_tick);
    }
    coordinate(agent, now);
    sendDigests(agent, now);
    maybeSnapshot(agent, now);
}

void AsyncShardRuntime::crashAgent(Agent& agent) {
    // Full live-state loss: in-flight coordination, peer bookkeeping and
    // the engine's warm state die with the process.  Only the snapshot
    // (stable storage) survives; the inbox keeps queuing like a kernel
    // socket buffer for a dead process, so senders feel backpressure.
    agent.down = true;
    ++agent.counters.crashes;
    agent.published.store(0.0, std::memory_order_relaxed);
}

void AsyncShardRuntime::restartAgent(Agent& agent, double now) {
    agent.down = false;
    agent.restart_at = kInf;
    ++agent.epoch;  // peers reject pre-crash digests still in flight
    ++agent.counters.restarts;

    if (agent.has_engine) {
        if (!agent.snapshot_bytes.empty()) {
            agent.engine->restore(core::EngineSnapshot::deserialize(agent.snapshot_bytes));
            ++agent.counters.snapshot_restores;
        } else {
            // No checkpoint yet: cold start from the pristine subproblem.
            core::EngineConfig config;
            config.threads = 1;
            config.incremental = true;
            agent.engine = std::make_unique<core::ParallelLrgpEngine>(
                agent.pristine, agent.engine_options, config);
        }
        agent.published.store(agent.engine->currentUtility(), std::memory_order_relaxed);
    }

    // Fresh process: nobody suspected, every peer gets a full grace
    // period, sends resume immediately.
    for (Agent::Peer& p : agent.peers) {
        p.last_heard = now;
        p.suspected = false;
        p.backoff = 0.0;
        p.next_send = now;
        p.resend_pending = false;
        p.epoch = 0;
        p.version = 0;
    }

    // Applied slices restart from what the restored engine holds; the
    // (epoch, version) reset makes the coordinator's idempotent
    // re-publication re-sync them.
    for (Agent::LocalBudget& lb : agent.budgets) {
        lb.degraded = false;
        lb.epoch = 0;
        lb.version = 0;
        if (agent.engine != nullptr) {
            const Resource& r = resources_[lb.resource];
            lb.applied = r.node
                             ? agent.engine->problem().nodes()[lb.local_id].capacity
                             : agent.engine->problem().links()[lb.local_id].capacity;
        }
    }

    // Coordinator state was lost: reset grants to the floor split —
    // floors are <= any slice ever granted, so the reset can only
    // shrink and the capacity invariant holds without a handshake.
    // The normal rebalance path regrows toward the prices.
    for (Agent::Coordination& c : agent.coords) {
        const Resource& r = resources_[c.resource];
        c.current = r.floor;
        c.pending.clear();
        c.version = 1;
        c.shrinking = false;
        std::fill(c.acked_version.begin(), c.acked_version.end(), 0);
        std::fill(c.acked_epoch.begin(), c.acked_epoch.end(), 0);
        std::fill(c.peer_price.begin(), c.peer_price.end(), 0.0);
        std::fill(c.peer_price_time.begin(), c.peer_price_time.end(), -kInf);
        c.ticks_since = 0;
        applySlice(agent, c.budget_index, c.current[agent.budgets[c.budget_index].rank]);
    }
    agent.next_snapshot = now + runtime_.snapshot_period;
}

void AsyncShardRuntime::receiveDigests(Agent& agent, double now) {
    agent.inbox.clear();
    const std::size_t depth = transport_->poll(agent.id, now, agent.inbox);
    if constexpr (obs::kEnabled) {
        if (obs_attached_ && instr_.queue_depth != nullptr)
            instr_.queue_depth->observe(static_cast<double>(depth));
    }
    for (const Delivery& delivery : agent.inbox) applyDigest(agent, delivery, now);
}

void AsyncShardRuntime::applyDigest(Agent& agent, const Delivery& delivery, double now) {
    const Digest& d = delivery.digest;
    ++agent.counters.digests_received;

    // Bounded staleness: a digest older than the horizon reflects a
    // world the receiver must not act on.
    if (now - d.send_time > runtime_.staleness_horizon) {
        ++agent.counters.digests_rejected_stale;
        return;
    }
    Agent::Peer& peer = agent.peers[static_cast<std::size_t>(d.from)];
    // Replay/reorder protection: accept only strictly newer (epoch,
    // version) pairs from each sender.
    if (d.epoch < peer.epoch || (d.epoch == peer.epoch && d.version <= peer.version)) {
        ++agent.counters.digests_rejected_stale;
        return;
    }
    peer.epoch = d.epoch;
    peer.version = d.version;
    peer.last_heard = now;
    if (peer.suspected) unsuspectPeer(agent, d.from, now);
    if constexpr (obs::kEnabled) {
        if (obs_attached_ && instr_.digest_age != nullptr)
            instr_.digest_age->observe(now - d.send_time);
    }

    // Boundary prices feed the coordinator's rebalance decisions.
    for (const PriceEntry& entry : d.prices) {
        const std::uint32_t ri =
            entry.node ? node_resource_[entry.id] : link_resource_[entry.id];
        if (ri == shard::kAbsent) continue;
        for (Agent::Coordination& c : agent.coords) {
            if (c.resource != ri) continue;
            const Resource& r = resources_[ri];
            if (!shard::shard_incident(r.agents, d.from)) break;
            const std::size_t rank = shard::shard_rank(r.agents, d.from);
            if (d.send_time > c.peer_price_time[rank]) {
                c.peer_price[rank] = entry.price;
                c.peer_price_time[rank] = d.send_time;
            }
            break;
        }
    }

    // Capacity assignments from the resource's coordinator.
    for (const BudgetAssignment& a : d.assignments) {
        const std::uint32_t ri = a.node ? node_resource_[a.id] : link_resource_[a.id];
        if (ri == shard::kAbsent || resources_[ri].coordinator != d.from) continue;
        for (std::size_t bi = 0; bi < agent.budgets.size(); ++bi) {
            Agent::LocalBudget& lb = agent.budgets[bi];
            if (lb.resource != ri) continue;
            if (a.epoch > lb.epoch || (a.epoch == lb.epoch && a.version > lb.version)) {
                lb.epoch = a.epoch;
                lb.version = a.version;
                applySlice(agent, bi, a.slice);
            }
            break;
        }
    }

    // Acks gate the coordinator's shrink-before-grow handshake.
    for (const BudgetAck& ack : d.acks) {
        const std::uint32_t ri = ack.node ? node_resource_[ack.id] : link_resource_[ack.id];
        if (ri == shard::kAbsent) continue;
        for (Agent::Coordination& c : agent.coords) {
            if (c.resource != ri) continue;
            const Resource& r = resources_[ri];
            if (!shard::shard_incident(r.agents, d.from)) break;
            const std::size_t rank = shard::shard_rank(r.agents, d.from);
            if (ack.epoch == agent.epoch && ack.version > c.acked_version[rank]) {
                c.acked_epoch[rank] = ack.epoch;
                c.acked_version[rank] = ack.version;
            }
            break;
        }
    }
}

void AsyncShardRuntime::detectFailures(Agent& agent, double now) {
    for (int j : agent.neighbors) {
        Agent::Peer& p = agent.peers[static_cast<std::size_t>(j)];
        if (!p.suspected && now - p.last_heard > runtime_.heartbeat_timeout)
            suspectPeer(agent, j, now);
    }
}

void AsyncShardRuntime::suspectPeer(Agent& agent, int peer, double now) {
    Agent::Peer& p = agent.peers[static_cast<std::size_t>(peer)];
    p.suspected = true;
    p.backoff = runtime_.backoff_min;
    p.next_send = now + jitteredBackoff(agent, p.backoff);
    ++agent.counters.suspicions;

    // Graceful degradation: clamp every slice shared with the suspected
    // peer to its guaranteed-feasible floor.  The floor is safe under
    // ANY assignment the (possibly partitioned-away) coordinator makes,
    // so the global capacity constraint holds while the overlay heals.
    for (std::size_t bi = 0; bi < agent.budgets.size(); ++bi) {
        Agent::LocalBudget& lb = agent.budgets[bi];
        const Resource& r = resources_[lb.resource];
        if (lb.degraded || !shard::shard_incident(r.agents, peer)) continue;
        lb.degraded = true;
        ++agent.counters.degradations;
        setEngineCapacity(agent, bi, r.floor[lb.rank]);
    }
}

void AsyncShardRuntime::unsuspectPeer(Agent& agent, int peer, double now) {
    Agent::Peer& p = agent.peers[static_cast<std::size_t>(peer)];
    p.suspected = false;
    p.backoff = 0.0;
    p.next_send = now;  // resume the normal digest cadence immediately
    ++agent.counters.recoveries;

    for (std::size_t bi = 0; bi < agent.budgets.size(); ++bi) {
        Agent::LocalBudget& lb = agent.budgets[bi];
        const Resource& r = resources_[lb.resource];
        if (!lb.degraded || !shard::shard_incident(r.agents, peer)) continue;
        bool any_suspected = false;
        for (int other : r.agents)
            if (other != agent.id && agent.peers[static_cast<std::size_t>(other)].suspected)
                any_suspected = true;
        if (any_suspected) continue;
        lb.degraded = false;
        // The engine measured this resource's price against the floored
        // capacity; quarantine it until the controller has decayed back.
        lb.settle_until = now + runtime_.price_settle;
        setEngineCapacity(agent, bi, lb.applied);
    }
}

void AsyncShardRuntime::applySlice(Agent& agent, std::size_t budget_index, double slice) {
    Agent::LocalBudget& lb = agent.budgets[budget_index];
    if (slice == lb.applied) return;  // idempotent re-publication
    lb.applied = slice;
    ++agent.counters.budget_updates;
    if (!lb.degraded) setEngineCapacity(agent, budget_index, slice);
}

double AsyncShardRuntime::localPrice(const Agent& agent, std::size_t resource_index) const {
    if (agent.engine == nullptr) return 0.0;
    const Resource& r = resources_[resource_index];
    return r.node ? agent.engine->prices().node[agent.node_local[r.id]]
                  : agent.engine->prices().link[agent.link_local[r.id]];
}

void AsyncShardRuntime::setEngineCapacity(Agent& agent, std::size_t budget_index,
                                          double capacity) {
    if (agent.engine == nullptr) return;
    const Agent::LocalBudget& lb = agent.budgets[budget_index];
    if (resources_[lb.resource].node)
        agent.engine->setNodeCapacity(model::NodeId(lb.local_id), capacity);
    else
        agent.engine->setLinkCapacity(model::LinkId(lb.local_id), capacity);
}

double AsyncShardRuntime::jitteredBackoff(Agent& agent, double interval) const {
    return interval * (1.0 + runtime_.backoff_jitter * uniform01(agent.rng));
}

void AsyncShardRuntime::coordinate(Agent& agent, double now) {
    for (Agent::Coordination& c : agent.coords) {
        const Resource& r = resources_[c.resource];
        const std::size_t my_rank = agent.budgets[c.budget_index].rank;

        if (c.shrinking) {
            // Grow only after every live peer acknowledged the shrink.
            // A suspected peer stalls the grant (never the runtime):
            // the transaction completes via idempotent re-publication
            // once the peer recovers or restarts.
            bool all_acked = true;
            for (std::size_t i = 0; i < r.agents.size(); ++i) {
                if (r.agents[i] == agent.id) continue;
                const Agent::Peer& p = agent.peers[static_cast<std::size_t>(r.agents[i])];
                if (p.suspected || c.acked_epoch[i] != agent.epoch ||
                    c.acked_version[i] < c.version) {
                    all_acked = false;
                    break;
                }
            }
            if (all_acked) {
                c.current = c.pending;
                ++c.version;
                c.shrinking = false;
                c.ticks_since = 0;
                applySlice(agent, c.budget_index, c.current[my_rank]);
            }
            continue;
        }

        if (++c.ticks_since < runtime_.reconcile_ticks) continue;
        c.ticks_since = 0;

        // A rebalance needs a fresh price from every incident agent; a
        // suspected or silent peer defers it (degradation covers us).
        // The coordinator's own price is no better while its own slice
        // is degraded or inside the post-restore quarantine.
        const Agent::LocalBudget& own = agent.budgets[c.budget_index];
        bool fresh = agent.engine != nullptr && !own.degraded && now >= own.settle_until;
        std::vector<double> prices(r.agents.size(), 0.0);
        for (std::size_t i = 0; fresh && i < r.agents.size(); ++i) {
            if (r.agents[i] == agent.id) {
                prices[i] = localPrice(agent, c.resource);
                continue;
            }
            const Agent::Peer& p = agent.peers[static_cast<std::size_t>(r.agents[i])];
            if (p.suspected || now - c.peer_price_time[i] > runtime_.staleness_horizon)
                fresh = false;
            else
                prices[i] = c.peer_price[i];
        }
        if (!fresh) continue;

        shard::RebalanceResult result = shard::rebalance_budgets(
            r.capacity, c.current, r.floor, prices, runtime_.reconcile_step);
        // Significance gate: skip only when the transfer is negligible
        // both in absolute mass and relative to every individual slice.
        // The multiplicative step moves in proportion to the slice it
        // moves, so a collapsed slice's regrowth starts with transfers
        // far below any capacity-scaled threshold.
        double relative = 0.0;
        for (std::size_t i = 0; i < r.agents.size(); ++i)
            relative = std::max(relative, std::abs(result.budget[i] - c.current[i]) /
                                              std::max(c.current[i], 1e-12));
        if (result.moved <= runtime_.min_rebalance_fraction * r.capacity &&
            relative <= runtime_.min_rebalance_fraction)
            continue;

        // Shrink-before-grow: publish version v whose per-rank slice is
        // min(current, pending) — everyone's reductions happen first —
        // and withhold the grants until v is universally acked.
        c.pending = std::move(result.budget);
        ++c.version;
        c.shrinking = true;
        applySlice(agent, c.budget_index, std::min(c.current[my_rank], c.pending[my_rank]));
    }
}

void AsyncShardRuntime::sendDigests(Agent& agent, double now) {
    for (int j : agent.neighbors) {
        Agent::Peer& p = agent.peers[static_cast<std::size_t>(j)];
        if (now < p.next_send) continue;
        Digest digest = buildDigest(agent, j, now);
        if (runtime_.keep_digest_log) logDigest(agent, j, digest);
        const SendResult result = transport_->send(agent.id, j, now, std::move(digest));
        ++agent.counters.digests_sent;
        if (p.suspected || p.resend_pending) ++agent.counters.retries;
        p.resend_pending = false;
        if (result == SendResult::kQueueFull) {
            // Backpressure is visible (unlike fault drops): note the
            // failure and retry on the next tick.
            ++agent.counters.send_failures;
            p.resend_pending = true;
            p.next_send = now + runtime_.tick_period;
            continue;
        }
        if (p.suspected) {
            p.backoff = std::min(p.backoff * runtime_.backoff_factor, runtime_.backoff_max);
            p.next_send = now + jitteredBackoff(agent, p.backoff);
        } else {
            p.next_send = now + runtime_.digest_period;
        }
    }
}

Digest AsyncShardRuntime::buildDigest(Agent& agent, int to, double now) {
    Digest d;
    d.from = agent.id;
    d.version = ++agent.digest_version;
    d.epoch = agent.epoch;
    d.send_time = now;
    for (const Agent::LocalBudget& lb : agent.budgets) {
        const Resource& r = resources_[lb.resource];
        if (!shard::shard_incident(r.agents, to)) continue;
        // A degraded slice's price reflects the floor, not the grant;
        // advertising it would feed the coordinator garbage.  Staying
        // silent instead lets the stored price age past the staleness
        // horizon, which defers rebalancing until honest data returns.
        if (!lb.degraded && now >= lb.settle_until)
            d.prices.push_back({r.node, r.id, localPrice(agent, lb.resource)});
        if (r.coordinator == to) d.acks.push_back({r.node, r.id, lb.epoch, lb.version});
    }
    for (const Agent::Coordination& c : agent.coords) {
        const Resource& r = resources_[c.resource];
        if (!shard::shard_incident(r.agents, to)) continue;
        const std::size_t rank = shard::shard_rank(r.agents, to);
        const double slice =
            c.shrinking ? std::min(c.current[rank], c.pending[rank]) : c.current[rank];
        d.assignments.push_back({r.node, r.id, agent.epoch, c.version, slice});
    }
    return d;
}

void AsyncShardRuntime::logDigest(Agent& agent, int to, const Digest& digest) {
    std::string& out = agent.log;
    out += "t=";
    appendHex(out, digest.send_time);
    out += " to=";
    appendUint(out, static_cast<std::uint64_t>(to));
    out += " ver=";
    appendUint(out, digest.version);
    out += " epoch=";
    appendUint(out, digest.epoch);
    out += " prices=[";
    for (std::size_t i = 0; i < digest.prices.size(); ++i) {
        if (i != 0) out += ',';
        out += digest.prices[i].node ? 'n' : 'l';
        appendUint(out, digest.prices[i].id);
        out += ':';
        appendHex(out, digest.prices[i].price);
    }
    out += "] assigns=[";
    for (std::size_t i = 0; i < digest.assignments.size(); ++i) {
        const BudgetAssignment& a = digest.assignments[i];
        if (i != 0) out += ',';
        out += a.node ? 'n' : 'l';
        appendUint(out, a.id);
        out += ':';
        appendUint(out, a.epoch);
        out += '/';
        appendUint(out, a.version);
        out += ':';
        appendHex(out, a.slice);
    }
    out += "] acks=[";
    for (std::size_t i = 0; i < digest.acks.size(); ++i) {
        const BudgetAck& a = digest.acks[i];
        if (i != 0) out += ',';
        out += a.node ? 'n' : 'l';
        appendUint(out, a.id);
        out += ':';
        appendUint(out, a.epoch);
        out += '/';
        appendUint(out, a.version);
    }
    out += "]\n";
}

void AsyncShardRuntime::maybeSnapshot(Agent& agent, double now) {
    if (agent.engine == nullptr || now < agent.next_snapshot) return;
    agent.snapshot_bytes = agent.engine->snapshot().serialize();
    ++agent.counters.snapshots;
    while (agent.next_snapshot <= now) agent.next_snapshot += runtime_.snapshot_period;
}

// ---------------------------------------------------------------------------
// observers
// ---------------------------------------------------------------------------

double AsyncShardRuntime::currentUtility() const {
    return published_total_.load(std::memory_order_relaxed);
}

bool AsyncShardRuntime::agentDown(int agent) const {
    return agents_.at(static_cast<std::size_t>(agent))->down;
}

std::vector<AgentSummary> AsyncShardRuntime::summaries() const {
    std::vector<AgentSummary> out;
    out.reserve(agents_.size());
    for (const auto& agent : agents_) {
        AgentSummary s;
        s.agent = agent->id;
        s.flows = agent->flows.size();
        s.classes = agent->classes.size();
        s.nodes = agent->nodes.size();
        s.links = agent->links.size();
        s.down = agent->down;
        s.epoch = agent->epoch;
        s.utility = agent->published.load(std::memory_order_relaxed);
        s.counters = agent->counters;
        out.push_back(std::move(s));
    }
    return out;
}

namespace {
AgentCounters sumCounters(const std::vector<AgentSummary>& summaries) {
    AgentCounters t;
    for (const AgentSummary& s : summaries) {
        t.engine_iterations += s.counters.engine_iterations;
        t.digests_sent += s.counters.digests_sent;
        t.digests_received += s.counters.digests_received;
        t.digests_rejected_stale += s.counters.digests_rejected_stale;
        t.send_failures += s.counters.send_failures;
        t.retries += s.counters.retries;
        t.suspicions += s.counters.suspicions;
        t.recoveries += s.counters.recoveries;
        t.crashes += s.counters.crashes;
        t.restarts += s.counters.restarts;
        t.snapshots += s.counters.snapshots;
        t.snapshot_restores += s.counters.snapshot_restores;
        t.budget_updates += s.counters.budget_updates;
        t.degradations += s.counters.degradations;
    }
    return t;
}
}  // namespace

RuntimeStats AsyncShardRuntime::stats() const {
    RuntimeStats stats;
    stats.totals = sumCounters(summaries());
    stats.messages_sent = transport_->messagesSent();
    stats.dropped_fault = transport_->droppedFault();
    stats.dropped_backpressure = transport_->droppedBackpressure();
    stats.fault_stats = transport_->faultStats();
    // Crash/restart bookkeeping lives in the runtime, not the injector.
    stats.fault_stats.crashes = stats.totals.crashes;
    stats.fault_stats.restarts = stats.totals.restarts;
    return stats;
}

const std::string& AsyncShardRuntime::digestLog(int agent) const {
    return agents_.at(static_cast<std::size_t>(agent))->log;
}

const core::ParallelLrgpEngine* AsyncShardRuntime::agentEngine(int agent) const {
    return agents_.at(static_cast<std::size_t>(agent))->engine.get();
}

void AsyncShardRuntime::attachObservability(obs::Registry* registry) {
    if constexpr (!obs::kEnabled) {
        (void)registry;
        return;
    } else {
        if (registry == nullptr) {
            obs_attached_ = false;
            instr_ = {};
            return;
        }
        instr_ = obs::RuntimeInstruments::resolve(*registry);
        obs_attached_ = true;
        instr_.agents->set(static_cast<double>(agents_.size()));
    }
}

void AsyncShardRuntime::exportCounters() {
    if constexpr (!obs::kEnabled) return;
    if (!obs_attached_) return;
    const AgentCounters totals = sumCounters(summaries());
    const auto push = [](obs::Counter* counter, std::uint64_t total, std::uint64_t& exported) {
        if (total > exported) counter->add(total - exported);
        exported = total;
    };
    push(instr_.digests_sent, totals.digests_sent, exported_.digests_sent);
    push(instr_.digests_received, totals.digests_received, exported_.digests_received);
    push(instr_.rejected_stale, totals.digests_rejected_stale, exported_.digests_rejected_stale);
    push(instr_.send_failures, totals.send_failures, exported_.send_failures);
    push(instr_.retries, totals.retries, exported_.retries);
    push(instr_.suspicions, totals.suspicions, exported_.suspicions);
    push(instr_.recoveries, totals.recoveries, exported_.recoveries);
    push(instr_.crashes, totals.crashes, exported_.crashes);
    push(instr_.restarts, totals.restarts, exported_.restarts);
    push(instr_.snapshots, totals.snapshots, exported_.snapshots);
    push(instr_.snapshot_restores, totals.snapshot_restores, exported_.snapshot_restores);
    push(instr_.budget_updates, totals.budget_updates, exported_.budget_updates);
    push(instr_.degradations, totals.degradations, exported_.degradations);
    push(instr_.dropped_fault, transport_->droppedFault(), exported_fault_);
    push(instr_.dropped_backpressure, transport_->droppedBackpressure(), exported_backpressure_);
    instr_.utility->set(published_total_.load(std::memory_order_relaxed));
    instr_.agents->set(static_cast<double>(agents_.size()));
    exported_sent_ = transport_->messagesSent();
}

}  // namespace lrgp::runtime
