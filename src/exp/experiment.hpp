// Declarative experiments: a JSON document describes the workload, the
// optimizer, and a schedule of dynamic events; the runner executes it
// and returns utilities, traces and a summary.  This is how the paper's
// evaluation (and new studies) can be scripted without recompiling:
//
// {
//   "name": "recovery-study",
//   "workload": {"kind": "base", "shape": "log"},
//     // kinds: "base" | "scaled" (+flow_replicas/cnode_replicas)
//     //        | "random" (+seed) | "inline" (+problem: <problem JSON>)
//   "optimizer": {"kind": "lrgp", "gamma": "adaptive", "iterations": 250},
//     // kinds: "lrgp" | "multirate" | "sa" (+steps, +temperatures)
//     //        | "rates_only" (+policy: "proportional"|"max_demand")
//   "events": [ {"at": 150, "action": "remove_flow",       "flow": "f0_5"},
//               {"at": 180, "action": "restore_flow",      "flow": "f0_5"},
//               {"at": 100, "action": "set_node_capacity", "node": "r0_S0",
//                "capacity": 450000},
//               {"at": 120, "action": "set_class_max",     "class": "r0_c0",
//                "max": 800} ]
//     // events apply before the given 1-based iteration; only the
//     // iterative optimizers (lrgp, multirate*) support them
//     // (*multirate supports capacity/class events, not flow removal)
// }
#pragma once

#include <string>
#include <vector>

#include "io/json.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/analysis.hpp"
#include "model/problem.hpp"

namespace lrgp::exp {

/// The outcome of one experiment run.
struct ExperimentResult {
    std::string name;
    double final_utility = 0.0;
    std::size_t converged_at = 0;  ///< 0 when the criterion never fired
    metrics::TimeSeries utility_trace;
    model::AllocationSummary summary;
    double wall_seconds = 0.0;
};

/// Parses and runs one experiment.  Throws std::runtime_error on schema
/// problems and std::invalid_argument on semantic ones (unknown names).
[[nodiscard]] ExperimentResult run_experiment(const io::JsonValue& config);
[[nodiscard]] ExperimentResult run_experiment_string(const std::string& config_text);

/// Serializes a result (summary + trace) as JSON for downstream tooling.
[[nodiscard]] io::JsonValue result_to_json(const ExperimentResult& result,
                                           bool include_trace = true);

/// Builds just the workload part of a config (exposed for reuse/tests).
[[nodiscard]] model::ProblemSpec workload_from_config(const io::JsonValue& workload_config);

}  // namespace lrgp::exp
