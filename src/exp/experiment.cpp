#include "exp/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "baseline/annealing.hpp"
#include "baseline/rates_only.hpp"
#include "io/problem_json.hpp"
#include "lrgp/optimizer.hpp"
#include "multirate/multirate.hpp"
#include "workload/random_workload.hpp"
#include "workload/workloads.hpp"

namespace lrgp::exp {

namespace {

workload::UtilityShape shapeFromString(const std::string& s) {
    if (s == "log") return workload::UtilityShape::kLog;
    if (s == "p025") return workload::UtilityShape::kPow025;
    if (s == "p05") return workload::UtilityShape::kPow05;
    if (s == "p075") return workload::UtilityShape::kPow075;
    throw std::runtime_error("experiment: unknown utility shape '" + s + "'");
}

int intAt(const io::JsonValue& obj, const std::string& key, int fallback) {
    return obj.has(key) ? static_cast<int>(obj.at(key).asNumber()) : fallback;
}

/// One scheduled workload change.
struct Event {
    int at = 0;  ///< applied before this 1-based iteration
    enum class Action { kRemoveFlow, kRestoreFlow, kSetNodeCapacity, kSetClassMax } action;
    std::string target;
    double value = 0.0;
};

std::vector<Event> parseEvents(const io::JsonValue& config) {
    std::vector<Event> events;
    if (!config.has("events")) return events;
    for (const io::JsonValue& e : config.at("events").asArray()) {
        Event event;
        event.at = static_cast<int>(e.at("at").asNumber());
        if (event.at < 1) throw std::runtime_error("experiment: event 'at' must be >= 1");
        const std::string& action = e.at("action").asString();
        if (action == "remove_flow") {
            event.action = Event::Action::kRemoveFlow;
            event.target = e.at("flow").asString();
        } else if (action == "restore_flow") {
            event.action = Event::Action::kRestoreFlow;
            event.target = e.at("flow").asString();
        } else if (action == "set_node_capacity") {
            event.action = Event::Action::kSetNodeCapacity;
            event.target = e.at("node").asString();
            event.value = e.at("capacity").asNumber();
        } else if (action == "set_class_max") {
            event.action = Event::Action::kSetClassMax;
            event.target = e.at("class").asString();
            event.value = e.at("max").asNumber();
        } else {
            throw std::runtime_error("experiment: unknown event action '" + action + "'");
        }
        events.push_back(std::move(event));
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.at < b.at; });
    return events;
}

model::ClassId classByName(const model::ProblemSpec& spec, const std::string& name) {
    for (const model::ClassSpec& c : spec.classes())
        if (c.name == name) return c.id;
    throw std::invalid_argument("experiment: no class named '" + name + "'");
}

core::LrgpOptions lrgpOptions(const io::JsonValue& optimizer_config) {
    core::LrgpOptions options;
    if (optimizer_config.has("gamma")) {
        const io::JsonValue& gamma = optimizer_config.at("gamma");
        if (gamma.isString()) {
            if (gamma.asString() != "adaptive")
                throw std::runtime_error("experiment: gamma must be 'adaptive' or a number");
        } else {
            options.gamma = core::FixedGamma{gamma.asNumber(), gamma.asNumber()};
        }
    }
    if (optimizer_config.has("link_gamma"))
        options.link_gamma = optimizer_config.at("link_gamma").asNumber();
    return options;
}

}  // namespace

model::ProblemSpec workload_from_config(const io::JsonValue& workload_config) {
    const std::string& kind = workload_config.at("kind").asString();
    const workload::UtilityShape shape =
        workload_config.has("shape") ? shapeFromString(workload_config.at("shape").asString())
                                     : workload::UtilityShape::kLog;
    if (kind == "base") return workload::make_base_workload(shape);
    if (kind == "scaled") {
        workload::WorkloadOptions options;
        options.shape = shape;
        options.flow_replicas = intAt(workload_config, "flow_replicas", 1);
        options.cnode_replicas = intAt(workload_config, "cnode_replicas", 1);
        return workload::make_scaled_workload(options);
    }
    if (kind == "random") {
        workload::RandomWorkloadOptions options;
        options.shape = shape;
        options.seed = static_cast<std::uint32_t>(intAt(workload_config, "seed", 1));
        return workload::make_random_workload(options);
    }
    if (kind == "inline") return io::problem_from_json(workload_config.at("problem"));
    throw std::runtime_error("experiment: unknown workload kind '" + kind + "'");
}

ExperimentResult run_experiment(const io::JsonValue& config) {
    const auto start_time = std::chrono::steady_clock::now();

    ExperimentResult result;
    result.name = config.has("name") ? config.at("name").asString() : "unnamed";

    model::ProblemSpec spec = workload_from_config(config.at("workload"));
    const io::JsonValue& optimizer_config = config.at("optimizer");
    const std::string& kind = optimizer_config.at("kind").asString();
    const int iterations = intAt(optimizer_config, "iterations", 250);
    std::vector<Event> events = parseEvents(config);

    if (kind == "lrgp") {
        core::LrgpOptimizer optimizer(spec, lrgpOptions(optimizer_config));
        std::size_t next_event = 0;
        for (int t = 1; t <= iterations; ++t) {
            while (next_event < events.size() && events[next_event].at == t) {
                const Event& e = events[next_event++];
                switch (e.action) {
                    case Event::Action::kRemoveFlow:
                        optimizer.removeFlow(workload::find_flow(optimizer.problem(), e.target));
                        break;
                    case Event::Action::kRestoreFlow:
                        optimizer.restoreFlow(workload::find_flow(optimizer.problem(), e.target));
                        break;
                    case Event::Action::kSetNodeCapacity:
                        optimizer.setNodeCapacity(
                            workload::find_node(optimizer.problem(), e.target), e.value);
                        break;
                    case Event::Action::kSetClassMax:
                        optimizer.setClassMaxConsumers(classByName(optimizer.problem(), e.target),
                                                       static_cast<int>(e.value));
                        break;
                }
            }
            optimizer.step();
        }
        result.final_utility = optimizer.currentUtility();
        result.converged_at = optimizer.convergence().convergedAt();
        result.utility_trace = optimizer.utilityTrace();
        result.summary = model::summarize(optimizer.problem(), optimizer.allocation());
    } else if (kind == "multirate") {
        if (!events.empty())
            throw std::runtime_error("experiment: multirate runs do not support events yet");
        multirate::MultirateOptimizer optimizer(spec);
        optimizer.run(iterations);
        result.final_utility = optimizer.currentUtility();
        result.converged_at = optimizer.convergence().convergedAt();
        result.utility_trace = optimizer.utilityTrace();
        // Summarize via the single-rate evaluators on the flow rates.
        model::Allocation flat;
        flat.rates = optimizer.allocation().flow_rates;
        flat.populations = optimizer.allocation().populations;
        result.summary = model::summarize(optimizer.problem(), flat);
    } else if (kind == "sa") {
        if (!events.empty())
            throw std::runtime_error("experiment: sa runs do not support events");
        std::vector<double> temperatures{5.0, 10.0, 50.0, 100.0};
        if (optimizer_config.has("temperatures")) {
            temperatures.clear();
            for (const io::JsonValue& t : optimizer_config.at("temperatures").asArray())
                temperatures.push_back(t.asNumber());
        }
        const auto steps =
            static_cast<std::uint64_t>(intAt(optimizer_config, "steps", 100'000));
        const auto sa = baseline::best_of_annealing(spec, temperatures, steps, 1);
        result.final_utility = sa.best_utility;
        result.utility_trace.append(sa.best_utility);
        result.summary = model::summarize(spec, sa.best);
    } else if (kind == "rates_only") {
        if (!events.empty())
            throw std::runtime_error("experiment: rates_only runs do not support events");
        baseline::RatesOnlyOptions options;
        options.iterations = iterations;
        if (optimizer_config.has("policy")) {
            const std::string& policy = optimizer_config.at("policy").asString();
            if (policy == "max_demand") options.policy = baseline::PopulationPolicy::kMaxDemand;
            else if (policy == "proportional")
                options.policy = baseline::PopulationPolicy::kProportionalFill;
            else throw std::runtime_error("experiment: unknown rates_only policy '" + policy + "'");
        }
        const auto ro = baseline::rates_only_num(spec, options);
        result.final_utility = ro.utility;
        result.utility_trace = ro.utility_trace;
        result.summary = model::summarize(spec, ro.allocation);
    } else {
        throw std::runtime_error("experiment: unknown optimizer kind '" + kind + "'");
    }

    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_time).count();
    return result;
}

ExperimentResult run_experiment_string(const std::string& config_text) {
    return run_experiment(io::parse_json(config_text));
}

io::JsonValue result_to_json(const ExperimentResult& result, bool include_trace) {
    io::JsonObject root;
    root.emplace("name", result.name);
    root.emplace("final_utility", result.final_utility);
    root.emplace("converged_at", static_cast<double>(result.converged_at));
    root.emplace("wall_seconds", result.wall_seconds);
    io::JsonObject summary;
    summary.emplace("total_utility", result.summary.total_utility);
    summary.emplace("jain_fairness", result.summary.jain_fairness);
    summary.emplace("classes_fully_admitted",
                    static_cast<double>(result.summary.classes_fully_admitted));
    summary.emplace("classes_partially_admitted",
                    static_cast<double>(result.summary.classes_partially_admitted));
    summary.emplace("classes_denied", static_cast<double>(result.summary.classes_denied));
    root.emplace("summary", std::move(summary));
    if (include_trace) {
        io::JsonArray trace;
        for (double u : result.utility_trace.samples()) trace.emplace_back(u);
        root.emplace("utility_trace", std::move(trace));
    }
    return io::JsonValue(std::move(root));
}

}  // namespace lrgp::exp
