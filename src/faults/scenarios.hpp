// The shipped chaos scenarios — one catalog shared by the chaos test
// suite and bench/bench_chaos so "every shipped scenario reconverges"
// is a single, enforced definition.
//
// Each scenario perturbs the system inside [fault_start, fault_end] and
// is expected to heal afterwards: the hardened asynchronous protocol
// must return to within 1% of its pre-fault steady-state utility.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"

namespace lrgp::faults {

struct ChaosScenario {
    std::string name;
    std::string description;
    FaultPlan plan;
    sim::SimTime fault_start = 0.0;  ///< first injected disturbance
    sim::SimTime fault_end = 0.0;    ///< all faults healed/restarted by here
};

/// Builds the standard catalog for a workload with the given agent
/// counts: loss burst, delay spike, reorder storm, partition, flapping
/// link (periodic short partition pulses), asymmetric partition (the
/// victim hears its peers but is not heard), node/source crash and
/// price corruption.  Faults open at `t0` and heal within `duration`
/// seconds.
/// Targeted faults hit the *last* node and the *last* flow (in the
/// Table 1 base workload: c-node S2 and flow f0_5, the largest utility
/// contributor).  Link scenarios are included only when links exist.
[[nodiscard]] std::vector<ChaosScenario> standard_scenarios(std::size_t flow_count,
                                                            std::size_t node_count,
                                                            std::size_t link_count,
                                                            sim::SimTime t0 = 10.0,
                                                            sim::SimTime duration = 2.0);

}  // namespace lrgp::faults
