#include "faults/scenarios.hpp"

#include <stdexcept>

namespace lrgp::faults {

std::vector<ChaosScenario> standard_scenarios(std::size_t flow_count, std::size_t node_count,
                                              std::size_t link_count, sim::SimTime t0,
                                              sim::SimTime duration) {
    if (flow_count == 0 || node_count == 0)
        throw std::invalid_argument("standard_scenarios: need at least one flow and node");
    if (!(t0 > 0.0) || !(duration > 0.0))
        throw std::invalid_argument("standard_scenarios: t0 and duration must be > 0");

    const sim::SimTime t1 = t0 + duration;
    const AgentRef last_node{AgentKind::kNode, static_cast<std::uint32_t>(node_count - 1)};
    const AgentRef last_source{AgentKind::kSource, static_cast<std::uint32_t>(flow_count - 1)};

    std::vector<ChaosScenario> out;

    {
        ChaosScenario s;
        s.name = "loss_burst";
        s.description = "40% of all protocol messages dropped";
        s.plan.losses.push_back(LossBurst{{t0, t1}, 0.4, std::nullopt, std::nullopt});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    {
        ChaosScenario s;
        s.name = "delay_spike";
        s.description = "every message delayed by an extra 0.2-0.5s";
        s.plan.delay_spikes.push_back(DelaySpike{{t0, t1}, 0.2, 0.5, std::nullopt, std::nullopt});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    {
        ChaosScenario s;
        s.name = "reorder_storm";
        s.description = "half of all messages held back up to 0.3s (reordering)";
        s.plan.reorders.push_back(ReorderWindow{{t0, t1}, 0.5, 0.3});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    {
        ChaosScenario s;
        s.name = "partition";
        s.description = "last consumer node cut off from all peers";
        s.plan.partitions.push_back(PartitionWindow{{t0, t1}, {last_node}});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    {
        // Periodic short partitions: the link to the last node flaps up
        // and down through the window instead of failing once.  Four
        // outage pulses, each 40% of a cycle, the line healthy between
        // them — the failure detector must suspect and un-suspect
        // repeatedly without oscillating the allocation apart.
        ChaosScenario s;
        s.name = "flapping_link";
        s.description = "link to the last consumer node flaps (4 short partition pulses)";
        const sim::SimTime cycle = duration / 4.0;
        for (int pulse = 0; pulse < 4; ++pulse) {
            const sim::SimTime up = t0 + static_cast<sim::SimTime>(pulse) * cycle;
            s.plan.partitions.push_back(PartitionWindow{{up, up + 0.4 * cycle}, {last_node}});
        }
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    {
        // One-way partition: the last node hears everyone (rates keep
        // arriving), but its own price/population reports never leave the
        // island — peers see a silent node while the node itself sees a
        // healthy overlay.
        ChaosScenario s;
        s.name = "asymmetric_partition";
        s.description = "last consumer node hears peers but its reports are dropped";
        s.plan.asymmetric_partitions.push_back(
            AsymmetricPartitionWindow{{t0, t1}, {last_node}});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    {
        ChaosScenario s;
        s.name = "node_crash";
        s.description = "last consumer node crashes with state loss, restarts";
        s.plan.crashes.push_back(CrashEvent{last_node, t0, t1});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    {
        ChaosScenario s;
        s.name = "source_crash";
        s.description = "largest flow's source crashes with state loss, restarts";
        s.plan.crashes.push_back(CrashEvent{last_source, t0, t1});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    {
        ChaosScenario s;
        s.name = "price_corruption";
        s.description = "30% of price reports multiplied by 25";
        s.plan.corruptions.push_back(PriceCorruption{{t0, t1}, 0.3, 25.0, std::nullopt});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }
    if (link_count > 0) {
        const AgentRef last_link{AgentKind::kLink, static_cast<std::uint32_t>(link_count - 1)};
        ChaosScenario s;
        s.name = "link_partition";
        s.description = "last link agent cut off from all peers";
        s.plan.partitions.push_back(PartitionWindow{{t0, t1}, {last_link}});
        s.fault_start = t0;
        s.fault_end = t1;
        out.push_back(std::move(s));
    }

    return out;
}

}  // namespace lrgp::faults
