// Fault injection for the distributed LRGP protocol (chaos testing).
//
// A FaultPlan is a declarative schedule of failures — message loss
// bursts, latency spikes, reordering storms, link partitions, agent
// crash/restart pairs, and price-report corruption — that the
// dist::DistLrgp driver replays against the discrete-event simulator.
// Every stochastic decision is drawn from one xorshift64 stream seeded
// at construction, so the same (plan, seed, workload) triple reproduces
// a bitwise-identical run: chaos experiments are regular regression
// tests, not flaky ones.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"

namespace lrgp::faults {

/// Which protocol role an agent plays.  Indices are the dense per-role
/// indices used by dist::DistLrgp (flow index, node index, link index).
enum class AgentKind : std::uint8_t { kSource, kNode, kLink };

/// A protocol agent named by role and per-role index.
struct AgentRef {
    AgentKind kind = AgentKind::kSource;
    std::uint32_t index = 0;

    friend bool operator==(const AgentRef& a, const AgentRef& b) {
        return a.kind == b.kind && a.index == b.index;
    }
};

/// The protocol message types that can be targeted individually.
enum class MessageKind : std::uint8_t {
    kRate,        ///< source -> node/link rate announcement
    kNodeReport,  ///< node -> source (price, populations) report
    kLinkReport,  ///< link -> source price report
};

/// Who is talking to whom; handed to the injector for every message.
struct MessageContext {
    AgentRef from;
    AgentRef to;
    MessageKind kind = MessageKind::kRate;
};

/// Closed time interval [start, end] in simulated seconds.
struct TimeWindow {
    sim::SimTime start = 0.0;
    sim::SimTime end = std::numeric_limits<sim::SimTime>::infinity();

    [[nodiscard]] bool contains(sim::SimTime t) const noexcept {
        return t >= start && t <= end;
    }
};

/// Drops each matching message with `probability` while the window is
/// open.  Empty endpoint selectors match any agent.
struct LossBurst {
    TimeWindow window;
    double probability = 1.0;
    std::optional<AgentRef> from;  ///< nullopt = any sender
    std::optional<AgentRef> to;    ///< nullopt = any receiver
};

/// Adds uniform extra latency in [extra_min, extra_max] to matching
/// messages — a congested or rerouted path.  Because the extra delay is
/// drawn per message, a spike with extra_min < extra_max also reorders.
struct DelaySpike {
    TimeWindow window;
    sim::SimTime extra_min = 0.0;
    sim::SimTime extra_max = 0.0;
    std::optional<AgentRef> from;
    std::optional<AgentRef> to;
};

/// With `probability`, holds a message back by uniform extra delay in
/// [0, jitter] — later traffic overtakes it (reordering without loss).
struct ReorderWindow {
    TimeWindow window;
    double probability = 0.5;
    sim::SimTime jitter = 0.1;
};

/// Cuts the `island` agents off from everyone outside the island (both
/// directions) while the window is open.  Messages among island members
/// and among outsiders still flow.
struct PartitionWindow {
    TimeWindow window;
    std::vector<AgentRef> island;
};

/// One-way partition: while the window is open, messages FROM island
/// members TO the outside are dropped, while the reverse direction still
/// flows — the island hears the rest of the overlay, but the overlay
/// cannot hear the island (a misconfigured firewall or a half-open TCP
/// peer).  Messages among island members and among outsiders still flow.
struct AsymmetricPartitionWindow {
    TimeWindow window;
    std::vector<AgentRef> island;
};

/// Crashes `agent` at `at` with full state loss; it rejoins (state
/// re-initialised, not restored) at `restart_at`, or never if infinite.
struct CrashEvent {
    AgentRef agent;
    sim::SimTime at = 0.0;
    sim::SimTime restart_at = std::numeric_limits<sim::SimTime>::infinity();
};

/// Multiplies the price carried by matching report messages by `factor`
/// with `probability` — a corrupted or misconverted price report.
struct PriceCorruption {
    TimeWindow window;
    double probability = 1.0;
    double factor = 10.0;
    std::optional<AgentRef> from;  ///< nullopt = reports from any resource
};

/// The full injection schedule.  Plans are plain data: build one, hand
/// it to dist::DistOptions::fault_plan, and keep it for the paired
/// lockstep run.
struct FaultPlan {
    std::vector<LossBurst> losses;
    std::vector<DelaySpike> delay_spikes;
    std::vector<ReorderWindow> reorders;
    std::vector<PartitionWindow> partitions;
    std::vector<AsymmetricPartitionWindow> asymmetric_partitions;
    std::vector<CrashEvent> crashes;
    std::vector<PriceCorruption> corruptions;

    [[nodiscard]] bool empty() const noexcept {
        return losses.empty() && delay_spikes.empty() && reorders.empty() &&
               partitions.empty() && asymmetric_partitions.empty() && crashes.empty() &&
               corruptions.empty();
    }

    /// Throws std::invalid_argument on malformed entries (inverted
    /// windows, probabilities outside [0,1], negative delays, crash
    /// restarting before it happens, negative factors, empty islands).
    void validate() const;
};

/// What the injector decided for one message.
struct FaultDecision {
    bool drop = false;
    sim::SimTime extra_delay = 0.0;
    double price_factor = 1.0;  ///< applied to the carried price, if any
};

/// Injection counters, exposed for instrumentation and tests.
struct FaultStats {
    std::size_t messages_dropped = 0;    ///< by loss bursts and partitions
    std::size_t messages_delayed = 0;    ///< by delay spikes
    std::size_t messages_reordered = 0;  ///< by reorder windows
    std::size_t prices_corrupted = 0;
    std::size_t crashes = 0;
    std::size_t restarts = 0;
};

/// Replays a FaultPlan deterministically.  One instance per protocol
/// run; all stochastic draws come from a private xorshift64 stream.
class FaultInjector {
public:
    /// Validates the plan (see FaultPlan::validate).
    FaultInjector(FaultPlan plan, std::uint32_t seed);

    /// Decides drop / extra delay / price corruption for one message.
    /// Must be called exactly once per sent message, in simulation
    /// order, to keep the random stream aligned across lockstep runs.
    [[nodiscard]] FaultDecision onMessage(const MessageContext& ctx, sim::SimTime now);

    [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
    [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

    /// Crash bookkeeping (the driver owns the crash schedule).
    void noteCrash() noexcept { ++stats_.crashes; }
    void noteRestart() noexcept { ++stats_.restarts; }

private:
    [[nodiscard]] double uniform();  ///< deterministic draw in [0, 1)

    FaultPlan plan_;
    FaultStats stats_;
    std::uint64_t rng_state_;
};

}  // namespace lrgp::faults
