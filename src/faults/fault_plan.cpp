#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lrgp::faults {

namespace {

void require(bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("FaultPlan: ") + what);
}

void validateWindow(const TimeWindow& w, const char* what) {
    require(w.start >= 0.0 && !(w.end < w.start),
            (std::string(what) + ": window must satisfy 0 <= start <= end").c_str());
}

void validateProbability(double p, const char* what) {
    require(p >= 0.0 && p <= 1.0,
            (std::string(what) + ": probability must be in [0, 1]").c_str());
}

bool matches(const std::optional<AgentRef>& selector, const AgentRef& agent) {
    return !selector || *selector == agent;
}

bool inIsland(const std::vector<AgentRef>& island, const AgentRef& agent) {
    return std::find(island.begin(), island.end(), agent) != island.end();
}

}  // namespace

void FaultPlan::validate() const {
    for (const LossBurst& f : losses) {
        validateWindow(f.window, "LossBurst");
        validateProbability(f.probability, "LossBurst");
    }
    for (const DelaySpike& f : delay_spikes) {
        validateWindow(f.window, "DelaySpike");
        require(f.extra_min >= 0.0 && f.extra_min <= f.extra_max,
                "DelaySpike: need 0 <= extra_min <= extra_max");
    }
    for (const ReorderWindow& f : reorders) {
        validateWindow(f.window, "ReorderWindow");
        validateProbability(f.probability, "ReorderWindow");
        require(f.jitter >= 0.0, "ReorderWindow: jitter must be >= 0");
    }
    for (const PartitionWindow& f : partitions) {
        validateWindow(f.window, "PartitionWindow");
        require(!f.island.empty(), "PartitionWindow: island must not be empty");
    }
    for (const AsymmetricPartitionWindow& f : asymmetric_partitions) {
        validateWindow(f.window, "AsymmetricPartitionWindow");
        require(!f.island.empty(), "AsymmetricPartitionWindow: island must not be empty");
    }
    for (const CrashEvent& f : crashes) {
        require(f.at >= 0.0, "CrashEvent: crash time must be >= 0");
        require(f.restart_at > f.at, "CrashEvent: restart_at must be after the crash");
    }
    for (const PriceCorruption& f : corruptions) {
        validateWindow(f.window, "PriceCorruption");
        validateProbability(f.probability, "PriceCorruption");
        require(f.factor >= 0.0 && std::isfinite(f.factor),
                "PriceCorruption: factor must be finite and >= 0");
    }
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t seed) : plan_(std::move(plan)) {
    plan_.validate();
    rng_state_ = 0xD1B54A32D192ED03ull ^ (static_cast<std::uint64_t>(seed) * 0x9E3779B97F4A7C15ull);
    if (rng_state_ == 0) rng_state_ = 0x9E3779B97F4A7C15ull;
}

double FaultInjector::uniform() {
    rng_state_ ^= rng_state_ << 13;
    rng_state_ ^= rng_state_ >> 7;
    rng_state_ ^= rng_state_ << 17;
    return static_cast<double>(rng_state_ >> 11) * 0x1.0p-53;  // [0, 1)
}

FaultDecision FaultInjector::onMessage(const MessageContext& ctx, sim::SimTime now) {
    FaultDecision decision;

    // Partitions drop deterministically: a message crossing any open
    // island boundary never arrives.
    for (const PartitionWindow& f : plan_.partitions) {
        if (!f.window.contains(now)) continue;
        if (inIsland(f.island, ctx.from) != inIsland(f.island, ctx.to)) {
            decision.drop = true;
            ++stats_.messages_dropped;
            return decision;
        }
    }

    // Asymmetric partitions drop deterministically too (no RNG draw, so
    // adding one to a plan never shifts the stochastic stream): only the
    // island -> outside direction is cut; the island still hears the
    // rest of the overlay.
    for (const AsymmetricPartitionWindow& f : plan_.asymmetric_partitions) {
        if (!f.window.contains(now)) continue;
        if (inIsland(f.island, ctx.from) && !inIsland(f.island, ctx.to)) {
            decision.drop = true;
            ++stats_.messages_dropped;
            return decision;
        }
    }

    for (const LossBurst& f : plan_.losses) {
        if (!f.window.contains(now)) continue;
        if (!matches(f.from, ctx.from) || !matches(f.to, ctx.to)) continue;
        if (uniform() < f.probability) {
            decision.drop = true;
            ++stats_.messages_dropped;
            return decision;
        }
    }

    for (const DelaySpike& f : plan_.delay_spikes) {
        if (!f.window.contains(now)) continue;
        if (!matches(f.from, ctx.from) || !matches(f.to, ctx.to)) continue;
        decision.extra_delay += f.extra_min + uniform() * (f.extra_max - f.extra_min);
        ++stats_.messages_delayed;
    }

    for (const ReorderWindow& f : plan_.reorders) {
        if (!f.window.contains(now)) continue;
        if (uniform() < f.probability) {
            decision.extra_delay += uniform() * f.jitter;
            ++stats_.messages_reordered;
        }
    }

    if (ctx.kind != MessageKind::kRate) {
        for (const PriceCorruption& f : plan_.corruptions) {
            if (!f.window.contains(now)) continue;
            if (!matches(f.from, ctx.from)) continue;
            if (uniform() < f.probability) {
                decision.price_factor *= f.factor;
                ++stats_.prices_corrupted;
            }
        }
    }

    return decision;
}

}  // namespace lrgp::faults
