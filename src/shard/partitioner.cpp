#include "shard/partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lrgp::shard {

namespace {

/// The incident resources of one flow: route-node hops plus the source
/// node (deduplicated), and route-link hops.
struct FlowIncidence {
    std::vector<std::uint32_t> nodes;
    std::vector<std::uint32_t> links;
};

std::vector<FlowIncidence> build_incidence(const model::ProblemSpec& spec) {
    std::vector<FlowIncidence> out(spec.flowCount());
    for (const model::FlowSpec& f : spec.flows()) {
        FlowIncidence& inc = out[f.id.index()];
        inc.nodes.reserve(f.nodes.size() + 1);
        for (const model::FlowNodeHop& hop : f.nodes) inc.nodes.push_back(hop.node.index());
        inc.nodes.push_back(f.source.index());
        std::sort(inc.nodes.begin(), inc.nodes.end());
        inc.nodes.erase(std::unique(inc.nodes.begin(), inc.nodes.end()), inc.nodes.end());
        inc.links.reserve(f.links.size());
        for (const model::FlowLinkHop& hop : f.links) inc.links.push_back(hop.link.index());
    }
    return out;
}

/// Per-resource shard occupancy: count[r * K + s] flows of shard s touch
/// resource r, plus the number of distinct shards touching r.  Supports
/// O(1) evaluation and application of single-flow moves.
struct Occupancy {
    int K;
    std::vector<std::uint32_t> count;    ///< resource-major, K per resource
    std::vector<std::uint16_t> distinct;

    Occupancy(std::size_t resources, int shards)
        : K(shards), count(resources * static_cast<std::size_t>(shards), 0),
          distinct(resources, 0) {}

    void add(std::uint32_t r, int s) {
        if (count[r * static_cast<std::size_t>(K) + s]++ == 0) ++distinct[r];
    }
    void remove(std::uint32_t r, int s) {
        if (--count[r * static_cast<std::size_t>(K) + s] == 0) --distinct[r];
    }
    /// Change in max(0, distinct-1) if one flow at r moves s -> t.
    [[nodiscard]] int moveDelta(std::uint32_t r, int s, int t) const {
        const std::size_t base = r * static_cast<std::size_t>(K);
        int d = distinct[r];
        const int nd = d - (count[base + s] == 1 ? 1 : 0) + (count[base + t] == 0 ? 1 : 0);
        return std::max(0, nd - 1) - std::max(0, d - 1);
    }
};

/// Union-find over flow indices with path halving; union by lower root
/// so the representative is deterministic (the smallest flow id wins).
struct FlowComponents {
    std::vector<std::uint32_t> parent;

    explicit FlowComponents(std::size_t n) : parent(n) {
        for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<std::uint32_t>(i);
    }
    std::uint32_t find(std::uint32_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    }
    void merge(std::uint32_t a, std::uint32_t b) {
        a = find(a);
        b = find(b);
        if (a == b) return;
        if (a < b)
            parent[b] = a;
        else
            parent[a] = b;
    }
};

}  // namespace

Partition make_partition(const model::ProblemSpec& spec, const PartitionOptions& options) {
    const int K = options.shards;
    if (K < 1) throw std::invalid_argument("make_partition: shards must be >= 1");
    if (options.balance_slack < 0.0)
        throw std::invalid_argument("make_partition: balance_slack must be >= 0");

    const std::size_t F = spec.flowCount();
    Partition part;
    part.shards = K;
    part.shard_of_flow.assign(F, 0);

    const std::vector<FlowIncidence> incidence = build_incidence(spec);

    std::vector<std::size_t> flow_classes(F, 0);
    std::size_t total_classes = 0;
    for (std::size_t f = 0; f < F; ++f) {
        flow_classes[f] = spec.classesOfFlow(model::FlowId{static_cast<std::uint32_t>(f)}).size();
        total_classes += flow_classes[f];
    }
    const double perfect = static_cast<double>(total_classes) / static_cast<double>(K);
    const std::size_t cap = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(perfect * (1.0 + options.balance_slack))));

    Occupancy nodes(spec.nodeCount(), K);
    Occupancy links(spec.linkCount(), K);
    std::vector<std::size_t> load(K, 0);  // classes per shard

    if (K > 1) {
        // --- affinity seeding -----------------------------------------
        // Connected components over the flow/resource incidence graph.
        FlowComponents components(F);
        {
            std::vector<std::uint32_t> first_node(spec.nodeCount(), UINT32_MAX);
            std::vector<std::uint32_t> first_link(spec.linkCount(), UINT32_MAX);
            for (std::size_t f = 0; f < F; ++f) {
                const auto fid = static_cast<std::uint32_t>(f);
                for (std::uint32_t n : incidence[f].nodes) {
                    if (first_node[n] == UINT32_MAX)
                        first_node[n] = fid;
                    else
                        components.merge(first_node[n], fid);
                }
                for (std::uint32_t l : incidence[f].links) {
                    if (first_link[l] == UINT32_MAX)
                        first_link[l] = fid;
                    else
                        components.merge(first_link[l], fid);
                }
            }
        }
        // Component roster: flows grouped by root, components ordered by
        // descending class count (ties: smaller root id) so the biggest
        // regions claim the emptiest shards first.
        std::vector<std::vector<std::uint32_t>> comp_flows(F);
        std::vector<std::size_t> comp_classes(F, 0);
        for (std::size_t f = 0; f < F; ++f) {
            const std::uint32_t root = components.find(static_cast<std::uint32_t>(f));
            comp_flows[root].push_back(static_cast<std::uint32_t>(f));
            comp_classes[root] += flow_classes[f];
        }
        std::vector<std::uint32_t> roots;
        for (std::size_t r = 0; r < F; ++r)
            if (!comp_flows[r].empty()) roots.push_back(static_cast<std::uint32_t>(r));
        std::sort(roots.begin(), roots.end(), [&](std::uint32_t a, std::uint32_t b) {
            if (comp_classes[a] != comp_classes[b]) return comp_classes[a] > comp_classes[b];
            return a < b;
        });

        const auto least_loaded = [&]() {
            int best = 0;
            for (int s = 1; s < K; ++s)
                if (load[s] < load[best]) best = s;
            return best;
        };
        const auto place = [&](std::uint32_t f, int s) {
            part.shard_of_flow[f] = s;
            load[s] += flow_classes[f];
            for (std::uint32_t n : incidence[f].nodes) nodes.add(n, s);
            for (std::uint32_t l : incidence[f].links) links.add(l, s);
        };

        for (std::uint32_t root : roots) {
            if (comp_classes[root] <= cap) {
                // Whole component onto the least-loaded shard (lowest id
                // on ties): disjoint regions never produce boundary.
                const int s = least_loaded();
                for (std::uint32_t f : comp_flows[root]) place(f, s);
                continue;
            }
            // Component larger than the balance cap: split flow-by-flow,
            // preferring the admissible shard that already touches most
            // of this flow's resources (ties: lower load, lower id).
            for (std::uint32_t f : comp_flows[root]) {
                int best = -1;
                std::size_t best_affinity = 0;
                for (int s = 0; s < K; ++s) {
                    if (load[s] + flow_classes[f] > cap) continue;
                    std::size_t affinity = 0;
                    for (std::uint32_t n : incidence[f].nodes)
                        if (nodes.count[n * static_cast<std::size_t>(K) + s] > 0) ++affinity;
                    for (std::uint32_t l : incidence[f].links)
                        if (links.count[l * static_cast<std::size_t>(K) + s] > 0) ++affinity;
                    if (best < 0 || affinity > best_affinity ||
                        (affinity == best_affinity && load[s] < load[best]))
                        best = s, best_affinity = affinity;
                }
                place(f, best >= 0 ? best : least_loaded());
            }
        }
    } else {
        for (std::size_t f = 0; f < F; ++f) {
            load[0] += flow_classes[f];
            for (std::uint32_t n : incidence[f].nodes) nodes.add(n, 0);
            for (std::uint32_t l : incidence[f].links) links.add(l, 0);
        }
    }

    for (int pass = 0; pass < options.refine_passes && K > 1; ++pass) {
        bool moved_any = false;
        for (std::size_t f = 0; f < F; ++f) {
            const int s = part.shard_of_flow[f];
            int best_t = s;
            int best_delta = 0;
            for (int t = 0; t < K; ++t) {
                if (t == s) continue;
                if (load[t] + flow_classes[f] > cap) continue;
                int delta = 0;
                for (std::uint32_t n : incidence[f].nodes) delta += nodes.moveDelta(n, s, t);
                for (std::uint32_t l : incidence[f].links) delta += links.moveDelta(l, s, t);
                // Strictly better boundary, or same boundary and strictly
                // better balance than both the current shard and the best
                // candidate so far (ascending t breaks remaining ties).
                const bool better =
                    delta < best_delta ||
                    (delta == best_delta &&
                     load[t] + flow_classes[f] < load[best_t == s ? s : best_t]);
                if (better && (delta < 0 || load[t] + flow_classes[f] < load[s]))
                    best_t = t, best_delta = delta;
            }
            if (best_t != s) {
                for (std::uint32_t n : incidence[f].nodes) {
                    nodes.remove(n, s);
                    nodes.add(n, best_t);
                }
                for (std::uint32_t l : incidence[f].links) {
                    links.remove(l, s);
                    links.add(l, best_t);
                }
                load[s] -= flow_classes[f];
                load[best_t] += flow_classes[f];
                part.shard_of_flow[f] = best_t;
                moved_any = true;
            }
        }
        if (!moved_any) break;
    }

    part.flows_of_shard.resize(K);
    for (std::size_t f = 0; f < F; ++f)
        part.flows_of_shard[part.shard_of_flow[f]].push_back(
            model::FlowId{static_cast<std::uint32_t>(f)});
    part.classes_of_shard.assign(load.begin(), load.end());

    part.shards_of_node.resize(spec.nodeCount());
    part.shards_of_link.resize(spec.linkCount());
    for (std::size_t n = 0; n < spec.nodeCount(); ++n) {
        for (int s = 0; s < K; ++s)
            if (nodes.count[n * static_cast<std::size_t>(K) + s] > 0)
                part.shards_of_node[n].push_back(s);
        if (part.shards_of_node[n].size() >= 2) ++part.boundary_nodes;
    }
    for (std::size_t l = 0; l < spec.linkCount(); ++l) {
        for (int s = 0; s < K; ++s)
            if (links.count[l * static_cast<std::size_t>(K) + s] > 0)
                part.shards_of_link[l].push_back(s);
        if (part.shards_of_link[l].size() >= 2) ++part.boundary_links;
    }
    return part;
}

}  // namespace lrgp::shard
