// Capacity-budget arithmetic for boundary resources.
//
// A boundary node/link is shared by m >= 2 shards; its global capacity c
// is split into per-shard budgets that always (a) sum to c and (b) stay
// at or above a per-shard floor.  Node floors are the worst-case flow
// base usage sum(F * r_max), so each shard's greedy admission keeps its
// local usage within its budget and the global Eq. 5 constraint holds by
// summation; link floors are the minimum feasible usage sum(L * r_min).
//
// The reconciler moves budgets toward the shards reporting the highest
// boundary price (the scarcity signal of Eq. 12/13): the multiplicative
// rule  c_s' ~ c_s * (1 + step * (p_s - pbar) / pmax)  preserves the
// total in exact arithmetic because pbar is the budget-weighted mean
// price; the explicit projection afterwards restores floors and the
// exact total under floating point.  All operations are deterministic
// (fixed shard order, no data-dependent reductions beyond the inputs).
#pragma once

#include <vector>

namespace lrgp::shard {

/// Splits `capacity` into floors plus a weight-proportional share of the
/// surplus.  Zero total weight splits the surplus evenly; floors that
/// already exceed the capacity are scaled down proportionally (the
/// degenerate over-subscribed case).  Result sums to `capacity`.
[[nodiscard]] std::vector<double> split_with_floors(double capacity,
                                                    const std::vector<double>& floors,
                                                    const std::vector<double>& weights);

struct RebalanceResult {
    std::vector<double> budget;  ///< new budgets, sum == capacity
    double moved = 0.0;          ///< sum |new - old| / 2 (capacity transferred)
};

/// One price-directed budget exchange for a boundary resource: shards
/// whose local price exceeds the budget-weighted mean gain capacity from
/// shards below it, scaled by `step` in [0, 1].  Budgets are clamped to
/// `floors` and renormalized to sum to `capacity`.  When every price is
/// zero (nobody constrained) the budgets are returned unchanged.
[[nodiscard]] RebalanceResult rebalance_budgets(double capacity,
                                                const std::vector<double>& budget,
                                                const std::vector<double>& floors,
                                                const std::vector<double>& prices,
                                                double step);

}  // namespace lrgp::shard
