#include "shard/subproblems.hpp"

#include <algorithm>
#include <stdexcept>

#include "shard/budget.hpp"

namespace lrgp::shard {

std::size_t shard_rank(const std::vector<int>& shards, int s) {
    const auto it = std::lower_bound(shards.begin(), shards.end(), s);
    if (it == shards.end() || *it != s)
        throw std::logic_error("build_subproblems: shard not incident to boundary resource");
    return static_cast<std::size_t>(it - shards.begin());
}

bool shard_incident(const std::vector<int>& shards, int s) {
    return std::binary_search(shards.begin(), shards.end(), s);
}

SubproblemSet build_subproblems(const model::ProblemSpec& spec, PartitionOptions options) {
    SubproblemSet out;
    out.partition = make_partition(spec, options);
    out.shard_of_flow = out.partition.shard_of_flow;

    const int shard_count = out.partition.shards;
    const std::size_t n_nodes = spec.nodeCount();
    const std::size_t n_links = spec.linkCount();
    const std::size_t n_flows = spec.flowCount();
    const std::size_t n_classes = spec.classCount();

    out.node_boundary_index.assign(n_nodes, kAbsent);
    out.link_boundary_index.assign(n_links, kAbsent);
    out.flow_local.assign(n_flows, kAbsent);
    out.class_local.assign(n_classes, kAbsent);

    // ---- boundary budgets ----------------------------------------------
    // Node floors are the worst-case flow base usage sum(F * r_max) of the
    // shard's flows at the node: a shard whose greedy admission respects
    // its budget then keeps usage <= budget, and summing budgets (= the
    // capacity) yields the global Eq. 5 constraint.  Link floors are the
    // minimum feasible usage sum(L * r_min).  Surplus splits by demand
    // weight: sum(G * n_max * r_max) for nodes, sum(L * r_max) for links.
    for (std::size_t n = 0; n < n_nodes; ++n) {
        const auto& shards = out.partition.shards_of_node[n];
        if (shards.size() < 2) continue;
        const model::NodeId id{static_cast<std::uint32_t>(n)};
        BoundaryBudget entry;
        entry.id = static_cast<std::uint32_t>(n);
        entry.capacity = spec.nodes()[n].capacity;
        entry.shards = shards;
        std::vector<double> floors(shards.size(), 0.0);
        std::vector<double> weights(shards.size(), 0.0);
        // Floors guarantee the minimum allocation (every flow at r_min)
        // stays feasible inside its slice; rate_max floors would pin the
        // whole capacity on contended resources and leave the
        // reconciliation nothing to move.
        for (model::FlowId f : spec.flowsAtNode(id)) {
            const std::size_t i = shard_rank(shards, out.shard_of_flow[f.index()]);
            floors[i] += spec.flowNodeCost(id, f) * spec.flow(f).rate_min;
        }
        for (model::ClassId c : spec.classesAtNode(id)) {
            const auto& cls = spec.consumerClass(c);
            const std::size_t i = shard_rank(shards, out.shard_of_flow[cls.flow.index()]);
            weights[i] += cls.consumer_cost * static_cast<double>(cls.max_consumers) *
                          spec.flow(cls.flow).rate_max;
        }
        // A shard incident only through zero-F hops would get a zero
        // budget, which ProblemBuilder rejects; keep every slice positive.
        const double min_floor = entry.capacity * 1e-6;
        for (double& f : floors) f = std::max(f, min_floor);
        entry.floor = floors;
        entry.budget = split_with_floors(entry.capacity, floors, weights);
        out.node_boundary_index[n] = static_cast<std::uint32_t>(out.node_budgets.size());
        out.node_budgets.push_back(std::move(entry));
    }
    for (std::size_t l = 0; l < n_links; ++l) {
        const auto& shards = out.partition.shards_of_link[l];
        if (shards.size() < 2) continue;
        const model::LinkId id{static_cast<std::uint32_t>(l)};
        BoundaryBudget entry;
        entry.id = static_cast<std::uint32_t>(l);
        entry.capacity = spec.links()[l].capacity;
        entry.shards = shards;
        std::vector<double> floors(shards.size(), 0.0);
        std::vector<double> weights(shards.size(), 0.0);
        for (model::FlowId f : spec.flowsOnLink(id)) {
            const std::size_t i = shard_rank(shards, out.shard_of_flow[f.index()]);
            const double cost = spec.linkCost(id, f);
            floors[i] += cost * spec.flow(f).rate_min;
            weights[i] += cost * spec.flow(f).rate_max;
        }
        const double min_floor = entry.capacity * 1e-6;
        for (double& f : floors) f = std::max(f, min_floor);
        entry.floor = floors;
        entry.budget = split_with_floors(entry.capacity, floors, weights);
        out.link_boundary_index[l] = static_cast<std::uint32_t>(out.link_budgets.size());
        out.link_budgets.push_back(std::move(entry));
    }

    // ---- per-shard subproblems ------------------------------------------
    out.members.resize(static_cast<std::size_t>(shard_count));
    for (int s = 0; s < shard_count; ++s) {
        MemberSpec member;
        member.node_local.assign(n_nodes, kAbsent);
        member.link_local.assign(n_links, kAbsent);

        // Membership: a node belongs to the shard when one of its flows
        // routes through / originates at it; a link when one of its flows
        // routes over it.  Orphan resources no flow touches go to shard 0
        // (so K=1 reproduces the problem exactly), and link endpoints are
        // pulled in so the sub-spec validates (they carry no usage).
        std::vector<char> node_in(n_nodes, 0);
        std::vector<char> link_in(n_links, 0);
        for (model::FlowId f : out.partition.flows_of_shard[static_cast<std::size_t>(s)]) {
            const auto& flow = spec.flow(f);
            node_in[flow.source.index()] = 1;
            for (const auto& hop : flow.nodes) node_in[hop.node.index()] = 1;
            for (const auto& hop : flow.links) link_in[hop.link.index()] = 1;
        }
        if (s == 0) {
            for (std::size_t n = 0; n < n_nodes; ++n)
                if (out.partition.shards_of_node[n].empty()) node_in[n] = 1;
            for (std::size_t l = 0; l < n_links; ++l)
                if (out.partition.shards_of_link[l].empty()) link_in[l] = 1;
        }
        for (std::size_t l = 0; l < n_links; ++l) {
            if (!link_in[l]) continue;
            node_in[spec.links()[l].from.index()] = 1;
            node_in[spec.links()[l].to.index()] = 1;
        }

        model::ProblemBuilder builder;
        for (std::size_t n = 0; n < n_nodes; ++n) {
            if (!node_in[n]) continue;
            const auto& node = spec.nodes()[n];
            double capacity = node.capacity;
            const std::uint32_t bi = out.node_boundary_index[n];
            if (bi != kAbsent && shard_incident(out.node_budgets[bi].shards, s))
                capacity =
                    out.node_budgets[bi].budget[shard_rank(out.node_budgets[bi].shards, s)];
            const model::NodeId local = builder.addNode(node.name, capacity);
            member.node_local[n] = local.value;
            member.nodes.push_back(static_cast<std::uint32_t>(n));
            const auto& owners = out.partition.shards_of_node[n];
            if ((owners.size() == 1 && owners[0] == s) || (owners.empty() && s == 0))
                member.own_nodes.emplace_back(local.value, static_cast<std::uint32_t>(n));
        }
        for (std::size_t l = 0; l < n_links; ++l) {
            if (!link_in[l]) continue;
            const auto& link = spec.links()[l];
            double capacity = link.capacity;
            const std::uint32_t bi = out.link_boundary_index[l];
            if (bi != kAbsent && shard_incident(out.link_budgets[bi].shards, s))
                capacity =
                    out.link_budgets[bi].budget[shard_rank(out.link_budgets[bi].shards, s)];
            const model::LinkId local =
                builder.addLink(link.name, model::NodeId{member.node_local[link.from.index()]},
                                model::NodeId{member.node_local[link.to.index()]}, capacity);
            member.link_local[l] = local.value;
            member.links.push_back(static_cast<std::uint32_t>(l));
            const auto& owners = out.partition.shards_of_link[l];
            if ((owners.size() == 1 && owners[0] == s) || (owners.empty() && s == 0))
                member.own_links.emplace_back(local.value, static_cast<std::uint32_t>(l));
        }
        for (model::FlowId f : out.partition.flows_of_shard[static_cast<std::size_t>(s)]) {
            const auto& flow = spec.flow(f);
            const model::FlowId local =
                builder.addFlow(flow.name, model::NodeId{member.node_local[flow.source.index()]},
                                flow.rate_min, flow.rate_max);
            out.flow_local[f.index()] = local.value;
            member.flows.push_back(f.value);
            for (const auto& hop : flow.nodes)
                builder.routeThroughNode(local, model::NodeId{member.node_local[hop.node.index()]},
                                         hop.flow_node_cost);
            for (const auto& hop : flow.links)
                builder.routeOverLink(local, model::LinkId{member.link_local[hop.link.index()]},
                                      hop.link_cost);
        }
        for (std::size_t c = 0; c < n_classes; ++c) {
            const auto& cls = spec.classes()[c];
            if (out.shard_of_flow[cls.flow.index()] != s) continue;
            const model::ClassId local = builder.addClass(
                cls.name, model::FlowId{out.flow_local[cls.flow.index()]},
                model::NodeId{member.node_local[cls.node.index()]}, cls.max_consumers,
                cls.consumer_cost, cls.utility);
            out.class_local[c] = local.value;
            member.classes.push_back(static_cast<std::uint32_t>(c));
        }

        if (!member.flows.empty()) {
            model::ProblemSpec sub = builder.build();
            for (std::size_t i = 0; i < member.flows.size(); ++i)
                if (!spec.flows()[member.flows[i]].active)
                    sub.setFlowActive(model::FlowId{static_cast<std::uint32_t>(i)}, false);
            member.spec = std::move(sub);
        }
        out.members[static_cast<std::size_t>(s)] = std::move(member);
    }
    return out;
}

}  // namespace lrgp::shard
