// Deterministic flow partitioner for the sharded LRGP engine.
//
// Flows (and with them their consumer classes, which belong to exactly
// one flow) are assigned to K shards in two stages:
//
//   1. affinity seeding: flows are grouped into connected components
//      (two flows connect when they share a node or link); components
//      are placed whole onto the least-loaded shard in descending
//      class-count order, so disjoint problem regions never straddle a
//      shard.  A component too large for the balance cap is split
//      flow-by-flow, each flow going to the admissible shard already
//      touching most of its resources, which keeps dense neighbourhoods
//      together even inside one giant component;
//   2. boundary-minimizing greedy refinement: bounded passes over the
//      flows in ascending id order, moving a flow to the shard that
//      most reduces the total boundary incidence
//          sum over resources r of max(0, |shards touching r| - 1),
//      subject to a class-count balance cap; ties break toward the
//      lower-loaded (then lower-id) target, and zero-gain moves are
//      taken only when they strictly improve balance, so every pass
//      monotonically improves (boundary, imbalance) and the result is
//      reproducible for a given problem and option set.
//
// A node is incident to a shard when one of the shard's flows routes
// through it or originates at it; a link when one of the shard's flows
// routes over it.  Resources touched by >= 2 shards are *boundary*
// resources: their capacity has to be split into per-shard budgets and
// reconciled via boundary prices (see sharded_engine.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "model/problem.hpp"

namespace lrgp::shard {

struct PartitionOptions {
    int shards = 1;
    /// Greedy refinement sweeps over all flows (0 = hash seeding only).
    int refine_passes = 3;
    /// A shard may hold at most ceil(totalClasses / shards) * (1 + slack)
    /// classes; refinement never moves a flow into a shard beyond that.
    double balance_slack = 0.25;
};

struct Partition {
    int shards = 1;
    std::vector<int> shard_of_flow;                      ///< by flow index
    std::vector<std::vector<model::FlowId>> flows_of_shard;  ///< ascending ids
    std::vector<std::size_t> classes_of_shard;           ///< class count per shard
    /// Sorted distinct shards incident to each node/link; empty for
    /// resources no flow touches (the sharded engine assigns those
    /// orphans to shard 0 so K=1 reproduces the problem exactly).
    std::vector<std::vector<int>> shards_of_node;
    std::vector<std::vector<int>> shards_of_link;
    std::size_t boundary_nodes = 0;  ///< nodes with >= 2 incident shards
    std::size_t boundary_links = 0;

    [[nodiscard]] bool isBoundaryNode(model::NodeId n) const {
        return shards_of_node[n.index()].size() >= 2;
    }
    [[nodiscard]] bool isBoundaryLink(model::LinkId l) const {
        return shards_of_link[l.index()].size() >= 2;
    }
};

/// Partitions `spec`'s flows into options.shards shards.  Deterministic:
/// depends only on the spec's entity ids/routes and the options.
[[nodiscard]] Partition make_partition(const model::ProblemSpec& spec,
                                       const PartitionOptions& options);

}  // namespace lrgp::shard
