// Shard subproblem construction, shared by the lockstep sharded engine
// (shard/sharded_engine.hpp) and the live asynchronous shard-agent
// runtime (runtime/runtime.hpp).
//
// build_subproblems() partitions a ProblemSpec's flows into K shards
// (shard/partitioner.hpp) and materializes, per shard, a standalone
// sub-ProblemSpec plus the local<->global entity maps needed to merge
// per-shard results back into global ids.  Nodes and links touched by
// >= 2 shards are *boundary* resources: their capacity is split into
// per-shard budgets with guaranteed floors (shard/budget.hpp), so every
// shard can run an unmodified LRGP engine over its slice while the sum
// of slices respects the global Eq. 5 constraint.
//
// The construction is deterministic: same spec + same options give the
// same partition, budgets and sub-specs, entity by entity, bit by bit.
// Both consumers rely on this — the sharded engine for its bitwise
// K=1 parity contract, the async runtime for deterministic virtual-time
// replays.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "model/problem.hpp"
#include "shard/partitioner.hpp"

namespace lrgp::shard {

/// Sentinel for "entity has no local index in this shard".
inline constexpr std::uint32_t kAbsent = UINT32_MAX;

/// One boundary resource's budget state (incident shards sorted
/// ascending; budget[i]/floor[i] belong to shards[i]).
struct BoundaryBudget {
    std::uint32_t id = 0;       ///< global node or link index
    double capacity = 0.0;      ///< full global capacity
    std::vector<int> shards;    ///< incident shards, ascending
    std::vector<double> budget; ///< current per-shard capacity slice
    std::vector<double> floor;  ///< minimum feasible slice per shard
};

/// One shard's subproblem and its local<->global entity maps.
struct MemberSpec {
    /// The shard's standalone sub-spec with boundary budgets applied as
    /// capacities and inactive global flows deactivated; nullopt when
    /// the shard has no flows (nothing to solve).
    std::optional<model::ProblemSpec> spec;
    std::vector<std::uint32_t> flows;   ///< local -> global index
    std::vector<std::uint32_t> classes;
    std::vector<std::uint32_t> nodes;
    std::vector<std::uint32_t> links;
    std::vector<std::uint32_t> node_local;  ///< global -> local (kAbsent absent)
    std::vector<std::uint32_t> link_local;
    /// (local, global) pairs of resources this shard alone owns; their
    /// merged price is a direct copy.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> own_nodes;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> own_links;
};

/// Everything build_subproblems() derives from a spec + partition.
struct SubproblemSet {
    Partition partition;
    std::vector<int> shard_of_flow;          ///< by global flow index
    std::vector<std::uint32_t> flow_local;   ///< global -> local flow index
    std::vector<std::uint32_t> class_local;  ///< global -> local class index
    std::vector<BoundaryBudget> node_budgets;
    std::vector<BoundaryBudget> link_budgets;
    /// Budget-entry index per global resource (kAbsent = interior).
    std::vector<std::uint32_t> node_boundary_index;
    std::vector<std::uint32_t> link_boundary_index;
    std::vector<MemberSpec> members;  ///< one per shard
};

/// Position of shard `s` in a sorted incident-shard list; throws
/// std::logic_error when `s` is not incident (internal invariant).
[[nodiscard]] std::size_t shard_rank(const std::vector<int>& shards, int s);

/// Whether shard `s` appears in a sorted incident-shard list.
[[nodiscard]] bool shard_incident(const std::vector<int>& shards, int s);

/// Partitions `spec` and builds every shard's subproblem, boundary
/// budgets and entity maps.  `spec` is only read; callers apply later
/// dynamic changes to both the global spec and the member engines.
[[nodiscard]] SubproblemSet build_subproblems(const model::ProblemSpec& spec,
                                              PartitionOptions options);

}  // namespace lrgp::shard
