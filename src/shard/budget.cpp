#include "shard/budget.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lrgp::shard {

namespace {

/// Clamps `raw` to floors and rescales the unpinned mass so the total is
/// exactly `capacity`.  Terminates in at most m rounds (each round pins
/// at least one more entry); if everything pins, the floors themselves
/// are scaled (over-subscribed capacity).
std::vector<double> project(double capacity, std::vector<double> raw,
                            const std::vector<double>& floors) {
    const std::size_t m = raw.size();
    std::vector<bool> pinned(m, false);
    for (std::size_t round = 0; round <= m; ++round) {
        double pinned_sum = 0.0, free_sum = 0.0;
        std::size_t free_count = 0;
        for (std::size_t i = 0; i < m; ++i) {
            if (pinned[i]) {
                pinned_sum += floors[i];
            } else {
                free_sum += raw[i];
                ++free_count;
            }
        }
        if (free_count == 0) break;
        const double target = capacity - pinned_sum;
        if (target <= 0.0) break;  // floors alone exceed capacity
        bool newly_pinned = false;
        for (std::size_t i = 0; i < m; ++i) {
            if (pinned[i]) continue;
            raw[i] = free_sum > 0.0 ? raw[i] * (target / free_sum)
                                    : target / static_cast<double>(free_count);
            if (raw[i] < floors[i]) {
                pinned[i] = true;
                newly_pinned = true;
            }
        }
        if (!newly_pinned) {
            for (std::size_t i = 0; i < m; ++i)
                if (pinned[i]) raw[i] = floors[i];
            return raw;
        }
    }
    // Over-subscribed: every shard sits at its floor; scale the floors.
    double floor_sum = 0.0;
    for (double f : floors) floor_sum += f;
    const double scale = floor_sum > 0.0 ? capacity / floor_sum : 0.0;
    for (std::size_t i = 0; i < m; ++i)
        raw[i] = floor_sum > 0.0 ? floors[i] * scale
                                 : capacity / static_cast<double>(m);
    return raw;
}

}  // namespace

std::vector<double> split_with_floors(double capacity, const std::vector<double>& floors,
                                      const std::vector<double>& weights) {
    if (floors.size() != weights.size())
        throw std::invalid_argument("split_with_floors: size mismatch");
    if (floors.empty()) return {};
    if (!(capacity > 0.0)) throw std::invalid_argument("split_with_floors: capacity must be > 0");
    const std::size_t m = floors.size();
    double floor_sum = 0.0, weight_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        floor_sum += floors[i];
        weight_sum += weights[i];
    }
    std::vector<double> out(m);
    if (floor_sum >= capacity) {
        const double scale = floor_sum > 0.0 ? capacity / floor_sum : 0.0;
        for (std::size_t i = 0; i < m; ++i)
            out[i] = floor_sum > 0.0 ? floors[i] * scale
                                     : capacity / static_cast<double>(m);
        return out;
    }
    const double surplus = capacity - floor_sum;
    for (std::size_t i = 0; i < m; ++i)
        out[i] = floors[i] + (weight_sum > 0.0 ? surplus * weights[i] / weight_sum
                                               : surplus / static_cast<double>(m));
    return out;
}

RebalanceResult rebalance_budgets(double capacity, const std::vector<double>& budget,
                                  const std::vector<double>& floors,
                                  const std::vector<double>& prices, double step) {
    const std::size_t m = budget.size();
    if (floors.size() != m || prices.size() != m)
        throw std::invalid_argument("rebalance_budgets: size mismatch");
    if (!(step >= 0.0 && step <= 1.0))
        throw std::invalid_argument("rebalance_budgets: step must be in [0, 1]");
    RebalanceResult result;
    result.budget = budget;
    if (m < 2 || step == 0.0) return result;

    double pmax = 0.0, weighted = 0.0, total = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        pmax = std::max(pmax, prices[i]);
        weighted += budget[i] * prices[i];
        total += budget[i];
    }
    if (!(pmax > 0.0) || !(total > 0.0)) return result;  // nobody constrained
    const double pbar = weighted / total;

    std::vector<double> raw(m);
    for (std::size_t i = 0; i < m; ++i)
        raw[i] = budget[i] * (1.0 + step * (prices[i] - pbar) / pmax);
    result.budget = project(capacity, std::move(raw), floors);

    double moved = 0.0;
    for (std::size_t i = 0; i < m; ++i) moved += std::abs(result.budget[i] - budget[i]);
    result.moved = moved / 2.0;
    return result;
}

}  // namespace lrgp::shard
