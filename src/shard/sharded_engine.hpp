// Hierarchical sharded LRGP control plane (ROADMAP item 1).
//
// ShardedLrgpEngine partitions the overlay's flows (and their classes,
// incident nodes and links) into K shards and runs one incremental
// ParallelLrgpEngine per shard over its subproblem, fanned out on a
// TaskPool in the cluster-allocator style: per-shard solves run as
// independent tasks, then merge deterministically in shard-id order
// (TaskPool::forEachMergeOrdered).  Nodes/links touched by >= 2 shards
// are *boundary* resources: their capacity is split into per-shard
// budgets, and a periodic top-level reconciliation pass exchanges the
// shards' local prices for each boundary resource and moves budget
// toward the higher-priced (scarcer) side (shard/budget.hpp).
//
// Semantics:
//   * step()/run() advance every shard in lockstep; for K=1 the single
//     shard's subproblem reproduces the original spec exactly, no
//     boundary exists, and the trajectory is bitwise-identical to a
//     monolithic ParallelLrgpEngine in the same mode.
//   * runUntilConverged() gates converged shards: a shard whose local
//     detector fired stops stepping (and costing) until a reconcile
//     pass changes one of its budgets.  The run is converged when every
//     shard's detector fired and the last reconcile pass moved no
//     budget above the hysteresis threshold; the remaining optimality
//     gap is bounded by the frozen boundary-budget split (measured
//     against the monolithic solver in bench_shards / test_sharded_engine,
//     <= 1% on the seeded sweep).  This per-shard convergence gating is
//     what makes shards pay off even on few cores: a slow-converging
//     region only keeps its own shard iterating, instead of dragging
//     per-iteration work across the whole overlay.
//   * Merged observers: allocation()/prices() scatter per-shard state
//     into global entity ids (boundary prices merge as the budget-
//     weighted mean of the incident shards' prices, in shard-id order);
//     the published utility is the shard-utility sum in shard-id order.
//
// All merges are deterministic for any thread count: tasks write only
// per-shard slots and the ordered merge runs serially in shard order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "lrgp/engine.hpp"
#include "lrgp/parallel_engine.hpp"
#include "lrgp/task_pool.hpp"
#include "obs/instruments.hpp"
#include "shard/partitioner.hpp"
#include "shard/subproblems.hpp"

namespace lrgp::shard {

struct ShardedConfig {
    int shards = 1;
    /// Top-level TaskPool threads; 0 = min(shards, hardware_concurrency).
    /// Member engines always run with threads = 1 (no nested pools).
    int threads = 0;
    /// Lockstep iterations (or gated rounds) between reconcile passes.
    int reconcile_interval = 8;
    /// Budget-exchange stepsize in [0, 1] (shard/budget.hpp).
    double reconcile_step = 0.5;
    /// The effective step is multiplied by this after every pass that
    /// moved budget, so reconciliation provably terminates even when
    /// contended boundary prices never equalize exactly (the member
    /// oscillations would otherwise re-trigger transfers forever).  Any
    /// dynamic op (capacity, flows, classes, warm start) resets the
    /// decay — the engine re-adapts at full step after real changes.
    double reconcile_step_decay = 0.8;
    /// Hysteresis: a reconcile pass only applies (and only counts as
    /// movement) transfers above this fraction of a resource's capacity,
    /// so converged budget splits stop resetting shard detectors.
    double min_rebalance_fraction = 1e-3;
    /// Partitioner knobs (PartitionOptions; shards is taken from above).
    int refine_passes = 3;
    double balance_slack = 0.25;
    /// Member-engine mode (EngineConfig::incremental).
    bool incremental = true;
    /// runUntilConverged() pauses shards whose local detector fired.
    bool pause_converged = true;
    /// Builds each shard's member engine from its subproblem.  Unset, a
    /// single-threaded ParallelLrgpEngine (incremental per `incremental`)
    /// is used; set it to compose other core::Engine implementations
    /// under the shard layer (e.g. simd::vector_member_factory).
    std::function<std::unique_ptr<core::Engine>(model::ProblemSpec, core::LrgpOptions)>
        member_factory;
};

/// Per-shard shape and progress, for the CLI summary and tests.
struct ShardSummary {
    int shard = 0;
    std::size_t flows = 0;
    std::size_t classes = 0;
    std::size_t nodes = 0;
    std::size_t links = 0;
    std::size_t boundary_nodes = 0;  ///< this shard's nodes shared with others
    std::size_t boundary_links = 0;
    int iterations = 0;              ///< member-engine iterations run
    bool converged = false;
};

/// Cumulative reconciler bookkeeping since construction.
struct ReconcileStats {
    std::uint64_t passes = 0;           ///< reconcile() invocations
    std::uint64_t price_exchanges = 0;  ///< boundary (resource, shard) prices gathered
    std::uint64_t budget_updates = 0;   ///< per-shard capacity updates applied
    std::uint64_t shard_wakeups = 0;    ///< converged shards resumed by a budget change
    double budget_moved = 0.0;          ///< capacity units transferred in total
};

class ShardedLrgpEngine : public core::Engine {
public:
    explicit ShardedLrgpEngine(model::ProblemSpec spec, core::LrgpOptions options = {},
                               ShardedConfig config = {});
    ~ShardedLrgpEngine() override;

    [[nodiscard]] const char* name() const noexcept override { return "sharded"; }

    const core::IterationRecord& step() override;
    const core::IterationRecord& run(int iterations) override;
    std::optional<int> runUntilConverged(int max_iterations) override;

    // -- dynamic workload changes (same contracts as LrgpOptimizer) ------
    void removeFlow(model::FlowId flow) override;
    void restoreFlow(model::FlowId flow) override;
    void setNodeCapacity(model::NodeId node, double capacity) override;
    void setLinkCapacity(model::LinkId link, double capacity) override;
    void setClassMaxConsumers(model::ClassId cls, int max_consumers) override;
    void warmStart(const core::PriceVector& prices,
                   const std::vector<int>* populations = nullptr) override;

    // -- observability ----------------------------------------------------

    /// Registers the lrgp_shard_* series (docs/observability.md) and
    /// shape gauges.  Member engines stay unattached so the monolithic
    /// lrgp_* series keep their one-engine semantics.
    void attachObservability(obs::Registry* registry,
                             obs::IterationTracer* tracer = nullptr) override;

    // -- observers --------------------------------------------------------
    [[nodiscard]] const model::ProblemSpec& problem() const noexcept override { return spec_; }
    [[nodiscard]] const model::Allocation& allocation() const noexcept override {
        return allocation_;
    }
    [[nodiscard]] const core::PriceVector& prices() const noexcept override { return prices_; }
    [[nodiscard]] double currentUtility() const override;
    [[nodiscard]] int iterationsRun() const noexcept override { return iteration_; }
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept override {
        return trace_;
    }
    [[nodiscard]] const core::ConvergenceDetector& convergence() const noexcept override {
        return detector_;
    }
    [[nodiscard]] double nodeGamma(model::NodeId node) const override;

    // -- shard-specific observers ----------------------------------------
    [[nodiscard]] int shardCount() const noexcept { return static_cast<int>(members_.size()); }
    [[nodiscard]] const Partition& partition() const noexcept { return partition_; }
    [[nodiscard]] const core::Engine& shardEngine(int shard) const;
    [[nodiscard]] int shardOfFlow(model::FlowId flow) const;
    [[nodiscard]] model::FlowId localFlowId(model::FlowId flow) const;
    [[nodiscard]] std::vector<ShardSummary> summaries() const;
    [[nodiscard]] const ReconcileStats& reconcileStats() const noexcept { return stats_; }
    [[nodiscard]] std::size_t boundaryNodeCount() const noexcept { return partition_.boundary_nodes; }
    [[nodiscard]] std::size_t boundaryLinkCount() const noexcept { return partition_.boundary_links; }
    /// Boundary nodes as a fraction of all nodes (the CLI summary line).
    [[nodiscard]] double boundaryNodeFraction() const noexcept;
    /// Runs one reconcile pass immediately; returns whether any budget
    /// moved (above the hysteresis threshold).
    bool reconcileNow();

private:
    struct Member {
        std::unique_ptr<core::Engine> engine;
        std::vector<std::uint32_t> flows;    ///< local -> global index
        std::vector<std::uint32_t> classes;
        std::vector<std::uint32_t> nodes;
        std::vector<std::uint32_t> links;
        std::vector<std::uint32_t> node_local;  ///< global -> local (npos absent)
        std::vector<std::uint32_t> link_local;
        /// (local, global) pairs of resources this shard alone owns;
        /// their merged price is a direct copy.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> own_nodes;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> own_links;
        double last_utility = 0.0;
        std::uint64_t obs_iterations = 0;  ///< iterations already exported
    };

    /// Wraps build_subproblems() member specs into engine-bearing
    /// Members (EngineConfig: threads = 1, config_.incremental).
    void buildMembers(std::vector<MemberSpec> specs);
    void mergeMember(std::size_t s);
    /// Budget-weighted mean of the incident shards' prices per boundary
    /// resource (interior prices are direct copies in mergeMember).
    void mergeBoundaryPrices();
    /// Record/trace/detector publication after a lockstep step or a
    /// gated round.
    void publishRecord();
    /// One reconcile pass over every boundary resource; sets `moved`.
    void reconcile(bool& moved);
    [[nodiscard]] bool allMembersConverged() const;
    [[nodiscard]] int maxMemberIterations() const;
    void exportIterationCounters();

    model::ProblemSpec spec_;  ///< global mirror; dynamic ops applied here too
    core::LrgpOptions options_;
    ShardedConfig config_;
    Partition partition_;
    std::vector<Member> members_;
    std::vector<int> shard_of_flow_;             ///< by global flow index
    std::vector<std::uint32_t> flow_local_;      ///< global -> local flow index
    std::vector<std::uint32_t> class_local_;     ///< global -> local class index
    std::vector<BoundaryBudget> boundary_node_budgets_;
    std::vector<BoundaryBudget> boundary_link_budgets_;
    /// Boundary entry index per global resource (kAbsent = interior).
    std::vector<std::uint32_t> node_boundary_index_;
    std::vector<std::uint32_t> link_boundary_index_;
    std::unique_ptr<core::TaskPool> pool_;

    model::Allocation allocation_;  ///< merged global allocation
    core::PriceVector prices_;      ///< merged global prices
    int iteration_ = 0;
    int steps_since_reconcile_ = 0;
    /// Current reconcile stepsize (config_.reconcile_step decayed by
    /// reconcile_step_decay after every pass that moved budget).
    double effective_step_ = 0.0;
    core::IterationRecord last_record_;
    metrics::TimeSeries trace_;
    core::ConvergenceDetector detector_;
    ReconcileStats stats_;

    obs::ShardInstruments instr_;
    bool obs_attached_ = false;
    obs::IterationTracer* tracer_ = nullptr;
};

/// Factory mirroring core::make_engine for the sharded engine (kept in
/// src/shard so src/lrgp does not depend upward).
[[nodiscard]] std::unique_ptr<core::Engine> make_sharded_engine(model::ProblemSpec spec,
                                                                core::LrgpOptions options = {},
                                                                ShardedConfig config = {});

}  // namespace lrgp::shard
