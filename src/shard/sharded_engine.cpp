#include "shard/sharded_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/scoped_timer.hpp"
#include "shard/budget.hpp"

namespace lrgp::shard {

ShardedLrgpEngine::ShardedLrgpEngine(model::ProblemSpec spec, core::LrgpOptions options,
                                     ShardedConfig config)
    : spec_(std::move(spec)),
      options_(std::move(options)),
      config_(config),
      detector_(options_.convergence) {
    if (config_.shards < 1)
        throw std::invalid_argument("ShardedLrgpEngine: shards must be >= 1");
    if (config_.reconcile_interval < 1)
        throw std::invalid_argument("ShardedLrgpEngine: reconcile_interval must be >= 1");
    if (!(config_.reconcile_step >= 0.0 && config_.reconcile_step <= 1.0))
        throw std::invalid_argument("ShardedLrgpEngine: reconcile_step must be in [0, 1]");
    if (!(config_.reconcile_step_decay > 0.0 && config_.reconcile_step_decay <= 1.0))
        throw std::invalid_argument("ShardedLrgpEngine: reconcile_step_decay must be in (0, 1]");
    if (!(config_.min_rebalance_fraction >= 0.0))
        throw std::invalid_argument("ShardedLrgpEngine: min_rebalance_fraction must be >= 0");
    effective_step_ = config_.reconcile_step;

    PartitionOptions popts;
    popts.shards = config_.shards;
    popts.refine_passes = config_.refine_passes;
    popts.balance_slack = config_.balance_slack;
    SubproblemSet sub = build_subproblems(spec_, popts);
    partition_ = std::move(sub.partition);
    shard_of_flow_ = std::move(sub.shard_of_flow);
    flow_local_ = std::move(sub.flow_local);
    class_local_ = std::move(sub.class_local);
    boundary_node_budgets_ = std::move(sub.node_budgets);
    boundary_link_budgets_ = std::move(sub.link_budgets);
    node_boundary_index_ = std::move(sub.node_boundary_index);
    link_boundary_index_ = std::move(sub.link_boundary_index);
    buildMembers(std::move(sub.members));

    int threads = config_.threads;
    if (threads == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = std::min(config_.shards, static_cast<int>(hw == 0 ? 1 : hw));
    }
    if (threads < 1) throw std::invalid_argument("ShardedLrgpEngine: threads must be >= 0");
    pool_ = std::make_unique<core::TaskPool>(threads);

    allocation_ = model::Allocation::minimal(spec_);
    prices_ = core::PriceVector::zeros(spec_.nodeCount(), spec_.linkCount());
    for (double& p : prices_.node) p = options_.initial_node_price;
    for (double& p : prices_.link) p = options_.initial_link_price;
    // Seed the merged mirrors from the members' pre-step state so the
    // observers agree with the shards before the first iteration.
    for (std::size_t s = 0; s < members_.size(); ++s) mergeMember(s);
}

ShardedLrgpEngine::~ShardedLrgpEngine() = default;

void ShardedLrgpEngine::buildMembers(std::vector<MemberSpec> specs) {
    members_.resize(specs.size());
    for (std::size_t s = 0; s < specs.size(); ++s) {
        MemberSpec& ms = specs[s];
        Member member;
        member.flows = std::move(ms.flows);
        member.classes = std::move(ms.classes);
        member.nodes = std::move(ms.nodes);
        member.links = std::move(ms.links);
        member.node_local = std::move(ms.node_local);
        member.link_local = std::move(ms.link_local);
        member.own_nodes = std::move(ms.own_nodes);
        member.own_links = std::move(ms.own_links);
        if (ms.spec.has_value()) {
            if (config_.member_factory) {
                member.engine = config_.member_factory(std::move(*ms.spec), options_);
            } else {
                core::EngineConfig engine_config;
                engine_config.threads = 1;
                engine_config.incremental = config_.incremental;
                member.engine = std::make_unique<core::ParallelLrgpEngine>(
                    std::move(*ms.spec), options_, engine_config);
            }
        }
        members_[s] = std::move(member);
    }
}

void ShardedLrgpEngine::mergeMember(std::size_t s) {
    Member& member = members_[s];
    if (!member.engine) return;
    const model::Allocation& alloc = member.engine->allocation();
    const core::PriceVector& prices = member.engine->prices();
    for (std::size_t i = 0; i < member.flows.size(); ++i)
        allocation_.rates[member.flows[i]] = alloc.rates[i];
    for (std::size_t i = 0; i < member.classes.size(); ++i)
        allocation_.populations[member.classes[i]] = alloc.populations[i];
    for (const auto& [local, global] : member.own_nodes) prices_.node[global] = prices.node[local];
    for (const auto& [local, global] : member.own_links) prices_.link[global] = prices.link[local];
}

void ShardedLrgpEngine::mergeBoundaryPrices() {
    for (const BoundaryBudget& entry : boundary_node_budgets_) {
        double num = 0.0, den = 0.0;
        for (std::size_t i = 0; i < entry.shards.size(); ++i) {
            const Member& member = members_[static_cast<std::size_t>(entry.shards[i])];
            num += entry.budget[i] * member.engine->prices().node[member.node_local[entry.id]];
            den += entry.budget[i];
        }
        prices_.node[entry.id] = den > 0.0 ? num / den : 0.0;
    }
    for (const BoundaryBudget& entry : boundary_link_budgets_) {
        double num = 0.0, den = 0.0;
        for (std::size_t i = 0; i < entry.shards.size(); ++i) {
            const Member& member = members_[static_cast<std::size_t>(entry.shards[i])];
            num += entry.budget[i] * member.engine->prices().link[member.link_local[entry.id]];
            den += entry.budget[i];
        }
        prices_.link[entry.id] = den > 0.0 ? num / den : 0.0;
    }
}

void ShardedLrgpEngine::publishRecord() {
    mergeBoundaryPrices();
    iteration_ = maxMemberIterations();
    double utility = 0.0;
    for (const Member& member : members_) utility += member.last_utility;
    last_record_.iteration = iteration_;
    last_record_.utility = utility;
    last_record_.allocation = allocation_;
    last_record_.prices = prices_;
    trace_.append(utility);
    detector_.addSample(utility);
    if constexpr (obs::kEnabled) {
        exportIterationCounters();
        if (tracer_ != nullptr && tracer_->sampling())
            tracer_->counterSample("sharded_utility", 0, tracer_->nowMicros(), utility);
    }
}

void ShardedLrgpEngine::exportIterationCounters() {
    if (!obs_attached_) return;
    std::uint64_t delta_total = 0;
    for (std::size_t s = 0; s < members_.size(); ++s) {
        Member& member = members_[s];
        const std::uint64_t iters =
            member.engine ? static_cast<std::uint64_t>(member.engine->iterationsRun()) : 0;
        const std::uint64_t delta = iters - member.obs_iterations;
        member.obs_iterations = iters;
        if (s < instr_.iterations_by_shard.size()) instr_.iterations_by_shard[s]->add(delta);
        delta_total += delta;
    }
    instr_.steps->add(1);
    instr_.member_iterations->add(delta_total);
}

const core::IterationRecord& ShardedLrgpEngine::step() {
    pool_->forEachMergeOrdered(
        members_.size(),
        [this](std::size_t s, int) {
            Member& member = members_[s];
            if (!member.engine) return;
            member.last_utility = member.engine->step().utility;
        },
        [this](std::size_t s) { mergeMember(s); });
    publishRecord();
    if (++steps_since_reconcile_ >= config_.reconcile_interval) {
        bool moved = false;
        reconcile(moved);
        steps_since_reconcile_ = 0;
    }
    return last_record_;
}

const core::IterationRecord& ShardedLrgpEngine::run(int iterations) {
    if (iterations <= 0)
        throw std::invalid_argument("ShardedLrgpEngine::run: iterations must be positive");
    for (int i = 0; i < iterations; ++i) step();
    return last_record_;
}

std::optional<int> ShardedLrgpEngine::runUntilConverged(int max_iterations) {
    if (max_iterations <= 0)
        throw std::invalid_argument("ShardedLrgpEngine::runUntilConverged: bad max_iterations");
    int advanced = 0;
    while (advanced < max_iterations) {
        const int round = std::min(config_.reconcile_interval, max_iterations - advanced);
        pool_->forEachMergeOrdered(
            members_.size(),
            [this, round](std::size_t s, int) {
                Member& member = members_[s];
                if (!member.engine) return;
                if (config_.pause_converged && member.engine->convergence().converged()) return;
                for (int i = 0; i < round; ++i) {
                    member.last_utility = member.engine->step().utility;
                    if (config_.pause_converged && member.engine->convergence().converged()) break;
                }
            },
            [this](std::size_t s) { mergeMember(s); });
        publishRecord();
        bool moved = false;
        reconcile(moved);
        steps_since_reconcile_ = 0;
        advanced += round;
        if (allMembersConverged() && !moved) {
            // For K=1 this is exactly the monolithic engine's return value
            // (the shard's detector saw the same utility trajectory).
            if (members_.size() == 1 && members_[0].engine)
                return static_cast<int>(members_[0].engine->convergence().convergedAt());
            return iteration_;
        }
    }
    return std::nullopt;
}

void ShardedLrgpEngine::reconcile(bool& moved) {
    moved = false;
    std::uint64_t t0 = 0;
    if constexpr (obs::kEnabled) {
        if (obs_attached_) t0 = obs::monotonic_ns();
    }
    std::uint64_t exchanges = 0, updates = 0, wakeups = 0;
    double pass_moved = 0.0;

    const auto process = [&](std::vector<BoundaryBudget>& entries, bool is_node) {
        std::vector<double> local_prices;
        for (BoundaryBudget& entry : entries) {
            const std::size_t m = entry.shards.size();
            local_prices.resize(m);
            for (std::size_t i = 0; i < m; ++i) {
                const Member& member = members_[static_cast<std::size_t>(entry.shards[i])];
                local_prices[i] =
                    is_node ? member.engine->prices().node[member.node_local[entry.id]]
                            : member.engine->prices().link[member.link_local[entry.id]];
            }
            exchanges += m;
            RebalanceResult result = rebalance_budgets(entry.capacity, entry.budget, entry.floor,
                                                       local_prices, effective_step_);
            if (result.moved <= config_.min_rebalance_fraction * entry.capacity) continue;
            for (std::size_t i = 0; i < m; ++i) {
                if (result.budget[i] == entry.budget[i]) continue;
                Member& member = members_[static_cast<std::size_t>(entry.shards[i])];
                if (member.engine->convergence().converged()) ++wakeups;
                if (is_node)
                    member.engine->setNodeCapacity(model::NodeId{member.node_local[entry.id]},
                                                   result.budget[i]);
                else
                    member.engine->setLinkCapacity(model::LinkId{member.link_local[entry.id]},
                                                   result.budget[i]);
                ++updates;
            }
            entry.budget = std::move(result.budget);
            pass_moved += result.moved;
            moved = true;
        }
    };
    process(boundary_node_budgets_, true);
    process(boundary_link_budgets_, false);

    // Geometric step decay guarantees termination: once moves shrink
    // below the hysteresis threshold, converged shards stay paused.
    if (moved) effective_step_ *= config_.reconcile_step_decay;

    stats_.passes += 1;
    stats_.price_exchanges += exchanges;
    stats_.budget_updates += updates;
    stats_.shard_wakeups += wakeups;
    stats_.budget_moved += pass_moved;
    if constexpr (obs::kEnabled) {
        if (obs_attached_) {
            instr_.reconciles->add(1);
            instr_.price_exchanges->add(exchanges);
            instr_.budget_updates->add(updates);
            instr_.wakeups->add(wakeups);
            instr_.budget_moved->set(stats_.budget_moved);
            instr_.reconcile_seconds->observe(static_cast<double>(obs::monotonic_ns() - t0) *
                                              1e-9);
        }
    }
}

bool ShardedLrgpEngine::reconcileNow() {
    bool moved = false;
    reconcile(moved);
    steps_since_reconcile_ = 0;
    return moved;
}

bool ShardedLrgpEngine::allMembersConverged() const {
    for (const Member& member : members_) {
        if (!member.engine) continue;  // empty shards have nothing to converge
        if (!member.engine->convergence().converged()) return false;
    }
    return true;
}

int ShardedLrgpEngine::maxMemberIterations() const {
    int iterations = 0;
    for (const Member& member : members_)
        if (member.engine) iterations = std::max(iterations, member.engine->iterationsRun());
    return iterations;
}

// -- dynamic workload changes ---------------------------------------------

void ShardedLrgpEngine::removeFlow(model::FlowId flow) {
    if (flow.index() >= spec_.flowCount())
        throw std::invalid_argument("ShardedLrgpEngine::removeFlow: unknown flow");
    const auto s = static_cast<std::size_t>(shard_of_flow_[flow.index()]);
    members_[s].engine->removeFlow(model::FlowId{flow_local_[flow.index()]});
    spec_.setFlowActive(flow, false);
    mergeMember(s);
    detector_.reset();
    effective_step_ = config_.reconcile_step;
}

void ShardedLrgpEngine::restoreFlow(model::FlowId flow) {
    if (flow.index() >= spec_.flowCount())
        throw std::invalid_argument("ShardedLrgpEngine::restoreFlow: unknown flow");
    const auto s = static_cast<std::size_t>(shard_of_flow_[flow.index()]);
    members_[s].engine->restoreFlow(model::FlowId{flow_local_[flow.index()]});
    spec_.setFlowActive(flow, true);
    mergeMember(s);
    detector_.reset();
    effective_step_ = config_.reconcile_step;
}

void ShardedLrgpEngine::setNodeCapacity(model::NodeId node, double capacity) {
    if (node.index() >= spec_.nodeCount())
        throw std::invalid_argument("ShardedLrgpEngine::setNodeCapacity: unknown node");
    spec_.setNodeCapacity(node, capacity);  // validates capacity > 0
    const std::uint32_t bi = node_boundary_index_[node.index()];
    if (bi == kAbsent) {
        const auto& owners = partition_.shards_of_node[node.index()];
        Member& member = members_[static_cast<std::size_t>(owners.empty() ? 0 : owners[0])];
        if (member.engine)
            member.engine->setNodeCapacity(model::NodeId{member.node_local[node.index()]},
                                           capacity);
    } else {
        // Re-split the new capacity proportionally to the current budgets
        // (they encode the reconciled demand balance), keeping the floors.
        BoundaryBudget& entry = boundary_node_budgets_[bi];
        entry.capacity = capacity;
        entry.budget = split_with_floors(capacity, entry.floor, entry.budget);
        for (std::size_t i = 0; i < entry.shards.size(); ++i) {
            Member& member = members_[static_cast<std::size_t>(entry.shards[i])];
            member.engine->setNodeCapacity(model::NodeId{member.node_local[entry.id]},
                                           entry.budget[i]);
        }
    }
    detector_.reset();
    effective_step_ = config_.reconcile_step;
}

void ShardedLrgpEngine::setLinkCapacity(model::LinkId link, double capacity) {
    if (link.index() >= spec_.linkCount())
        throw std::invalid_argument("ShardedLrgpEngine::setLinkCapacity: unknown link");
    spec_.setLinkCapacity(link, capacity);
    const std::uint32_t bi = link_boundary_index_[link.index()];
    if (bi == kAbsent) {
        const auto& owners = partition_.shards_of_link[link.index()];
        Member& member = members_[static_cast<std::size_t>(owners.empty() ? 0 : owners[0])];
        if (member.engine)
            member.engine->setLinkCapacity(model::LinkId{member.link_local[link.index()]},
                                           capacity);
    } else {
        BoundaryBudget& entry = boundary_link_budgets_[bi];
        entry.capacity = capacity;
        entry.budget = split_with_floors(capacity, entry.floor, entry.budget);
        for (std::size_t i = 0; i < entry.shards.size(); ++i) {
            Member& member = members_[static_cast<std::size_t>(entry.shards[i])];
            member.engine->setLinkCapacity(model::LinkId{member.link_local[entry.id]},
                                           entry.budget[i]);
        }
    }
    detector_.reset();
    effective_step_ = config_.reconcile_step;
}

void ShardedLrgpEngine::setClassMaxConsumers(model::ClassId cls, int max_consumers) {
    if (cls.index() >= spec_.classCount())
        throw std::invalid_argument("ShardedLrgpEngine::setClassMaxConsumers: unknown class");
    const auto s =
        static_cast<std::size_t>(shard_of_flow_[spec_.classes()[cls.index()].flow.index()]);
    members_[s].engine->setClassMaxConsumers(model::ClassId{class_local_[cls.index()]},
                                             max_consumers);
    spec_.setClassMaxConsumers(cls, max_consumers);
    mergeMember(s);
    detector_.reset();
    effective_step_ = config_.reconcile_step;
}

void ShardedLrgpEngine::warmStart(const core::PriceVector& prices,
                                  const std::vector<int>* populations) {
    if (prices.node.size() != spec_.nodeCount() || prices.link.size() != spec_.linkCount())
        throw std::invalid_argument("ShardedLrgpEngine::warmStart: price vector size mismatch");
    if (populations != nullptr && populations->size() != spec_.classCount())
        throw std::invalid_argument("ShardedLrgpEngine::warmStart: population size mismatch");
    for (Member& member : members_) {
        if (!member.engine) continue;
        core::PriceVector local = core::PriceVector::zeros(member.nodes.size(),
                                                           member.links.size());
        for (std::size_t i = 0; i < member.nodes.size(); ++i)
            local.node[i] = prices.node[member.nodes[i]];
        for (std::size_t i = 0; i < member.links.size(); ++i)
            local.link[i] = prices.link[member.links[i]];
        if (populations != nullptr) {
            std::vector<int> pops(member.classes.size());
            for (std::size_t i = 0; i < member.classes.size(); ++i)
                pops[i] = (*populations)[member.classes[i]];
            member.engine->warmStart(local, &pops);
        } else {
            member.engine->warmStart(local, nullptr);
        }
    }
    prices_ = prices;
    if (populations != nullptr) allocation_.populations = *populations;
    detector_.reset();
    effective_step_ = config_.reconcile_step;
}

// -- observability ----------------------------------------------------------

void ShardedLrgpEngine::attachObservability(obs::Registry* registry,
                                            obs::IterationTracer* tracer) {
    if constexpr (obs::kEnabled) {
        if (registry != nullptr) {
            instr_ = obs::ShardInstruments::resolve(*registry, shardCount());
            obs_attached_ = true;
            instr_.shard_count->set(static_cast<double>(shardCount()));
            instr_.boundary_nodes->set(static_cast<double>(partition_.boundary_nodes));
            instr_.boundary_links->set(static_cast<double>(partition_.boundary_links));
            instr_.budget_moved->set(stats_.budget_moved);
        } else {
            instr_ = obs::ShardInstruments{};
            obs_attached_ = false;
        }
        tracer_ = tracer;
    } else {
        (void)registry;
        (void)tracer;
    }
}

// -- observers --------------------------------------------------------------

double ShardedLrgpEngine::currentUtility() const {
    return model::total_utility(spec_, allocation_);
}

double ShardedLrgpEngine::nodeGamma(model::NodeId node) const {
    if (node.index() >= spec_.nodeCount())
        throw std::invalid_argument("ShardedLrgpEngine::nodeGamma: unknown node");
    const auto& owners = partition_.shards_of_node[node.index()];
    const Member& member = members_[static_cast<std::size_t>(owners.empty() ? 0 : owners[0])];
    if (!member.engine) return 0.0;  // orphan node in a flowless shard
    return member.engine->nodeGamma(model::NodeId{member.node_local[node.index()]});
}

const core::Engine& ShardedLrgpEngine::shardEngine(int shard) const {
    if (shard < 0 || shard >= shardCount())
        throw std::out_of_range("ShardedLrgpEngine::shardEngine: shard out of range");
    const Member& member = members_[static_cast<std::size_t>(shard)];
    if (!member.engine)
        throw std::invalid_argument("ShardedLrgpEngine::shardEngine: shard has no flows");
    return *member.engine;
}

int ShardedLrgpEngine::shardOfFlow(model::FlowId flow) const {
    if (flow.index() >= spec_.flowCount())
        throw std::invalid_argument("ShardedLrgpEngine::shardOfFlow: unknown flow");
    return shard_of_flow_[flow.index()];
}

model::FlowId ShardedLrgpEngine::localFlowId(model::FlowId flow) const {
    if (flow.index() >= spec_.flowCount())
        throw std::invalid_argument("ShardedLrgpEngine::localFlowId: unknown flow");
    return model::FlowId{flow_local_[flow.index()]};
}

std::vector<ShardSummary> ShardedLrgpEngine::summaries() const {
    std::vector<ShardSummary> out(members_.size());
    for (std::size_t s = 0; s < members_.size(); ++s) {
        const Member& member = members_[s];
        ShardSummary& summary = out[s];
        summary.shard = static_cast<int>(s);
        summary.flows = member.flows.size();
        summary.classes = member.classes.size();
        summary.nodes = member.nodes.size();
        summary.links = member.links.size();
        for (std::uint32_t n : member.nodes)
            if (partition_.shards_of_node[n].size() >= 2) ++summary.boundary_nodes;
        for (std::uint32_t l : member.links)
            if (partition_.shards_of_link[l].size() >= 2) ++summary.boundary_links;
        summary.iterations = member.engine ? member.engine->iterationsRun() : 0;
        summary.converged = member.engine ? member.engine->convergence().converged() : true;
    }
    return out;
}

double ShardedLrgpEngine::boundaryNodeFraction() const noexcept {
    return spec_.nodeCount() == 0
               ? 0.0
               : static_cast<double>(partition_.boundary_nodes) /
                     static_cast<double>(spec_.nodeCount());
}

std::unique_ptr<core::Engine> make_sharded_engine(model::ProblemSpec spec,
                                                  core::LrgpOptions options,
                                                  ShardedConfig config) {
    return std::make_unique<ShardedLrgpEngine>(std::move(spec), std::move(options), config);
}

}  // namespace lrgp::shard
