#include "planner/capacity_planner.hpp"

#include <algorithm>
#include <stdexcept>

#include "model/analysis.hpp"

namespace lrgp::planner {

namespace {

model::ProblemSpec scaledSpec(const model::ProblemSpec& spec, double scale) {
    model::ProblemSpec scaled = spec;
    for (const model::NodeSpec& node : spec.nodes())
        scaled.setNodeCapacity(node.id, node.capacity * scale);
    return scaled;
}

}  // namespace

ProvisioningPoint evaluate_at_scale(const model::ProblemSpec& spec, double scale,
                                    const PlannerOptions& options) {
    if (!(scale > 0.0)) throw std::invalid_argument("evaluate_at_scale: scale must be positive");

    core::LrgpOptimizer optimizer(scaledSpec(spec, scale), options.lrgp);
    optimizer.run(options.lrgp_iterations);

    ProvisioningPoint point;
    point.capacity_scale = scale;
    point.utility = optimizer.currentUtility();

    long long admitted = 0, wanted = 0;
    for (const model::ClassSpec& c : spec.classes()) {
        if (!spec.flowActive(c.flow)) continue;
        admitted += optimizer.allocation().populations[c.id.index()];
        wanted += c.max_consumers;
    }
    point.admission_ratio =
        wanted > 0 ? static_cast<double>(admitted) / static_cast<double>(wanted) : 1.0;

    const auto summary = model::summarize(optimizer.problem(), optimizer.allocation());
    for (double u : summary.node_utilization)
        point.hottest_node_utilization = std::max(point.hottest_node_utilization, u);
    return point;
}

ProvisioningPoint min_capacity_for_admission(const model::ProblemSpec& spec,
                                             const PlannerOptions& options) {
    if (!(options.target_admission_ratio > 0.0 && options.target_admission_ratio <= 1.0))
        throw std::invalid_argument("min_capacity_for_admission: target must be in (0, 1]");

    // Grow until the target is met to establish the bisection bracket.
    double hi = 1.0;
    ProvisioningPoint at_hi = evaluate_at_scale(spec, hi, options);
    while (at_hi.admission_ratio < options.target_admission_ratio) {
        hi *= 2.0;
        if (hi > options.max_scale)
            throw std::runtime_error(
                "min_capacity_for_admission: target unreachable within max_scale");
        at_hi = evaluate_at_scale(spec, hi, options);
    }
    double lo = hi / 2.0;
    // Shrink lo below the target (or hit a floor where the target is met
    // even at tiny capacity).
    while (lo > 1e-6) {
        const ProvisioningPoint at_lo = evaluate_at_scale(spec, lo, options);
        if (at_lo.admission_ratio < options.target_admission_ratio) break;
        at_hi = at_lo;
        hi = lo;
        lo /= 2.0;
    }

    while (hi - lo > options.scale_tolerance * hi) {
        const double mid = 0.5 * (lo + hi);
        const ProvisioningPoint at_mid = evaluate_at_scale(spec, mid, options);
        if (at_mid.admission_ratio >= options.target_admission_ratio) {
            hi = mid;
            at_hi = at_mid;
        } else {
            lo = mid;
        }
    }
    return at_hi;
}

std::vector<ProvisioningPoint> provisioning_curve(const model::ProblemSpec& spec,
                                                  const std::vector<double>& scales,
                                                  const PlannerOptions& options) {
    std::vector<ProvisioningPoint> curve;
    curve.reserve(scales.size());
    for (double s : scales) curve.push_back(evaluate_at_scale(spec, s, options));
    return curve;
}

}  // namespace lrgp::planner
