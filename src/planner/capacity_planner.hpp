// Capacity planning on top of LRGP.
//
// The paper's motivation (Section 1): over-provisioning for peak load is
// expensive, so operators want to know how much capacity a workload
// actually needs.  With LRGP as the allocation engine, that question
// becomes searchable: scale every node capacity by a factor s, optimize,
// and observe the achieved admission ratio.  Admission is monotone in s
// (more capacity never forces consumers out), so bisection finds the
// minimum provisioning factor that meets a target service level.
#pragma once

#include <vector>

#include "lrgp/optimizer.hpp"
#include "model/problem.hpp"

namespace lrgp::planner {

/// One evaluated provisioning level.
struct ProvisioningPoint {
    double capacity_scale = 1.0;   ///< multiplier applied to every node capacity
    double admission_ratio = 0.0;  ///< admitted consumers / wanted consumers
    double utility = 0.0;
    double hottest_node_utilization = 0.0;
};

struct PlannerOptions {
    double target_admission_ratio = 0.95;  ///< service-level objective
    int lrgp_iterations = 150;             ///< optimization budget per probe
    double scale_tolerance = 0.02;         ///< relative bisection tolerance
    double max_scale = 64.0;               ///< search ceiling (throws beyond)
    core::LrgpOptions lrgp;                ///< passed to every probe
};

/// Evaluates the workload at one provisioning level.
[[nodiscard]] ProvisioningPoint evaluate_at_scale(const model::ProblemSpec& spec, double scale,
                                                  const PlannerOptions& options = {});

/// Finds the smallest capacity scale whose LRGP allocation admits at
/// least `target_admission_ratio` of all wanted consumers.  Throws
/// std::runtime_error if even `max_scale` cannot meet the target (e.g. a
/// target of 1.0 with rate floors that starve admission).
[[nodiscard]] ProvisioningPoint min_capacity_for_admission(const model::ProblemSpec& spec,
                                                           const PlannerOptions& options = {});

/// Evaluates a sweep of provisioning levels (for plotting the
/// capacity/service curve).
[[nodiscard]] std::vector<ProvisioningPoint> provisioning_curve(
    const model::ProblemSpec& spec, const std::vector<double>& scales,
    const PlannerOptions& options = {});

}  // namespace lrgp::planner
