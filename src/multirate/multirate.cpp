#include "multirate/multirate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "utility/rate_objective.hpp"

namespace lrgp::multirate {

double total_utility(const model::ProblemSpec& spec, const MultirateAllocation& alloc) {
    double total = 0.0;
    for (const model::ClassSpec& c : spec.classes()) {
        if (!spec.flowActive(c.flow)) continue;
        const int n = alloc.populations.at(c.id.index());
        if (n <= 0) continue;
        total += n * c.utility->value(alloc.class_rates.at(c.id.index()));
    }
    return total;
}

double node_usage(const model::ProblemSpec& spec, const MultirateAllocation& alloc,
                  model::NodeId node) {
    double usage = 0.0;
    for (model::FlowId i : spec.flowsAtNode(node)) {
        if (!spec.flowActive(i)) continue;
        usage += spec.flowNodeCost(node, i) * alloc.flow_rates.at(i.index());
    }
    for (model::ClassId j : spec.classesAtNode(node)) {
        const model::ClassSpec& c = spec.consumerClass(j);
        if (!spec.flowActive(c.flow)) continue;
        usage += c.consumer_cost * alloc.populations.at(j.index()) *
                 alloc.class_rates.at(j.index());
    }
    return usage;
}

double link_usage(const model::ProblemSpec& spec, const MultirateAllocation& alloc,
                  model::LinkId link) {
    double usage = 0.0;
    for (model::FlowId i : spec.flowsOnLink(link)) {
        if (!spec.flowActive(i)) continue;
        usage += spec.linkCost(link, i) * alloc.flow_rates.at(i.index());
    }
    return usage;
}

bool is_feasible(const model::ProblemSpec& spec, const MultirateAllocation& alloc,
                 double tolerance) {
    if (alloc.class_rates.size() != spec.classCount() ||
        alloc.populations.size() != spec.classCount() ||
        alloc.flow_rates.size() != spec.flowCount())
        return false;
    for (const model::ClassSpec& c : spec.classes()) {
        if (!spec.flowActive(c.flow)) continue;
        const model::FlowSpec& f = spec.flow(c.flow);
        const int n = alloc.populations[c.id.index()];
        if (n < 0 || n > c.max_consumers) return false;
        const double r = alloc.class_rates[c.id.index()];
        if (n > 0) {
            if (r < f.rate_min * (1.0 - tolerance) || r > f.rate_max * (1.0 + tolerance))
                return false;
            // Delivery cannot outpace the source stream.
            if (r > alloc.flow_rates[c.flow.index()] * (1.0 + tolerance)) return false;
        }
    }
    for (const model::FlowSpec& f : spec.flows()) {
        if (!f.active) continue;
        const double r = alloc.flow_rates[f.id.index()];
        if (r < f.rate_min * (1.0 - tolerance) || r > f.rate_max * (1.0 + tolerance))
            return false;
    }
    for (const model::NodeSpec& b : spec.nodes())
        if (node_usage(spec, alloc, b.id) > b.capacity * (1.0 + tolerance)) return false;
    for (const model::LinkSpec& l : spec.links())
        if (link_usage(spec, alloc, l.id) > l.capacity * (1.0 + tolerance)) return false;
    return true;
}

MultirateOptimizer::MultirateOptimizer(model::ProblemSpec spec, MultirateOptions options)
    : spec_(std::move(spec)), options_(options), detector_(options.convergence) {
    node_prices_.reserve(spec_.nodeCount());
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        node_prices_.emplace_back(options_.gamma);
    link_prices_.reserve(spec_.linkCount());
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        link_prices_.emplace_back(options_.link_gamma);
    node_price_values_.assign(spec_.nodeCount(), 0.0);
    link_price_values_.assign(spec_.linkCount(), 0.0);

    allocation_.class_rates.assign(spec_.classCount(), 0.0);
    allocation_.populations.assign(spec_.classCount(), 0);
    allocation_.flow_rates.assign(spec_.flowCount(), 0.0);
    for (const model::FlowSpec& f : spec_.flows())
        allocation_.flow_rates[f.id.index()] = f.active ? f.rate_min : 0.0;
    for (const model::ClassSpec& c : spec_.classes())
        allocation_.class_rates[c.id.index()] =
            spec_.flowActive(c.flow) ? spec_.flow(c.flow).rate_min : 0.0;
}

void MultirateOptimizer::step() {
    // 1. Class-rate allocation.  Each class solves its priced problem at
    //    its hosting node; the flow-level price (links + F terms) is
    //    spread across the flow's admitted classes.
    for (const model::FlowSpec& f : spec_.flows()) {
        if (!f.active) continue;

        double flow_price = 0.0;
        for (const model::FlowLinkHop& hop : f.links)
            flow_price += hop.link_cost * link_price_values_[hop.link.index()];
        for (const model::FlowNodeHop& hop : f.nodes)
            flow_price += hop.flow_node_cost * node_price_values_[hop.node.index()];

        int admitted_classes = 0;
        for (model::ClassId j : spec_.classesOfFlow(f.id))
            if (allocation_.populations[j.index()] > 0) ++admitted_classes;
        const double share = flow_price / std::max(1, admitted_classes);

        for (model::ClassId j : spec_.classesOfFlow(f.id)) {
            const model::ClassSpec& c = spec_.consumerClass(j);
            const double node_price = node_price_values_[c.node.index()];
            const int n = allocation_.populations[j.index()];
            // Admitted classes internalize their share of the flow price;
            // unadmitted classes get a prospective single-consumer rate so
            // the greedy step can evaluate their benefit-cost ratio.
            const double population = std::max(1, n);
            const double price =
                population * c.consumer_cost * node_price + (n > 0 ? share : 0.0);
            std::vector<utility::WeightedUtility> term{{population, c.utility}};
            allocation_.class_rates[j.index()] =
                utility::solve_rate_objective(term, price, f.rate_min, f.rate_max).rate;
        }

        // 2. The source streams fast enough for its fastest admitted class.
        double flow_rate = f.rate_min;
        for (model::ClassId j : spec_.classesOfFlow(f.id))
            if (allocation_.populations[j.index()] > 0)
                flow_rate = std::max(flow_rate, allocation_.class_rates[j.index()]);
        allocation_.flow_rates[f.id.index()] = flow_rate;
    }

    // Pessimistic per-flow rate bound for admission budgeting: greedy may
    // admit a class faster than the currently fastest admitted one, which
    // would raise the source rate (and the F costs) after the fact.
    // Budgeting F at the max rate any admissible class might demand keeps
    // every admission decision capacity-safe.
    std::vector<double> flow_rate_bounds(spec_.flowCount(), 0.0);
    for (const model::FlowSpec& f : spec_.flows()) {
        if (!f.active) continue;
        double bound = f.rate_min;
        for (model::ClassId j : spec_.classesOfFlow(f.id))
            if (spec_.consumerClass(j).max_consumers > 0)
                bound = std::max(bound, allocation_.class_rates[j.index()]);
        flow_rate_bounds[f.id.index()] = bound;
    }

    // 3. Greedy admission per node at each class's own rate, and
    // 4. node price update (Eq. 12 with per-class-rate benefit-costs).
    for (const model::NodeSpec& b : spec_.nodes()) {
        double base_usage = 0.0;
        for (model::FlowId i : spec_.flowsAtNode(b.id)) {
            if (!spec_.flowActive(i)) continue;
            base_usage += spec_.flowNodeCost(b.id, i) * flow_rate_bounds[i.index()];
        }
        double remaining = b.capacity - base_usage;

        struct Candidate {
            model::ClassId cls;
            double ratio;
            double unit_cost;
        };
        std::vector<Candidate> ranked;
        for (model::ClassId j : spec_.classesAtNode(b.id)) {
            const model::ClassSpec& c = spec_.consumerClass(j);
            if (!spec_.flowActive(c.flow) || c.max_consumers == 0) continue;
            const double r = allocation_.class_rates[j.index()];
            const double unit_cost = c.consumer_cost * r;
            ranked.push_back({j, c.utility->value(r) / unit_cost, unit_cost});
        }
        std::sort(ranked.begin(), ranked.end(), [](const Candidate& a, const Candidate& b2) {
            if (a.ratio != b2.ratio) return a.ratio > b2.ratio;
            return a.cls < b2.cls;
        });

        double best_unmet_bc = 0.0;
        for (const Candidate& cand : ranked) {
            const model::ClassSpec& c = spec_.consumerClass(cand.cls);
            int admitted = 0;
            if (remaining > 0.0)
                admitted = static_cast<int>(std::min(std::floor(remaining / cand.unit_cost),
                                                     static_cast<double>(c.max_consumers)));
            remaining -= admitted * cand.unit_cost;
            allocation_.populations[cand.cls.index()] = admitted;
            if (admitted < c.max_consumers && best_unmet_bc == 0.0)
                best_unmet_bc = cand.ratio;
        }

        const double used = b.capacity - remaining;
        node_price_values_[b.id.index()] =
            node_prices_[b.id.index()].update(best_unmet_bc, used, b.capacity);
    }

    // Flow rates may have been keyed to classes that just lost admission;
    // recompute the max so the recorded allocation is self-consistent.
    for (const model::FlowSpec& f : spec_.flows()) {
        if (!f.active) continue;
        double flow_rate = f.rate_min;
        for (model::ClassId j : spec_.classesOfFlow(f.id))
            if (allocation_.populations[j.index()] > 0)
                flow_rate = std::max(flow_rate, allocation_.class_rates[j.index()]);
        allocation_.flow_rates[f.id.index()] = flow_rate;
    }

    // 5. Link prices on the full source streams.
    for (const model::LinkSpec& l : spec_.links()) {
        const double usage = link_usage(spec_, allocation_, l.id);
        link_price_values_[l.id.index()] = link_prices_[l.id.index()].update(usage, l.capacity);
    }

    const double utility = total_utility(spec_, allocation_);
    trace_.append(utility);
    detector_.addSample(utility);
}

void MultirateOptimizer::run(int iterations) {
    if (iterations <= 0) throw std::invalid_argument("MultirateOptimizer::run: bad iterations");
    for (int i = 0; i < iterations; ++i) step();
}

std::optional<int> MultirateOptimizer::runUntilConverged(int max_iterations) {
    if (max_iterations <= 0)
        throw std::invalid_argument("MultirateOptimizer::runUntilConverged: bad max");
    for (int i = 0; i < max_iterations; ++i) {
        step();
        if (detector_.converged()) return static_cast<int>(detector_.convergedAt());
    }
    return std::nullopt;
}

}  // namespace lrgp::multirate
