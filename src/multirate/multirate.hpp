// Multirate LRGP (LRGP-MR) — the extension the paper defers to future
// work (Section 5: multicast flow control considers multirate flows;
// "if node resources were also considered, as we do in our optimization,
// the problem would become harder.  We defer the study of multirate
// allocation for future work").
//
// Model extension: each consumer class j receives flow i *thinned to its
// own delivery rate* r_j <= r_i (the hosting node forwards, e.g., every
// k-th message — the paper's "latest price" elasticity applied per
// class).  The source still publishes at r_i = max_j r_j, links carry
// the full stream, and node b's constraint becomes
//
//     sum_i ( F_{b,i} * r_i  +  sum_{j at b} G_{b,j} * n_j * r_j ) <= c_b
//
// so per-consumer work scales with each class's own rate while
// per-message routing work scales with the incoming stream.
//
// The optimizer mirrors LRGP's decomposition:
//   * class-rate step: r_j maximizes n_j U_j(r) - r (n_j G_{b,j} p_b +
//     share_i), where share_i spreads the flow-level price (links + F
//     terms) across the flow's admitted classes;
//   * flow rate: r_i = max over admitted classes (r_min if none);
//   * greedy admission and Eq. 12 node pricing, with benefit-cost ratios
//     computed at each class's own rate.
//
// Because every class may run at the single-rate optimum or better, the
// multirate utility dominates single-rate LRGP's; the ablation benchmark
// quantifies the gain (largest when classes of one flow have very
// different saturation behaviour).
#pragma once

#include <optional>
#include <vector>

#include "lrgp/convergence.hpp"
#include "lrgp/price_controllers.hpp"
#include "metrics/time_series.hpp"
#include "model/problem.hpp"

namespace lrgp::multirate {

/// Decision variables of the multirate problem.
struct MultirateAllocation {
    std::vector<double> class_rates;  ///< r_j, indexed by class
    std::vector<int> populations;     ///< n_j, indexed by class
    std::vector<double> flow_rates;   ///< r_i = max_j r_j, indexed by flow
};

/// Total utility: sum_j n_j U_j(r_j).
[[nodiscard]] double total_utility(const model::ProblemSpec& spec,
                                   const MultirateAllocation& alloc);

/// Node usage under the multirate cost model (see header comment).
[[nodiscard]] double node_usage(const model::ProblemSpec& spec,
                                const MultirateAllocation& alloc, model::NodeId node);

/// Link usage: links carry the full source stream, L_{l,i} * r_i.
[[nodiscard]] double link_usage(const model::ProblemSpec& spec,
                                const MultirateAllocation& alloc, model::LinkId link);

/// True iff rate bounds, population bounds, r_j <= r_i coupling, and all
/// capacity constraints hold (with relative slack `tolerance`).
[[nodiscard]] bool is_feasible(const model::ProblemSpec& spec, const MultirateAllocation& alloc,
                               double tolerance = 1e-9);

struct MultirateOptions {
    core::GammaPolicy gamma = core::AdaptiveGamma{};
    double link_gamma = 1e-5;
    core::ConvergenceOptions convergence;
};

/// Iterates the multirate decomposition.  API mirrors LrgpOptimizer.
class MultirateOptimizer {
public:
    explicit MultirateOptimizer(model::ProblemSpec spec, MultirateOptions options = {});

    MultirateOptimizer(const MultirateOptimizer&) = delete;
    MultirateOptimizer& operator=(const MultirateOptimizer&) = delete;

    void step();
    void run(int iterations);
    [[nodiscard]] std::optional<int> runUntilConverged(int max_iterations);

    [[nodiscard]] const model::ProblemSpec& problem() const noexcept { return spec_; }
    [[nodiscard]] const MultirateAllocation& allocation() const noexcept { return allocation_; }
    [[nodiscard]] double currentUtility() const { return total_utility(spec_, allocation_); }
    [[nodiscard]] const metrics::TimeSeries& utilityTrace() const noexcept { return trace_; }
    [[nodiscard]] const core::ConvergenceDetector& convergence() const noexcept {
        return detector_;
    }

private:
    model::ProblemSpec spec_;
    MultirateOptions options_;
    std::vector<core::NodePriceController> node_prices_;
    std::vector<core::LinkPriceController> link_prices_;
    std::vector<double> node_price_values_;
    std::vector<double> link_price_values_;
    MultirateAllocation allocation_;
    metrics::TimeSeries trace_;
    core::ConvergenceDetector detector_;
};

}  // namespace lrgp::multirate
