// The per-flow rate objective of LRGP's Lagrangian subproblem (Eq. 7):
//
//     maximize_r   sum_j n_j U_j(r)  -  r * price        on [lo, hi]
//
// where `price` = PL_i + PB_i is the total per-unit-rate price the flow
// pays across the links and nodes it traverses.  When every U_j is
// strictly concave (log/power classes) the objective is strictly
// concave and the maximizer is unique: either a bound, or the unique
// root of the derivative.  Sigmoid/step classes from the sensitivity
// section are *not* concave; any active non-concave term routes the
// solve through a deterministic global scan instead (fixed uniform grid
// plus golden-section refinement), so the maximizer stays a pure
// function of (terms, price, bounds) and all engines agree bitwise.
//
// On the concave path the solver prefers closed forms (all-log or
// all-power-with-equal-exponent populations combine into a single
// weighted inverse) and falls back to safeguarded Newton/bisection
// otherwise.
#pragma once

#include <memory>
#include <vector>

#include "utility/utility_function.hpp"

namespace lrgp::utility {

/// One consumer class's contribution to a flow's rate objective.
struct WeightedUtility {
    double population = 0.0;  ///< n_j, number of admitted consumers
    std::shared_ptr<const UtilityFunction> utility;  ///< U_j, never null
};

/// How the maximizer was obtained; exposed for tests and the ablation
/// micro-benchmarks comparing the closed-form and numeric paths.
enum class RateSolveMethod {
    kBoundLow,     ///< derivative <= 0 at lo: objective decreasing, clamp low
    kBoundHigh,    ///< derivative >= 0 at hi: objective increasing, clamp high
    kClosedForm,   ///< single combined inverse-derivative evaluation
    kNumeric,      ///< safeguarded Newton/bisection on the derivative
};

struct RateSolveResult {
    double rate = 0.0;
    RateSolveMethod method = RateSolveMethod::kBoundLow;
};

/// Options controlling the stationarity solve.
struct RateSolveOptions {
    bool allow_closed_form = true;  ///< set false to force the numeric path
    double tolerance = 1e-9;        ///< bracket tolerance for the numeric path
};

/// Computes argmax_{r in [lo, hi]} sum_j n_j U_j(r) - r * price.
///
/// Terms with zero population are ignored.  If every term has zero
/// population the objective reduces to -r*price: the result is lo when
/// price > 0 and hi when price == 0 (utility is increasing, rate is free).
/// Preconditions: lo <= hi, price >= 0, all utilities non-null; violations
/// throw std::invalid_argument.
RateSolveResult solve_rate_objective(const std::vector<WeightedUtility>& terms, double price,
                                     double lo, double hi, const RateSolveOptions& opts = {});

/// Evaluates the objective sum_j n_j U_j(r) - r * price at `rate`.
double rate_objective_value(const std::vector<WeightedUtility>& terms, double price, double rate);

/// Evaluates the objective derivative sum_j n_j U_j'(r) - price at `rate`.
double rate_objective_derivative(const std::vector<WeightedUtility>& terms, double price,
                                 double rate);

}  // namespace lrgp::utility
