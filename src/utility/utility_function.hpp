// Consumer-class utility functions (Section 2.2 of the paper).
//
// A utility function U_j maps the rate r_i of the flow a class consumes to
// the per-consumer benefit.  The paper requires U_j to be increasing,
// strictly concave, and continuously differentiable on [r_min, r_max].
// The evaluation uses two families:
//   * LogUtility:   U(r) = w * log(1 + r)        ("rank * log(1+r)")
//   * PowerUtility: U(r) = w * r^k, 0 < k < 1     ("rank * r^k")
// Both provide closed-form derivative inverses, which lets the rate
// allocator solve the stationarity condition analytically.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

namespace lrgp::utility {

/// Interface for a per-consumer utility function of flow rate.
///
/// Implementations must be increasing and strictly concave on (0, inf),
/// i.e. derivative(r) > 0 and strictly decreasing.
class UtilityFunction {
public:
    virtual ~UtilityFunction() = default;

    /// U(r). Precondition: r >= 0.
    [[nodiscard]] virtual double value(double rate) const = 0;

    /// U'(r). Precondition: r >= 0 (some families require r > 0).
    [[nodiscard]] virtual double derivative(double rate) const = 0;

    /// Solves U'(r) = marginal for r, when a closed form exists.
    /// Returns nullopt when the family has no closed-form inverse.
    /// Precondition: marginal > 0.
    [[nodiscard]] virtual std::optional<double> inverseDerivative(double marginal) const {
        (void)marginal;
        return std::nullopt;
    }

    /// Evaluates U at `count` rates in one call (out[i] = value(rates[i])).
    /// The default delegates to value() per point; families with heavy
    /// per-call overhead override it with a single tight loop.  Overrides
    /// MUST stay bitwise-identical to per-point value() calls — the
    /// non-concave grid scan batches its samples through this hook and
    /// relies on reproducing the pointwise objective exactly.
    virtual void valueBatch(const double* rates, double* out, std::size_t count) const {
        for (std::size_t i = 0; i < count; ++i) out[i] = value(rates[i]);
    }

    /// Human-readable description, e.g. "20 * log(1+r)".
    [[nodiscard]] virtual std::string describe() const = 0;

    [[nodiscard]] virtual std::unique_ptr<UtilityFunction> clone() const = 0;

    /// True when the family is strictly concave on (0, inf).  The rate
    /// allocator's stationarity solve (bound-derivative checks, closed
    /// forms, monotone bisection) is only valid for concave terms; any
    /// flow whose active classes include a non-concave utility is routed
    /// through a deterministic global scan instead.
    [[nodiscard]] virtual bool concave() const noexcept { return true; }
};

/// U(r) = weight * log(1 + r).  U'(r) = weight / (1 + r).
class LogUtility final : public UtilityFunction {
public:
    /// Throws std::invalid_argument unless weight > 0.
    explicit LogUtility(double weight);

    [[nodiscard]] double value(double rate) const override;
    [[nodiscard]] double derivative(double rate) const override;
    [[nodiscard]] std::optional<double> inverseDerivative(double marginal) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<UtilityFunction> clone() const override;

    [[nodiscard]] double weight() const noexcept { return weight_; }

private:
    double weight_;
};

/// U(r) = weight * r^exponent with 0 < exponent < 1.
/// U'(r) = weight * exponent * r^(exponent-1).
class PowerUtility final : public UtilityFunction {
public:
    /// Throws std::invalid_argument unless weight > 0 and 0 < exponent < 1.
    PowerUtility(double weight, double exponent);

    [[nodiscard]] double value(double rate) const override;
    [[nodiscard]] double derivative(double rate) const override;
    [[nodiscard]] std::optional<double> inverseDerivative(double marginal) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<UtilityFunction> clone() const override;

    [[nodiscard]] double weight() const noexcept { return weight_; }
    [[nodiscard]] double exponent() const noexcept { return exponent_; }

private:
    double weight_;
    double exponent_;
};

/// U(r) = weight * log(1 + r / scale).  The scale parameter sets where
/// the utility saturates: a telemetry dashboard refreshing once a minute
/// (scale small) flattens out at far lower rates than a tick-by-tick
/// trading feed (scale large).  U'(r) = weight / (scale + r).
class ShiftedLogUtility final : public UtilityFunction {
public:
    /// Throws std::invalid_argument unless weight > 0 and scale > 0.
    ShiftedLogUtility(double weight, double scale);

    [[nodiscard]] double value(double rate) const override;
    [[nodiscard]] double derivative(double rate) const override;
    [[nodiscard]] std::optional<double> inverseDerivative(double marginal) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<UtilityFunction> clone() const override;

    [[nodiscard]] double weight() const noexcept { return weight_; }
    [[nodiscard]] double scale() const noexcept { return scale_; }

private:
    double weight_;
    double scale_;
};

/// Normalized logistic utility (the paper's sensitivity-section "sigmoid"
/// and, at high steepness, "step" classes):
///
///   U(r) = weight * (s(r) - s(0)) / (1 - s(0)),   s(x) = 1/(1+e^(-steepness*(x-midpoint)))
///
/// U(0) = 0, U is increasing and C^1, and saturates at `weight` as
/// r -> inf.  It is convex below the midpoint and concave above it, so
/// concave() is false and the rate allocator solves flows carrying it by
/// a deterministic global scan.  A "step" utility is the same family with
/// a large steepness (the logistic stays differentiable, which the
/// allocator requires, while approximating a hard threshold at midpoint).
class SigmoidUtility final : public UtilityFunction {
public:
    /// Throws std::invalid_argument unless weight > 0, midpoint > 0 and
    /// steepness > 0.
    SigmoidUtility(double weight, double midpoint, double steepness);

    [[nodiscard]] double value(double rate) const override;
    [[nodiscard]] double derivative(double rate) const override;
    void valueBatch(const double* rates, double* out, std::size_t count) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<UtilityFunction> clone() const override;
    [[nodiscard]] bool concave() const noexcept override { return false; }

    [[nodiscard]] double weight() const noexcept { return weight_; }
    [[nodiscard]] double midpoint() const noexcept { return midpoint_; }
    [[nodiscard]] double steepness() const noexcept { return steepness_; }

private:
    double weight_;
    double midpoint_;
    double steepness_;
    double s0_;  ///< s(0), cached so value() stays a two-exp evaluation
};

/// Wraps another utility with a positive multiplicative factor:
/// U(r) = factor * base(r).  Used to express rank * f(r) for arbitrary f.
class ScaledUtility final : public UtilityFunction {
public:
    /// Throws std::invalid_argument unless factor > 0 and base != nullptr.
    ScaledUtility(double factor, std::shared_ptr<const UtilityFunction> base);

    [[nodiscard]] double value(double rate) const override;
    [[nodiscard]] double derivative(double rate) const override;
    void valueBatch(const double* rates, double* out, std::size_t count) const override;
    [[nodiscard]] std::optional<double> inverseDerivative(double marginal) const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::unique_ptr<UtilityFunction> clone() const override;

    [[nodiscard]] bool concave() const noexcept override { return base_->concave(); }

    [[nodiscard]] double factor() const noexcept { return factor_; }
    [[nodiscard]] const UtilityFunction& base() const noexcept { return *base_; }

private:
    double factor_;
    std::shared_ptr<const UtilityFunction> base_;
};

}  // namespace lrgp::utility
