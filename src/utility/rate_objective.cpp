#include "utility/rate_objective.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "solver/root_finding.hpp"

namespace lrgp::utility {

namespace {

/// Unwraps nested ScaledUtility layers, accumulating the product of
/// factors, and returns the innermost function.
const UtilityFunction* unwrap(const UtilityFunction* fn, double& factor) {
    while (const auto* scaled = dynamic_cast<const ScaledUtility*>(fn)) {
        factor *= scaled->factor();
        fn = &scaled->base();
    }
    return fn;
}

struct CombinedForm {
    enum class Family { kNone, kLog, kPower, kShiftedLog } family = Family::kNone;
    double weight = 0.0;    ///< combined w = sum_j n_j * factor_j * w_j
    double exponent = 0.0;  ///< common power exponent (Family::kPower only)
    double scale = 0.0;     ///< common log scale (Family::kShiftedLog only)
};

/// Attempts to combine all active terms into a single closed-form family.
CombinedForm tryCombine(const std::vector<WeightedUtility>& terms) {
    CombinedForm out;
    for (const auto& t : terms) {
        if (t.population <= 0.0) continue;
        double factor = t.population;
        const UtilityFunction* base = unwrap(t.utility.get(), factor);
        if (const auto* lg = dynamic_cast<const LogUtility*>(base)) {
            if (out.family != CombinedForm::Family::kNone &&
                out.family != CombinedForm::Family::kLog)
                return {};
            out.family = CombinedForm::Family::kLog;
            out.weight += factor * lg->weight();
        } else if (const auto* pw = dynamic_cast<const PowerUtility*>(base)) {
            if (out.family != CombinedForm::Family::kNone &&
                (out.family != CombinedForm::Family::kPower || out.exponent != pw->exponent()))
                return {};
            out.family = CombinedForm::Family::kPower;
            out.exponent = pw->exponent();
            out.weight += factor * pw->weight();
        } else if (const auto* sl = dynamic_cast<const ShiftedLogUtility*>(base)) {
            if (out.family != CombinedForm::Family::kNone &&
                (out.family != CombinedForm::Family::kShiftedLog || out.scale != sl->scale()))
                return {};
            out.family = CombinedForm::Family::kShiftedLog;
            out.scale = sl->scale();
            out.weight += factor * sl->weight();
        } else {
            return {};
        }
    }
    return out;
}

/// Global maximizer for objectives carrying a non-concave (sigmoid/step)
/// term.  The derivative can change sign several times, so the concave
/// machinery (bound-derivative pruning, closed forms, monotone bisection)
/// is invalid.  Instead: evaluate a fixed uniform grid, then refine the
/// best grid cell with golden-section search, then compare against both
/// endpoints.  Every step is a pure function of (terms, price, lo, hi),
/// so all engines sharing this solver stay bitwise-identical.
RateSolveResult scan_maximize(const std::vector<WeightedUtility>& terms, double price,
                              double lo, double hi, const RateSolveOptions& opts) {
    constexpr int kSamples = 64;
    const double width = hi - lo;
    auto f = [&](double r) { return rate_objective_value(terms, price, r); };

    // The grid is scored term-major: all 65 sample points go through one
    // valueBatch call per class term (one virtual dispatch per term
    // instead of one per term * point, and a loop the batched utilities
    // vectorize).  Per point the accumulation order is exactly
    // rate_objective_value's term order, so values[p] is bitwise f(pts[p]).
    double pts[kSamples + 1];
    double values[kSamples + 1];
    double ubuf[kSamples + 1];
    pts[0] = lo;
    for (int i = 1; i <= kSamples; ++i) {
        pts[i] = (i == kSamples) ? hi : lo + width * static_cast<double>(i) /
                                                 static_cast<double>(kSamples);
    }
    for (int p = 0; p <= kSamples; ++p) values[p] = -pts[p] * price;
    for (const auto& t : terms) {
        if (t.population <= 0.0) continue;
        t.utility->valueBatch(pts, ubuf, kSamples + 1);
        for (int p = 0; p <= kSamples; ++p) values[p] += t.population * ubuf[p];
    }

    double best_r = pts[0];
    double best_v = values[0];
    for (int i = 1; i <= kSamples; ++i) {
        if (values[i] > best_v) {
            best_v = values[i];
            best_r = pts[i];
        }
    }

    // Refine within one grid cell either side of the best sample; the
    // restriction is unimodal-enough for golden section to converge to a
    // local maximum at least as good as the grid winner.
    const double cell = width / static_cast<double>(kSamples);
    const double rlo = std::max(lo, best_r - cell);
    const double rhi = std::min(hi, best_r + cell);
    if (rhi > rlo) {
        solver::RootOptions ropts;
        ropts.tolerance = std::max(opts.tolerance, 1e-12);
        const auto refined = solver::golden_section_maximize(f, rlo, rhi, ropts);
        const double rv = f(refined.root);
        if (rv > best_v) {
            best_v = rv;
            best_r = refined.root;
        }
    }

    if (best_r <= lo) return {lo, RateSolveMethod::kBoundLow};
    if (best_r >= hi) return {hi, RateSolveMethod::kBoundHigh};
    return {best_r, RateSolveMethod::kNumeric};
}

}  // namespace

double rate_objective_value(const std::vector<WeightedUtility>& terms, double price,
                            double rate) {
    double v = -rate * price;
    for (const auto& t : terms) {
        if (t.population <= 0.0) continue;
        v += t.population * t.utility->value(rate);
    }
    return v;
}

double rate_objective_derivative(const std::vector<WeightedUtility>& terms, double price,
                                 double rate) {
    double d = -price;
    for (const auto& t : terms) {
        if (t.population <= 0.0) continue;
        d += t.population * t.utility->derivative(rate);
    }
    return d;
}

RateSolveResult solve_rate_objective(const std::vector<WeightedUtility>& terms, double price,
                                     double lo, double hi, const RateSolveOptions& opts) {
    if (!(lo <= hi)) throw std::invalid_argument("solve_rate_objective: lo > hi");
    if (price < 0.0) throw std::invalid_argument("solve_rate_objective: negative price");
    for (const auto& t : terms)
        if (!t.utility) throw std::invalid_argument("solve_rate_objective: null utility");

    bool any_population = false;
    for (const auto& t : terms)
        if (t.population > 0.0) any_population = true;

    // With no admitted consumers the objective is -r*price: decreasing when
    // priced, flat when free.  Take lo when priced; hi when free (utility is
    // increasing in general, so an unpriced flow runs at full rate).
    if (!any_population) {
        return price > 0.0 ? RateSolveResult{lo, RateSolveMethod::kBoundLow}
                           : RateSolveResult{hi, RateSolveMethod::kBoundHigh};
    }

    // Non-concave terms (sigmoid/step classes) invalidate every concave
    // shortcut below — route them through the deterministic global scan
    // before touching the bound-derivative checks.
    for (const auto& t : terms) {
        if (t.population > 0.0 && !t.utility->concave()) {
            if (lo >= hi) return {lo, RateSolveMethod::kBoundLow};
            return scan_maximize(terms, price, lo, hi, opts);
        }
    }

    // Strictly concave objective: check the derivative at the bounds first.
    const double d_hi = rate_objective_derivative(terms, price, hi);
    if (d_hi >= 0.0) return {hi, RateSolveMethod::kBoundHigh};
    const double d_lo = rate_objective_derivative(terms, price, lo);
    if (d_lo <= 0.0) return {lo, RateSolveMethod::kBoundLow};

    if (opts.allow_closed_form) {
        const CombinedForm combined = tryCombine(terms);
        if (combined.family == CombinedForm::Family::kLog) {
            // W/(1+r) = price
            const double r = combined.weight / price - 1.0;
            return {std::clamp(r, lo, hi), RateSolveMethod::kClosedForm};
        }
        if (combined.family == CombinedForm::Family::kPower) {
            // W*k*r^(k-1) = price
            const double k = combined.exponent;
            const double r = std::pow(price / (combined.weight * k), 1.0 / (k - 1.0));
            return {std::clamp(r, lo, hi), RateSolveMethod::kClosedForm};
        }
        if (combined.family == CombinedForm::Family::kShiftedLog) {
            // W/(s+r) = price
            const double r = combined.weight / price - combined.scale;
            return {std::clamp(r, lo, hi), RateSolveMethod::kClosedForm};
        }
    }

    // Numeric fallback: the derivative is strictly decreasing with a sign
    // change across [lo, hi] (checked above).
    solver::RootOptions ropts;
    ropts.tolerance = opts.tolerance;
    const auto result = solver::bisect_decreasing(
        [&](double r) { return rate_objective_derivative(terms, price, r); }, lo, hi, ropts);
    return {result.root, RateSolveMethod::kNumeric};
}

}  // namespace lrgp::utility
