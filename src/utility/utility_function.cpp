#include "utility/utility_function.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lrgp::utility {

// ---------------------------------------------------------------- LogUtility

LogUtility::LogUtility(double weight) : weight_(weight) {
    if (!(weight > 0.0)) throw std::invalid_argument("LogUtility: weight must be positive");
}

double LogUtility::value(double rate) const { return weight_ * std::log1p(rate); }

double LogUtility::derivative(double rate) const { return weight_ / (1.0 + rate); }

std::optional<double> LogUtility::inverseDerivative(double marginal) const {
    // weight / (1 + r) = m  =>  r = weight/m - 1
    return weight_ / marginal - 1.0;
}

std::string LogUtility::describe() const {
    std::ostringstream os;
    os << weight_ << " * log(1+r)";
    return os.str();
}

std::unique_ptr<UtilityFunction> LogUtility::clone() const {
    return std::make_unique<LogUtility>(*this);
}

// -------------------------------------------------------------- PowerUtility

PowerUtility::PowerUtility(double weight, double exponent)
    : weight_(weight), exponent_(exponent) {
    if (!(weight > 0.0)) throw std::invalid_argument("PowerUtility: weight must be positive");
    if (!(exponent > 0.0 && exponent < 1.0))
        throw std::invalid_argument("PowerUtility: exponent must be in (0, 1)");
}

double PowerUtility::value(double rate) const { return weight_ * std::pow(rate, exponent_); }

double PowerUtility::derivative(double rate) const {
    return weight_ * exponent_ * std::pow(rate, exponent_ - 1.0);
}

std::optional<double> PowerUtility::inverseDerivative(double marginal) const {
    // w*k*r^(k-1) = m  =>  r = (m / (w*k))^(1/(k-1))
    return std::pow(marginal / (weight_ * exponent_), 1.0 / (exponent_ - 1.0));
}

std::string PowerUtility::describe() const {
    std::ostringstream os;
    os << weight_ << " * r^" << exponent_;
    return os.str();
}

std::unique_ptr<UtilityFunction> PowerUtility::clone() const {
    return std::make_unique<PowerUtility>(*this);
}

// ------------------------------------------------------- ShiftedLogUtility

ShiftedLogUtility::ShiftedLogUtility(double weight, double scale)
    : weight_(weight), scale_(scale) {
    if (!(weight > 0.0))
        throw std::invalid_argument("ShiftedLogUtility: weight must be positive");
    if (!(scale > 0.0)) throw std::invalid_argument("ShiftedLogUtility: scale must be positive");
}

double ShiftedLogUtility::value(double rate) const {
    return weight_ * std::log1p(rate / scale_);
}

double ShiftedLogUtility::derivative(double rate) const { return weight_ / (scale_ + rate); }

std::optional<double> ShiftedLogUtility::inverseDerivative(double marginal) const {
    // weight / (scale + r) = m  =>  r = weight/m - scale
    return weight_ / marginal - scale_;
}

std::string ShiftedLogUtility::describe() const {
    std::ostringstream os;
    os << weight_ << " * log(1+r/" << scale_ << ")";
    return os.str();
}

std::unique_ptr<UtilityFunction> ShiftedLogUtility::clone() const {
    return std::make_unique<ShiftedLogUtility>(*this);
}

// ------------------------------------------------------------ SigmoidUtility

namespace {

// Overflow-safe logistic: never exponentiates a positive argument.
double logistic(double x) {
    if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
    const double e = std::exp(x);
    return e / (1.0 + e);
}

}  // namespace

SigmoidUtility::SigmoidUtility(double weight, double midpoint, double steepness)
    : weight_(weight), midpoint_(midpoint), steepness_(steepness) {
    if (!(weight > 0.0)) throw std::invalid_argument("SigmoidUtility: weight must be positive");
    if (!(midpoint > 0.0))
        throw std::invalid_argument("SigmoidUtility: midpoint must be positive");
    if (!(steepness > 0.0))
        throw std::invalid_argument("SigmoidUtility: steepness must be positive");
    s0_ = logistic(-steepness_ * midpoint_);
}

double SigmoidUtility::value(double rate) const {
    const double s = logistic(steepness_ * (rate - midpoint_));
    return weight_ * (s - s0_) / (1.0 - s0_);
}

double SigmoidUtility::derivative(double rate) const {
    const double s = logistic(steepness_ * (rate - midpoint_));
    return weight_ * steepness_ * s * (1.0 - s) / (1.0 - s0_);
}

void SigmoidUtility::valueBatch(const double* rates, double* out, std::size_t count) const {
    // Same arithmetic as value(), hoisted out of the virtual dispatch so
    // a 65-point grid costs one call; bitwise-identical per point.
    for (std::size_t i = 0; i < count; ++i) {
        const double s = logistic(steepness_ * (rates[i] - midpoint_));
        out[i] = weight_ * (s - s0_) / (1.0 - s0_);
    }
}

std::string SigmoidUtility::describe() const {
    std::ostringstream os;
    os << weight_ << " * sigmoid(r; mid=" << midpoint_ << ", k=" << steepness_ << ")";
    return os.str();
}

std::unique_ptr<UtilityFunction> SigmoidUtility::clone() const {
    return std::make_unique<SigmoidUtility>(*this);
}

// ------------------------------------------------------------- ScaledUtility

ScaledUtility::ScaledUtility(double factor, std::shared_ptr<const UtilityFunction> base)
    : factor_(factor), base_(std::move(base)) {
    if (!(factor > 0.0)) throw std::invalid_argument("ScaledUtility: factor must be positive");
    if (!base_) throw std::invalid_argument("ScaledUtility: base must not be null");
}

double ScaledUtility::value(double rate) const { return factor_ * base_->value(rate); }

void ScaledUtility::valueBatch(const double* rates, double* out, std::size_t count) const {
    base_->valueBatch(rates, out, count);
    for (std::size_t i = 0; i < count; ++i) out[i] = factor_ * out[i];
}

double ScaledUtility::derivative(double rate) const { return factor_ * base_->derivative(rate); }

std::optional<double> ScaledUtility::inverseDerivative(double marginal) const {
    // factor * base'(r) = m  <=>  base'(r) = m / factor
    return base_->inverseDerivative(marginal / factor_);
}

std::string ScaledUtility::describe() const {
    std::ostringstream os;
    os << factor_ << " * (" << base_->describe() << ")";
    return os.str();
}

std::unique_ptr<UtilityFunction> ScaledUtility::clone() const {
    return std::make_unique<ScaledUtility>(factor_, base_);
}

}  // namespace lrgp::utility
