#include "fastpath/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lrgp::fastpath {

TrafficScheduler::TrafficScheduler(std::size_t flows, double credit_depth, double quantum_budget)
    : credit_depth_(credit_depth), quantum_budget_(quantum_budget) {
    if (!(credit_depth_ >= 1.0))
        throw std::invalid_argument("TrafficScheduler: credit_depth must be >= 1");
    if (!(quantum_budget_ >= 0.0))
        throw std::invalid_argument("TrafficScheduler: quantum_budget must be >= 0");
    rates_.assign(flows, 0.0);
    credits_.assign(flows, 0.0);
    quotas_.assign(flows, 0);
}

void TrafficScheduler::setRate(std::size_t i, double rate) {
    if (!(rate >= 0.0)) throw std::invalid_argument("TrafficScheduler: rate must be >= 0");
    rates_.at(i) = rate;
}

void TrafficScheduler::beginQuantum() {
    if (!budgeted()) return;
    const double total_rate = std::accumulate(rates_.begin(), rates_.end(), 0.0);
    if (!(total_rate > 0.0)) {
        std::fill(quotas_.begin(), quotas_.end(), std::uint64_t{0});
        return;
    }
    // Weighted largest-remainder split of the budget, flow order: the
    // floors first, then one extra message per flow in descending
    // fractional order (ties to the lower flow id).
    const std::size_t n = rates_.size();
    std::uint64_t assigned = 0;
    std::vector<double> fractions(n);
    const auto budget = static_cast<std::uint64_t>(quantum_budget_);
    for (std::size_t i = 0; i < n; ++i) {
        const double share = quantum_budget_ * rates_[i] / total_rate;
        quotas_[i] = static_cast<std::uint64_t>(share);
        fractions[i] = share - static_cast<double>(quotas_[i]);
        assigned += quotas_[i];
    }
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&fractions](std::size_t a, std::size_t b) {
        return fractions[a] > fractions[b];
    });
    for (std::size_t k = 0; k < n && assigned < budget; ++k) {
        if (rates_[order[k]] > 0.0) {
            ++quotas_[order[k]];
            ++assigned;
        }
    }
}

void TrafficScheduler::refill(std::size_t i, double dt) {
    // Carried credits cap at the burst depth, but the quantum's own
    // accrual stays fully spendable: a continuous-time policer passes
    // rate*dt messages during dt no matter how small the bucket, and
    // batching admission at quantum granularity must not lower that
    // (otherwise every flow with rate > depth/quantum would be shaped
    // to depth/quantum, which the event dataplane never does).
    credits_[i] = std::min(credit_depth_, credits_[i]) + rates_[i] * dt;
}

bool TrafficScheduler::tryAdmit(std::size_t i) {
    // Same slack as TokenBucket::tryConsume: deterministic arrivals at
    // exactly the refill rate must never be shaped by rounding noise.
    if (credits_[i] < 1.0 - 1e-9) return false;
    if (budgeted()) {
        if (quotas_[i] == 0) return false;
        --quotas_[i];
    }
    credits_[i] -= 1.0;
    return true;
}

}  // namespace lrgp::fastpath
