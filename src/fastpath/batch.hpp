// Message batches: the unit of work flowing through the fastpath's
// gate graph.  A batch is a cohort of up to `batch_size` messages of
// one flow emitted in the same quantum — the BESS packet-batch analog.
// Gates charge and serve whole cohorts (counts), never individual
// messages, which is where the fastpath's throughput comes from.
#pragma once

#include <cstdint>

namespace lrgp::fastpath {

inline constexpr std::uint32_t kDefaultBatchSize = 32;

/// A cohort of `count` messages of `flow` moving through a gate.
struct MsgBatch {
    std::uint32_t flow = 0;
    std::uint32_t count = 0;
};

/// Number of batches needed for `messages` at `batch_size` per batch.
[[nodiscard]] constexpr std::uint64_t batch_count(std::uint64_t messages,
                                                  std::uint32_t batch_size) noexcept {
    return (messages + batch_size - 1) / batch_size;
}

/// Invokes fn(MsgBatch) for each batch of `messages`: full batches
/// first, then the (possibly partial) tail.  Deterministic order.
template <class Fn>
void for_each_batch(std::uint32_t flow, std::uint64_t messages, std::uint32_t batch_size,
                    Fn&& fn) {
    while (messages >= batch_size) {
        fn(MsgBatch{flow, batch_size});
        messages -= batch_size;
    }
    if (messages > 0) fn(MsgBatch{flow, static_cast<std::uint32_t>(messages)});
}

}  // namespace lrgp::fastpath
