#include "fastpath/plan.hpp"

#include <algorithm>
#include <map>

#include "dataplane/cost_model.hpp"

namespace lrgp::fastpath {

CompiledPlan CompiledPlan::lower(const model::ProblemSpec& spec) {
    CompiledPlan plan;
    plan.flow_count = spec.flowCount();
    plan.link_count = spec.linkCount();
    plan.node_count = spec.nodeCount();
    plan.class_count = spec.classCount();

    plan.flow_link_begin.reserve(plan.flow_count + 1);
    plan.flow_node_begin.reserve(plan.flow_count + 1);
    plan.flow_link_begin.push_back(0);
    plan.flow_node_begin.push_back(0);
    for (std::size_t i = 0; i < plan.flow_count; ++i) {
        const model::FlowSpec& flow = spec.flows()[i];
        const model::FlowId flow_id{static_cast<std::uint32_t>(i)};
        for (const model::FlowLinkHop& hop : flow.links) {
            plan.link_slot_link.push_back(hop.link.index());
            plan.link_slot_flow.push_back(flow_id.index());
            plan.link_slot_cost.push_back(dataplane::link_message_cost(spec, hop.link, flow_id));
        }
        for (const model::FlowNodeHop& hop : flow.nodes) {
            plan.node_slot_node.push_back(hop.node.index());
            plan.node_slot_flow.push_back(flow_id.index());
            plan.node_slot_class_begin.push_back(0);  // filled below
            for (const model::ClassId j : spec.classesAtNode(hop.node)) {
                if (spec.consumerClass(j).flow == flow_id) {
                    plan.node_slot_classes.push_back(j.index());
                }
            }
            plan.node_slot_class_begin.back() =
                static_cast<std::uint32_t>(plan.node_slot_classes.size());
        }
        plan.flow_link_begin.push_back(static_cast<std::uint32_t>(plan.link_slot_link.size()));
        plan.flow_node_begin.push_back(static_cast<std::uint32_t>(plan.node_slot_node.size()));
    }
    // node_slot_class_begin was filled with per-slot *end* offsets; turn
    // it into the CSR begin array by shifting one slot right.
    plan.node_slot_class_begin.insert(plan.node_slot_class_begin.begin(), 0);

    // One group per entity, covering all its slots.  Slots accumulate
    // ascending (= flow order, route order within a flow); entities emit
    // in id order (std::map), links before nodes — all fixed at
    // lowering time, so serve order never depends on worker count.
    std::map<std::uint32_t, std::vector<std::uint32_t>> link_buckets;
    std::map<std::uint32_t, std::vector<std::uint32_t>> node_buckets;
    for (std::uint32_t s = 0; s < plan.linkSlotCount(); ++s) {
        link_buckets[plan.link_slot_link[s]].push_back(s);
    }
    for (std::uint32_t s = 0; s < plan.nodeSlotCount(); ++s) {
        node_buckets[plan.node_slot_node[s]].push_back(s);
    }
    const auto emit = [&plan](bool is_node, const auto& buckets) {
        for (const auto& [entity, slots] : buckets) {
            GateGroup group;
            group.is_node = is_node;
            group.entity = entity;
            group.slots_begin = static_cast<std::uint32_t>(plan.group_slots.size());
            plan.group_slots.insert(plan.group_slots.end(), slots.begin(), slots.end());
            group.slots_end = static_cast<std::uint32_t>(plan.group_slots.size());
            plan.groups.push_back(group);
        }
    };
    emit(false, link_buckets);
    emit(true, node_buckets);
    return plan;
}

}  // namespace lrgp::fastpath
