#include "fastpath/fastpath.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dataplane/cost_model.hpp"
#include "fastpath/batch.hpp"
#include "model/allocation.hpp"

namespace lrgp::fastpath {

namespace {
constexpr double kTimeEps = 1e-9;
}  // namespace

Fastpath::Fastpath(const model::ProblemSpec& spec, FastpathOptions options)
    : spec_(spec),
      options_(options),
      plan_(CompiledPlan::lower(spec)),
      scheduler_(spec.flowCount(), options.credit_depth, options.quantum_budget),
      pool_(options.workers),
      latency_(metrics::default_latency_bounds()) {
    if (options_.queue_capacity < 1)
        throw std::invalid_argument("Fastpath: queue_capacity must be >= 1");
    if (!(options_.propagation_delay >= 0.0))
        throw std::invalid_argument("Fastpath: propagation_delay must be >= 0");
    if (!(options_.quantum > 0.0)) throw std::invalid_argument("Fastpath: quantum must be > 0");
    if (!(options_.sample_period > 0.0))
        throw std::invalid_argument("Fastpath: sample_period must be > 0");
    if (options_.batch_size < 1) throw std::invalid_argument("Fastpath: batch_size must be >= 1");
    const double ratio = options_.sample_period / options_.quantum;
    sample_every_ = static_cast<std::uint64_t>(std::llround(ratio));
    if (sample_every_ < 1 ||
        std::abs(static_cast<double>(sample_every_) * options_.quantum -
                 options_.sample_period) > kTimeEps) {
        throw std::invalid_argument(
            "Fastpath: sample_period must be an integer multiple of quantum");
    }

    const std::size_t flows = spec_.flowCount();
    enacted_.rates.assign(flows, 0.0);
    enacted_.populations.assign(spec_.classCount(), 0);
    planned_ = enacted_;
    delivered_.assign(spec_.classCount(), 0);
    window_.assign(spec_.classCount(), 0);

    rng_.resize(flows);
    for (std::size_t i = 0; i < flows; ++i) {
        const std::uint64_t seed = options_.seed + i;
        rng_[i] = seed == 0 ? 0x9E3779B97F4A7C15ull : seed;  // as TrafficSource
    }
    next_arrival_.assign(flows, -1.0);
    offered_override_.assign(flows, -1.0);
    active_.resize(flows);
    for (std::size_t i = 0; i < flows; ++i) active_[i] = spec_.flows()[i].active ? 1 : 0;
    emitted_.assign(flows, 0);
    shaped_.assign(flows, 0);
    quantum_emitted_.assign(flows, 0);

    link_incoming_.assign(plan_.linkSlotCount(), 0);
    link_incoming_next_.assign(plan_.linkSlotCount(), 0);
    link_backlog_.assign(plan_.linkSlotCount(), 0);
    link_slot_deficit_.assign(plan_.linkSlotCount(), 0.0);
    link_slot_wait_.assign(plan_.linkSlotCount(), 0.0);
    node_incoming_.assign(plan_.nodeSlotCount(), 0);
    node_incoming_next_.assign(plan_.nodeSlotCount(), 0);
    node_backlog_.assign(plan_.nodeSlotCount(), 0);
    node_slot_cost_.assign(plan_.nodeSlotCount(), 0.0);
    node_slot_deficit_.assign(plan_.nodeSlotCount(), 0.0);
    node_slot_wait_.assign(plan_.nodeSlotCount(), 0.0);
    node_slot_delivered_.assign(plan_.nodeSlotCount(), 0);

    link_state_.resize(spec_.linkCount());
    for (std::size_t l = 0; l < spec_.linkCount(); ++l)
        link_state_[l].capacity = spec_.links()[l].capacity;
    node_state_.resize(spec_.nodeCount());
    for (std::size_t b = 0; b < spec_.nodeCount(); ++b)
        node_state_[b].capacity = spec_.nodes()[b].capacity;

    // Static latency floor per flow: every hop handoff plus the link
    // chain's unloaded service times (node service is population-
    // dependent and added at serve time).
    static_path_latency_.assign(flows, 0.0);
    for (std::size_t i = 0; i < flows; ++i) {
        const std::uint32_t chain = plan_.chainLength(i);
        double base = static_cast<double>(chain + 1) * options_.propagation_delay;
        for (std::uint32_t s = plan_.flow_link_begin[i]; s < plan_.flow_link_begin[i + 1]; ++s) {
            const double cap = link_state_[plan_.link_slot_link[s]].capacity;
            if (cap > 0.0) base += plan_.link_slot_cost[s] / cap;
        }
        static_path_latency_[i] = base;
    }
    refreshNodeCosts();

    worker_messages_.assign(static_cast<std::size_t>(pool_.threadCount()), 0);
    scratch_demand_.resize(pool_.threadCount());
    scratch_served_.resize(pool_.threadCount());
    scratch_backlog_.resize(pool_.threadCount());
}

double Fastpath::uniform(std::size_t flow) {
    std::uint64_t& state = rng_[flow];
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return (static_cast<double>(state >> 11) + 1.0) * 0x1.0p-53;  // (0, 1]
}

double Fastpath::offeredRate(std::size_t flow) const {
    return offered_override_[flow] >= 0.0 ? offered_override_[flow] : scheduler_.rate(flow);
}

void Fastpath::rescheduleArrival(std::size_t flow) {
    const double rate = offeredRate(flow);
    if (!active_[flow] || !(rate > 0.0)) {
        next_arrival_[flow] = -1.0;
        return;
    }
    const double gap = options_.arrivals == dataplane::ArrivalProcess::kDeterministic
                           ? 1.0 / rate
                           : -std::log(uniform(flow)) / rate;
    next_arrival_[flow] = now() + gap;
}

void Fastpath::refreshNodeCosts() {
    for (std::size_t i = 0; i < plan_.flow_count; ++i) {
        const model::FlowId flow{static_cast<std::uint32_t>(i)};
        for (std::uint32_t s = plan_.flow_node_begin[i]; s < plan_.flow_node_begin[i + 1]; ++s) {
            node_slot_cost_[s] = dataplane::node_message_cost(
                spec_, model::NodeId{plan_.node_slot_node[s]}, flow, enacted_.populations);
        }
    }
}

void Fastpath::enact(const model::Allocation& allocation) {
    if (allocation.rates.size() != spec_.flowCount() ||
        allocation.populations.size() != spec_.classCount()) {
        throw std::invalid_argument("Fastpath::enact: allocation does not match problem");
    }
    for (std::size_t i = 0; i < allocation.rates.size(); ++i) {
        if (allocation.rates[i] == scheduler_.rate(i)) continue;  // keep emission phase
        scheduler_.setRate(i, allocation.rates[i]);
        if (offered_override_[i] < 0.0) rescheduleArrival(i);
    }
    enacted_ = allocation;
    ++enactments_;
    refreshNodeCosts();
    if constexpr (obs::kEnabled) {
        if (obs_attached_) obs_.enactments->add();
    }
}

void Fastpath::notePlanned(const model::Allocation& allocation) {
    if (allocation.rates.size() != spec_.flowCount() ||
        allocation.populations.size() != spec_.classCount()) {
        throw std::invalid_argument("Fastpath::notePlanned: allocation does not match problem");
    }
    planned_ = allocation;
    planned_noted_ = true;
}

void Fastpath::setFlowActive(model::FlowId flow, bool active) {
    const std::size_t i = flow.index();
    if (active_.at(i) == static_cast<std::uint8_t>(active ? 1 : 0)) return;
    active_[i] = active ? 1 : 0;
    rescheduleArrival(i);
}

void Fastpath::setOfferedRate(model::FlowId flow, double rate) {
    const std::size_t i = flow.index();
    offered_override_.at(i) = rate < 0.0 ? -1.0 : rate;
    rescheduleArrival(i);
}

void Fastpath::setNodeCapacity(model::NodeId node, double capacity) {
    node_state_.at(node.index()).capacity = capacity;
}

void Fastpath::runUntil(sim::SimTime until) {
    while (static_cast<double>(quanta_ + 1) * options_.quantum <= until + kTimeEps) {
        stepQuantum();
    }
}

void Fastpath::stepQuantum() {
    const double t_begin = static_cast<double>(quanta_) * options_.quantum;
    const double t_end = static_cast<double>(quanta_ + 1) * options_.quantum;
    scheduler_.beginQuantum();
    sourcePhase(t_begin, t_end);
    gatePhase();
    // Store-and-forward: what the gates forwarded this quantum becomes
    // next quantum's incoming (the drained front buffers are all zero).
    std::swap(link_incoming_, link_incoming_next_);
    std::swap(node_incoming_, node_incoming_next_);
    ++quanta_;
    mergePhase();
    if (quanta_ % sample_every_ == 0) takeSample();
}

void Fastpath::sourcePhase(double /*t_begin*/, double t_end) {
    pool_.parallelFor(plan_.flow_count, [this, t_end](std::size_t begin, std::size_t end,
                                                      int worker) {
        std::uint64_t handled = 0;
        for (std::size_t i = begin; i < end; ++i) {
            scheduler_.refill(i, options_.quantum);
            quantum_emitted_[i] = 0;
            if (next_arrival_[i] < 0.0) continue;
            const bool deterministic =
                options_.arrivals == dataplane::ArrivalProcess::kDeterministic;
            std::uint64_t passed = 0;
            while (next_arrival_[i] >= 0.0 && next_arrival_[i] < t_end) {
                if (scheduler_.tryAdmit(i)) {
                    ++passed;
                } else {
                    ++shaped_[i];
                }
                const double rate = offeredRate(i);
                if (!(rate > 0.0)) {
                    next_arrival_[i] = -1.0;
                    break;
                }
                next_arrival_[i] += deterministic ? 1.0 / rate : -std::log(uniform(i)) / rate;
            }
            if (passed == 0) continue;
            emitted_[i] += passed;
            quantum_emitted_[i] = passed;
            handled += passed;
            // Into the first gate: head of the link chain, or straight
            // to the node fan-out for chainless flows.
            if (plan_.chainLength(i) > 0) {
                link_incoming_[plan_.flow_link_begin[i]] += passed;
            } else {
                for (std::uint32_t t = plan_.flow_node_begin[i]; t < plan_.flow_node_begin[i + 1];
                     ++t) {
                    node_incoming_[t] += passed;
                }
            }
        }
        worker_messages_[static_cast<std::size_t>(worker)] += handled;
    });
}

void Fastpath::gatePhase() {
    const std::vector<GateGroup>& groups = plan_.groups;
    pool_.parallelFor(groups.size(),
                      [this, &groups](std::size_t begin, std::size_t end, int worker) {
                          for (std::size_t g = begin; g < end; ++g) {
                              serveGroup(groups[g], worker);
                          }
                      });
}

void Fastpath::serveGroup(const GateGroup& group, int worker) {
    EntityState& ent = group.is_node ? node_state_[group.entity] : link_state_[group.entity];
    const std::size_t n = group.slots_end - group.slots_begin;
    auto& demand = scratch_demand_[static_cast<std::size_t>(worker)];
    auto& served = scratch_served_[static_cast<std::size_t>(worker)];
    auto& backlog_before = scratch_backlog_[static_cast<std::size_t>(worker)];
    demand.assign(n, 0);
    served.assign(n, 0);
    backlog_before.assign(n, 0);

    std::vector<std::uint64_t>& incoming = group.is_node ? node_incoming_ : link_incoming_;
    std::vector<std::uint64_t>& backlog = group.is_node ? node_backlog_ : link_backlog_;

    // Gather: drain this quantum's arrivals plus the standing backlog
    // into per-slot demand, in fixed slot (flow) order.
    double total_cost = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t slot = plan_.group_slots[group.slots_begin + k];
        const std::uint64_t in = incoming[slot];
        incoming[slot] = 0;
        ent.arrivals += in;
        backlog_before[k] = backlog[slot];
        ent.queue_depth -= backlog[slot];  // re-added (capped) below
        backlog[slot] = 0;
        demand[k] = backlog_before[k] + in;
        const double cost =
            group.is_node ? node_slot_cost_[slot] : plan_.link_slot_cost[slot];
        if (cost > 0.0) total_cost += static_cast<double>(demand[k]) * cost;
    }

    // Spend the per-quantum budget (capacity * quantum plus the carry
    // from backlogged quanta): serve everything when it fits, otherwise
    // demand-proportional shares — each slot's fractional ideal share
    // accrues in a per-slot deficit counter until it buys a whole
    // message, so over time every flow gets its arrival-proportional
    // share (the event dataplane's FIFO behaviour) regardless of slot
    // order.  The sub-message overdraft this allows is repaid through
    // the (then negative) budget carry.  Integer messages throughout.
    std::vector<double>& deficit = group.is_node ? node_slot_deficit_ : link_slot_deficit_;
    double budget = ent.budget_carry + ent.capacity * options_.quantum;
    if (total_cost <= budget) {
        for (std::size_t k = 0; k < n; ++k) {
            served[k] = demand[k];
            deficit[plan_.group_slots[group.slots_begin + k]] = 0.0;
        }
        budget -= total_cost;
    } else {
        const double frac = budget > 0.0 ? budget / total_cost : 0.0;
        for (std::size_t k = 0; k < n; ++k) {
            const std::uint32_t slot = plan_.group_slots[group.slots_begin + k];
            const double cost =
                group.is_node ? node_slot_cost_[slot] : plan_.link_slot_cost[slot];
            if (cost <= 0.0) {
                served[k] = demand[k];  // free messages never contend
                continue;
            }
            const double ideal = static_cast<double>(demand[k]) * frac + deficit[slot];
            auto grant = static_cast<std::uint64_t>(ideal);  // floor, ideal >= 0
            if (grant > demand[k]) grant = demand[k];
            deficit[slot] = std::min(ideal - static_cast<double>(grant), 1.0);
            served[k] = grant;
            budget -= static_cast<double>(grant) * cost;
        }
    }

    // Scatter: forward served cohorts, queue what fits, drop the rest.
    double served_cost = 0.0;
    std::uint64_t handled = 0;
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t slot = plan_.group_slots[group.slots_begin + k];
        const double cost = group.is_node ? node_slot_cost_[slot] : plan_.link_slot_cost[slot];
        const std::uint64_t out = served[k];
        ent.served += out;
        handled += out;
        served_cost += static_cast<double>(out) * cost;
        const double queue_wait =
            ent.capacity > 0.0
                ? static_cast<double>(backlog_before[k]) * cost / ent.capacity
                : 0.0;
        if (group.is_node) {
            std::uint32_t active_classes = 0;
            for (std::uint32_t c = plan_.node_slot_class_begin[slot];
                 c < plan_.node_slot_class_begin[slot + 1]; ++c) {
                const std::uint32_t j = plan_.node_slot_classes[c];
                if (enacted_.populations[j] <= 0) continue;
                ++active_classes;
                if (out > 0) {
                    delivered_[j] += out;
                    window_[j] += out;
                }
            }
            node_slot_delivered_[slot] = out * active_classes;
            node_slot_wait_[slot] =
                queue_wait + (ent.capacity > 0.0 ? cost / ent.capacity : 0.0);
        } else {
            const std::uint32_t flow = plan_.link_slot_flow[slot];
            link_slot_wait_[slot] = queue_wait;
            if (out > 0) {
                if (slot + 1 < plan_.flow_link_begin[flow + 1]) {
                    link_incoming_next_[slot + 1] += out;  // next hop, same chain
                } else {
                    for (std::uint32_t t = plan_.flow_node_begin[flow];
                         t < plan_.flow_node_begin[flow + 1]; ++t) {
                        node_incoming_next_[t] += out;  // fan-out: one copy per node
                    }
                }
            }
        }
    }

    // Queue what fits, drop the rest.  The entity's queue_capacity is
    // shared across its slots; under overload the room is split
    // proportionally to each slot's unserved count (floor + rotating
    // remainder), emulating the event dataplane's FIFO admission —
    // arrival-order interleaving admits each flow in proportion to its
    // arrivals, never in slot order.
    std::uint64_t total_unserved = 0;
    for (std::size_t k = 0; k < n; ++k) total_unserved += demand[k] - served[k];
    ent.queue_depth = 0;
    if (total_unserved <= options_.queue_capacity) {
        for (std::size_t k = 0; k < n; ++k) {
            backlog[plan_.group_slots[group.slots_begin + k]] = demand[k] - served[k];
        }
        ent.queue_depth = total_unserved;
    } else {
        const double ratio = static_cast<double>(options_.queue_capacity) /
                             static_cast<double>(total_unserved);
        std::uint64_t kept_total = 0;
        for (std::size_t k = 0; k < n; ++k) {
            const std::uint64_t unserved = demand[k] - served[k];
            const auto kept =
                static_cast<std::uint64_t>(static_cast<double>(unserved) * ratio);
            backlog[plan_.group_slots[group.slots_begin + k]] = kept;
            kept_total += kept;
        }
        // Rotate the start of the remainder hand-out with the quantum
        // counter so no slot is structurally favoured; still a pure
        // function of (quantum, slot order) — worker-independent.
        std::uint64_t leftover = options_.queue_capacity - kept_total;
        while (leftover > 0) {
            bool granted = false;
            for (std::size_t off = 0; off < n && leftover > 0; ++off) {
                const std::size_t k = (static_cast<std::size_t>(quanta_) + off) % n;
                const std::uint32_t slot = plan_.group_slots[group.slots_begin + k];
                if (backlog[slot] < demand[k] - served[k]) {
                    ++backlog[slot];
                    --leftover;
                    granted = true;
                }
            }
            if (!granted) break;  // unreachable: headroom exceeds leftover
        }
        ent.queue_depth = options_.queue_capacity - leftover;
    }
    for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t slot = plan_.group_slots[group.slots_begin + k];
        ent.dropped += demand[k] - served[k] - backlog[slot];
    }
    if (ent.capacity > 0.0) ent.busy_seconds += served_cost / ent.capacity;
    // Work conservation: an idle server does not bank capacity, a
    // backlogged one keeps its sub-message remainder for next quantum.
    // Debt (the deficit scheme's sub-message overdraft) is always
    // carried — forgiving it on a momentarily drained queue would let
    // the entity serve above capacity indefinitely.
    ent.budget_carry = (ent.queue_depth > 0 || budget < 0.0) ? budget : 0.0;
    ent.peak_queue = std::max(ent.peak_queue, ent.queue_depth);
    worker_messages_[static_cast<std::size_t>(worker)] += handled;
}

void Fastpath::mergePhase() {
    // Serial, fixed order: every floating-point/histogram side effect
    // that would otherwise depend on worker interleaving lands here.
    for (std::size_t i = 0; i < plan_.flow_count; ++i) {
        const std::uint64_t q = quantum_emitted_[i];
        if (q == 0) continue;
        batches_ += batch_count(q, options_.batch_size);
        if constexpr (obs::kEnabled) {
            if (obs_attached_) {
                const std::uint64_t full = q / options_.batch_size;
                const std::uint64_t rem = q % options_.batch_size;
                if (full > 0)
                    obs_.batch_fill->observe(static_cast<double>(options_.batch_size), full);
                if (rem > 0) obs_.batch_fill->observe(static_cast<double>(rem));
            }
        }
    }
    for (std::size_t s = 0; s < node_slot_delivered_.size(); ++s) {
        const std::uint64_t copies = node_slot_delivered_[s];
        if (copies == 0) continue;
        // Cohort delivery latency estimate: the static path floor plus
        // this quantum's queue-delay estimates along the flow's chain
        // and at the delivering node.  Serial, fixed slot order.
        const std::uint32_t flow = plan_.node_slot_flow[s];
        double estimate = static_path_latency_[flow] + node_slot_wait_[s];
        for (std::uint32_t ls = plan_.flow_link_begin[flow];
             ls < plan_.flow_link_begin[flow + 1]; ++ls) {
            estimate += link_slot_wait_[ls];
        }
        latency_.observe(estimate, copies);
        if constexpr (obs::kEnabled) {
            if (obs_attached_) obs_.latency->observe(estimate, copies);
        }
        node_slot_delivered_[s] = 0;
    }
}

void Fastpath::takeSample() {
    double achieved = 0.0;
    for (std::size_t j = 0; j < window_.size(); ++j) {
        const int population = enacted_.populations[j];
        if (population <= 0) continue;
        const double rate = static_cast<double>(window_[j]) / options_.sample_period;
        achieved += static_cast<double>(population) * spec_.classes()[j].utility->value(rate);
    }
    const model::Allocation& plan = planned_noted_ ? planned_ : enacted_;
    const double planned = model::total_utility(spec_, plan);
    achieved_trace_.append(achieved);
    planned_trace_.append(planned);
    std::fill(window_.begin(), window_.end(), std::uint64_t{0});
    if constexpr (obs::kEnabled) {
        if (obs_attached_) {
            obs_.achieved_utility->set(achieved);
            obs_.planned_utility->set(planned);
            const auto report = [](obs::Counter* counter, std::uint64_t total,
                                   std::uint64_t& reported) {
                if (total > reported) {
                    counter->add(total - reported);
                    reported = total;
                }
            };
            std::uint64_t emitted = 0, shaped = 0;
            for (std::size_t i = 0; i < emitted_.size(); ++i) {
                emitted += emitted_[i];
                shaped += shaped_[i];
            }
            std::uint64_t delivered = 0;
            for (const std::uint64_t d : delivered_) delivered += d;
            std::uint64_t dropped_link = 0, dropped_node = 0;
            for (const EntityState& e : link_state_) dropped_link += e.dropped;
            for (const EntityState& e : node_state_) dropped_node += e.dropped;
            report(obs_.emitted, emitted, obs_emitted_reported_);
            report(obs_.shaped, shaped, obs_shaped_reported_);
            report(obs_.delivered, delivered, obs_delivered_reported_);
            report(obs_.dropped_link, dropped_link, obs_dropped_link_reported_);
            report(obs_.dropped_node, dropped_node, obs_dropped_node_reported_);
            report(obs_.batches, batches_, obs_batches_reported_);
            report(obs_.quanta, quanta_, obs_quanta_reported_);
        }
    }
}

dataplane::DataplaneStats Fastpath::collectStats() const {
    dataplane::DataplaneStats stats;
    stats.elapsed = now();
    stats.events_scheduled = quanta_;  // the calendar analog: steps taken
    stats.enactments = enactments_;

    const double elapsed = stats.elapsed > 0.0 ? stats.elapsed : 1.0;

    for (std::size_t i = 0; i < plan_.flow_count; ++i) {
        dataplane::FlowStats f;
        f.name = spec_.flows()[i].name;
        f.active = active_[i] != 0;
        f.enacted_rate = scheduler_.rate(i);
        f.offered_rate = offeredRate(i);
        f.emitted = emitted_[i];
        f.shaped = shaped_[i];
        stats.total_emitted += f.emitted;
        stats.total_shaped += f.shaped;
        stats.flows.push_back(std::move(f));
    }
    for (std::size_t j = 0; j < spec_.classCount(); ++j) {
        dataplane::ClassStats c;
        c.name = spec_.classes()[j].name;
        c.population = enacted_.populations[j];
        c.delivered = delivered_[j];
        c.achieved_rate = static_cast<double>(delivered_[j]) / elapsed;
        stats.total_delivered += c.delivered;
        stats.classes.push_back(std::move(c));
    }

    std::uint64_t total_arrivals = 0;
    std::uint64_t total_dropped = 0;
    const auto entity = [&](const EntityState& state, std::string name) {
        dataplane::EntityStats e;
        e.name = std::move(name);
        e.capacity = state.capacity;
        e.arrivals = state.arrivals;
        e.served = state.served;
        e.dropped = state.dropped;
        e.queue_depth = state.queue_depth;
        e.peak_queue = state.peak_queue;
        e.utilization = state.busy_seconds / elapsed;
        total_arrivals += e.arrivals;
        total_dropped += e.dropped;
        return e;
    };
    for (std::size_t l = 0; l < link_state_.size(); ++l) {
        stats.links.push_back(entity(link_state_[l], spec_.links()[l].name));
        stats.dropped_link += link_state_[l].dropped;
    }
    for (std::size_t b = 0; b < node_state_.size(); ++b) {
        stats.nodes.push_back(entity(node_state_[b], spec_.nodes()[b].name));
        stats.dropped_node += node_state_[b].dropped;
    }
    stats.drop_rate = total_arrivals > 0 ? static_cast<double>(total_dropped) /
                                               static_cast<double>(total_arrivals)
                                         : 0.0;

    stats.latency.count = latency_.count();
    stats.latency.mean = latency_.mean();
    stats.latency.p50 = latency_.quantile(0.50);
    stats.latency.p90 = latency_.quantile(0.90);
    stats.latency.p99 = latency_.quantile(0.99);
    stats.latency.max = latency_.maxObserved();

    stats.utility.planned = model::total_utility(spec_, planned_noted_ ? planned_ : enacted_);
    stats.utility.enacted = model::total_utility(spec_, enacted_);
    stats.utility.achieved_window = achieved_trace_.empty() ? 0.0 : achieved_trace_.back();
    double cumulative = 0.0;
    for (std::size_t j = 0; j < spec_.classCount(); ++j) {
        const int population = enacted_.populations[j];
        if (population <= 0) continue;
        const double rate = static_cast<double>(delivered_[j]) / elapsed;
        cumulative += static_cast<double>(population) * spec_.classes()[j].utility->value(rate);
    }
    stats.utility.achieved_cumulative = cumulative;
    return stats;
}

std::string Fastpath::statsJson(bool pretty) const {
    return dataplane::stats_to_json(collectStats()).dump(pretty);
}

void Fastpath::attachObservability(obs::Registry* registry) {
    (void)registry;  // unused when compiled without LRGP_OBS
    if constexpr (obs::kEnabled) {
        if (registry != nullptr) {
            obs_ = obs::FastpathInstruments::resolve(*registry);
            obs_attached_ = true;
            obs_.workers->set(static_cast<double>(pool_.threadCount()));
            return;
        }
    }
    obs_ = obs::FastpathInstruments{};
    obs_attached_ = false;
}

}  // namespace lrgp::fastpath
