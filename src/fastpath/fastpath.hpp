// Batched run-to-completion dataplane (ROADMAP item 1, BESS-style).
//
// Where dataplane::Dataplane pushes every message through a discrete-
// event calendar (one heap event per hop), the fastpath advances time
// in fixed quanta and moves whole message *cohorts* through the
// compiled gate graph of plan.hpp:
//
//   source phase   one worker per flow partition: the arrival process
//                  (same per-flow xorshift64 streams and gap formulas
//                  as TrafficSource) generates this quantum's arrivals,
//                  the TrafficScheduler polices them at the enacted
//                  rate, and survivors enter the flow's first gate as
//                  batches of <= batch_size;
//   gate phase     one parallelFor over all GateGroups (one group per
//                  link/node): every entity spends its per-quantum
//                  budget (capacity * quantum, carrying the unspent
//                  remainder while backlogged) across all its slots —
//                  proportional to demanded cost with largest-remainder
//                  rounding, matching the event dataplane's FIFO share
//                  — charging the shared cost model
//                  (dataplane/cost_model.hpp) per message; unserved
//                  messages queue up to queue_capacity per entity, the
//                  rest drop.  Store-and-forward: served cohorts land
//                  in the *next* quantum's double-buffered incoming
//                  queues (next link hop, or the node fan-out); served
//                  node cohorts deliver one copy per admitted class;
//   merge phase    serial, fixed order: per-cohort latency estimates
//                  into the histogram, batch accounting, sampler.
//
// Determinism across worker counts: RNG, credits and queues are
// flow/slot-indexed (never worker-indexed), each slot and entity has
// exactly one writer per phase (see plan.hpp), every floating-point
// reduction and histogram insert happens either under single ownership
// in a fixed slot order or serially in the merge phase, and worker
// accumulators hold only u64 message counts (associative).  Same seed
// => byte-identical statsJson for any `workers`; the fastpath test
// suite and the CI cmp check pin this.
//
// The event-driven dataplane remains the oracle: both engines charge
// identical per-message costs, so achieved utility and drop rates must
// agree within tolerance (the differential suite).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataplane/stats.hpp"
#include "dataplane/traffic_source.hpp"
#include "fastpath/batch.hpp"
#include "fastpath/plan.hpp"
#include "fastpath/scheduler.hpp"
#include "lrgp/task_pool.hpp"
#include "metrics/histogram.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "model/problem.hpp"
#include "obs/instruments.hpp"
#include "sim/simulator.hpp"

namespace lrgp::fastpath {

struct FastpathOptions {
    std::uint64_t seed = 1;  ///< base seed; flow i draws from seed + i
    dataplane::ArrivalProcess arrivals = dataplane::ArrivalProcess::kDeterministic;
    double credit_depth = 8.0;        ///< scheduler burst allowance (messages)
    std::size_t queue_capacity = 64;  ///< queued messages per entity
    double propagation_delay = 1e-4;  ///< per hop (latency model only)
    double sample_period = 0.5;       ///< achieved-utility sampling (seconds)
    double quantum = 0.05;            ///< simulated seconds per step
    std::uint32_t batch_size = kDefaultBatchSize;
    int workers = 1;                  ///< TaskPool threads; 0 = hardware concurrency
    double quantum_budget = 0.0;      ///< weighted-scheduler global cap; 0 = off
};

/// The batched traffic engine.  API mirrors dataplane::Dataplane so
/// callers (CLI, scenario harnesses, benches) can swap plants.
class Fastpath {
public:
    /// `spec` must outlive the Fastpath.  Sources start at rate zero —
    /// nothing moves until the first enact().  Throws
    /// std::invalid_argument on bad options (sample_period must be an
    /// integer multiple of quantum).
    explicit Fastpath(const model::ProblemSpec& spec, FastpathOptions options = {});

    Fastpath(const Fastpath&) = delete;
    Fastpath& operator=(const Fastpath&) = delete;

    void enact(const model::Allocation& allocation);
    void notePlanned(const model::Allocation& allocation);
    void setFlowActive(model::FlowId flow, bool active);
    void setOfferedRate(model::FlowId flow, double rate);
    void setNodeCapacity(model::NodeId node, double capacity);

    /// Advances in whole quanta while now() + quantum <= until (+eps);
    /// a trailing partial quantum is left for the next call.
    void runUntil(sim::SimTime until);

    [[nodiscard]] sim::SimTime now() const noexcept {
        return static_cast<double>(quanta_) * options_.quantum;
    }
    [[nodiscard]] double samplePeriod() const noexcept { return options_.sample_period; }
    [[nodiscard]] std::size_t enactments() const noexcept { return enactments_; }
    [[nodiscard]] const model::Allocation& enacted() const noexcept { return enacted_; }
    [[nodiscard]] const CompiledPlan& plan() const noexcept { return plan_; }
    [[nodiscard]] const TrafficScheduler& scheduler() const noexcept { return scheduler_; }

    [[nodiscard]] const metrics::TimeSeries& achievedUtilityTrace() const noexcept {
        return achieved_trace_;
    }
    [[nodiscard]] const metrics::TimeSeries& plannedUtilityTrace() const noexcept {
        return planned_trace_;
    }

    [[nodiscard]] std::uint64_t quantaProcessed() const noexcept { return quanta_; }
    [[nodiscard]] std::uint64_t batchesProcessed() const noexcept { return batches_; }
    [[nodiscard]] int workerCount() const noexcept { return pool_.threadCount(); }
    /// Messages handled per worker (emission + gate servings), for the
    /// CLI's throughput summary.  Deliberately NOT part of statsJson:
    /// the split depends on the partition, the totals do not.
    [[nodiscard]] const std::vector<std::uint64_t>& workerMessages() const noexcept {
        return worker_messages_;
    }

    /// Wires lrgp_fastpath_* instruments (nullptr detaches).  Purely
    /// observational: traffic is bitwise identical either way.
    void attachObservability(obs::Registry* registry);

    /// Same snapshot type as the event dataplane; events_scheduled
    /// holds the quantum count (the calendar analog).
    [[nodiscard]] dataplane::DataplaneStats collectStats() const;
    [[nodiscard]] std::string statsJson(bool pretty = true) const;

private:
    struct EntityState {
        double capacity = 0.0;
        double budget_carry = 0.0;      ///< unspent budget while backlogged
        std::uint64_t queue_depth = 0;  ///< queued messages across slots
        std::uint64_t peak_queue = 0;
        std::uint64_t arrivals = 0;
        std::uint64_t served = 0;
        std::uint64_t dropped = 0;
        double busy_seconds = 0.0;
    };

    void stepQuantum();
    void sourcePhase(double t_begin, double t_end);
    void gatePhase();
    void serveGroup(const GateGroup& group, int worker);
    void mergePhase();
    void takeSample();
    void rescheduleArrival(std::size_t flow);
    [[nodiscard]] double offeredRate(std::size_t flow) const;
    [[nodiscard]] double uniform(std::size_t flow);
    void refreshNodeCosts();

    const model::ProblemSpec& spec_;
    FastpathOptions options_;
    CompiledPlan plan_;
    TrafficScheduler scheduler_;
    core::TaskPool pool_;
    std::uint64_t sample_every_;  ///< quanta per sampler window

    // -- flow-indexed source state (owner: the flow's worker) --------
    std::vector<std::uint64_t> rng_;           ///< xorshift64, seed + flow
    std::vector<double> next_arrival_;         ///< absolute; <0 = idle
    std::vector<double> offered_override_;     ///< <0 follows enacted
    std::vector<std::uint8_t> active_;
    std::vector<std::uint64_t> emitted_;       ///< cumulative, past the policer
    std::vector<std::uint64_t> shaped_;
    std::vector<std::uint64_t> quantum_emitted_;  ///< this quantum, for batching
    std::vector<double> static_path_latency_;  ///< propagation + link service

    // -- slot-indexed gate state (owner: the slot's group; incoming_
    //    is double-buffered — gates drain the front buffer and forward
    //    into the back one, swapped after each gate phase) ------------
    std::vector<std::uint64_t> link_incoming_, link_incoming_next_, link_backlog_;
    std::vector<std::uint64_t> node_incoming_, node_incoming_next_, node_backlog_;
    std::vector<double> node_slot_cost_;  ///< depends on populations
    /// Fractional-service carry per slot (deficit round-robin): under
    /// contention a slot's ideal share is rarely a whole message per
    /// quantum, so the remainder accrues until it buys one — service
    /// stays demand-proportional over time instead of slot-ordered.
    std::vector<double> link_slot_deficit_, node_slot_deficit_;
    std::vector<double> link_slot_wait_;  ///< queue delay estimate, this quantum
    std::vector<double> node_slot_wait_;  ///< queue + service estimate, this quantum
    std::vector<std::uint64_t> node_slot_delivered_;  ///< copies, this quantum

    std::vector<EntityState> link_state_, node_state_;

    model::Allocation enacted_;
    model::Allocation planned_;
    std::size_t enactments_ = 0;
    bool planned_noted_ = false;

    std::vector<std::uint64_t> delivered_;  ///< cumulative, by class
    std::vector<std::uint64_t> window_;     ///< this sampler window
    metrics::BucketHistogram latency_;
    std::uint64_t quanta_ = 0;
    std::uint64_t batches_ = 0;
    std::vector<std::uint64_t> worker_messages_;
    // Per-worker scratch for serveGroup (sized at construction; a group
    // is served by exactly one worker, so no sharing).
    std::vector<std::vector<std::uint64_t>> scratch_demand_;
    std::vector<std::vector<std::uint64_t>> scratch_served_;
    std::vector<std::vector<std::uint64_t>> scratch_backlog_;

    metrics::TimeSeries achieved_trace_;
    metrics::TimeSeries planned_trace_;

    obs::FastpathInstruments obs_;
    bool obs_attached_ = false;
    std::uint64_t obs_shaped_reported_ = 0;
    std::uint64_t obs_emitted_reported_ = 0;
    std::uint64_t obs_delivered_reported_ = 0;
    std::uint64_t obs_dropped_link_reported_ = 0;
    std::uint64_t obs_dropped_node_reported_ = 0;
    std::uint64_t obs_batches_reported_ = 0;
    std::uint64_t obs_quanta_reported_ = 0;
};

}  // namespace lrgp::fastpath
