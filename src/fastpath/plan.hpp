// Route lowering for the batched fastpath: a ProblemSpec's flow routes
// compiled into a flat gate graph, BESS-style.
//
// Every (flow, link-hop) pair becomes a *link slot* and every
// (flow, node-hop) pair a *node slot* — the per-flow lanes through a
// shared entity's gate.  Slots are grouped per entity into GateGroups:
// one group per link and per node, covering all of that entity's slots.
// The engine is store-and-forward — a gate's served cohorts land in the
// *next* quantum's incoming queues — so all groups are served in a
// single parallelFor per quantum and still touch disjoint state:
//
//   * an entity has exactly one group, so its per-quantum budget,
//     queue and counter state has exactly one writer — the capacity
//     constraint is spent once per quantum, proportionally across all
//     the entity's slots (matching the event dataplane's FIFO share);
//   * every slot has exactly one upstream gate (or the source phase),
//     so the double-buffered incoming queues have one writer per slot
//     per phase.
//
// That makes the quantum a single parallelFor over groups with plain
// (non-atomic) state everywhere — the structural core of the fastpath's
// determinism argument (docs/fastpath.md).
//
// All ordering is fixed at lowering time (links before nodes, entities
// by id, slots by flow id), so the serve order — and with it every
// floating-point accumulation — is independent of worker count.
#pragma once

#include <cstdint>
#include <vector>

#include "model/problem.hpp"

namespace lrgp::fastpath {

/// One entity's gate: a contiguous run of slot ids in
/// CompiledPlan::group_slots, served by a single worker per quantum.
struct GateGroup {
    bool is_node = false;       ///< false: `entity` is a LinkId, true: a NodeId
    std::uint32_t entity = 0;   ///< link or node index
    std::uint32_t slots_begin = 0;  ///< into CompiledPlan::group_slots
    std::uint32_t slots_end = 0;
};

/// The compiled gate graph.  Pure data, CSR layout throughout; built
/// once per (problem) and shared read-only by every worker.
struct CompiledPlan {
    std::size_t flow_count = 0;
    std::size_t link_count = 0;
    std::size_t node_count = 0;
    std::size_t class_count = 0;

    // -- link slots: flow i's hops are [flow_link_begin[i],
    //    flow_link_begin[i+1]) in route order -------------------------
    std::vector<std::uint32_t> flow_link_begin;  ///< flow_count + 1
    std::vector<std::uint32_t> link_slot_link;   ///< LinkId per link slot
    std::vector<std::uint32_t> link_slot_flow;   ///< owning FlowId per link slot
    std::vector<double> link_slot_cost;          ///< L_{l,i}, static

    // -- node slots: flow i's fan-out targets are [flow_node_begin[i],
    //    flow_node_begin[i+1]) ---------------------------------------
    std::vector<std::uint32_t> flow_node_begin;  ///< flow_count + 1
    std::vector<std::uint32_t> node_slot_node;   ///< NodeId per node slot
    std::vector<std::uint32_t> node_slot_flow;   ///< owning FlowId per node slot
    /// Consumer classes of the slot's flow attached at the slot's node:
    /// [node_slot_class_begin[s], node_slot_class_begin[s+1]) indexes
    /// node_slot_classes (ClassId values).
    std::vector<std::uint32_t> node_slot_class_begin;  ///< node slots + 1
    std::vector<std::uint32_t> node_slot_classes;

    // -- gate schedule: one group per entity with slots ---------------
    std::vector<GateGroup> groups;           ///< links (by id), then nodes (by id)
    std::vector<std::uint32_t> group_slots;  ///< slot ids, ascending per group

    [[nodiscard]] std::size_t linkSlotCount() const noexcept { return link_slot_link.size(); }
    [[nodiscard]] std::size_t nodeSlotCount() const noexcept { return node_slot_node.size(); }
    [[nodiscard]] std::uint32_t chainLength(std::size_t flow) const {
        return flow_link_begin[flow + 1] - flow_link_begin[flow];
    }

    /// Lowers `spec`'s routes into the gate graph.  Deterministic: a
    /// byte-identical plan for equal specs.
    [[nodiscard]] static CompiledPlan lower(const model::ProblemSpec& spec);
};

}  // namespace lrgp::fastpath
