// Weighted traffic-class scheduler for the fastpath: enforces the
// EnactmentController's per-flow rate limits at batch granularity.
//
// Each flow owns a credit bucket refilled once per quantum at the
// enacted rate (the batched counterpart of the event dataplane's
// continuously-refilled TokenBucket: the depth caps only the *carried*
// credits — the quantum's own rate*dt accrual is always spendable, so
// sustained throughput is never clamped below the enacted rate — and
// the same >= 1 - 1e-9 admission slack means deterministic arrivals at
// exactly the enacted rate pass untouched).  Optionally a global per-quantum message budget
// is split across flows in proportion to their enacted rates
// (largest-remainder rounding in flow order — deterministic), turning
// the policer into a weighted fair scheduler when the caller wants to
// cap aggregate emission.
//
// All state is flow-indexed, so refill/admit can run from whichever
// worker owns the flow's partition without the result depending on the
// partitioning.
#pragma once

#include <cstdint>
#include <vector>

namespace lrgp::fastpath {

class TrafficScheduler {
public:
    /// `credit_depth` is the per-flow burst allowance in messages
    /// (>= 1); `quantum_budget` > 0 caps total admissions per quantum
    /// across all flows, 0 disables the cap.  Throws
    /// std::invalid_argument on bad arguments.
    TrafficScheduler(std::size_t flows, double credit_depth, double quantum_budget = 0.0);

    /// Sets flow `i`'s enacted rate (credits/second).  No-op when
    /// unchanged, mirroring TrafficSource::setEnactedRate.
    void setRate(std::size_t i, double rate);

    /// Serial, once per quantum: recomputes the weighted per-flow
    /// quotas when a global budget is configured.
    void beginQuantum();

    /// Parallel-safe per flow: refills flow i's credits for a quantum
    /// of `dt` seconds (called exactly once per flow per quantum, by
    /// the worker that owns the flow).
    void refill(std::size_t i, double dt);

    /// Admits one message of flow i if a credit (and, when budgeted, a
    /// quota share) is available.  Returns false when the message must
    /// be shaped.
    [[nodiscard]] bool tryAdmit(std::size_t i);

    [[nodiscard]] double rate(std::size_t i) const { return rates_[i]; }
    [[nodiscard]] double credits(std::size_t i) const { return credits_[i]; }
    [[nodiscard]] std::uint64_t quota(std::size_t i) const { return quotas_[i]; }
    [[nodiscard]] bool budgeted() const noexcept { return quantum_budget_ > 0.0; }

private:
    double credit_depth_;
    double quantum_budget_;
    std::vector<double> rates_;
    std::vector<double> credits_;
    std::vector<std::uint64_t> quotas_;  ///< remaining this quantum (budgeted mode)
};

}  // namespace lrgp::fastpath
