// A minimal discrete-event simulation engine.
//
// The distributed LRGP protocol (src/dist) runs on top of this engine:
// agent messages become scheduled events with configurable network
// latency, which lets us measure convergence in round-trip times and run
// the asynchronous variant discussed in Section 3.5 of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

namespace lrgp::sim {

using SimTime = double;  ///< seconds of simulated time

/// A single-threaded event calendar.  Events scheduled for the same time
/// fire in scheduling order (a monotonic sequence number breaks ties), so
/// runs are fully deterministic.
class Simulator {
public:
    using Handler = std::function<void()>;

    /// Schedules `fn` to run `delay` seconds after the current time.
    /// Throws std::invalid_argument for negative delays.
    void schedule(SimTime delay, Handler fn);

    /// Schedules `fn` at absolute time `time` (>= now()).
    void scheduleAt(SimTime time, Handler fn);

    /// Runs the earliest pending event; returns false when idle.
    bool runOne();

    /// Runs every event with time <= until; returns events processed.
    std::size_t runUntil(SimTime until);

    /// Capped variant: stops after `max_events` even if events at or
    /// before `until` remain pending (the clock then stays at the last
    /// processed event instead of advancing to `until`).  Callers can
    /// detect the cap via the return value plus nextEventTime().
    std::size_t runUntil(SimTime until, std::size_t max_events);

    /// Runs until the calendar drains or `max_events` have been
    /// processed; returns events processed.  With `throw_on_cap`, a cap
    /// hit with events still pending throws std::runtime_error instead
    /// of silently stopping — use it when draining is the invariant.
    std::size_t runAll(std::size_t max_events = 10'000'000, bool throw_on_cap = false);

    [[nodiscard]] SimTime now() const noexcept { return now_; }
    [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
    [[nodiscard]] std::size_t pendingEvents() const noexcept { return queue_.size(); }
    /// Events ever scheduled on this calendar (processed + pending);
    /// cheap lifetime counter for stats and runaway-loop diagnostics.
    [[nodiscard]] std::uint64_t scheduledEvents() const noexcept { return next_seq_; }
    /// Time of the earliest pending event, or nullopt when idle.
    [[nodiscard]] std::optional<SimTime> nextEventTime() const {
        if (queue_.empty()) return std::nullopt;
        return queue_.top().time;
    }

private:
    struct Event {
        SimTime time;
        std::uint64_t seq;
        Handler fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    SimTime now_ = 0.0;
    std::uint64_t next_seq_ = 0;
};

/// Latency model for agent-to-agent messages: a fixed base plus
/// deterministic pseudo-random jitter.
class LatencyModel {
public:
    /// Latencies are drawn uniformly from [min_latency, max_latency].
    LatencyModel(SimTime min_latency, SimTime max_latency, std::uint32_t seed);

    [[nodiscard]] SimTime sample();

    [[nodiscard]] SimTime min() const noexcept { return min_; }
    [[nodiscard]] SimTime max() const noexcept { return max_; }

private:
    SimTime min_;
    SimTime max_;
    std::uint64_t state_;  // xorshift64 state; avoids <random> in the hot path
};

}  // namespace lrgp::sim
