#include "sim/simulator.hpp"

#include <stdexcept>

namespace lrgp::sim {

void Simulator::schedule(SimTime delay, Handler fn) {
    if (delay < 0.0) throw std::invalid_argument("Simulator::schedule: negative delay");
    scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::scheduleAt(SimTime time, Handler fn) {
    if (time < now_) throw std::invalid_argument("Simulator::scheduleAt: time in the past");
    if (!fn) throw std::invalid_argument("Simulator::scheduleAt: empty handler");
    queue_.push(Event{time, next_seq_++, std::move(fn)});
}

bool Simulator::runOne() {
    if (queue_.empty()) return false;
    // Copy out before popping: the handler may schedule new events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.fn();
    return true;
}

std::size_t Simulator::runUntil(SimTime until) {
    std::size_t processed = 0;
    while (!queue_.empty() && queue_.top().time <= until) {
        runOne();
        ++processed;
    }
    if (now_ < until) now_ = until;
    return processed;
}

std::size_t Simulator::runUntil(SimTime until, std::size_t max_events) {
    std::size_t processed = 0;
    while (processed < max_events && !queue_.empty() && queue_.top().time <= until) {
        runOne();
        ++processed;
    }
    // Advance the clock only when the window actually drained; a capped
    // stop leaves `now` at the last processed event so the caller can
    // see how far the run got.
    if ((queue_.empty() || queue_.top().time > until) && now_ < until) now_ = until;
    return processed;
}

std::size_t Simulator::runAll(std::size_t max_events, bool throw_on_cap) {
    std::size_t processed = 0;
    while (processed < max_events && runOne()) ++processed;
    if (throw_on_cap && !queue_.empty())
        throw std::runtime_error(
            "Simulator::runAll: event cap reached with events still pending");
    return processed;
}

LatencyModel::LatencyModel(SimTime min_latency, SimTime max_latency, std::uint32_t seed)
    : min_(min_latency), max_(max_latency), state_(seed == 0 ? 0x9E3779B97F4A7C15ull : seed) {
    if (!(min_latency >= 0.0) || !(min_latency <= max_latency))
        throw std::invalid_argument("LatencyModel: need 0 <= min <= max");
}

SimTime LatencyModel::sample() {
    // xorshift64: fast, deterministic, adequate for latency jitter.
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    const double unit = static_cast<double>(state_ >> 11) * 0x1.0p-53;  // [0,1)
    return min_ + unit * (max_ - min_);
}

}  // namespace lrgp::sim
