#include "model/analysis.hpp"

namespace lrgp::model {

double jain_index(const std::vector<double>& values) {
    double sum = 0.0, sum_sq = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        sum += v;
        sum_sq += v * v;
        ++n;
    }
    if (n == 0 || sum_sq == 0.0) return 0.0;
    return (sum * sum) / (static_cast<double>(n) * sum_sq);
}

AllocationSummary summarize(const ProblemSpec& spec, const Allocation& alloc) {
    AllocationSummary summary;
    summary.total_utility = total_utility(spec, alloc);

    std::vector<double> aggregate_utilities;
    aggregate_utilities.reserve(spec.classCount());
    for (const ClassSpec& c : spec.classes()) {
        ClassService service;
        service.cls = c.id;
        service.max_consumers = c.max_consumers;
        const bool active = spec.flowActive(c.flow);
        service.admitted = active ? alloc.populations.at(c.id.index()) : 0;
        if (c.max_consumers > 0)
            service.admission_ratio =
                static_cast<double>(service.admitted) / c.max_consumers;
        if (active && service.admitted > 0) {
            const double rate = alloc.rates.at(c.flow.index());
            service.per_consumer_utility = c.utility->value(rate);
            service.aggregate_utility = service.admitted * service.per_consumer_utility;
        }
        if (c.max_consumers > 0) {
            if (service.admitted == c.max_consumers) ++summary.classes_fully_admitted;
            else if (service.admitted > 0) ++summary.classes_partially_admitted;
            else ++summary.classes_denied;
        }
        aggregate_utilities.push_back(service.aggregate_utility);
        summary.classes.push_back(service);
    }
    summary.jain_fairness = jain_index(aggregate_utilities);

    summary.node_utilization.reserve(spec.nodeCount());
    for (const NodeSpec& b : spec.nodes())
        summary.node_utilization.push_back(node_usage(spec, alloc, b.id) / b.capacity);
    summary.link_utilization.reserve(spec.linkCount());
    for (const LinkSpec& l : spec.links())
        summary.link_utilization.push_back(link_usage(spec, alloc, l.id) / l.capacity);
    return summary;
}

}  // namespace lrgp::model
