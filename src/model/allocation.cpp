#include "model/allocation.hpp"

#include <sstream>

namespace lrgp::model {

Allocation Allocation::minimal(const ProblemSpec& spec) {
    Allocation a;
    a.rates.reserve(spec.flowCount());
    for (const FlowSpec& f : spec.flows()) a.rates.push_back(f.active ? f.rate_min : 0.0);
    a.populations.assign(spec.classCount(), 0);
    return a;
}

double total_utility(const ProblemSpec& spec, const Allocation& alloc) {
    double total = 0.0;
    for (const ClassSpec& c : spec.classes()) {
        const FlowSpec& f = spec.flow(c.flow);
        if (!f.active) continue;
        const int n = alloc.populations.at(c.id.index());
        if (n <= 0) continue;
        total += n * c.utility->value(alloc.rates.at(f.id.index()));
    }
    return total;
}

double link_usage(const ProblemSpec& spec, const Allocation& alloc, LinkId l) {
    double usage = 0.0;
    for (FlowId i : spec.flowsOnLink(l)) {
        if (!spec.flowActive(i)) continue;
        usage += spec.linkCost(l, i) * alloc.rates.at(i.index());
    }
    return usage;
}

double node_usage(const ProblemSpec& spec, const Allocation& alloc, NodeId b) {
    double usage = 0.0;
    for (FlowId i : spec.flowsAtNode(b)) {
        if (!spec.flowActive(i)) continue;
        usage += spec.flowNodeCost(b, i) * alloc.rates.at(i.index());
    }
    for (ClassId j : spec.classesAtNode(b)) {
        const ClassSpec& c = spec.consumerClass(j);
        if (!spec.flowActive(c.flow)) continue;
        usage += c.consumer_cost * alloc.populations.at(j.index()) *
                 alloc.rates.at(c.flow.index());
    }
    return usage;
}

namespace {

template <class... Args>
std::string describe(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

}  // namespace

FeasibilityReport check_feasibility(const ProblemSpec& spec, const Allocation& alloc,
                                    double tolerance) {
    FeasibilityReport report;
    if (alloc.rates.size() != spec.flowCount() || alloc.populations.size() != spec.classCount()) {
        report.violations.push_back(
            {Violation::Kind::kRateBelowMin, "allocation sized for a different problem"});
        return report;
    }

    for (const FlowSpec& f : spec.flows()) {
        const double r = alloc.rates[f.id.index()];
        if (!f.active) {
            if (r != 0.0)
                report.violations.push_back({Violation::Kind::kInactiveFlowNonzero,
                                             describe("inactive flow '", f.name,
                                                      "' has nonzero rate ", r)});
            continue;
        }
        if (r < f.rate_min * (1.0 - tolerance))
            report.violations.push_back({Violation::Kind::kRateBelowMin,
                                         describe("flow '", f.name, "' rate ", r, " < min ",
                                                  f.rate_min)});
        if (r > f.rate_max * (1.0 + tolerance))
            report.violations.push_back({Violation::Kind::kRateAboveMax,
                                         describe("flow '", f.name, "' rate ", r, " > max ",
                                                  f.rate_max)});
    }

    for (const ClassSpec& c : spec.classes()) {
        const int n = alloc.populations[c.id.index()];
        if (!spec.flowActive(c.flow)) {
            if (n != 0)
                report.violations.push_back({Violation::Kind::kInactiveFlowNonzero,
                                             describe("class '", c.name,
                                                      "' of inactive flow has population ", n)});
            continue;
        }
        if (n < 0)
            report.violations.push_back({Violation::Kind::kPopulationNegative,
                                         describe("class '", c.name, "' population ", n, " < 0")});
        if (n > c.max_consumers)
            report.violations.push_back({Violation::Kind::kPopulationAboveMax,
                                         describe("class '", c.name, "' population ", n, " > max ",
                                                  c.max_consumers)});
    }

    for (const LinkSpec& l : spec.links()) {
        const double usage = link_usage(spec, alloc, l.id);
        if (usage > l.capacity * (1.0 + tolerance))
            report.violations.push_back({Violation::Kind::kLinkOverCapacity,
                                         describe("link '", l.name, "' usage ", usage,
                                                  " > capacity ", l.capacity)});
    }

    for (const NodeSpec& b : spec.nodes()) {
        const double usage = node_usage(spec, alloc, b.id);
        if (usage > b.capacity * (1.0 + tolerance))
            report.violations.push_back({Violation::Kind::kNodeOverCapacity,
                                         describe("node '", b.name, "' usage ", usage,
                                                  " > capacity ", b.capacity)});
    }

    return report;
}

}  // namespace lrgp::model
