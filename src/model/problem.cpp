#include "model/problem.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace lrgp::model {

double ProblemSpec::flowNodeCost(NodeId b, FlowId i) const {
    const FlowSpec& f = flow(i);
    for (const FlowNodeHop& hop : f.nodes)
        if (hop.node == b) return hop.flow_node_cost;
    return 0.0;
}

double ProblemSpec::linkCost(LinkId l, FlowId i) const {
    const FlowSpec& f = flow(i);
    for (const FlowLinkHop& hop : f.links)
        if (hop.link == l) return hop.link_cost;
    return 0.0;
}

std::size_t ProblemSpec::maxClassesAtAnyNode() const noexcept {
    std::size_t best = 0;
    for (const auto& classes : classes_at_node_) best = std::max(best, classes.size());
    return best;
}

std::size_t ProblemSpec::maxFlowsAtAnyNode() const noexcept {
    std::size_t best = 0;
    for (const auto& flows : flows_at_node_) best = std::max(best, flows.size());
    return best;
}

std::size_t ProblemSpec::totalFlowNodeHops() const noexcept {
    std::size_t total = 0;
    for (const FlowSpec& f : flows_) total += f.nodes.size();
    return total;
}

std::size_t ProblemSpec::totalFlowLinkHops() const noexcept {
    std::size_t total = 0;
    for (const FlowSpec& f : flows_) total += f.links.size();
    return total;
}

void ProblemSpec::setNodeCapacity(NodeId id, double capacity) {
    if (!(capacity > 0.0))
        throw std::invalid_argument("ProblemSpec: node capacity must be positive");
    nodes_.at(id.index()).capacity = capacity;
}

void ProblemSpec::setLinkCapacity(LinkId id, double capacity) {
    if (!(capacity > 0.0))
        throw std::invalid_argument("ProblemSpec: link capacity must be positive");
    links_.at(id.index()).capacity = capacity;
}

void ProblemSpec::setClassMaxConsumers(ClassId id, int max_consumers) {
    if (max_consumers < 0)
        throw std::invalid_argument("ProblemSpec: max_consumers must be non-negative");
    classes_.at(id.index()).max_consumers = max_consumers;
}

// ------------------------------------------------------------------ builder

void ProblemBuilder::requireNode(NodeId id, const char* what) const {
    if (!id.valid() || id.index() >= spec_.nodes_.size())
        throw std::invalid_argument(std::string("ProblemBuilder: unknown node in ") + what);
}

void ProblemBuilder::requireFlow(FlowId id, const char* what) const {
    if (!id.valid() || id.index() >= spec_.flows_.size())
        throw std::invalid_argument(std::string("ProblemBuilder: unknown flow in ") + what);
}

void ProblemBuilder::requireLink(LinkId id, const char* what) const {
    if (!id.valid() || id.index() >= spec_.links_.size())
        throw std::invalid_argument(std::string("ProblemBuilder: unknown link in ") + what);
}

NodeId ProblemBuilder::addNode(std::string name, double capacity) {
    if (!(capacity > 0.0))
        throw std::invalid_argument("ProblemBuilder: node capacity must be positive");
    NodeId id{static_cast<std::uint32_t>(spec_.nodes_.size())};
    spec_.nodes_.push_back(NodeSpec{id, std::move(name), capacity});
    return id;
}

LinkId ProblemBuilder::addLink(std::string name, NodeId from, NodeId to, double capacity) {
    requireNode(from, "addLink(from)");
    requireNode(to, "addLink(to)");
    if (from == to) throw std::invalid_argument("ProblemBuilder: link endpoints must differ");
    if (!(capacity > 0.0))
        throw std::invalid_argument("ProblemBuilder: link capacity must be positive");
    LinkId id{static_cast<std::uint32_t>(spec_.links_.size())};
    spec_.links_.push_back(LinkSpec{id, std::move(name), from, to, capacity});
    return id;
}

FlowId ProblemBuilder::addFlow(std::string name, NodeId source, double rate_min,
                               double rate_max) {
    requireNode(source, "addFlow(source)");
    if (!(rate_min > 0.0) || !(rate_min <= rate_max))
        throw std::invalid_argument("ProblemBuilder: need 0 < rate_min <= rate_max");
    FlowId id{static_cast<std::uint32_t>(spec_.flows_.size())};
    spec_.flows_.push_back(FlowSpec{id, std::move(name), source, rate_min, rate_max, {}, {}, true});
    return id;
}

void ProblemBuilder::routeThroughNode(FlowId flow, NodeId node, double flow_node_cost) {
    requireFlow(flow, "routeThroughNode");
    requireNode(node, "routeThroughNode");
    if (flow_node_cost < 0.0)
        throw std::invalid_argument("ProblemBuilder: flow-node cost must be non-negative");
    FlowSpec& f = spec_.flows_[flow.index()];
    for (const FlowNodeHop& hop : f.nodes)
        if (hop.node == node)
            throw std::invalid_argument("ProblemBuilder: flow already routed through node");
    f.nodes.push_back(FlowNodeHop{node, flow_node_cost});
}

void ProblemBuilder::routeOverLink(FlowId flow, LinkId link, double link_cost) {
    requireFlow(flow, "routeOverLink");
    requireLink(link, "routeOverLink");
    if (!(link_cost > 0.0))
        throw std::invalid_argument("ProblemBuilder: link cost must be positive");
    FlowSpec& f = spec_.flows_[flow.index()];
    for (const FlowLinkHop& hop : f.links)
        if (hop.link == link)
            throw std::invalid_argument("ProblemBuilder: flow already routed over link");
    f.links.push_back(FlowLinkHop{link, link_cost});
}

ClassId ProblemBuilder::addClass(std::string name, FlowId flow, NodeId node, int max_consumers,
                                 double consumer_cost,
                                 std::shared_ptr<const utility::UtilityFunction> utility) {
    requireFlow(flow, "addClass");
    requireNode(node, "addClass");
    if (max_consumers < 0)
        throw std::invalid_argument("ProblemBuilder: max_consumers must be non-negative");
    if (!(consumer_cost > 0.0))
        throw std::invalid_argument("ProblemBuilder: consumer cost G must be positive");
    if (!utility) throw std::invalid_argument("ProblemBuilder: class utility must not be null");
    ClassId id{static_cast<std::uint32_t>(spec_.classes_.size())};
    spec_.classes_.push_back(
        ClassSpec{id, std::move(name), flow, node, max_consumers, consumer_cost,
                  std::move(utility)});
    return id;
}

ProblemSpec ProblemBuilder::build() const {
    ProblemSpec out = spec_;

    // Cross-reference check: every class must attach at a node its flow
    // reaches (two-stage approximation, Section 2.4: stage one routes the
    // flow to every node hosting one of its classes).
    for (const ClassSpec& c : out.classes_) {
        const FlowSpec& f = out.flows_[c.flow.index()];
        const bool routed = std::any_of(f.nodes.begin(), f.nodes.end(),
                                        [&](const FlowNodeHop& h) { return h.node == c.node; });
        if (!routed)
            throw std::invalid_argument("ProblemBuilder: class '" + c.name +
                                        "' attaches at a node its flow does not reach");
    }

    // Build reverse indexes.
    out.classes_of_flow_.assign(out.flows_.size(), {});
    out.classes_at_node_.assign(out.nodes_.size(), {});
    out.flows_at_node_.assign(out.nodes_.size(), {});
    out.flows_on_link_.assign(out.links_.size(), {});
    for (const ClassSpec& c : out.classes_) {
        out.classes_of_flow_[c.flow.index()].push_back(c.id);
        out.classes_at_node_[c.node.index()].push_back(c.id);
    }
    for (const FlowSpec& f : out.flows_) {
        for (const FlowNodeHop& hop : f.nodes) out.flows_at_node_[hop.node.index()].push_back(f.id);
        for (const FlowLinkHop& hop : f.links) out.flows_on_link_[hop.link.index()].push_back(f.id);
    }
    return out;
}

}  // namespace lrgp::model
