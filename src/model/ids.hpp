// Strong identifier types for the entities of the system model
// (Section 2.1): flows, consumer classes, nodes, and links.  Using
// distinct types prevents accidentally indexing one entity's table with
// another entity's id.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace lrgp::model {

/// A dense, zero-based identifier.  Ids double as indices into the
/// per-entity vectors of ProblemSpec (the builder assigns them densely).
template <class Tag>
struct Id {
    static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();

    std::uint32_t value = kInvalid;

    constexpr Id() = default;
    explicit constexpr Id(std::uint32_t v) : value(v) {}

    [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
    [[nodiscard]] constexpr std::size_t index() const noexcept { return value; }

    friend constexpr auto operator<=>(Id, Id) = default;
};

struct FlowTag {};
struct ClassTag {};
struct NodeTag {};
struct LinkTag {};

using FlowId = Id<FlowTag>;
using ClassId = Id<ClassTag>;
using NodeId = Id<NodeTag>;
using LinkId = Id<LinkTag>;

}  // namespace lrgp::model

template <class Tag>
struct std::hash<lrgp::model::Id<Tag>> {
    std::size_t operator()(lrgp::model::Id<Tag> id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value);
    }
};
