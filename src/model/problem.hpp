// Problem specification (Section 2): the overlay (nodes, links), message
// flows with their routes and rate bounds, consumer classes with their
// utilities, and the resource-cost coefficients L, F, G with capacities.
//
// A ProblemSpec is built once through ProblemBuilder (which validates the
// cross-references) and then treated as immutable by the optimizers,
// except for the per-flow `active` flag used to model a flow source
// leaving the system (the Figure 3 recovery experiment).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/ids.hpp"
#include "utility/utility_function.hpp"

namespace lrgp::model {

/// A computing node of the overlay with CPU capacity c_b.
struct NodeSpec {
    NodeId id;
    std::string name;
    double capacity = 0.0;  ///< c_b, resource units per unit time
};

/// A unidirectional link with bandwidth capacity c_l.
struct LinkSpec {
    LinkId id;
    std::string name;
    NodeId from;
    NodeId to;
    double capacity = 0.0;  ///< c_l
};

/// A node visited by a flow together with the flow-node cost F_{b,i}.
struct FlowNodeHop {
    NodeId node;
    double flow_node_cost = 0.0;  ///< F_{b,i}, resource per unit rate
};

/// A link traversed by a flow together with the link cost L_{l,i}.
struct FlowLinkHop {
    LinkId link;
    double link_cost = 0.0;  ///< L_{l,i}, resource per unit rate
};

/// A message flow: producers publish to it at the source node; the flow
/// is routed over `links` and processed at `nodes`.
struct FlowSpec {
    FlowId id;
    std::string name;
    NodeId source;
    double rate_min = 0.0;  ///< r_i^min
    double rate_max = 0.0;  ///< r_i^max
    std::vector<FlowNodeHop> nodes;  ///< B_i with F costs (includes c-nodes)
    std::vector<FlowLinkHop> links;  ///< L_i with L costs
    bool active = true;  ///< false once the flow source has left the system
};

/// A consumer class: a set of up to `max_consumers` identical consumers of
/// one flow, all attached at one node, sharing a utility function.
struct ClassSpec {
    ClassId id;
    std::string name;
    FlowId flow;
    NodeId node;
    int max_consumers = 0;        ///< n_j^max
    double consumer_cost = 0.0;   ///< G_{b,j}, resource per consumer per unit rate
    std::shared_ptr<const utility::UtilityFunction> utility;  ///< U_j, never null
};

/// The validated, index-friendly problem instance.  All id values are
/// dense and equal to the entity's index in the corresponding vector.
class ProblemSpec {
public:
    [[nodiscard]] const std::vector<NodeSpec>& nodes() const noexcept { return nodes_; }
    [[nodiscard]] const std::vector<LinkSpec>& links() const noexcept { return links_; }
    [[nodiscard]] const std::vector<FlowSpec>& flows() const noexcept { return flows_; }
    [[nodiscard]] const std::vector<ClassSpec>& classes() const noexcept { return classes_; }

    [[nodiscard]] const NodeSpec& node(NodeId id) const { return nodes_.at(id.index()); }
    [[nodiscard]] const LinkSpec& link(LinkId id) const { return links_.at(id.index()); }
    [[nodiscard]] const FlowSpec& flow(FlowId id) const { return flows_.at(id.index()); }
    [[nodiscard]] const ClassSpec& consumerClass(ClassId id) const {
        return classes_.at(id.index());
    }

    /// C_i: classes associated with flow i.
    [[nodiscard]] const std::vector<ClassId>& classesOfFlow(FlowId id) const {
        return classes_of_flow_.at(id.index());
    }
    /// nodeClasses(b): classes attached at node b (any flow).
    [[nodiscard]] const std::vector<ClassId>& classesAtNode(NodeId id) const {
        return classes_at_node_.at(id.index());
    }
    /// nodeMap(b): flows that reach node b.
    [[nodiscard]] const std::vector<FlowId>& flowsAtNode(NodeId id) const {
        return flows_at_node_.at(id.index());
    }
    /// linkMap(l): flows that traverse link l.
    [[nodiscard]] const std::vector<FlowId>& flowsOnLink(LinkId id) const {
        return flows_on_link_.at(id.index());
    }

    /// F_{b,i}; zero when the flow does not reach the node.
    [[nodiscard]] double flowNodeCost(NodeId b, FlowId i) const;
    /// L_{l,i}; zero when the flow does not traverse the link.
    [[nodiscard]] double linkCost(LinkId l, FlowId i) const;

    /// Marks a flow as departed/returned (Figure 3 recovery experiment).
    void setFlowActive(FlowId id, bool active) { flows_.at(id.index()).active = active; }
    [[nodiscard]] bool flowActive(FlowId id) const { return flows_.at(id.index()).active; }

    /// Adjusts a node capacity in place (workload-change experiments).
    void setNodeCapacity(NodeId id, double capacity);
    void setLinkCapacity(LinkId id, double capacity);

    /// Adjusts a class's consumer ceiling in place — consumers arriving
    /// at (or leaving) a node change n^max, and the optimizer reacts on
    /// its next iteration.  Throws on negative values.
    void setClassMaxConsumers(ClassId id, int max_consumers);

    [[nodiscard]] std::size_t flowCount() const noexcept { return flows_.size(); }
    [[nodiscard]] std::size_t classCount() const noexcept { return classes_.size(); }
    [[nodiscard]] std::size_t nodeCount() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t linkCount() const noexcept { return links_.size(); }

    // -- aggregate shape queries (scratch sizing for compiled iteration) --

    /// Largest number of classes attached at any single node.
    [[nodiscard]] std::size_t maxClassesAtAnyNode() const noexcept;
    /// Largest number of flows reaching any single node.
    [[nodiscard]] std::size_t maxFlowsAtAnyNode() const noexcept;
    /// Total (flow, node) hops over all flows: sum of |B_i|.
    [[nodiscard]] std::size_t totalFlowNodeHops() const noexcept;
    /// Total (flow, link) hops over all flows: sum of |L_i|.
    [[nodiscard]] std::size_t totalFlowLinkHops() const noexcept;

private:
    friend class ProblemBuilder;

    std::vector<NodeSpec> nodes_;
    std::vector<LinkSpec> links_;
    std::vector<FlowSpec> flows_;
    std::vector<ClassSpec> classes_;

    // Derived reverse indexes, built by ProblemBuilder::build().
    std::vector<std::vector<ClassId>> classes_of_flow_;
    std::vector<std::vector<ClassId>> classes_at_node_;
    std::vector<std::vector<FlowId>> flows_at_node_;
    std::vector<std::vector<FlowId>> flows_on_link_;
};

/// Incrementally assembles and validates a ProblemSpec.
///
/// All add/route methods throw std::invalid_argument on bad arguments
/// (unknown ids, non-positive capacities, inverted rate bounds, ...).
class ProblemBuilder {
public:
    /// Adds a node with capacity c_b > 0.
    NodeId addNode(std::string name, double capacity);

    /// Adds a unidirectional link with capacity c_l > 0.
    LinkId addLink(std::string name, NodeId from, NodeId to, double capacity);

    /// Adds a flow published at `source` with 0 < rate_min <= rate_max.
    /// The source node is implicitly part of the flow's route only if
    /// routeThroughNode is called for it.
    FlowId addFlow(std::string name, NodeId source, double rate_min, double rate_max);

    /// Declares that `flow` reaches `node`, consuming F_{b,i} = cost >= 0
    /// resource per unit rate there.
    void routeThroughNode(FlowId flow, NodeId node, double flow_node_cost);

    /// Declares that `flow` traverses `link` with L_{l,i} = cost > 0.
    void routeOverLink(FlowId flow, LinkId link, double link_cost);

    /// Adds a consumer class of `flow` attached at `node` with
    /// n^max = max_consumers >= 0, per-consumer cost G > 0 and utility U.
    ClassId addClass(std::string name, FlowId flow, NodeId node, int max_consumers,
                     double consumer_cost,
                     std::shared_ptr<const utility::UtilityFunction> utility);

    /// Validates cross-references (every class's node must be on its
    /// flow's route; link endpoints must exist) and returns the spec.
    /// Throws std::invalid_argument on any inconsistency.
    [[nodiscard]] ProblemSpec build() const;

private:
    void requireNode(NodeId id, const char* what) const;
    void requireFlow(FlowId id, const char* what) const;
    void requireLink(LinkId id, const char* what) const;

    ProblemSpec spec_;
};

}  // namespace lrgp::model
