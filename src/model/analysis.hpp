// Allocation analysis: summary statistics an operator would watch when
// LRGP manages a live system — per-class service levels, fairness of the
// utility distribution, and how hot each resource runs.
#pragma once

#include <vector>

#include "model/allocation.hpp"
#include "model/problem.hpp"

namespace lrgp::model {

/// Service summary for one consumer class.
struct ClassService {
    ClassId cls;
    int admitted = 0;
    int max_consumers = 0;
    double admission_ratio = 0.0;   ///< admitted / max (0 when max is 0)
    double per_consumer_utility = 0.0;  ///< U_j(r_i)
    double aggregate_utility = 0.0;     ///< n_j * U_j(r_i)
};

/// System-wide allocation summary.
struct AllocationSummary {
    double total_utility = 0.0;
    std::vector<ClassService> classes;       ///< indexed by class
    std::vector<double> node_utilization;    ///< usage / capacity, per node
    std::vector<double> link_utilization;    ///< usage / capacity, per link
    double jain_fairness = 0.0;              ///< over per-class aggregate utilities
    int classes_fully_admitted = 0;
    int classes_partially_admitted = 0;
    int classes_denied = 0;  ///< n == 0 although n^max > 0
};

/// Jain's fairness index over the positive entries of `values`:
/// (sum x)^2 / (n * sum x^2), in (0, 1]; 1 means perfectly even.
/// Returns 0 for an empty or all-zero input.
[[nodiscard]] double jain_index(const std::vector<double>& values);

/// Computes the full summary of `alloc` against `spec`.  Classes of
/// inactive flows are reported as denied with zero utility.
[[nodiscard]] AllocationSummary summarize(const ProblemSpec& spec, const Allocation& alloc);

}  // namespace lrgp::model
