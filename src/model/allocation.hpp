// Resource allocations (the optimizer's decision variables) and their
// evaluation against a ProblemSpec: total utility (Eq. 1), link usage
// (Eq. 4), node usage (Eq. 5), and feasibility checking.
#pragma once

#include <string>
#include <vector>

#include "model/problem.hpp"

namespace lrgp::model {

/// A complete assignment of decision variables: one rate per flow
/// (indexed by FlowId) and one admitted-consumer count per class
/// (indexed by ClassId).
struct Allocation {
    std::vector<double> rates;    ///< r_i, indexed by flow
    std::vector<int> populations; ///< n_j, indexed by class

    /// An allocation sized for `spec` with every rate at r_min and every
    /// population at zero (trivially feasible when the F costs fit).
    static Allocation minimal(const ProblemSpec& spec);
};

/// Total system utility (Eq. 1): sum over flows i, classes j in C_i of
/// n_j * U_j(r_i).  Inactive flows contribute nothing.
[[nodiscard]] double total_utility(const ProblemSpec& spec, const Allocation& alloc);

/// Link usage (left side of Eq. 4): sum of L_{l,i} * r_i over flows on l.
[[nodiscard]] double link_usage(const ProblemSpec& spec, const Allocation& alloc, LinkId l);

/// Node usage (left side of Eq. 5):
/// sum over flows i reaching b of (F_{b,i} r_i + sum_j G_{b,j} n_j r_i).
[[nodiscard]] double node_usage(const ProblemSpec& spec, const Allocation& alloc, NodeId b);

/// One constraint violation discovered by check_feasibility.
struct Violation {
    enum class Kind {
        kRateBelowMin,
        kRateAboveMax,
        kPopulationNegative,
        kPopulationAboveMax,
        kLinkOverCapacity,
        kNodeOverCapacity,
        kInactiveFlowNonzero,
    };
    Kind kind;
    std::string detail;  ///< human-readable description with entity names
};

/// The outcome of a feasibility check.
struct FeasibilityReport {
    std::vector<Violation> violations;
    [[nodiscard]] bool feasible() const noexcept { return violations.empty(); }
};

/// Checks all constraints (Eqs. 2-5) with a relative slack `tolerance`
/// on the capacity constraints (an allocation using c*(1+tol) still
/// passes, guarding against floating-point noise).  For inactive flows
/// the rate-bound checks are replaced by rate == 0 / populations == 0.
[[nodiscard]] FeasibilityReport check_feasibility(const ProblemSpec& spec,
                                                  const Allocation& alloc,
                                                  double tolerance = 1e-9);

}  // namespace lrgp::model
