// Bracketed scalar root finding for monotone functions.
//
// The LRGP rate-allocation step (Algorithm 1) sets the derivative of the
// per-flow Lagrangian to zero:  sum_j n_j U_j'(r) - P = 0.  Because each
// U_j is strictly concave, the left-hand side is strictly decreasing in r,
// so the stationary point is the unique root of a monotone function.  When
// a closed form is unavailable (mixed utility families on one flow), the
// rate allocator falls back to the safeguarded solvers in this header.
#pragma once

#include <functional>
#include <optional>

namespace lrgp::solver {

/// Options shared by the bracketed solvers.
struct RootOptions {
    double tolerance = 1e-10;  ///< absolute tolerance on the bracket width
    int max_iterations = 200;  ///< hard stop; solvers throw if exceeded
};

/// Result of a root search.
struct RootResult {
    double root = 0.0;
    int iterations = 0;
};

/// Finds the root of a strictly decreasing function `f` on [lo, hi] by
/// bisection.  Preconditions: lo < hi, f(lo) >= 0 >= f(hi); violations
/// throw std::invalid_argument.
RootResult bisect_decreasing(const std::function<double(double)>& f, double lo, double hi,
                             const RootOptions& opts = {});

/// Newton's method safeguarded by a shrinking bisection bracket: a Newton
/// step that leaves the bracket, or makes insufficient progress, falls
/// back to bisection.  `df` is the derivative of `f`.  Same preconditions
/// as bisect_decreasing.
RootResult newton_bisect_decreasing(const std::function<double(double)>& f,
                                    const std::function<double(double)>& df, double lo, double hi,
                                    const RootOptions& opts = {});

/// Maximizes a strictly concave function on [lo, hi] by golden-section
/// search; returns the argmax.  Used as a derivative-free cross-check in
/// tests and as the last-resort path for utilities without derivatives.
RootResult golden_section_maximize(const std::function<double(double)>& f, double lo, double hi,
                                   const RootOptions& opts = {});

}  // namespace lrgp::solver
