#include "solver/root_finding.hpp"

#include <cmath>
#include <stdexcept>

namespace lrgp::solver {

namespace {

void checkBracket(double flo, double fhi, double lo, double hi) {
    if (!(lo < hi)) throw std::invalid_argument("root finding: empty bracket");
    if (flo < 0.0 || fhi > 0.0)
        throw std::invalid_argument("root finding: f is not decreasing across the bracket");
}

}  // namespace

RootResult bisect_decreasing(const std::function<double(double)>& f, double lo, double hi,
                             const RootOptions& opts) {
    double flo = f(lo);
    double fhi = f(hi);
    checkBracket(flo, fhi, lo, hi);
    if (flo == 0.0) return {lo, 0};
    if (fhi == 0.0) return {hi, 0};

    int iters = 0;
    while (hi - lo > opts.tolerance) {
        if (++iters > opts.max_iterations)
            throw std::runtime_error("bisect_decreasing: iteration limit exceeded");
        const double mid = 0.5 * (lo + hi);
        const double fmid = f(mid);
        if (fmid == 0.0) return {mid, iters};
        if (fmid > 0.0) lo = mid;
        else hi = mid;
    }
    return {0.5 * (lo + hi), iters};
}

RootResult newton_bisect_decreasing(const std::function<double(double)>& f,
                                    const std::function<double(double)>& df, double lo, double hi,
                                    const RootOptions& opts) {
    double flo = f(lo);
    double fhi = f(hi);
    checkBracket(flo, fhi, lo, hi);
    if (flo == 0.0) return {lo, 0};
    if (fhi == 0.0) return {hi, 0};

    double x = 0.5 * (lo + hi);
    int iters = 0;
    while (hi - lo > opts.tolerance) {
        if (++iters > opts.max_iterations)
            throw std::runtime_error("newton_bisect_decreasing: iteration limit exceeded");
        const double fx = f(x);
        if (fx == 0.0) return {x, iters};
        if (fx > 0.0) lo = x;
        else hi = x;

        const double d = df(x);
        double next = (d != 0.0) ? x - fx / d : 0.5 * (lo + hi);
        // Fall back to bisection when Newton leaves the bracket.
        if (!(next > lo && next < hi) || !std::isfinite(next)) next = 0.5 * (lo + hi);
        x = next;
    }
    return {0.5 * (lo + hi), iters};
}

RootResult golden_section_maximize(const std::function<double(double)>& f, double lo, double hi,
                                   const RootOptions& opts) {
    if (!(lo <= hi)) throw std::invalid_argument("golden_section_maximize: empty interval");
    constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
    double a = lo, b = hi;
    double x1 = b - kInvPhi * (b - a);
    double x2 = a + kInvPhi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    int iters = 0;
    while (b - a > opts.tolerance) {
        if (++iters > opts.max_iterations) break;  // interval is already tiny; return midpoint
        if (f1 < f2) {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kInvPhi * (b - a);
            f2 = f(x2);
        } else {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kInvPhi * (b - a);
            f1 = f(x1);
        }
    }
    return {0.5 * (a + b), iters};
}

}  // namespace lrgp::solver
