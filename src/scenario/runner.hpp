// Scenario runner: replays a ScenarioSpec's dynamic-op schedule against
// any engine of the zoo and reports how well it tracked the workload.
//
// Engines ("serial" | "compiled" | "incremental" | "sharded") advance
// one LRGP iteration per tick of scenario time; each DynamicOp applies
// through the core::Engine interface just before the first tick at or
// after its timestamp.  The "async" engine drives an AsyncShardRuntime
// instead: the timeline is segmented at op times, each segment runs in
// deterministic virtual time, and the quiescent dynamic-op API applies
// the churn between segments (capacity ops are not supported there —
// they would race the budget handshakes; the catalog's churn cells use
// flow/population ops only).
//
// With `with_dataplane`, the run closes the loop: every tick's
// allocation is offered to an EnactmentController wired into a
// message-level Dataplane, and the report gains planned-vs-achieved
// trailing means plus the drop rate — the measurements behind the PR 4
// overdrive regression test.
//
// Every run ends with a convergence solve, and the report compares the
// final utility against the *best-known* utility: a fresh serial solve
// of the end-state problem (all ops applied statically).
#pragma once

#include <cstdint>
#include <string>

#include "lrgp/engine.hpp"
#include "metrics/recovery.hpp"
#include "metrics/time_series.hpp"
#include "model/allocation.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"

namespace lrgp::scenario {

struct RunnerOptions {
    /// serial | compiled | incremental | sharded | vector | vector_exact | async.
    std::string engine = "incremental";
    int shards = 4;    ///< sharded shard count / async agent count
    int threads = 1;   ///< compiled/incremental worker threads
    double tick = 0.05;           ///< scenario seconds per LRGP iteration
    double settle = 6.0;          ///< replay tail after the last scheduled op
    int max_converge_iterations = 4000;

    bool with_dataplane = false;
    std::uint64_t dataplane_seed = 1;
    double dataplane_settle = 8.0;  ///< extra traffic time after the replay

    core::LrgpOptions lrgp;
};

struct ScenarioRunReport {
    std::string engine;
    metrics::TimeSeries utility_trace;  ///< one sample per tick (or runtime sample)
    double sample_period = 0.05;

    double final_utility = 0.0;
    double best_known_utility = 0.0;
    double utility_vs_best = 0.0;  ///< final / best-known
    std::size_t ops_applied = 0;
    bool converged = false;
    int iterations = 0;

    bool has_recovery = false;
    metrics::RecoveryReport recovery;

    bool has_dataplane = false;
    double drop_rate = 0.0;
    double planned_mean = 0.0;   ///< trailing mean of the planned-utility trace
    double achieved_mean = 0.0;  ///< trailing mean of the achieved-utility trace
    double achieved_vs_planned = 0.0;

    /// Merged final allocation; empty for the async runtime (agents own
    /// their local subproblems and no global merge is published).
    model::Allocation final_allocation;
};

/// Replays `scenario` and reports.  Throws std::invalid_argument on an
/// unknown engine name, or when the async engine meets a capacity op or
/// the dataplane meets a link-capacity op (neither can be mirrored).
[[nodiscard]] ScenarioRunReport run_scenario(const ScenarioSpec& scenario,
                                             const RunnerOptions& options = {});

/// Fresh serial solve of the end-state problem: the yardstick every
/// replayed run's final utility is measured against.
[[nodiscard]] double best_known_utility(const ScenarioSpec& scenario,
                                        const core::LrgpOptions& options = {},
                                        int max_iterations = 4000);

/// Fills the lrgp_scenario_* instrument bundle from a finished run.
/// Every exported value derives from the deterministic replay, so the
/// registry's Prometheus text is golden-testable byte-exact.
void export_observability(const ScenarioSpec& scenario, const ScenarioRunReport& report,
                          obs::Registry& registry);

}  // namespace lrgp::scenario
