#include "scenario/runner.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "dataplane/dataplane.hpp"
#include "lrgp/enactment.hpp"
#include "obs/instruments.hpp"
#include "runtime/runtime.hpp"
#include "shard/sharded_engine.hpp"
#include "simd/vector_engine.hpp"

namespace lrgp::scenario {

namespace {

std::unique_ptr<core::Engine> makeSyncEngine(const ScenarioSpec& scenario,
                                             const RunnerOptions& options) {
    if (options.engine == "serial")
        return core::make_engine(core::EngineKind::kSerial, scenario.problem, options.lrgp);
    if (options.engine == "compiled")
        return core::make_engine(core::EngineKind::kCompiled, scenario.problem, options.lrgp,
                                 options.threads);
    if (options.engine == "incremental")
        return core::make_engine(core::EngineKind::kIncremental, scenario.problem, options.lrgp,
                                 options.threads);
    if (options.engine == "vector" || options.engine == "vector_exact") {
        simd::VectorEngineConfig config;
        config.mode = options.engine == "vector" ? simd::VectorMode::kTolerance
                                                 : simd::VectorMode::kExact;
        return simd::make_vector_engine(scenario.problem, options.lrgp, config);
    }
    if (options.engine == "sharded") {
        shard::ShardedConfig config;
        config.shards = options.shards;
        config.threads = options.threads;
        return shard::make_sharded_engine(scenario.problem, options.lrgp, config);
    }
    throw std::invalid_argument("run_scenario: unknown engine '" + options.engine + "'");
}

void applyToEngine(core::Engine& engine, const DynamicOp& op) {
    switch (op.kind) {
        case OpKind::kSetClassMaxConsumers:
            engine.setClassMaxConsumers(model::ClassId(op.target), static_cast<int>(op.value));
            break;
        case OpKind::kRemoveFlow: engine.removeFlow(model::FlowId(op.target)); break;
        case OpKind::kRestoreFlow: engine.restoreFlow(model::FlowId(op.target)); break;
        case OpKind::kSetNodeCapacity:
            engine.setNodeCapacity(model::NodeId(op.target), op.value);
            break;
        case OpKind::kSetLinkCapacity:
            engine.setLinkCapacity(model::LinkId(op.target), op.value);
            break;
    }
}

void mirrorToDataplane(dataplane::Dataplane& dp, const DynamicOp& op, double physical_scale) {
    switch (op.kind) {
        case OpKind::kSetClassMaxConsumers:
            break;  // populations reach the dataplane through enacted allocations
        case OpKind::kRemoveFlow: dp.setFlowActive(model::FlowId(op.target), false); break;
        case OpKind::kRestoreFlow: dp.setFlowActive(model::FlowId(op.target), true); break;
        case OpKind::kSetNodeCapacity:
            dp.setNodeCapacity(model::NodeId(op.target), op.value * physical_scale);
            break;
        case OpKind::kSetLinkCapacity:
            throw std::invalid_argument(
                "run_scenario: the dataplane cannot mirror set_link_capacity ops");
    }
}

void analyzeRecovery(const ScenarioSpec& scenario, ScenarioRunReport& report) {
    if (scenario.principal_disturbance < 0.0 || report.utility_trace.size() < 8) return;
    // Sample i of the trace is at time (i + 1) * sample_period; the fault
    // index is the first sample at or after the disturbance.
    const auto fault_index = static_cast<std::size_t>(
        std::max(0.0, std::ceil(scenario.principal_disturbance / report.sample_period) - 1.0));
    if (fault_index < 2 || fault_index + 4 >= report.utility_trace.size()) return;
    metrics::RecoveryOptions ropts;
    ropts.target = metrics::RecoveryTarget::kFinalSteadyState;
    ropts.baseline_window = std::min<std::size_t>(40, fault_index);
    ropts.settle_window =
        std::min<std::size_t>(20, (report.utility_trace.size() - fault_index) / 2);
    if (ropts.settle_window == 0) return;
    report.recovery = metrics::analyze_recovery(report.utility_trace, fault_index,
                                                report.sample_period, ropts);
    report.has_recovery = true;
}

ScenarioRunReport runAsync(const ScenarioSpec& scenario, const RunnerOptions& options) {
    ScenarioRunReport report;
    report.engine = options.engine;

    runtime::RuntimeOptions ropts;
    ropts.agents = options.shards;
    ropts.deterministic = true;
    ropts.sample_period = options.tick;
    report.sample_period = ropts.sample_period;

    runtime::AsyncShardRuntime runtime(scenario.problem, options.lrgp, ropts);
    double now = 0.0;
    std::size_t next = 0;
    while (next < scenario.schedule.size()) {
        const double at = scenario.schedule[next].time;
        if (at > now) {
            runtime.runFor(at - now);
            now = at;
        }
        while (next < scenario.schedule.size() && scenario.schedule[next].time <= now) {
            const DynamicOp& op = scenario.schedule[next];
            switch (op.kind) {
                case OpKind::kSetClassMaxConsumers:
                    runtime.setClassMaxConsumers(model::ClassId(op.target),
                                                 static_cast<int>(op.value));
                    break;
                case OpKind::kRemoveFlow: runtime.removeFlow(model::FlowId(op.target)); break;
                case OpKind::kRestoreFlow: runtime.restoreFlow(model::FlowId(op.target)); break;
                case OpKind::kSetNodeCapacity:
                case OpKind::kSetLinkCapacity:
                    throw std::invalid_argument(
                        "run_scenario: the async runtime does not support capacity ops "
                        "(they would race the boundary-budget handshakes)");
            }
            ++report.ops_applied;
            ++next;
        }
    }
    const double total = scenario.options.duration + options.settle;
    if (total > now) runtime.runFor(total - now);

    report.utility_trace = runtime.utilityTrace();
    report.final_utility = runtime.currentUtility();
    report.converged = true;  // no global detector; utility_vs_best is the check
    report.best_known_utility = best_known_utility(scenario, options.lrgp,
                                                   options.max_converge_iterations);
    report.utility_vs_best =
        report.best_known_utility > 0.0 ? report.final_utility / report.best_known_utility : 0.0;
    analyzeRecovery(scenario, report);
    return report;
}

}  // namespace

void export_observability(const ScenarioSpec& scenario, const ScenarioRunReport& report,
                          obs::Registry& registry) {
    const obs::ScenarioInstruments si = obs::ScenarioInstruments::resolve(registry);
    si.ops_applied->add(report.ops_applied);
    si.ticks->add(report.utility_trace.size());
    si.flows->set(static_cast<double>(scenario.problem.flowCount()));
    si.classes->set(static_cast<double>(scenario.problem.classCount()));
    si.nodes->set(static_cast<double>(scenario.problem.nodeCount()));
    si.links->set(static_cast<double>(scenario.problem.linkCount()));
    si.schedule_ops->set(static_cast<double>(scenario.schedule.size()));
    si.final_utility->set(report.final_utility);
    si.best_known_utility->set(report.best_known_utility);
    si.utility_vs_best->set(report.utility_vs_best);
    if (report.has_dataplane) {
        si.drop_rate->set(report.drop_rate);
        si.achieved_vs_planned->set(report.achieved_vs_planned);
    }
}

double best_known_utility(const ScenarioSpec& scenario, const core::LrgpOptions& options,
                          int max_iterations) {
    const auto engine =
        core::make_engine(core::EngineKind::kSerial, end_state_problem(scenario), options);
    engine->runUntilConverged(max_iterations);
    return engine->currentUtility();
}

ScenarioRunReport run_scenario(const ScenarioSpec& scenario, const RunnerOptions& options) {
    if (!(options.tick > 0.0)) throw std::invalid_argument("run_scenario: tick must be positive");
    if (options.engine == "async") return runAsync(scenario, options);

    ScenarioRunReport report;
    report.engine = options.engine;
    report.sample_period = options.tick;

    const auto engine = makeSyncEngine(scenario, options);

    std::optional<dataplane::Dataplane> dp;
    std::optional<core::EnactmentController> enactor;
    if (options.with_dataplane) {
        dataplane::DataplaneOptions dopts;
        dopts.seed = options.dataplane_seed;
        dp.emplace(scenario.problem, dopts);
        // Overdrive: the plant has less capacity than the plan believes.
        if (scenario.physical_capacity_scale != 1.0)
            for (const model::NodeSpec& node : scenario.problem.nodes())
                dp->setNodeCapacity(node.id, node.capacity * scenario.physical_capacity_scale);
        core::EnactmentOptions eopts;
        eopts.rate_deadband = 0.05;
        eopts.population_deadband = 2;
        eopts.min_interval = 1.0;
        enactor.emplace(eopts, [&](const model::Allocation& alloc) { dp->enact(alloc); });
    }

    const double total = scenario.options.duration + options.settle;
    const int ticks = static_cast<int>(std::lround(total / options.tick));
    std::size_t next = 0;
    for (int i = 1; i <= ticks; ++i) {
        const double t = static_cast<double>(i) * options.tick;
        while (next < scenario.schedule.size() && scenario.schedule[next].time <= t) {
            applyToEngine(*engine, scenario.schedule[next]);
            if (dp) mirrorToDataplane(*dp, scenario.schedule[next], scenario.physical_capacity_scale);
            ++report.ops_applied;
            ++next;
        }
        const core::IterationRecord& record = engine->step();
        report.utility_trace.append(record.utility);
        if (dp) {
            dp->notePlanned(record.allocation);
            enactor->offer(t, record.allocation);
            dp->runUntil(t);
        }
    }

    // Multi-shard engines: the replay's many reconcile passes decay the
    // budget-exchange step towards zero, freezing whatever split the
    // early (far-from-equilibrium) boundary prices produced.  A warm
    // start from the current prices resets the decay, so the final
    // solve can re-split the budgets at full step — this is what closes
    // the K=4 gap to < 1%.  K=1 is skipped: it has no budgets to move,
    // and must stay bitwise-identical to the monolithic engines.
    if (options.engine == "sharded" && options.shards > 1) engine->warmStart(engine->prices());
    report.converged = engine->runUntilConverged(options.max_converge_iterations).has_value();
    report.final_utility = engine->currentUtility();
    report.final_allocation = engine->allocation();
    report.iterations = engine->iterationsRun();
    report.best_known_utility =
        best_known_utility(scenario, options.lrgp, options.max_converge_iterations);
    report.utility_vs_best =
        report.best_known_utility > 0.0 ? report.final_utility / report.best_known_utility : 0.0;
    analyzeRecovery(scenario, report);

    if (dp) {
        dp->notePlanned(report.final_allocation);
        dp->enact(report.final_allocation);
        dp->runUntil(total + options.dataplane_settle);
        const dataplane::DataplaneStats stats = dp->collectStats();
        report.has_dataplane = true;
        report.drop_rate = stats.drop_rate;
        const auto window = [](const metrics::TimeSeries& trace) {
            return std::min<std::size_t>(10, trace.size());
        };
        if (!dp->plannedUtilityTrace().empty())
            report.planned_mean =
                dp->plannedUtilityTrace().trailingMean(window(dp->plannedUtilityTrace()));
        if (!dp->achievedUtilityTrace().empty())
            report.achieved_mean =
                dp->achievedUtilityTrace().trailingMean(window(dp->achievedUtilityTrace()));
        report.achieved_vs_planned =
            report.planned_mean > 0.0 ? report.achieved_mean / report.planned_mean : 0.0;
    }
    return report;
}

}  // namespace lrgp::scenario
